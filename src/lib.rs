//! # qse — Quantum Statevector Energy
//!
//! A from-scratch Rust reproduction of *Energy Efficiency of Quantum
//! Statevector Simulation at Scale* (Adamski, Richings, Brown — SC-W
//! 2023): a QuEST-style distributed statevector simulator, a thread-rank
//! message-passing substrate, a cache-blocking circuit transpiler, and a
//! calibrated ARCHER2 performance/energy model that regenerates every
//! table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use qse::circuit::qft::qft;
//! use qse::core::{LocalExecutor, ModelExecutor, SimConfig};
//! use qse::machine::archer2;
//!
//! // Exact simulation of a 10-qubit QFT (single address space):
//! let state = LocalExecutor::run(&qft(10));
//! assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
//!
//! // Modelled runtime/energy of the 38-qubit QFT on 64 ARCHER2 nodes:
//! let machine = archer2();
//! let estimate = ModelExecutor::new(&machine).run(&qft(38), &SimConfig::default_for(64));
//! assert!(estimate.runtime_s > 0.0);
//! ```
//!
//! The crates compose bottom-up; see `DESIGN.md` for the full map:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`math`] | `qse-math` | complex numbers, bit-index algebra |
//! | [`comm`] | `qse-comm` | thread-rank message passing ("virtual MPI") |
//! | [`circuit`] | `qse-circuit` | IR, QFT builders, locality classes, transpiler |
//! | [`statevec`] | `qse-statevec` | local + distributed statevector engine |
//! | [`machine`] | `qse-machine` | calibrated ARCHER2 time/energy model |
//! | [`core`] | `qse-core` | executors, profiling, experiment harness |
//! | [`util`] | `qse-util` | std-only PRNG, JSON, thread pool, channels |
//! | [`check`] | `qse-check` | schedule explorer, deadlock tests, source lint |
//!
//! The workspace is hermetic: every dependency is an in-tree path crate,
//! so a cold-cache `cargo build --offline` succeeds with no registry
//! access.

pub use qse_check as check;
pub use qse_circuit as circuit;
pub use qse_comm as comm;
pub use qse_core as core;
pub use qse_machine as machine;
pub use qse_math as math;
pub use qse_statevec as statevec;
pub use qse_util as util;

/// Convenience re-exports covering the typical session.
pub mod prelude {
    pub use qse_circuit::algorithms::{bernstein_vazirani, ghz, grover, qpe};
    pub use qse_circuit::benchmarks::{hadamard_benchmark, swap_benchmark};
    pub use qse_circuit::classify::{classify, comm_summary, GateClass, Layout};
    pub use qse_circuit::qft::{cache_blocked_qft, default_split, inverse_qft, qft};
    pub use qse_circuit::transpile::cache_blocking::cache_block;
    pub use qse_circuit::{Circuit, Gate};
    pub use qse_comm::Universe;
    pub use qse_core::{
        LocalExecutor, ModelExecutor, SimConfig, ThreadClusterExecutor, TranspileMode,
    };
    pub use qse_machine::{archer2, CpuFrequency, ModelConfig, NodeKind};
    pub use qse_math::Complex64;
    pub use qse_statevec::{DistConfig, DistributedState, SingleState};
}
