//! Cache-blocking walkthrough — the paper's headline optimisation.
//!
//! Shows (a) the fig 1b QFT construction, (b) the general transpiler on
//! an arbitrary circuit, and (c) the measured communication savings on
//! the thread cluster.
//!
//! ```sh
//! cargo run --release --example cache_blocking
//! ```

use qse::circuit::transpile::cache_blocking::cache_block;
use qse::prelude::*;

fn main() {
    let n = 16u32;
    let ranks = 8u64;
    let layout = Layout::new(n, ranks);
    println!(
        "{n}-qubit register over {ranks} ranks: qubits 0..{} local, {}..{} global\n",
        layout.local_qubits() - 1,
        layout.local_qubits(),
        n - 1
    );

    // (a) The QFT-specific construction of fig 1b.
    let built_in = qft(n);
    let split = default_split(n, layout.local_qubits());
    let blocked = cache_blocked_qft(n, split);
    let s1 = comm_summary(&built_in, &layout);
    let s2 = comm_summary(&blocked, &layout);
    println!("built-in QFT:      {} distributed gates ({} swaps)", s1.distributed, s1.distributed_swaps);
    println!("cache-blocked QFT: {} distributed gates ({} swaps), split after H #{split}", s2.distributed, s2.distributed_swaps);
    println!(
        "exchange volume per rank: {} -> {} bytes ({}x), half-exchange swaps -> {} bytes\n",
        s1.bytes_full_exchange,
        s2.bytes_full_exchange,
        s1.bytes_full_exchange / s2.bytes_full_exchange.max(1),
        s2.bytes_half_exchange_swaps,
    );

    // (b) The general pass on an arbitrary circuit: 30 Hadamards on a
    // global qubit cost one SWAP instead of 30 exchanges.
    let mut hot_global = Circuit::new(n);
    for _ in 0..30 {
        hot_global.h(n - 1);
    }
    let transpiled = cache_block(&hot_global, layout.local_qubits());
    let before = comm_summary(&hot_global, &layout);
    let after = comm_summary(&transpiled.circuit, &layout);
    println!(
        "general pass on 30x H(q{}): {} -> {} distributed gates (final layout {:?})\n",
        n - 1,
        before.distributed,
        after.distributed,
        (0..n).map(|q| transpiled.layout.apply(q)).collect::<Vec<_>>()
    );

    // (c) Measure it for real on the thread cluster.
    let cfg = SimConfig::fast_for(ranks);
    let run_a = ThreadClusterExecutor::run(&built_in, &cfg, 0, false);
    let run_b = ThreadClusterExecutor::run(&blocked, &cfg, 0, false);
    println!(
        "measured bytes over the wire: built-in {} vs cache-blocked {} ({:.1}x less)",
        run_a.profiled.bytes_sent,
        run_b.profiled.bytes_sent,
        run_a.profiled.bytes_sent as f64 / run_b.profiled.bytes_sent as f64
    );
    println!(
        "measured wall-clock: {:.3} s vs {:.3} s",
        run_a.profiled.wall_s, run_b.profiled.wall_s
    );
}
