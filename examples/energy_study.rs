//! Energy study — reproduce the paper's decision problem for one job.
//!
//! You have a 40-qubit QFT to run on ARCHER2. Which node type, which
//! frequency, which circuit variant? This example walks the whole
//! option grid through the calibrated model and prints runtime, energy,
//! and CU cost for each, ending with the paper's conclusions.
//!
//! ```sh
//! cargo run --release --example energy_study
//! ```

use qse::core::experiment::TextTable;
use qse::core::scaling::nodes_for;
use qse::prelude::*;
use qse::machine::energy::{format_energy, joules_to_kwh};

fn main() {
    let n = 40u32;
    let machine = archer2();
    let mut table = TextTable::new(vec![
        "Setup", "Nodes", "Runtime", "Energy", "kWh", "CU",
    ]);

    let mut best: Option<(String, f64)> = None;
    for kind in [NodeKind::Standard, NodeKind::HighMem] {
        let Some(nodes) = nodes_for(&machine, kind, n) else {
            continue;
        };
        let local = n - nodes.trailing_zeros();
        for freq in CpuFrequency::all() {
            for (variant, circuit, non_blocking) in [
                ("built-in", qft(n), false),
                (
                    "fast",
                    cache_blocked_qft(n, default_split(n, local)),
                    true,
                ),
            ] {
                let mut cfg = SimConfig::default_for(nodes);
                cfg.node_kind = kind;
                cfg.frequency = freq;
                cfg.non_blocking = non_blocking;
                let est = ModelExecutor::new(&machine).run(&circuit, &cfg);
                let label = format!("{}-{:?}-{variant}", kind.label(), freq);
                table.row(vec![
                    label.clone(),
                    nodes.to_string(),
                    format!("{:.0} s", est.runtime_s),
                    format_energy(est.total_energy_j()),
                    format!("{:.1}", joules_to_kwh(est.total_energy_j())),
                    format!("{:.1}", est.cu),
                ]);
                let e = est.total_energy_j();
                if best.as_ref().is_none_or(|(_, b)| e < *b) {
                    best = Some((label, e));
                }
            }
        }
    }

    println!("Energy study — 40-qubit QFT on modelled ARCHER2\n");
    println!("{}", table.render());
    let (label, energy) = best.expect("at least one setup fits");
    println!("lowest-energy setup: {label} at {}", format_energy(energy));
    println!();
    println!("Paper conclusions this grid reproduces (§4):");
    println!(" - 2.00 GHz default is right: 2.25 GHz buys ~5 % time for ~25 % energy;");
    println!(" - 1.50 GHz only slows things down at flat energy;");
    println!(" - high-memory nodes cost fewer CUs but run slower;");
    println!(" - cache-blocking + non-blocking comm dominates everything else.");
}
