//! Quantum Phase Estimation on the distributed engine.
//!
//! The paper motivates the QFT as "a common subroutine of larger quantum
//! algorithms, like Quantum Phase Estimation" (§2.3). This example builds
//! the textbook QPE circuit for a phase gate with a known eigenphase,
//! runs it distributed over thread ranks, and reads the phase back out of
//! the measurement distribution — exercising the full stack end to end.
//!
//! ```sh
//! cargo run --release --example distributed_qpe
//! ```

use qse::prelude::*;
use qse::circuit::qft::inverse_qft;
use qse::math::bits;

/// Builds QPE for the single-qubit phase oracle `diag(1, e^{2πiφ})` with
/// `t` counting qubits; the eigenstate |1⟩ lives on qubit `t`.
fn qpe_circuit(t: u32, phi: f64) -> Circuit {
    let n = t + 1;
    let mut c = Circuit::new(n);
    // Prepare the eigenstate |1⟩ on the work qubit.
    c.x(t);
    // Counting register in superposition.
    for q in 0..t {
        c.h(q);
    }
    // Controlled powers of the oracle: with this repository's big-endian
    // QFT convention (qubit 0 is the transform's MSB), counting qubit q
    // controls U^(2^{t-1-q}). A controlled phase on (control, work) is
    // exactly CPhase.
    for q in 0..t {
        let theta = 2.0 * std::f64::consts::PI * phi * (1u64 << (t - 1 - q)) as f64;
        c.cphase(q, t, theta);
    }
    // Inverse QFT on the counting register, embedded in the n-qubit
    // register (it only touches qubits 0..t).
    let iqft = inverse_qft(t);
    for g in iqft.gates() {
        c.push(g.clone());
    }
    c
}

/// An eigenphase expressible exactly in 8 bits, so the peak is sharp and
/// the demo deterministic: 95/256.
const PHI: f64 = 0.371_093_75;

fn main() {
    let t = 8u32; // counting bits
    let phi = PHI;
    let circuit = qpe_circuit(t, phi);
    println!(
        "QPE: {} counting qubits, oracle phase φ = {phi}, {} gates",
        t,
        circuit.len()
    );

    let run = ThreadClusterExecutor::run(&circuit, &SimConfig::fast_for(4), 0, true);
    let state = run.state.expect("gathered");

    // The counting register concentrates at the t-bit approximation of φ
    // — remembering this QFT convention is big-endian (qubit 0 = MSB), so
    // the estimate reads bit-reversed.
    let (best_index, best_p) = state
        .iter()
        .enumerate()
        .map(|(i, a)| (i, a.norm_sqr()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty state");
    let counting = (best_index as u64) & ((1 << t) - 1);
    let estimate = bits::reverse_bits(counting, t) as f64 / (1u64 << t) as f64;
    println!(
        "most likely outcome: index {best_index} (p = {best_p:.3}) -> φ ≈ {estimate}"
    );
    assert!((estimate - phi).abs() < 1.0 / (1 << t) as f64);
    println!("estimate within 2^-{t} of the true phase — QPE works on the distributed engine.");
}
