//! SLURM-style job accounting for modelled runs.
//!
//! The paper reads its energy numbers out of SLURM's per-node power
//! counters and adds the switch estimate on top (§2.4). This example
//! reconstructs that workflow for the Table 2 jobs: an `sacct`-shaped
//! record per job, plus the power timeline a counter-based monitor would
//! have seen (peak, average, per-phase draw).
//!
//! ```sh
//! cargo run --release --example slurm_report
//! ```

use qse::core::scaling::nodes_for;
use qse::machine::trace::{integrate_energy, peak_power_w, power_timeline, SacctRecord};
use qse::prelude::*;

fn main() {
    let machine = archer2();
    for n in [43u32, 44] {
        let nodes = nodes_for(&machine, NodeKind::Standard, n).expect("fits");
        let local = n - nodes.trailing_zeros();
        for (name, circuit, cfg) in [
            (
                format!("qft{n}-builtin"),
                qft(n),
                SimConfig::default_for(nodes),
            ),
            (
                format!("qft{n}-fast"),
                cache_blocked_qft(n, default_split(n, local)),
                SimConfig::fast_for(nodes),
            ),
        ] {
            let est = ModelExecutor::new(&machine).run(&circuit, &cfg);
            let record = SacctRecord::from_estimate(&name, &est);
            println!("{}", record.render());

            let timeline = power_timeline(&machine, &cfg.to_model_config(), &est);
            let total = integrate_energy(&timeline);
            let avg_mw = total / est.runtime_s / 1e6;
            println!(
                "  power: peak {:.1} MW, average {avg_mw:.1} MW over {} segments",
                peak_power_w(&timeline) / 1e6,
                timeline.len(),
            );
            println!(
                "  split: {:.0} % MPI / {:.0} % memory / {:.0} % compute\n",
                est.comm_fraction() * 100.0,
                est.memory_fraction() * 100.0,
                est.compute_fraction() * 100.0,
            );
        }
    }
    println!("Compare with the paper's Table 2: 417/270 s (43 q) and 476/285 s (44 q),");
    println!("294/206 MJ and 664/431 MJ — the 'fast' jobs win by roughly a third.");
}
