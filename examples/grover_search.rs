//! Grover's search, end to end: build, simulate, sample, and price the
//! run on the modelled ARCHER2.
//!
//! ```sh
//! cargo run --release --example grover_search
//! ```

use qse::circuit::algorithms::{grover, grover_optimal_iterations};
use qse::prelude::*;
use qse::statevec::measure::sample_counts;
use qse::util::rng::StdRng;

fn main() {
    let n = 12u32;
    let marked = 0b1011_0110_1001u64;
    let iterations = grover_optimal_iterations(n);
    let circuit = grover(n, marked, iterations);
    println!(
        "Grover: {n} qubits, marked state {marked:#0width$b}, {iterations} iterations, {} gates",
        circuit.len(),
        width = n as usize + 2,
    );

    // Simulate and check the success probability.
    let state = LocalExecutor::run(&circuit);
    let p = state.amplitude(marked).norm_sqr();
    println!("P(marked) after {iterations} iterations: {p:.4}");

    // Sample measurements — nearly every shot hits the marked state.
    let mut rng = StdRng::seed_from_u64(2);
    let counts = sample_counts(&state, &mut rng, 100).expect("state has nonzero norm");
    let hits = counts.get(&marked).copied().unwrap_or(0);
    println!("measurement samples: {hits}/100 shots on the marked state");

    // Under- and over-rotation: Grover's probability is periodic.
    for k in [iterations / 2, iterations, iterations * 2] {
        let s = LocalExecutor::run(&grover(n, marked, k));
        println!(
            "  {k:3} iterations -> P(marked) = {:.4}",
            s.amplitude(marked).norm_sqr()
        );
    }

    // What would a big instance cost on ARCHER2? Grover on 36 qubits is
    // dominated by its distributed Hadamard layers; compare built-in vs
    // cache-blocked execution of one iteration's worth of layers.
    let machine = archer2();
    let big_n = 36u32;
    let nodes = qse::core::scaling::nodes_for(&machine, NodeKind::Standard, big_n).unwrap();
    let one_iteration = grover(big_n, (1 << big_n) - 1, 1);
    let est = ModelExecutor::new(&machine).run(&one_iteration, &SimConfig::default_for(nodes));
    let blocked = qse::circuit::transpile::cache_blocking::cache_block(
        &one_iteration,
        big_n - nodes.trailing_zeros(),
    );
    let est_blocked =
        ModelExecutor::new(&machine).run(&blocked.circuit, &SimConfig::fast_for(nodes));
    println!(
        "\nmodelled single Grover iteration at {big_n} qubits on {nodes} ARCHER2 nodes:\n  built-in:      {:.1} s, {:.1} MJ\n  cache-blocked: {:.1} s, {:.1} MJ",
        est.runtime_s,
        est.total_energy_j() / 1e6,
        est_blocked.runtime_s,
        est_blocked.total_energy_j() / 1e6,
    );
}
