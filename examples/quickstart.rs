//! Quickstart: build a circuit, simulate it three ways, measure it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qse::prelude::*;
use qse::statevec::measure::sample_counts;
use qse::util::rng::StdRng;

fn main() {
    // 1. Build a circuit: a GHZ state on 10 qubits followed by a QFT.
    let n = 10u32;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 1..n {
        circuit.cnot(0, q);
    }
    circuit.extend(&qft(n));
    println!(
        "circuit: {} qubits, {} gates ({:?})",
        n,
        circuit.len(),
        circuit.gate_counts()
    );

    // 2. Exact local simulation with the production kernels.
    let state = LocalExecutor::run(&circuit);
    println!("norm after simulation: {:.12}", state.norm_sqr());

    // 3. The same circuit distributed over 4 thread ranks — real message
    //    passing, identical amplitudes.
    let run = ThreadClusterExecutor::run(&circuit, &SimConfig::default_for(4), 0, true);
    let distributed = run.state.expect("gathered on rank 0");
    let max_dev = qse::math::approx::max_deviation(&state.to_vec(), &distributed);
    println!(
        "distributed run: {} ranks, {} bytes exchanged, max |Δamp| = {max_dev:.2e}",
        run.profiled.n_ranks, run.profiled.bytes_sent
    );

    // 4. Sample measurement outcomes (all amplitudes are available — the
    //    statevector method's signature advantage, paper §1).
    let mut rng = StdRng::seed_from_u64(1);
    let counts = sample_counts(&state, &mut rng, 5).expect("state has nonzero norm");
    println!("5 sampled outcomes: {counts:?}");

    // 5. What would this cost on ARCHER2 at 38 qubits? Ask the model.
    let machine = archer2();
    let est = ModelExecutor::new(&machine).run(&qft(38), &SimConfig::default_for(64));
    println!(
        "modelled 38-qubit QFT on 64 ARCHER2 nodes: {:.0} s, {:.1} MJ, {:.1} CU",
        est.runtime_s,
        est.total_energy_j() / 1e6,
        est.cu
    );
}
