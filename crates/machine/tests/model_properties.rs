//! Property-style invariants of the performance/energy model, checked
//! across the whole configuration space rather than at single points.
//!
//! Seeded in-tree property loops (`qse_util::check`): each case draws a
//! model configuration and circuit from a deterministic seed stream.

use qse_circuit::benchmarks::hadamard_benchmark;
use qse_circuit::qft::qft;
use qse_circuit::random::{random_circuit, GatePool};
use qse_machine::cost::{CommMode, ModelConfig};
use qse_machine::variants::gpu_machine;
use qse_machine::{archer2, estimate, CpuFrequency, NodeKind};
use qse_util::check::check;
use qse_util::rng::Rng;

fn any_config(rng: &mut impl Rng) -> ModelConfig {
    ModelConfig {
        node_kind: [NodeKind::Standard, NodeKind::HighMem][rng.random_range(0..2usize)],
        frequency: [CpuFrequency::Low, CpuFrequency::Medium, CpuFrequency::High]
            [rng.random_range(0..3usize)],
        comm_mode: [CommMode::Blocking, CommMode::NonBlocking][rng.random_range(0..2usize)],
        half_exchange_swaps: rng.random_bool(0.5),
        fuse_diagonals: [None, Some(2usize), Some(8usize)][rng.random_range(0..3usize)],
        n_nodes: 1 << rng.random_range(0u32..5), // 1..16 nodes
    }
}

/// Estimates are always finite, positive, and internally consistent
/// (components sum to the runtime; fractions sum to 1; energy is
/// positive) — for every configuration and circuit shape.
#[test]
fn estimates_are_well_formed() {
    check(40, |rng| {
        let cfg = any_config(rng);
        let seed = rng.random_range(0u64..50);
        let machine = archer2();
        let n_qubits = 18 + (seed % 4) as u32;
        let circuit = random_circuit(n_qubits, 30, GatePool::Full, seed);
        let est = estimate(&circuit, &machine, &cfg);
        assert!(est.runtime_s.is_finite() && est.runtime_s > 0.0);
        assert!(est.total_energy_j().is_finite() && est.total_energy_j() > 0.0);
        let sum = est.breakdown.compute_s + est.breakdown.memory_s + est.breakdown.comm_s;
        assert!((sum - est.runtime_s).abs() < 1e-9);
        let fracs = est.comm_fraction() + est.memory_fraction() + est.compute_fraction();
        assert!((fracs - 1.0).abs() < 1e-9);
        assert!(est.cu > 0.0);
        assert_eq!(est.gates.is_empty(), circuit.is_empty());
    });
}

/// Non-blocking communication never loses to blocking, for any circuit,
/// on either machine.
#[test]
fn nonblocking_never_slower() {
    check(30, |rng| {
        let circuit = random_circuit(20, 40, GatePool::Full, rng.random_range(0u64..30));
        for machine in [archer2(), gpu_machine()] {
            let blocking = estimate(&circuit, &machine, &ModelConfig::default_for(8));
            let nonblocking = estimate(
                &circuit,
                &machine,
                &ModelConfig {
                    comm_mode: CommMode::NonBlocking,
                    ..ModelConfig::default_for(8)
                },
            );
            assert!(nonblocking.runtime_s <= blocking.runtime_s + 1e-12);
        }
    });
}

/// Half-exchange SWAPs never increase runtime or traffic.
#[test]
fn half_exchange_never_worse() {
    check(30, |rng| {
        let machine = archer2();
        let circuit = random_circuit(20, 40, GatePool::QftLike, rng.random_range(0u64..30));
        let full = estimate(&circuit, &machine, &ModelConfig::default_for(8));
        let half = estimate(
            &circuit,
            &machine,
            &ModelConfig {
                half_exchange_swaps: true,
                ..ModelConfig::default_for(8)
            },
        );
        assert!(half.runtime_s <= full.runtime_s + 1e-12);
        assert!(half.breakdown.comm_bytes <= full.breakdown.comm_bytes);
    });
}

/// More gates never cost less (monotonicity under circuit extension).
#[test]
fn extending_a_circuit_costs_more() {
    check(30, |rng| {
        let seed = rng.random_range(0u64..30);
        let machine = archer2();
        let short = random_circuit(18, 20, GatePool::Full, seed);
        let long = short.then(&random_circuit(18, 10, GatePool::Full, seed + 1));
        let cfg = ModelConfig::default_for(4);
        let a = estimate(&short, &machine, &cfg);
        let b = estimate(&long, &machine, &cfg);
        assert!(b.runtime_s >= a.runtime_s);
        assert!(b.total_energy_j() >= a.total_energy_j());
    });
}

/// Frequency ordering holds on whole-job estimates, not just per-phase
/// power: low is slowest, high is fastest; high is the most energy.
#[test]
fn frequency_ordering_on_jobs() {
    let machine = archer2();
    let circuit = qft(22);
    let runs: Vec<_> = CpuFrequency::all()
        .into_iter()
        .map(|f| {
            estimate(
                &circuit,
                &machine,
                &ModelConfig {
                    frequency: f,
                    ..ModelConfig::default_for(8)
                },
            )
        })
        .collect();
    let (low, med, high) = (&runs[0], &runs[1], &runs[2]);
    assert!(low.runtime_s > med.runtime_s);
    assert!(med.runtime_s > high.runtime_s);
    assert!(high.total_energy_j() > med.total_energy_j());
}

/// The worst-case circuit dominates everything else of equal length:
/// 50 distributed Hadamards cost more than 50 of any other gate.
#[test]
fn worst_case_is_worst() {
    let machine = archer2();
    let cfg = ModelConfig::default_for(8);
    let n = 20u32;
    let worst = estimate(&hadamard_benchmark(n, n - 1, 50), &machine, &cfg);
    for other in [
        hadamard_benchmark(n, 0, 50),
        random_circuit(n, 50, GatePool::DiagonalOnly, 3),
    ] {
        let est = estimate(&other, &machine, &cfg);
        assert!(est.runtime_s < worst.runtime_s);
        assert!(est.total_energy_j() < worst.total_energy_j());
    }
}
