//! Interconnect model: topology, bandwidth and switch power.
//!
//! ARCHER2's Slingshot network provides one switch per 8 nodes; the paper
//! estimates its energy as `E_net = n_s · P̄_s · Δt` with `P̄_s = 235 W`
//! (§2.4). Exchange bandwidth is calibrated from Table 1: a 64 GB full
//! exchange takes ≈ 8.9 s with blocking sendrecv and ≈ 8.1 s with the
//! non-blocking rewrite (after subtracting the combine sweep).

use crate::cost::CommMode;

/// Interconnect description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSpec {
    /// Nodes served by each switch (8 on ARCHER2).
    pub nodes_per_switch: u64,
    /// Average switch power under load, watts (235 W, §2.4).
    pub switch_power_w: f64,
    /// Effective per-rank exchange bandwidth, bytes/s, with blocking
    /// chunked sendrecv (QuEST default).
    pub exchange_bw_blocking: f64,
    /// Effective per-rank exchange bandwidth with non-blocking posts.
    pub exchange_bw_nonblocking: f64,
    /// Per-message latency in seconds (one per chunk).
    pub message_latency_s: f64,
    /// Largest single message, bytes (2 GiB MPI cap, §2.1).
    pub max_message_bytes: u64,
}

impl NetworkSpec {
    /// Switches energised by a job of `n_nodes` (§2.4's `n_s`).
    pub fn switches_for(&self, n_nodes: u64) -> u64 {
        n_nodes.div_ceil(self.nodes_per_switch)
    }

    /// The paper's switch-energy estimate `E_net = n_s · P̄_s · Δt`.
    pub fn switch_energy_j(&self, n_nodes: u64, runtime_s: f64) -> f64 {
        self.switches_for(n_nodes) as f64 * self.switch_power_w * runtime_s
    }

    /// Effective bandwidth for an exchange mode.
    pub fn exchange_bandwidth(&self, mode: CommMode) -> f64 {
        match mode {
            CommMode::Blocking => self.exchange_bw_blocking,
            // Streamed rides the same non-blocking transport; its win is
            // overlap, priced in the performance model, not raw bandwidth.
            CommMode::NonBlocking | CommMode::Streamed => self.exchange_bw_nonblocking,
        }
    }

    /// Messages needed to move `bytes` under the message-size cap.
    pub fn messages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.max_message_bytes)
    }

    /// Wall-clock seconds for one pairwise exchange of `bytes` per rank
    /// (both directions overlap on a full-duplex fabric; the calibrated
    /// effective bandwidths already absorb duplex inefficiency).
    pub fn exchange_time_s(&self, bytes: u64, mode: CommMode) -> f64 {
        self.messages_for(bytes) as f64 * self.message_latency_s
            + bytes as f64 / self.exchange_bandwidth(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;
    use qse_math::approx::assert_close;

    #[test]
    fn switch_counting_matches_paper_topology() {
        let net = archer2().network;
        assert_eq!(net.switches_for(8), 1);
        assert_eq!(net.switches_for(9), 2);
        assert_eq!(net.switches_for(64), 8);
        assert_eq!(net.switches_for(4096), 512);
    }

    #[test]
    fn switch_energy_formula() {
        // E_net = n_s · 235 W · Δt: 64 nodes for 10 s → 8 × 235 × 10.
        let net = archer2().network;
        assert_close(net.switch_energy_j(64, 10.0), 18_800.0, 1e-9);
    }

    #[test]
    fn paper_chunk_count() {
        // 64 GB exchange under the 2 GiB cap → 32 messages (§2.1).
        let net = archer2().network;
        assert_eq!(net.messages_for(64 * (1 << 30) as u64), 32);
    }

    #[test]
    fn nonblocking_is_faster() {
        let net = archer2().network;
        let bytes = 64 * (1 << 30) as u64;
        let blocking = net.exchange_time_s(bytes, CommMode::Blocking);
        let nonblocking = net.exchange_time_s(bytes, CommMode::NonBlocking);
        assert!(nonblocking < blocking);
        // Calibration targets: 8.9 s vs 8.1 s for a 64 GB exchange.
        assert_close(blocking, 8.88, 0.15);
        assert_close(nonblocking, 8.07, 0.15);
    }
}
