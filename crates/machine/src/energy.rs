//! Job-level energy accounting — the model's stand-in for SLURM's
//! per-node power counters plus the paper's switch estimate (§2.4).


/// Energy totals for one modelled job.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy drawn by nodes while compute-bound, joules.
    pub compute_j: f64,
    /// Energy drawn by nodes while memory-bound.
    pub memory_j: f64,
    /// Energy drawn by nodes during communication.
    pub comm_j: f64,
    /// Energy drawn by in-job spectator (idle) nodes.
    pub idle_j: f64,
    /// Network-switch energy per `E_net = n_s · P̄_s · Δt`.
    pub switch_j: f64,
}

impl EnergyBreakdown {
    /// Node-counter energy (what SLURM would report).
    pub fn node_total_j(&self) -> f64 {
        self.compute_j + self.memory_j + self.comm_j + self.idle_j
    }

    /// Grand total including the network estimate.
    pub fn total_j(&self) -> f64 {
        self.node_total_j() + self.switch_j
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.compute_j += other.compute_j;
        self.memory_j += other.memory_j;
        self.comm_j += other.comm_j;
        self.idle_j += other.idle_j;
        self.switch_j += other.switch_j;
    }
}

/// Formats joules with an adaptive unit (J / kJ / MJ), as the paper's
/// tables do.
pub fn format_energy(joules: f64) -> String {
    if joules.abs() >= 1e6 {
        format!("{:.1} MJ", joules / 1e6)
    } else if joules.abs() >= 1e3 {
        format!("{:.1} kJ", joules / 1e3)
    } else {
        format!("{joules:.1} J")
    }
}

/// Converts joules to kilowatt-hours (the paper: "233 MJ … is around
/// 65 kWh").
pub fn joules_to_kwh(joules: f64) -> f64 {
    joules / 3.6e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_close;

    #[test]
    fn totals_add_up() {
        let e = EnergyBreakdown {
            compute_j: 1.0,
            memory_j: 2.0,
            comm_j: 3.0,
            idle_j: 0.5,
            switch_j: 4.0,
        };
        assert_close(e.node_total_j(), 6.5, 1e-12);
        assert_close(e.total_j(), 10.5, 1e-12);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = EnergyBreakdown::default();
        a.accumulate(&EnergyBreakdown {
            compute_j: 1.0,
            memory_j: 1.0,
            comm_j: 1.0,
            idle_j: 1.0,
            switch_j: 1.0,
        });
        a.accumulate(&EnergyBreakdown {
            compute_j: 2.0,
            memory_j: 0.0,
            comm_j: 0.0,
            idle_j: 0.0,
            switch_j: 0.0,
        });
        assert_close(a.compute_j, 3.0, 1e-12);
        assert_close(a.total_j(), 7.0, 1e-12);
    }

    #[test]
    fn formatting_units() {
        assert_eq!(format_energy(12.3), "12.3 J");
        assert_eq!(format_energy(15_300.0), "15.3 kJ");
        assert_eq!(format_energy(664e6), "664.0 MJ");
    }

    #[test]
    fn paper_kwh_conversion() {
        // "The biggest energy improvement was 233 MJ, which is around 65 kWh."
        assert_close(joules_to_kwh(233e6), 64.7, 0.5);
    }
}
