//! CPU frequency levels and their scaling laws.
//!
//! ARCHER2 exposes three frequencies through SLURM (§2.2, optimisation 1):
//! 1.50 GHz (low), 2.00 GHz (medium, the default) and 2.25 GHz (high).
//! The model applies textbook DVFS behaviour, calibrated to the paper's
//! observations:
//!
//! * compute-bound time scales inversely with the clock;
//! * memory- and network-bound time barely move (uncore/NIC clocks are
//!   largely independent), with small empirical factors;
//! * dynamic power scales like `f·V²` with `V ∝ f`, i.e. cubically —
//!   which yields the paper's "+25 % energy for 5–10 % speed" at high
//!   frequency and "equal energy, much slower" at low frequency.


/// The SLURM-selectable CPU frequency levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuFrequency {
    /// 1.50 GHz.
    Low,
    /// 2.00 GHz — the ARCHER2 default.
    #[default]
    Medium,
    /// 2.25 GHz.
    High,
}

/// The calibration reference frequency (the ARCHER2 default).
pub const REFERENCE_GHZ: f64 = 2.0;

impl CpuFrequency {
    /// Clock in GHz.
    pub fn ghz(self) -> f64 {
        match self {
            CpuFrequency::Low => 1.5,
            CpuFrequency::Medium => 2.0,
            CpuFrequency::High => 2.25,
        }
    }

    /// SLURM-style label.
    pub fn label(self) -> &'static str {
        match self {
            CpuFrequency::Low => "low (1.50 GHz)",
            CpuFrequency::Medium => "medium (2.00 GHz)",
            CpuFrequency::High => "high (2.25 GHz)",
        }
    }

    /// Multiplier on compute-bound time relative to 2.00 GHz.
    pub fn compute_time_scale(self) -> f64 {
        REFERENCE_GHZ / self.ghz()
    }

    /// Multiplier on memory-bound time. Empirical small coupling of the
    /// memory subsystem to core clock.
    pub fn memory_time_scale(self) -> f64 {
        match self {
            CpuFrequency::Low => 1.05,
            CpuFrequency::Medium => 1.0,
            CpuFrequency::High => 0.97,
        }
    }

    /// Multiplier on communication-bound time (MPI progress and packing
    /// run on the cores, so comm time couples weakly to the clock).
    pub fn comm_time_scale(self) -> f64 {
        match self {
            CpuFrequency::Low => 1.08,
            CpuFrequency::Medium => 1.0,
            CpuFrequency::High => 0.96,
        }
    }

    /// Multiplier on *dynamic* node power.
    ///
    /// Above the reference clock, boosting needs extra voltage, so power
    /// follows the cubic `f·V²` law with `V ∝ f`. Below it the voltage is
    /// already at its floor and power falls only linearly with `f` — which
    /// is exactly why the paper finds that dropping to 1.50 GHz "worsens
    /// the runtime while keeping the energy usage fixed" (§4).
    pub fn dynamic_power_scale(self) -> f64 {
        let r = self.ghz() / REFERENCE_GHZ;
        if r >= 1.0 {
            r * r * r
        } else {
            r
        }
    }

    /// All levels, for sweeps.
    pub fn all() -> [CpuFrequency; 3] {
        [CpuFrequency::Low, CpuFrequency::Medium, CpuFrequency::High]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_close;

    #[test]
    fn clocks() {
        assert_close(CpuFrequency::Low.ghz(), 1.5, 1e-12);
        assert_close(CpuFrequency::Medium.ghz(), 2.0, 1e-12);
        assert_close(CpuFrequency::High.ghz(), 2.25, 1e-12);
    }

    #[test]
    fn medium_is_the_identity() {
        let m = CpuFrequency::Medium;
        assert_close(m.compute_time_scale(), 1.0, 1e-12);
        assert_close(m.memory_time_scale(), 1.0, 1e-12);
        assert_close(m.comm_time_scale(), 1.0, 1e-12);
        assert_close(m.dynamic_power_scale(), 1.0, 1e-12);
    }

    #[test]
    fn high_frequency_trades_time_for_power() {
        let h = CpuFrequency::High;
        assert!(h.compute_time_scale() < 1.0);
        assert!(h.memory_time_scale() < 1.0);
        // +12.5 % clock → ≈ +42 % dynamic power (cubic law)
        assert_close(h.dynamic_power_scale(), 1.423828125, 1e-9);
    }

    #[test]
    fn low_frequency_is_slower_everywhere() {
        let l = CpuFrequency::Low;
        assert!(l.compute_time_scale() > 1.3);
        assert!(l.memory_time_scale() > 1.0);
        // Linear regime below the reference clock (voltage floor).
        assert_close(l.dynamic_power_scale(), 0.75, 1e-12);
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(CpuFrequency::all().len(), 3);
    }
}
