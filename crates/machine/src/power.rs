//! Node power model.
//!
//! A node's draw is a static floor plus a dynamic component that depends
//! on what the cores are doing and scales cubically with frequency. The
//! three dynamic levels are calibrated from Table 1 at 2.00 GHz:
//!
//! * memory-bound sweep: 15 kJ / 0.5 s / 64 nodes ≈ 440 W per node;
//! * communication-bound exchange: 191 kJ / 9.63 s / 64 nodes ≈ 290 W
//!   (minus the switch share);
//! * compute-bound: ≈ 500 W (vector units busy, the EPYC 7742 ceiling).

use crate::frequency::CpuFrequency;

/// What a node is doing during a time slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Floating-point dominated work.
    Compute,
    /// Statevector sweeps (bandwidth-bound).
    Memory,
    /// Waiting on / driving the interconnect.
    Comm,
    /// Participating in the job but idle (spectator ranks).
    Idle,
}

/// Per-node power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static draw, watts — fans, DRAM refresh, uncore floor.
    pub static_w: f64,
    /// Dynamic draw at 2.00 GHz while compute-bound.
    pub dynamic_compute_w: f64,
    /// Dynamic draw at 2.00 GHz while memory-bound.
    pub dynamic_memory_w: f64,
    /// Dynamic draw at 2.00 GHz while communication-bound.
    pub dynamic_comm_w: f64,
    /// Dynamic draw at 2.00 GHz while idle in-job.
    pub dynamic_idle_w: f64,
}

impl PowerModel {
    /// Node power in a phase at a frequency (static + scaled dynamic).
    pub fn node_power_w(&self, phase: Phase, freq: CpuFrequency) -> f64 {
        let dynamic = match phase {
            Phase::Compute => self.dynamic_compute_w,
            Phase::Memory => self.dynamic_memory_w,
            Phase::Comm => self.dynamic_comm_w,
            Phase::Idle => self.dynamic_idle_w,
        };
        self.static_w + dynamic * freq.dynamic_power_scale()
    }

    /// Energy for one node spending `seconds` in `phase` at `freq`.
    pub fn node_energy_j(&self, phase: Phase, freq: CpuFrequency, seconds: f64) -> f64 {
        self.node_power_w(phase, freq) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;
    use qse_math::approx::assert_close;

    #[test]
    fn calibrated_medium_powers() {
        let p = archer2().power;
        // Table 1 anchors at the default frequency.
        assert_close(p.node_power_w(Phase::Memory, CpuFrequency::Medium), 440.0, 15.0);
        assert_close(p.node_power_w(Phase::Comm, CpuFrequency::Medium), 285.0, 15.0);
        assert_close(p.node_power_w(Phase::Compute, CpuFrequency::Medium), 500.0, 20.0);
    }

    #[test]
    fn high_frequency_memory_power_rises_about_28_percent() {
        // The cubic dynamic law should land near the paper's "+25 %
        // energy at high frequency" for memory-bound phases.
        let p = archer2().power;
        let med = p.node_power_w(Phase::Memory, CpuFrequency::Medium);
        let high = p.node_power_w(Phase::Memory, CpuFrequency::High);
        let ratio = high / med;
        assert!((1.20..1.35).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn frequency_ordering() {
        let p = archer2().power;
        for phase in [Phase::Compute, Phase::Memory, Phase::Comm, Phase::Idle] {
            let low = p.node_power_w(phase, CpuFrequency::Low);
            let med = p.node_power_w(phase, CpuFrequency::Medium);
            let high = p.node_power_w(phase, CpuFrequency::High);
            assert!(low < med && med < high, "{phase:?}");
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = archer2().power;
        let w = p.node_power_w(Phase::Memory, CpuFrequency::Medium);
        assert_close(
            p.node_energy_j(Phase::Memory, CpuFrequency::Medium, 3.0),
            3.0 * w,
            1e-9,
        );
    }
}
