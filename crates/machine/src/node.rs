//! Node specifications.


/// The two ARCHER2 node flavours the paper compares (§2.2, optimisation 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// 256 GB standard compute node.
    Standard,
    /// 512 GB high-memory node — "we can use fewer high-mem nodes for a
    /// given size state vector simulation".
    HighMem,
}

impl NodeKind {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Standard => "standard",
            NodeKind::HighMem => "highmem",
        }
    }
}

/// Physical description of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Which flavour this is.
    pub kind: NodeKind,
    /// Installed RAM in bytes.
    pub memory_bytes: u64,
    /// Fraction of RAM usable by the application (OS, filesystem cache
    /// and runtime overheads excluded). Chosen so that capacity planning
    /// reproduces the paper: 33 qubits fit on one standard node but 34
    /// need four (§3.1).
    pub usable_fraction: f64,
    /// Physical cores (2 × 64-core AMD EPYC 7742 on ARCHER2).
    pub cores: u32,
    /// NUMA regions per node (8 on ARCHER2); sweeps whose amplitude pairs
    /// straddle regions lose bandwidth (Table 1, qubits 30–31).
    pub numa_regions: u32,
    /// Effective statevector sweep throughput in bytes/s at the 2.00 GHz
    /// reference frequency (reads + writes combined). Calibrated from the
    /// 0.5 s local Hadamard on a 64 GB slice.
    pub sweep_bandwidth: f64,
    /// How many nodes of this kind a job may request.
    pub available: u64,
}

impl NodeSpec {
    /// Bytes the application may actually use.
    pub fn usable_bytes(&self) -> u64 {
        (self.memory_bytes as f64 * self.usable_fraction) as u64
    }

    /// Bytes per NUMA region.
    pub fn numa_region_bytes(&self) -> u64 {
        self.memory_bytes / self.numa_regions as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;

    #[test]
    fn labels() {
        assert_eq!(NodeKind::Standard.label(), "standard");
        assert_eq!(NodeKind::HighMem.label(), "highmem");
    }

    #[test]
    fn archer2_node_geometry() {
        let m = archer2();
        let std = m.node(NodeKind::Standard);
        assert_eq!(std.memory_bytes, 256 * (1 << 30) as u64);
        assert_eq!(std.numa_regions, 8);
        assert!(std.usable_bytes() < std.memory_bytes);
        let hm = m.node(NodeKind::HighMem);
        assert_eq!(hm.memory_bytes, 2 * std.memory_bytes);
        assert_eq!(hm.numa_region_bytes(), 2 * std.numa_region_bytes());
    }
}
