//! The performance and energy model: circuit → per-gate costs → job
//! estimate.
//!
//! This is the substitute for running on 64–4,096 real nodes. Gate counts,
//! locality classes and exchanged bytes are *exact* (they come from the
//! same classifier the executable engine uses); only the time and energy
//! per unit of work is modelled, with constants calibrated in
//! [`crate::archer2`].

use crate::cost::{CommMode, GateCost, ModelConfig};
use crate::cu::cu_cost;
use crate::energy::EnergyBreakdown;
use crate::archer2::Machine;
use crate::memory::BYTES_PER_AMP;
use crate::power::Phase;
use qse_circuit::classify::{classify, GateClass, Layout};
use qse_circuit::transpile::fusion::{fused_schedule, ScheduleStep};
use qse_circuit::{Circuit, Gate};

/// Per-gate record in the detailed timeline.
#[derive(Debug, Clone)]
pub struct GateTiming {
    /// Index of the first gate of this step in the circuit.
    pub gate_index: usize,
    /// Gate mnemonic (or `fused-diagonal`).
    pub label: String,
    /// Locality class of the step.
    pub class: GateClass,
    /// Modelled cost.
    pub cost: GateCost,
}

/// The modelled outcome of one job.
#[derive(Debug, Clone)]
pub struct RunEstimate {
    /// Register width.
    pub n_qubits: u32,
    /// Nodes used.
    pub n_nodes: u64,
    /// Wall-clock, seconds.
    pub runtime_s: f64,
    /// Aggregate time components (absolute seconds of the critical path).
    pub breakdown: GateCost,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// CU charge.
    pub cu: f64,
    /// Per-gate timeline (one entry per schedule step).
    pub gates: Vec<GateTiming>,
}

impl RunEstimate {
    /// Total energy (nodes + switches), joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Fraction of runtime spent in communication (fig 5's "MPI" bar).
    pub fn comm_fraction(&self) -> f64 {
        self.breakdown.comm_s / self.runtime_s
    }

    /// Fraction of runtime spent in memory sweeps.
    pub fn memory_fraction(&self) -> f64 {
        self.breakdown.memory_s / self.runtime_s
    }

    /// Fraction of runtime spent computing.
    pub fn compute_fraction(&self) -> f64 {
        self.breakdown.compute_s / self.runtime_s
    }
}

/// NUMA sweep penalty for a pair sweep targeting local qubit `q`.
fn numa_penalty(machine: &Machine, layout: &Layout, local_bytes: u64, node_numa: u64, q: u32) -> f64 {
    // Penalties only arise when the local slice actually spans regions.
    if local_bytes <= node_numa {
        return 1.0;
    }
    let top = layout.local_qubits() - 1;
    if q == top {
        machine.numa_penalty[0]
    } else if q + 1 == top {
        machine.numa_penalty[1]
    } else {
        1.0
    }
}

/// Number of conditioning bits of a diagonal gate (how much of the
/// statevector it actually touches: QuEST sweeps only affected
/// amplitudes).
fn diagonal_condition_bits(gate: &Gate) -> u32 {
    match gate {
        Gate::CZ(..) | Gate::CPhase { .. } => 2,
        Gate::MCPhase { qubits, .. } => qubits.len() as u32,
        // Rz rephases both branches; everything else conditions on one bit.
        Gate::Rz { .. } => 0,
        _ => 1,
    }
}

struct Ctx<'m> {
    machine: &'m Machine,
    cfg: ModelConfig,
    layout: Layout,
    local_amps: u64,
    local_bytes: u64,
    node_numa: u64,
}

impl Ctx<'_> {
    /// Splits a sweep of `bytes` (at `penalty`) into memory + compute
    /// seconds, applying frequency scaling per component.
    fn local_cost(&self, bytes: f64, penalty: f64) -> (f64, f64) {
        let node = self.machine.node(self.cfg.node_kind);
        let t0 = bytes * penalty / node.sweep_bandwidth;
        let ca = self.machine.compute_attribution;
        let mem = t0 * (1.0 - ca) * self.cfg.frequency.memory_time_scale();
        let comp = t0 * ca * self.cfg.frequency.compute_time_scale();
        (mem, comp)
    }

    /// Cost of one exchange of `bytes` per rank.
    fn comm_cost(&self, bytes: u64) -> f64 {
        self.machine.network.exchange_time_s(bytes, self.cfg.comm_mode)
            * self.cfg.frequency.comm_time_scale()
    }

    /// Billable comm time of one exchange when `overlap_s` of local
    /// sweep work (already billed as memory + compute) can hide behind
    /// the chunk pipeline.
    ///
    /// Blocking and non-blocking serialise transfer and combine, so the
    /// full exchange time is billed. Streamed interleaves them per chunk:
    /// with `n` chunks, chunk comm time `t_c` and chunk work `t_k`, the
    /// pipeline finishes at `t_c + (n−1)·max(t_c, t_k) + t_k` (fill, n−1
    /// steady-state steps, drain). Since `overlap_s = n·t_k` is already
    /// on the bill, only the remainder counts as communication — never
    /// negative, so gate totals stay a sum of components.
    fn exchange_comm_cost(&self, bytes: u64, overlap_s: f64) -> f64 {
        if self.cfg.comm_mode != CommMode::Streamed {
            return self.comm_cost(bytes);
        }
        let n = self.machine.network.messages_for(bytes).max(1) as f64;
        let t_c = self.comm_cost(bytes) / n;
        let t_k = overlap_s / n;
        let pipelined = t_c + (n - 1.0) * t_c.max(t_k) + t_k;
        (pipelined - overlap_s).max(0.0)
    }

    fn step_cost(&self, gates: &[Gate], fused: bool) -> (GateCost, GateClass) {
        let la = self.local_amps as f64;
        if fused {
            // One full sweep applies the whole run of diagonal gates.
            let (mem, comp) = self.local_cost(32.0 * la, 1.0);
            return (
                GateCost {
                    compute_s: comp,
                    memory_s: mem,
                    comm_s: 0.0,
                    comm_bytes: 0,
                    participation: 1.0,
                },
                GateClass::FullyLocal,
            );
        }
        let gate = &gates[0];
        let class = classify(gate, &self.layout);
        let cost = match class {
            GateClass::FullyLocal => {
                let frac = 0.5f64.powi(diagonal_condition_bits(gate) as i32);
                let (mem, comp) = self.local_cost(32.0 * la * frac, 1.0);
                GateCost {
                    compute_s: comp,
                    memory_s: mem,
                    comm_s: 0.0,
                    comm_bytes: 0,
                    participation: 1.0,
                }
            }
            GateClass::LocalMemory => match *gate {
                Gate::Swap(a, b) => {
                    let pen = self
                        .pair_penalty(a)
                        .max(self.pair_penalty(b));
                    // Only the differing-bit half of the amplitudes move.
                    let (mem, comp) = self.local_cost(32.0 * la * 0.5, pen);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: 0.0,
                        comm_bytes: 0,
                        participation: 1.0,
                    }
                }
                Gate::Unitary2 { a, b, .. } => {
                    // Four-amplitude orbits touch the whole slice once.
                    let pen = self.pair_penalty(a).max(self.pair_penalty(b));
                    let (mem, comp) = self.local_cost(32.0 * la, pen);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: 0.0,
                        comm_bytes: 0,
                        participation: 1.0,
                    }
                }
                ref g => {
                    // A local control halves the touched amplitudes
                    // (QuEST skips the control-0 half).
                    let frac = if g.control().is_some() { 0.5 } else { 1.0 };
                    let pen = self.pair_penalty(g.target());
                    let (mem, comp) = self.local_cost(32.0 * la * frac, pen);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: 0.0,
                        comm_bytes: 0,
                        participation: 1.0,
                    }
                }
            },
            GateClass::Distributed => self.distributed_cost(gate),
        };
        (cost, class)
    }

    fn pair_penalty(&self, q: u32) -> f64 {
        numa_penalty(
            self.machine,
            &self.layout,
            self.local_bytes,
            self.node_numa,
            q,
        )
    }

    fn distributed_cost(&self, gate: &Gate) -> GateCost {
        let la = self.local_amps as f64;
        let full_bytes = self.local_amps * BYTES_PER_AMP;
        match *gate {
            Gate::Swap(a, b) => {
                let (lo, _hi) = if a < b { (a, b) } else { (b, a) };
                if self.layout.is_local(lo) {
                    // One-global SWAP: half-exchangeable.
                    let bytes = if self.cfg.half_exchange_swaps {
                        full_bytes / 2
                    } else {
                        full_bytes
                    };
                    // Scatter the received half: 16 B read + 16 B write
                    // per moved amplitude, half the slice moves.
                    let (mem, comp) = self.local_cost(16.0 * la, 1.0);
                    let comm = self.exchange_comm_cost(bytes, mem + comp);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: comm,
                        comm_bytes: bytes,
                        participation: 1.0,
                    }
                } else {
                    // Both-global SWAP: half the ranks trade whole slices.
                    let (mem, comp) = self.local_cost(32.0 * la, 1.0);
                    let comm = self.exchange_comm_cost(full_bytes, mem + comp);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: comm,
                        comm_bytes: full_bytes,
                        participation: 0.5,
                    }
                }
            }
            Gate::Unitary2 { a, b, .. } => {
                let (lo, _hi) = if a < b { (a, b) } else { (b, a) };
                if self.layout.is_local(lo) {
                    // One-global 2q unitary: exchange + 4×4 combine (read
                    // mine + theirs + write = 48 B per amplitude).
                    let (mem, comp) = self.local_cost(48.0 * la, 1.0);
                    let comm = self.exchange_comm_cost(full_bytes, mem + comp);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: comm,
                        comm_bytes: full_bytes,
                        participation: 1.0,
                    }
                } else {
                    // Both global: the engine decomposes into SWAP-in,
                    // one-global apply, SWAP-out — three exchanges, each
                    // overlapping a third of the sweep work.
                    let (mem, comp) = self.local_cost((16.0 + 48.0 + 16.0) * la, 1.0);
                    let comm = 3.0 * self.exchange_comm_cost(full_bytes, (mem + comp) / 3.0);
                    GateCost {
                        compute_s: comp,
                        memory_s: mem,
                        comm_s: comm,
                        comm_bytes: 3 * full_bytes,
                        participation: 1.0,
                    }
                }
            }
            ref g => {
                // Distributed single-target gate: full exchange + combine
                // (read mine + read theirs + write = 48 B per amplitude).
                let participation = match g.control() {
                    Some(c) if !self.layout.is_local(c) => 0.5,
                    _ => 1.0,
                };
                let (mem, comp) = self.local_cost(48.0 * la, 1.0);
                let comm = self.exchange_comm_cost(full_bytes, mem + comp);
                GateCost {
                    compute_s: comp,
                    memory_s: mem,
                    comm_s: comm,
                    comm_bytes: full_bytes,
                    participation,
                }
            }
        }
    }
}

/// Runs the model over `circuit` and returns the job estimate.
///
/// # Panics
/// Panics when `cfg.n_nodes` is not a power of two or exceeds the
/// register (QuEST's own constraint).
pub fn estimate(circuit: &Circuit, machine: &Machine, cfg: &ModelConfig) -> RunEstimate {
    let layout = Layout::new(circuit.n_qubits(), cfg.n_nodes);
    let node = machine.node(cfg.node_kind);
    let local_amps = layout.local_amps();
    let ctx = Ctx {
        machine,
        cfg: *cfg,
        layout,
        local_amps,
        local_bytes: local_amps * BYTES_PER_AMP,
        node_numa: node.numa_region_bytes(),
    };

    let steps: Vec<(usize, Vec<Gate>, bool)> = match cfg.fuse_diagonals {
        Some(min_fuse) => fused_schedule(circuit, min_fuse)
            .into_iter()
            .map(|s| match s {
                ScheduleStep::Single(i) => (i, vec![circuit.gates()[i].clone()], false),
                ScheduleStep::Fused(r) => {
                    (r.start, circuit.gates()[r.start..r.end].to_vec(), true)
                }
            })
            .collect(),
        None => circuit
            .gates()
            .iter()
            .enumerate()
            .map(|(i, g)| (i, vec![g.clone()], false))
            .collect(),
    };

    let mut breakdown = GateCost::default();
    let mut energy = EnergyBreakdown::default();
    let mut gates = Vec::with_capacity(steps.len());
    let power = &machine.power;
    let f = cfg.frequency;
    let n_nodes = cfg.n_nodes as f64;

    for (gate_index, step_gates, fused) in steps {
        let (cost, class) = ctx.step_cost(&step_gates, fused);
        let participating = n_nodes * cost.participation;
        let idle = n_nodes - participating;
        energy.accumulate(&EnergyBreakdown {
            compute_j: participating * power.node_energy_j(Phase::Compute, f, cost.compute_s),
            memory_j: participating * power.node_energy_j(Phase::Memory, f, cost.memory_s),
            comm_j: participating * power.node_energy_j(Phase::Comm, f, cost.comm_s),
            idle_j: idle * power.node_energy_j(Phase::Idle, f, cost.total_s()),
            switch_j: 0.0,
        });
        breakdown.accumulate(&cost);
        gates.push(GateTiming {
            gate_index,
            label: if fused {
                format!("fused-diagonal×{}", step_gates.len())
            } else {
                step_gates[0].name().to_string()
            },
            class,
            cost,
        });
    }

    let runtime_s = breakdown.total_s();
    energy.switch_j = machine.network.switch_energy_j(cfg.n_nodes, runtime_s);
    RunEstimate {
        n_qubits: circuit.n_qubits(),
        n_nodes: cfg.n_nodes,
        runtime_s,
        breakdown,
        energy,
        cu: cu_cost(cfg.n_nodes, runtime_s, cfg.node_kind),
        gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;
    use crate::cost::CommMode;
    use crate::frequency::CpuFrequency;
    use crate::node::NodeKind;
    use qse_circuit::benchmarks::hadamard_benchmark;
    use qse_circuit::qft::{cache_blocked_qft, qft};
    use qse_math::approx::assert_close;

    fn table1_config() -> ModelConfig {
        // Table 1 setting: 64 standard nodes, 38 qubits, default freq.
        ModelConfig::default_for(64)
    }

    /// Per-gate time of a 50-gate Hadamard benchmark on qubit `q`.
    fn hadamard_per_gate(q: u32, mode: CommMode) -> (f64, f64) {
        let m = archer2();
        let c = hadamard_benchmark(38, q, 50);
        let est = estimate(
            &c,
            &m,
            &ModelConfig {
                comm_mode: mode,
                ..table1_config()
            },
        );
        (est.runtime_s / 50.0, est.total_energy_j() / 50.0)
    }

    #[test]
    fn table1_local_hadamard_half_second_15kj() {
        let (t, e) = hadamard_per_gate(29, CommMode::Blocking);
        assert_close(t, 0.50, 0.03);
        assert_close(e, 15_000.0, 1_500.0);
    }

    #[test]
    fn table1_numa_rows() {
        // Qubit 30: 0.59 s; qubit 31: 0.80 s (blocking column).
        let (t30, _) = hadamard_per_gate(30, CommMode::Blocking);
        let (t31, _) = hadamard_per_gate(31, CommMode::Blocking);
        assert_close(t30, 0.59, 0.04);
        assert_close(t31, 0.80, 0.05);
    }

    #[test]
    fn table1_distributed_hadamard() {
        // Qubit 32: 9.63 s / 191 kJ blocking; 8.82 s / 179 kJ non-blocking.
        let (tb, eb) = hadamard_per_gate(32, CommMode::Blocking);
        let (tn, en) = hadamard_per_gate(32, CommMode::NonBlocking);
        assert_close(tb, 9.63, 0.5);
        assert_close(eb, 191_000.0, 15_000.0);
        assert_close(tn, 8.82, 0.5);
        assert_close(en, 179_000.0, 15_000.0);
        assert!(tn < tb && en < eb);
    }

    #[test]
    fn worst_case_profile_is_communication_dominated() {
        // Fig 5: the last-qubit Hadamard benchmark is ~all MPI.
        let m = archer2();
        let c = hadamard_benchmark(38, 37, 50);
        let est = estimate(&c, &m, &table1_config());
        assert!(est.comm_fraction() > 0.85, "{}", est.comm_fraction());
    }

    #[test]
    fn qft_profile_roughly_matches_fig5() {
        // Built-in QFT: comm ≲ 43 %, remainder split ≈ 2:1 memory:compute.
        let m = archer2();
        let est = estimate(&qft(38), &m, &table1_config());
        assert!(
            (0.30..0.55).contains(&est.comm_fraction()),
            "comm fraction {}",
            est.comm_fraction()
        );
        let ratio = est.memory_fraction() / est.compute_fraction();
        assert!((1.5..2.6).contains(&ratio), "mem:comp {ratio}");
    }

    #[test]
    fn cache_blocking_reduces_comm_fraction() {
        // Fig 5: cache blocking cuts communication from ~43 % to ~25 %.
        let m = archer2();
        let built_in = estimate(&qft(38), &m, &table1_config());
        let blocked = estimate(&cache_blocked_qft(38, 30), &m, &table1_config());
        assert!(blocked.comm_fraction() < built_in.comm_fraction() - 0.10);
        assert!(blocked.runtime_s < built_in.runtime_s);
        assert!(blocked.total_energy_j() < built_in.total_energy_j());
    }

    #[test]
    fn high_frequency_faster_but_hungrier() {
        // §3.1: high frequency is 5–10 % faster and ~25 % more energy.
        let m = archer2();
        let med = estimate(&qft(38), &m, &table1_config());
        let high = estimate(
            &qft(38),
            &m,
            &ModelConfig {
                frequency: CpuFrequency::High,
                ..table1_config()
            },
        );
        let speedup = med.runtime_s / high.runtime_s;
        let energy_ratio = high.total_energy_j() / med.total_energy_j();
        assert!((1.02..1.12).contains(&speedup), "speedup {speedup}");
        assert!((1.10..1.35).contains(&energy_ratio), "energy {energy_ratio}");
    }

    #[test]
    fn low_frequency_slower_at_similar_energy() {
        let m = archer2();
        let med = estimate(&qft(38), &m, &table1_config());
        let low = estimate(
            &qft(38),
            &m,
            &ModelConfig {
                frequency: CpuFrequency::Low,
                ..table1_config()
            },
        );
        assert!(low.runtime_s > med.runtime_s * 1.05);
        let energy_ratio = low.total_energy_j() / med.total_energy_j();
        assert!((0.85..1.10).contains(&energy_ratio), "energy {energy_ratio}");
    }

    #[test]
    fn highmem_slower_but_cheaper_in_cu() {
        // §3.1: high-memory runs are slower (< 2×) but cost fewer CUs.
        let m = archer2();
        let n = 38;
        let std = estimate(&qft(n), &m, &ModelConfig::default_for(64));
        let hm = estimate(
            &qft(n),
            &m,
            &ModelConfig {
                node_kind: NodeKind::HighMem,
                n_nodes: 32,
                ..ModelConfig::default_for(32)
            },
        );
        assert!(hm.runtime_s > std.runtime_s);
        assert!(hm.runtime_s < 2.0 * std.runtime_s);
        assert!(hm.cu < std.cu);
    }

    #[test]
    fn half_exchange_reduces_comm_bytes_and_time() {
        let m = archer2();
        let c = cache_blocked_qft(38, 30);
        let full = estimate(&c, &m, &ModelConfig::fast_for(64));
        let half = estimate(
            &c,
            &m,
            &ModelConfig {
                half_exchange_swaps: true,
                ..ModelConfig::fast_for(64)
            },
        );
        assert_eq!(half.breakdown.comm_bytes * 2, full.breakdown.comm_bytes);
        assert!(half.runtime_s < full.runtime_s);
    }

    #[test]
    fn streamed_overlap_beats_nonblocking_per_gate() {
        // The pipelined exchange hides the combine sweep behind the
        // in-flight chunks, so per-gate: streamed < non-blocking <
        // blocking — and never by more than the sweep it can hide.
        let (tb, eb) = hadamard_per_gate(32, CommMode::Blocking);
        let (tn, en) = hadamard_per_gate(32, CommMode::NonBlocking);
        let (ts, es) = hadamard_per_gate(32, CommMode::Streamed);
        assert!(ts < tn && tn < tb, "{ts} {tn} {tb}");
        assert!(es < en && en < eb, "{es} {en} {eb}");
        // The hidden work is the 48 B/amp combine sweep (≈ 0.75 s);
        // allow drain/fill slack of one chunk.
        assert!(tn - ts < 0.85, "hid too much: {}", tn - ts);
    }

    #[test]
    fn streamed_components_still_sum() {
        let m = archer2();
        let est = estimate(
            &qft(20),
            &m,
            &ModelConfig {
                comm_mode: CommMode::Streamed,
                ..ModelConfig::default_for(4)
            },
        );
        let sum = est.breakdown.compute_s + est.breakdown.memory_s + est.breakdown.comm_s;
        assert_close(est.runtime_s, sum, 1e-9);
    }

    #[test]
    fn runtime_components_sum() {
        let m = archer2();
        let est = estimate(&qft(20), &m, &ModelConfig::default_for(4));
        let sum = est.breakdown.compute_s + est.breakdown.memory_s + est.breakdown.comm_s;
        assert_close(est.runtime_s, sum, 1e-9);
        assert_eq!(est.n_nodes, 4);
        assert_eq!(est.n_qubits, 20);
        assert!(!est.gates.is_empty());
    }

    #[test]
    fn fusion_reduces_runtime() {
        // The fusion ablation: one full sweep per QFT controlled-phase
        // block beats one quarter-sweep per gate once blocks are ≥ 4
        // gates — at 38 qubits the average block has ~18 gates.
        let m = archer2();
        let unfused = estimate(&qft(38), &m, &table1_config());
        let fused = estimate(
            &qft(38),
            &m,
            &ModelConfig {
                fuse_diagonals: Some(4),
                ..table1_config()
            },
        );
        assert!(fused.runtime_s < unfused.runtime_s);
        assert!(fused.total_energy_j() < unfused.total_energy_j());
    }
}
