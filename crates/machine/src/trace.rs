//! Job traces: power-over-time series and a SLURM-style accounting view.
//!
//! The paper reads job energy from SLURM, which integrates per-node power
//! counters over the run (§2.4). This module reconstructs that view from
//! a model estimate: a piecewise-constant power timeline (one segment per
//! schedule step) and an `sacct`-shaped report. The timeline is also what
//! a fig-5-style stacked profile is drawn from.

use crate::cost::ModelConfig;
use crate::energy::format_energy;
use crate::perf::RunEstimate;
use crate::power::Phase;
use crate::archer2::Machine;

/// One piecewise-constant segment of the job's aggregate power draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// Segment start, seconds from job start.
    pub start_s: f64,
    /// Segment duration, seconds.
    pub duration_s: f64,
    /// What the participating nodes are doing.
    pub phase: Phase,
    /// Total draw across all nodes and switches, watts.
    pub power_w: f64,
}

/// Builds the power timeline of a modelled run. Each schedule step
/// contributes up to three segments (memory, compute, comm) in a fixed
/// canonical order; zero-length segments are dropped.
pub fn power_timeline(
    machine: &Machine,
    cfg: &ModelConfig,
    estimate: &RunEstimate,
) -> Vec<PowerSegment> {
    let n = cfg.n_nodes as f64;
    let switches =
        machine.network.switches_for(cfg.n_nodes) as f64 * machine.network.switch_power_w;
    let mut t = 0.0f64;
    let mut out = Vec::new();
    for gate in &estimate.gates {
        let participating = n * gate.cost.participation;
        let idle = n - participating;
        for (phase, dur) in [
            (Phase::Memory, gate.cost.memory_s),
            (Phase::Compute, gate.cost.compute_s),
            (Phase::Comm, gate.cost.comm_s),
        ] {
            if dur <= 0.0 {
                continue;
            }
            let node_power = participating
                * machine.power.node_power_w(phase, cfg.frequency)
                + idle * machine.power.node_power_w(Phase::Idle, cfg.frequency);
            out.push(PowerSegment {
                start_s: t,
                duration_s: dur,
                phase,
                power_w: node_power + switches,
            });
            t += dur;
        }
    }
    out
}

/// Integrates a timeline back to joules (consistency check: must equal
/// the estimate's total).
pub fn integrate_energy(timeline: &[PowerSegment]) -> f64 {
    timeline.iter().map(|s| s.power_w * s.duration_s).sum()
}

/// Peak aggregate power over the run.
pub fn peak_power_w(timeline: &[PowerSegment]) -> f64 {
    timeline.iter().map(|s| s.power_w).fold(0.0, f64::max)
}

/// An `sacct`-shaped accounting record for a modelled job.
#[derive(Debug, Clone)]
pub struct SacctRecord {
    /// Job name.
    pub job_name: String,
    /// Nodes allocated.
    pub n_nodes: u64,
    /// Elapsed wall-clock, seconds.
    pub elapsed_s: f64,
    /// `ConsumedEnergy` — what SLURM's node counters would report
    /// (excludes switches, as on the real machine).
    pub consumed_energy_j: f64,
    /// The paper's switch estimate, added on top.
    pub switch_energy_j: f64,
    /// CU charge.
    pub cu: f64,
}

impl SacctRecord {
    /// Builds the record from a model estimate.
    pub fn from_estimate(job_name: impl Into<String>, est: &RunEstimate) -> Self {
        SacctRecord {
            job_name: job_name.into(),
            n_nodes: est.n_nodes,
            elapsed_s: est.runtime_s,
            consumed_energy_j: est.energy.node_total_j(),
            switch_energy_j: est.energy.switch_j,
            cu: est.cu,
        }
    }

    /// Renders in `sacct --format=...` style.
    pub fn render(&self) -> String {
        format!(
            "JobName={} AllocNodes={} Elapsed={} ConsumedEnergy={} (+{} network) CU={:.1}",
            self.job_name,
            self.n_nodes,
            format_elapsed(self.elapsed_s),
            format_energy(self.consumed_energy_j),
            format_energy(self.switch_energy_j),
            self.cu,
        )
    }
}

/// `HH:MM:SS` like SLURM.
pub fn format_elapsed(seconds: f64) -> String {
    let total = seconds.round() as u64;
    format!(
        "{:02}:{:02}:{:02}",
        total / 3600,
        (total % 3600) / 60,
        total % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;
    use crate::perf::estimate;
    use qse_circuit::qft::qft;
    use qse_math::approx::assert_close;

    fn sample() -> (Machine, ModelConfig, RunEstimate) {
        let m = archer2();
        let cfg = ModelConfig::default_for(64);
        let est = estimate(&qft(38), &m, &cfg);
        (m, cfg, est)
    }

    #[test]
    fn timeline_integrates_to_total_energy() {
        let (m, cfg, est) = sample();
        let tl = power_timeline(&m, &cfg, &est);
        assert!(!tl.is_empty());
        assert_close(
            integrate_energy(&tl),
            est.total_energy_j(),
            est.total_energy_j() * 1e-9,
        );
    }

    #[test]
    fn timeline_is_contiguous_and_spans_runtime() {
        let (m, cfg, est) = sample();
        let tl = power_timeline(&m, &cfg, &est);
        let mut t = 0.0;
        for seg in &tl {
            assert_close(seg.start_s, t, 1e-9);
            assert!(seg.duration_s > 0.0);
            t += seg.duration_s;
        }
        assert_close(t, est.runtime_s, 1e-9);
    }

    #[test]
    fn peak_power_is_in_plausible_band() {
        // 64 nodes at ≤ ~500 W plus 8 switches: peak well under 40 kW
        // and above the idle floor.
        let (m, cfg, est) = sample();
        let tl = power_timeline(&m, &cfg, &est);
        let peak = peak_power_w(&tl);
        assert!(peak > 15_000.0 && peak < 40_000.0, "peak {peak}");
    }

    #[test]
    fn memory_phase_draws_more_than_comm() {
        let (m, cfg, est) = sample();
        let tl = power_timeline(&m, &cfg, &est);
        let avg = |phase: Phase| {
            let (sum, n) = tl
                .iter()
                .filter(|s| s.phase == phase)
                .fold((0.0, 0usize), |(a, k), s| (a + s.power_w, k + 1));
            sum / n as f64
        };
        assert!(avg(Phase::Memory) > avg(Phase::Comm));
    }

    #[test]
    fn sacct_record_renders() {
        let (_, _, est) = sample();
        let rec = SacctRecord::from_estimate("qft38", &est);
        let s = rec.render();
        assert!(s.contains("JobName=qft38"));
        assert!(s.contains("AllocNodes=64"));
        assert!(s.contains("ConsumedEnergy="));
        assert!(rec.consumed_energy_j > 0.0);
        assert!(rec.switch_energy_j > 0.0);
    }

    #[test]
    fn elapsed_formatting() {
        assert_eq!(format_elapsed(0.0), "00:00:00");
        assert_eq!(format_elapsed(61.4), "00:01:01");
        assert_eq!(format_elapsed(3723.0), "01:02:03");
    }
}
