//! Alternative machine presets — what-if studies beyond ARCHER2.
//!
//! The paper's final future-work item is "explor[ing] the impact on
//! performance and energy usage of porting QuEST to multiple GPUs" (§4),
//! citing Faj et al.'s GPU study (ref [4]). No GPU exists in this
//! environment, so the question is answered the same way the CPU machine
//! is modelled: a calibrated node description. The GPU preset models an
//! A100-class accelerator node — ~20× the sweep bandwidth, ~3× the
//! exchange bandwidth (NIC-bound), higher draw — attached to the same
//! switch fabric and charged the same way.

use crate::archer2::{archer2, Machine};
use crate::network::NetworkSpec;
use crate::node::{NodeKind, NodeSpec};
use crate::power::PowerModel;

const GIB: u64 = 1 << 30;

/// An ARCHER2-like machine whose nodes are A100-class GPU nodes.
///
/// Calibration rationale (all public figures for DGX-A100-style nodes):
///
/// * 4 × A100-80GB per node → 320 GB device memory, ~6 TB/s aggregate
///   HBM bandwidth; the sweep constant uses an effective 4 TB/s;
/// * inter-node exchange rides 4 × 200 Gb/s NICs ≈ 100 GB/s peak; the
///   effective pairwise exchange constants keep the CPU machine's ~30 %
///   protocol efficiency (25/28 GB/s);
/// * node draw ~3 kW memory-bound, ~6.5 kW compute-bound, ~1.5 kW while
///   communicating (static 800 W).
pub fn gpu_machine() -> Machine {
    let base = archer2();
    let gpu_node = |kind: NodeKind, memory_bytes: u64, available: u64| NodeSpec {
        kind,
        memory_bytes,
        usable_fraction: 0.95,
        cores: 4, // accelerators, not cores — used for reporting only
        numa_regions: 4,
        sweep_bandwidth: 4e12,
        available,
    };
    Machine {
        name: "ARCHER2-GPU (modelled, §4 future work)",
        // "Standard" GPU node: 4 × 80 GB HBM.
        standard: gpu_node(NodeKind::Standard, 320 * GIB, 1024),
        // "High-mem" variant: 8 × 80 GB.
        highmem: gpu_node(NodeKind::HighMem, 640 * GIB, 128),
        network: NetworkSpec {
            exchange_bw_blocking: 25e9,
            exchange_bw_nonblocking: 28e9,
            // GPU fabric switches burn more than Slingshot's 235 W.
            switch_power_w: 400.0,
            ..base.network
        },
        power: PowerModel {
            static_w: 800.0,
            dynamic_compute_w: 5_700.0,
            dynamic_memory_w: 2_200.0,
            dynamic_comm_w: 700.0,
            dynamic_idle_w: 300.0,
        },
        compute_attribution: base.compute_attribution,
        // HBM has no CPU-style NUMA cliff at high strides.
        numa_penalty: [1.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ModelConfig;
    use crate::memory::{min_nodes, BufferRegime};
    use crate::perf::estimate;
    use qse_circuit::qft::qft;

    #[test]
    fn gpu_nodes_fit_more_qubits_per_node_than_standard_cpu() {
        // 320 GB usable beats 256 GB: a 34-qubit register (256 GB) that
        // needs 4 CPU nodes fits on 2 GPU nodes.
        let gpu = gpu_machine();
        let cpu = archer2();
        let n = 34;
        let g = min_nodes(n, gpu.node(NodeKind::Standard), BufferRegime::Full).unwrap();
        let c = min_nodes(n, cpu.node(NodeKind::Standard), BufferRegime::Full).unwrap();
        assert!(g < c, "gpu {g} vs cpu {c}");
    }

    #[test]
    fn gpu_runs_faster_but_is_network_dominated() {
        // The GPU machine's local sweeps are ~15× faster while exchanges
        // are only ~3× faster: the QFT becomes communication-dominated —
        // exactly the regime shift Faj et al. report for multi-GPU
        // statevector simulation.
        let gpu = gpu_machine();
        let cpu = archer2();
        let circuit = qft(34);
        let gpu_est = estimate(&circuit, &gpu, &ModelConfig::default_for(4));
        let cpu_est = estimate(&circuit, &cpu, &ModelConfig::default_for(4));
        assert!(gpu_est.runtime_s < cpu_est.runtime_s / 2.0);
        assert!(gpu_est.comm_fraction() > cpu_est.comm_fraction());
        assert!(gpu_est.comm_fraction() > 0.5);
    }

    #[test]
    fn cache_blocking_matters_even_more_on_gpus() {
        use qse_circuit::qft::cache_blocked_qft;
        let gpu = gpu_machine();
        let n = 34;
        let built_in = estimate(&qft(n), &gpu, &ModelConfig::default_for(4));
        let blocked = estimate(
            &cache_blocked_qft(n, 30),
            &gpu,
            &ModelConfig::fast_for(4),
        );
        let gpu_gain = 1.0 - blocked.runtime_s / built_in.runtime_s;
        // CPU gain at comparable scale for reference.
        let cpu = archer2();
        let cpu_gain = 1.0
            - estimate(&cache_blocked_qft(n, 30), &cpu, &ModelConfig::fast_for(4)).runtime_s
                / estimate(&qft(n), &cpu, &ModelConfig::default_for(4)).runtime_s;
        assert!(gpu_gain > cpu_gain, "gpu {gpu_gain} vs cpu {cpu_gain}");
    }
}
