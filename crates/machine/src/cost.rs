//! Cost-model types shared across the machine crate.

use crate::archer2::Machine;
use crate::frequency::CpuFrequency;
use crate::node::NodeKind;
use crate::power::Phase;
use qse_circuit::transpile::{ExchangeOracle, PermTraffic, StepCost};

/// Communication strategy, mirroring the executable engine's
/// `qse_comm::chunking::ExchangeMode` (kept separate so the model crate
/// does not depend on the transport crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommMode {
    /// QuEST's blocking chunked sendrecv.
    #[default]
    Blocking,
    /// The paper's non-blocking rewrite (§3.2).
    NonBlocking,
    /// Chunk-pipelined streaming: non-blocking transport plus per-chunk
    /// overlap of the combine sweep with the remaining communication, so
    /// only the un-overlapped remainder is billed as comm time.
    Streamed,
}

/// A full model-run configuration — one "job submission".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Node flavour (§2.2 optimisation 2).
    pub node_kind: NodeKind,
    /// CPU frequency (§2.2 optimisation 1).
    pub frequency: CpuFrequency,
    /// Exchange strategy (§3.2).
    pub comm_mode: CommMode,
    /// Half exchange for distributed SWAPs (§4).
    pub half_exchange_swaps: bool,
    /// Fuse runs of ≥ this many diagonal gates into one sweep; `None`
    /// applies each diagonal gate as its own (partial) sweep.
    pub fuse_diagonals: Option<usize>,
    /// Node count (a power of two, as QuEST requires).
    pub n_nodes: u64,
}

impl ModelConfig {
    /// The ARCHER2 default submission: standard nodes at 2.00 GHz with
    /// QuEST's stock communication. QuEST applies each controlled phase
    /// "efficiently" as its own partial sweep (only affected amplitudes,
    /// §3.2) but does not fuse runs — fusion is this repository's
    /// ablation, off by default.
    pub fn default_for(n_nodes: u64) -> Self {
        ModelConfig {
            node_kind: NodeKind::Standard,
            frequency: CpuFrequency::Medium,
            comm_mode: CommMode::Blocking,
            half_exchange_swaps: false,
            fuse_diagonals: None,
            n_nodes,
        }
    }

    /// The paper's "Fast" configuration (Table 2): non-blocking
    /// communication (cache blocking is applied to the *circuit*, not
    /// here).
    pub fn fast_for(n_nodes: u64) -> Self {
        ModelConfig {
            comm_mode: CommMode::NonBlocking,
            ..Self::default_for(n_nodes)
        }
    }
}

/// Time components of one gate (or fused run) on the modelled machine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateCost {
    /// Floating-point time, seconds.
    pub compute_s: f64,
    /// Memory-sweep time, seconds.
    pub memory_s: f64,
    /// Communication time, seconds.
    pub comm_s: f64,
    /// Bytes exchanged per participating rank.
    pub comm_bytes: u64,
    /// Fraction of ranks doing the work (1.0 for most gates; 0.5 for
    /// global-control gates and both-global SWAPs).
    pub participation: f64,
}

impl GateCost {
    /// Wall-clock contribution (spectator ranks wait on participants).
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.memory_s + self.comm_s
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &GateCost) {
        self.compute_s += other.compute_s;
        self.memory_s += other.memory_s;
        self.comm_s += other.comm_s;
        self.comm_bytes += other.comm_bytes;
    }
}

/// The calibrated machine model exposed as a transpiler-facing
/// [`ExchangeOracle`]: the comm-avoiding pass asks it to price candidate
/// batched exchanges, turning the model crate into a *compile-time*
/// oracle rather than a post-hoc reporting tool.
///
/// One exchange step is billed as: wall-clock from the busiest rank's
/// payload through the calibrated [`crate::network::NetworkSpec`] (every
/// rank waits on the slowest), all nodes drawing communication-phase
/// power for that duration, plus the paper's switch energy
/// `E_net = n_s · P̄_s · Δt`.
#[derive(Debug, Clone, Copy)]
pub struct ModelOracle<'a> {
    machine: &'a Machine,
    config: ModelConfig,
}

impl<'a> ModelOracle<'a> {
    /// Builds an oracle for one job submission on `machine`.
    pub fn new(machine: &'a Machine, config: ModelConfig) -> Self {
        ModelOracle { machine, config }
    }
}

impl ExchangeOracle for ModelOracle<'_> {
    fn exchange(&self, traffic: PermTraffic) -> StepCost {
        if traffic.total_bytes == 0 {
            return StepCost::default();
        }
        let seconds = self
            .machine
            .network
            .exchange_time_s(traffic.max_rank_bytes, self.config.comm_mode);
        let node_j = self.machine.power.node_energy_j(
            Phase::Comm,
            self.config.frequency,
            seconds,
        ) * self.config.n_nodes as f64;
        let switch_j = self
            .machine
            .network
            .switch_energy_j(self.config.n_nodes, seconds);
        StepCost {
            bytes: traffic.total_bytes,
            seconds,
            joules: node_j + switch_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;

    #[test]
    fn default_config_matches_archer2_defaults() {
        let c = ModelConfig::default_for(64);
        assert_eq!(c.node_kind, NodeKind::Standard);
        assert_eq!(c.frequency, CpuFrequency::Medium);
        assert_eq!(c.comm_mode, CommMode::Blocking);
        assert!(!c.half_exchange_swaps);
        assert_eq!(c.n_nodes, 64);
    }

    #[test]
    fn fast_config_flips_comm_mode_only() {
        let c = ModelConfig::fast_for(64);
        assert_eq!(c.comm_mode, CommMode::NonBlocking);
        assert_eq!(c.node_kind, NodeKind::Standard);
    }

    #[test]
    fn gate_cost_totals_and_accumulates() {
        let mut a = GateCost {
            compute_s: 1.0,
            memory_s: 2.0,
            comm_s: 3.0,
            comm_bytes: 10,
            participation: 1.0,
        };
        assert_eq!(a.total_s(), 6.0);
        a.accumulate(&GateCost {
            compute_s: 0.5,
            memory_s: 0.5,
            comm_s: 0.5,
            comm_bytes: 5,
            participation: 0.5,
        });
        assert_eq!(a.total_s(), 7.5);
        assert_eq!(a.comm_bytes, 15);
    }

    #[test]
    fn model_oracle_prices_traffic_monotonically() {
        let machine = archer2();
        let oracle = ModelOracle::new(&machine, ModelConfig::default_for(4));
        let zero = oracle.exchange(PermTraffic::default());
        assert_eq!(zero, StepCost::default());
        let small = oracle.exchange(PermTraffic {
            total_bytes: 1 << 20,
            max_rank_bytes: 1 << 18,
        });
        let large = oracle.exchange(PermTraffic {
            total_bytes: 1 << 24,
            max_rank_bytes: 1 << 22,
        });
        assert!(small.seconds > 0.0 && small.joules > 0.0);
        assert!(small.better_than(&large));
        assert!(large.seconds > small.seconds);
        assert!(large.joules > small.joules);
    }

    #[test]
    fn model_oracle_nonblocking_is_faster() {
        let machine = archer2();
        let traffic = PermTraffic {
            total_bytes: 1 << 28,
            max_rank_bytes: 1 << 26,
        };
        let blocking =
            ModelOracle::new(&machine, ModelConfig::default_for(4)).exchange(traffic);
        let fast =
            ModelOracle::new(&machine, ModelConfig::fast_for(4)).exchange(traffic);
        assert!(fast.seconds < blocking.seconds, "calibrated bandwidths differ");
        assert_eq!(fast.bytes, blocking.bytes, "bytes are mode-independent");
    }
}
