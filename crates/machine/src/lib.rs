//! ARCHER2-like machine model: nodes, frequency scaling, network, power,
//! energy accounting and capacity planning.
//!
//! The paper measures wall-clock time with SLURM and energy with node
//! power counters plus an analytic switch estimate
//! (`E_net = n_s · P̄_s · Δt`, §2.4). This crate substitutes for that
//! hardware: a calibrated cost model converts a circuit execution plan
//! into per-gate time and energy at full 33–44-qubit scale, which is how
//! every figure and table of the paper is regenerated (see DESIGN.md §1).
//!
//! Calibration anchors (all from the paper, encoded in [`archer2`]):
//!
//! * local Hadamard on 64 nodes / 38 qubits: ≈ 0.5 s and ≈ 15 kJ per gate
//!   (Table 1, qubits ≤ 29);
//! * NUMA-penalised sweeps at the top two local qubits: 0.59 s / 0.80 s
//!   (Table 1, qubits 30–31);
//! * distributed Hadamard: 9.63 s / 191 kJ blocking, 8.82 s / 179 kJ
//!   non-blocking (Table 1, qubit 32);
//! * one switch per 8 nodes at 235 W (§2.4);
//! * 2.25 GHz ≈ 5–10 % faster and ≈ 25 % more energy than 2.00 GHz
//!   (§3.1); 1.50 GHz slower at roughly equal energy.

pub mod archer2;
pub mod cost;
pub mod cu;
pub mod energy;
pub mod frequency;
pub mod memory;
pub mod network;
pub mod node;
pub mod perf;
pub mod power;
pub mod trace;
pub mod variants;

pub use archer2::archer2;
pub use cost::{CommMode, GateCost, ModelConfig, ModelOracle};
pub use energy::EnergyBreakdown;
pub use frequency::CpuFrequency;
pub use node::{NodeKind, NodeSpec};
pub use perf::{estimate, RunEstimate};
