//! Compute-unit (CU) accounting.
//!
//! ARCHER2 charges jobs in CUs: one CU is one node-hour, at the same rate
//! for standard and high-memory nodes. This is why the paper finds that
//! "the CU cost of high memory simulations is lower than for standard
//! memory" (§3.1): a high-memory run uses half the nodes and is less than
//! twice as slow, so nodes × hours shrinks.

use crate::node::NodeKind;

/// CU charge rate per node-hour for a node kind.
pub fn rate_per_node_hour(_kind: NodeKind) -> f64 {
    // ARCHER2 charges both partitions identically.
    1.0
}

/// Total CUs for a job.
pub fn cu_cost(n_nodes: u64, runtime_s: f64, kind: NodeKind) -> f64 {
    n_nodes as f64 * (runtime_s / 3600.0) * rate_per_node_hour(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_close;

    #[test]
    fn one_node_hour_is_one_cu() {
        assert_close(cu_cost(1, 3600.0, NodeKind::Standard), 1.0, 1e-12);
    }

    #[test]
    fn scales_with_nodes_and_time() {
        assert_close(cu_cost(4096, 476.0, NodeKind::Standard), 4096.0 * 476.0 / 3600.0, 1e-9);
    }

    #[test]
    fn highmem_wins_when_less_than_twice_as_slow() {
        // The paper's observation: half the nodes, < 2× the runtime.
        let std = cu_cost(64, 100.0, NodeKind::Standard);
        let hm = cu_cost(32, 170.0, NodeKind::HighMem);
        assert!(hm < std);
    }
}
