//! The calibrated ARCHER2 machine instance.
//!
//! Every constant here is anchored to a published observation; see the
//! crate docs and DESIGN.md §4 for the calibration table. The constants
//! are deliberately plain numbers (not fitted at runtime) so that the
//! regenerated figures are deterministic.

use crate::network::NetworkSpec;
use crate::node::{NodeKind, NodeSpec};
use crate::power::PowerModel;

/// A complete machine description consumed by the performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Human-readable name.
    pub name: &'static str,
    /// The standard compute node.
    pub standard: NodeSpec,
    /// The high-memory node.
    pub highmem: NodeSpec,
    /// Interconnect.
    pub network: NetworkSpec,
    /// Node power model.
    pub power: PowerModel,
    /// Fraction of a local sweep's time attributed to compute (the rest
    /// is memory). Chosen to reproduce fig 5's ≈ 2:1 memory:compute split
    /// for the QFT's local work.
    pub compute_attribution: f64,
    /// Sweep-time penalty when the amplitude pairs of the top / second-
    /// from-top local qubit straddle NUMA regions (Table 1: 0.80 s and
    /// 0.59 s vs the 0.50 s baseline).
    pub numa_penalty: [f64; 2],
}

impl Machine {
    /// The node spec for a kind.
    pub fn node(&self, kind: NodeKind) -> &NodeSpec {
        match kind {
            NodeKind::Standard => &self.standard,
            NodeKind::HighMem => &self.highmem,
        }
    }
}

const GIB: u64 = 1 << 30;

/// The ARCHER2 instance used by every experiment in this repository.
pub fn archer2() -> Machine {
    Machine {
        name: "ARCHER2 (modelled)",
        standard: NodeSpec {
            kind: NodeKind::Standard,
            memory_bytes: 256 * GIB,
            // 95 % usable reproduces the fit table of §3.1 (33 q on one
            // node, 34 q on four).
            usable_fraction: 0.95,
            cores: 128,
            numa_regions: 8,
            // 2^32 amplitudes × 32 B (read + write) in 0.5 s → 275 GB/s.
            sweep_bandwidth: 275e9,
            // ARCHER2 has 5,860 nodes; power-of-two jobs cap at 4,096.
            available: 5860,
        },
        highmem: NodeSpec {
            kind: NodeKind::HighMem,
            memory_bytes: 512 * GIB,
            usable_fraction: 0.95,
            cores: 128,
            numa_regions: 8,
            // Same DIMM bandwidth as standard nodes — the paper: "memory
            // bandwidth being a limiting factor" for high-mem runs.
            sweep_bandwidth: 275e9,
            // The paper's practical maximum: 256 high-memory nodes.
            available: 256,
        },
        network: NetworkSpec {
            nodes_per_switch: 8,
            switch_power_w: 235.0,
            // 64 GiB exchange in 8.88 s (blocking) / 8.07 s (non-blocking):
            // Table 1 qubit-32 rows minus the 0.75 s combine sweep.
            exchange_bw_blocking: 7.74e9,
            exchange_bw_nonblocking: 8.52e9,
            message_latency_s: 10e-6,
            max_message_bytes: 2 * GIB,
        },
        power: PowerModel {
            // Static floor kept low so the dynamic share dominates: that
            // is what yields the paper's ≈ +25 % energy at 2.25 GHz and
            // ≈ flat energy at 1.50 GHz simultaneously.
            static_w: 100.0,
            // Compute-bound EPYC 7742 node ≈ 500 W.
            dynamic_compute_w: 400.0,
            // Memory-bound ≈ 440 W (Table 1: 15 kJ / 0.5 s / 64 nodes).
            dynamic_memory_w: 340.0,
            // Communication-bound ≈ 285 W (Table 1: 191 kJ / 9.63 s / 64
            // nodes, minus the switch share).
            dynamic_comm_w: 185.0,
            // In-job idle ≈ 180 W.
            dynamic_idle_w: 80.0,
        },
        compute_attribution: 1.0 / 3.0,
        numa_penalty: [1.6, 1.18],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_lookup() {
        let m = archer2();
        assert_eq!(m.node(NodeKind::Standard).kind, NodeKind::Standard);
        assert_eq!(m.node(NodeKind::HighMem).kind, NodeKind::HighMem);
    }

    #[test]
    fn sweep_bandwidth_reproduces_half_second_hadamard() {
        // 38-qubit register on 64 nodes: 2^32 local amplitudes, a pair
        // sweep touches 32 B per amplitude.
        let m = archer2();
        let bytes = 32.0 * (1u64 << 32) as f64;
        let t = bytes / m.standard.sweep_bandwidth;
        assert!((t - 0.5).abs() < 0.01, "sweep time {t}");
    }

    #[test]
    fn exchange_bandwidth_reproduces_table1_distributed_row() {
        // 64 GiB exchange + 0.75 s combine ≈ 9.6 s blocking / 8.8 s
        // non-blocking (Table 1, qubit 32).
        let m = archer2();
        let bytes = (1u64 << 36) as f64; // 64 GiB
        let blocking = bytes / m.network.exchange_bw_blocking + 0.75;
        let nonblocking = bytes / m.network.exchange_bw_nonblocking + 0.75;
        assert!((blocking - 9.63).abs() < 0.3, "blocking {blocking}");
        assert!((nonblocking - 8.82).abs() < 0.3, "nonblocking {nonblocking}");
    }
}
