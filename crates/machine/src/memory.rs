//! Capacity planning: how many nodes a register needs.
//!
//! A statevector of `n` qubits takes `16·2^n` bytes. When distributed,
//! "additional buffers are required in the MPI implementation, doubling
//! the overall memory requirement" (§3.1) — QuEST allocates a receive
//! buffer the size of the local slice. The paper's data points:
//!
//! * 33 qubits fit on one standard node, 34 need four (not two — the
//!   doubled footprint plus OS overhead exceeds 2 × 256 GB);
//! * at most 41 qubits fit on 256 high-memory nodes;
//! * 44 qubits need 4,096 standard nodes, and 45 would only become
//!   feasible with the half-exchange buffer (§4).

use crate::node::NodeSpec;
use qse_math::bits;

/// Bytes per complex amplitude (two f64).
pub const BYTES_PER_AMP: u64 = 16;

/// The exchange-buffer sizing regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferRegime {
    /// QuEST default: the receive buffer matches the local slice
    /// (footprint × 2).
    Full,
    /// Half-exchange SWAP-only communication: buffer is half the slice
    /// (footprint × 1.5) — the paper's route to 45 qubits (§4).
    Half,
}

impl BufferRegime {
    /// Multiplier on the per-node statevector bytes.
    pub fn footprint_factor(self) -> f64 {
        match self {
            BufferRegime::Full => 2.0,
            BufferRegime::Half => 1.5,
        }
    }
}

/// Total statevector bytes for `n` qubits.
pub fn statevector_bytes(n_qubits: u32) -> u64 {
    BYTES_PER_AMP << n_qubits
}

/// Per-node bytes for `n` qubits over `nodes` ranks under a buffer regime.
/// A single node runs without MPI buffers.
pub fn per_node_bytes(n_qubits: u32, nodes: u64, regime: BufferRegime) -> f64 {
    let slice = statevector_bytes(n_qubits) as f64 / nodes as f64;
    if nodes == 1 {
        slice
    } else {
        slice * regime.footprint_factor()
    }
}

/// The smallest power-of-two node count that fits `n_qubits` on `node`,
/// or `None` if even every available node is insufficient.
pub fn min_nodes(n_qubits: u32, node: &NodeSpec, regime: BufferRegime) -> Option<u64> {
    let usable = node.usable_bytes() as f64;
    let max_nodes = largest_pow2_at_most(node.available);
    let mut nodes = 1u64;
    loop {
        if per_node_bytes(n_qubits, nodes, regime) <= usable {
            return Some(nodes);
        }
        if nodes >= max_nodes {
            return None;
        }
        nodes *= 2;
    }
}

/// The largest register that fits on exactly `nodes` nodes of this kind.
pub fn max_qubits(nodes: u64, node: &NodeSpec, regime: BufferRegime) -> u32 {
    assert!(bits::is_pow2(nodes), "node count must be a power of two");
    let mut n = 1u32;
    while per_node_bytes(n + 1, nodes, regime) <= node.usable_bytes() as f64 {
        n += 1;
    }
    n
}

fn largest_pow2_at_most(x: u64) -> u64 {
    assert!(x >= 1);
    1u64 << (63 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer2::archer2;
    use crate::node::NodeKind;

    #[test]
    fn statevector_sizes() {
        assert_eq!(statevector_bytes(33), 128 * (1 << 30) as u64);
        assert_eq!(statevector_bytes(44), 256 * (1u64 << 40));
    }

    #[test]
    fn paper_fit_standard_nodes() {
        // §3.1: "33 qubits will fit on a standard node, but 4 nodes are
        // required for a 34 qubit simulation."
        let m = archer2();
        let std = m.node(NodeKind::Standard);
        assert_eq!(min_nodes(33, std, BufferRegime::Full), Some(1));
        assert_eq!(min_nodes(34, std, BufferRegime::Full), Some(4));
        // Doubling per qubit thereafter:
        assert_eq!(min_nodes(38, std, BufferRegime::Full), Some(64));
        assert_eq!(min_nodes(43, std, BufferRegime::Full), Some(2048));
        assert_eq!(min_nodes(44, std, BufferRegime::Full), Some(4096));
        // 45 qubits do not fit with full buffers (§4)...
        assert_eq!(min_nodes(45, std, BufferRegime::Full), None);
        // ...but do with the half-exchange buffer on the same 4,096 nodes.
        assert_eq!(min_nodes(45, std, BufferRegime::Half), Some(4096));
    }

    #[test]
    fn paper_fit_highmem_nodes() {
        let m = archer2();
        let hm = m.node(NodeKind::HighMem);
        // One 34-qubit run fits a single high-memory node (§3.1).
        assert_eq!(min_nodes(34, hm, BufferRegime::Full), Some(1));
        // "A maximum of 41 qubits could be simulated on 256 high memory
        // nodes" — and 42 exceeds the partition.
        assert_eq!(min_nodes(41, hm, BufferRegime::Full), Some(256));
        assert_eq!(min_nodes(42, hm, BufferRegime::Full), None);
        assert_eq!(max_qubits(256, hm, BufferRegime::Full), 41);
    }

    #[test]
    fn single_node_skips_buffer_doubling() {
        let m = archer2();
        let std = m.node(NodeKind::Standard);
        // 33 qubits = 128 GB: fits alone without an MPI buffer...
        assert!(per_node_bytes(33, 1, BufferRegime::Full) <= std.usable_bytes() as f64);
        // ...while 34 qubits (256 GB) neither fit alone nor, once the
        // buffer doubling kicks in, on two nodes — hence the paper's
        // jump straight to four nodes.
        assert!(per_node_bytes(34, 1, BufferRegime::Full) > std.usable_bytes() as f64);
        assert!(per_node_bytes(34, 2, BufferRegime::Full) > std.usable_bytes() as f64);
    }

    #[test]
    fn max_qubits_inverts_min_nodes() {
        let m = archer2();
        let std = m.node(NodeKind::Standard);
        for nodes in [64u64, 2048, 4096] {
            let n = max_qubits(nodes, std, BufferRegime::Full);
            assert_eq!(min_nodes(n, std, BufferRegime::Full).unwrap(), nodes);
        }
        assert_eq!(max_qubits(4096, std, BufferRegime::Full), 44);
        assert_eq!(max_qubits(4096, std, BufferRegime::Half), 45);
    }

    #[test]
    fn pow2_helper() {
        assert_eq!(largest_pow2_at_most(1), 1);
        assert_eq!(largest_pow2_at_most(5860), 4096);
        assert_eq!(largest_pow2_at_most(256), 256);
    }
}
