//! The CLI subcommands.

use crate::args::{ArgError, Args};
use qse_check::{Ctl, Explorer};
use qse_circuit::algorithms::{bernstein_vazirani, ghz, grover, grover_optimal_iterations};
use qse_circuit::classify::{comm_summary, Layout};
use qse_circuit::qft::{cache_blocked_qft, default_split, qft, valid_split_range};
use qse_circuit::transpile::cache_blocking::cache_block;
use qse_circuit::Circuit;
use qse_core::experiment::{fmt_seconds, TextTable};
use qse_core::scaling::nodes_for;
use qse_core::{comm_avoid_plan, ModelExecutor, SimConfig, ThreadClusterExecutor, TranspileMode};
use qse_machine::energy::{format_energy, joules_to_kwh};
use qse_machine::trace::SacctRecord;
use qse_machine::variants::gpu_machine;
use qse_machine::{archer2, CpuFrequency, NodeKind};

/// Runs the parsed command, returning the text to print.
pub fn dispatch(args: &Args) -> Result<String, ArgError> {
    match args.command.as_str() {
        "help" => Ok(help_text()),
        "info" => info(args),
        "run" => run(args),
        "model" => model(args),
        "sweep" => sweep(args),
        "transpile" => transpile(args),
        "check" => check(args),
        other => Err(ArgError(format!(
            "unknown command `{other}`; try `qse help`"
        ))),
    }
}

/// The help screen.
pub fn help_text() -> String {
    "qse — quantum statevector simulation & energy modelling\n\
     \n\
     USAGE: qse <command> [flags]\n\
     \n\
     COMMANDS\n\
       help                         this screen\n\
       info  [--gpu]                machine description\n\
       run   --qubits N [--ranks R] [--circuit qft|ghz|grover|bv]\n\
             [--non-blocking] [--streamed] [--half-swaps] [--fuse K] [--basis B]\n\
             [--transpile off|greedy|beam]\n\
             [--faults seed=N[,delay=P][,corrupt=P][,fail=P][,budget=K]...]\n\
                                    execute on the thread cluster (measured);\n\
                                    --transpile runs the comm-avoiding pass\n\
                                    first (batched global swaps, cost-model\n\
                                    scored) and reports measured vs modeled\n\
                                    exchange bytes; --faults injects a seeded\n\
                                    deterministic fault plan (replay a soak\n\
                                    failure by seed)\n\
       model --qubits N [--nodes M] [--node-kind standard|highmem]\n\
             [--freq low|medium|high] [--circuit ...] [--fast] [--streamed] [--gpu]\n\
                                    ARCHER2 model estimate (runtime/energy/CU)\n\
                                    plus modeled exchange payload, with a\n\
                                    measured comparison when the setup fits\n\
                                    in one process (N ≤ 20, nodes ≤ 8)\n\
       sweep [--from A] [--to B] [--fast] [--gpu]\n\
                                    fig-2-style QFT sweep at minimum node counts\n\
       transpile --qubits N --ranks R [--circuit ...]\n\
                                    cache-block a circuit, show communication\n\
       check [--root PATH] [--seed N] [--plans]\n\
                                    self-check: source lint, deadlock detector,\n\
                                    schedule explorer (all must pass);\n\
                                    --plans instead statically verifies the\n\
                                    standard plan corpus (protocol matching,\n\
                                    deadlock freedom, buffer bounds, layout\n\
                                    soundness) and proves broken fixtures\n\
                                    are rejected\n"
        .to_string()
}

fn build_circuit(name: &str, n: u32) -> Result<Circuit, ArgError> {
    Ok(match name {
        "qft" => qft(n),
        "qft-blocked" => {
            // A sensible default split for display purposes: half-window.
            let split = valid_split_range(n, n.div_ceil(2).max(1))
                .map(|(lo, hi)| (lo + hi) / 2)
                .unwrap_or(n);
            cache_blocked_qft(n, split)
        }
        "ghz" => ghz(n),
        "grover" => {
            let marked = (1u64 << n) - 1;
            grover(n, marked, grover_optimal_iterations(n))
        }
        "bv" => bernstein_vazirani(n, (1u64 << n) / 3),
        other => {
            return Err(ArgError(format!(
                "unknown circuit `{other}` (qft, qft-blocked, ghz, grover, bv)"
            )))
        }
    })
}

fn parse_freq(s: &str) -> Result<CpuFrequency, ArgError> {
    Ok(match s {
        "low" => CpuFrequency::Low,
        "medium" | "med" => CpuFrequency::Medium,
        "high" => CpuFrequency::High,
        other => return Err(ArgError(format!("unknown frequency `{other}`"))),
    })
}

fn parse_transpile(s: &str) -> Result<TranspileMode, ArgError> {
    Ok(match s {
        "off" => TranspileMode::Off,
        "greedy" => TranspileMode::Greedy,
        "beam" => TranspileMode::Beam,
        other => {
            return Err(ArgError(format!(
                "unknown transpile mode `{other}` (off, greedy, beam)"
            )))
        }
    })
}

fn parse_kind(s: &str) -> Result<NodeKind, ArgError> {
    Ok(match s {
        "standard" | "std" => NodeKind::Standard,
        "highmem" | "hm" => NodeKind::HighMem,
        other => return Err(ArgError(format!("unknown node kind `{other}`"))),
    })
}

fn pick_machine(args: &Args) -> qse_machine::archer2::Machine {
    if args.switch("gpu") {
        gpu_machine()
    } else {
        archer2()
    }
}

fn info(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["gpu"])?;
    let m = pick_machine(args);
    let mut out = format!("{}\n", m.name);
    for kind in [NodeKind::Standard, NodeKind::HighMem] {
        let n = m.node(kind);
        out += &format!(
            "  {:8} node: {} GiB RAM ({} usable), sweep {} GB/s, {} available\n",
            kind.label(),
            n.memory_bytes >> 30,
            n.usable_bytes() >> 30,
            (n.sweep_bandwidth / 1e9) as u64,
            n.available,
        );
    }
    out += &format!(
        "  network: 1 switch per {} nodes at {} W; exchange {}/{} GB/s (blocking/non-blocking); {} MiB max message\n",
        m.network.nodes_per_switch,
        m.network.switch_power_w,
        (m.network.exchange_bw_blocking / 1e9).round(),
        (m.network.exchange_bw_nonblocking / 1e9).round(),
        m.network.max_message_bytes >> 20,
    );
    Ok(out)
}

fn run(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&[
        "qubits",
        "ranks",
        "circuit",
        "non-blocking",
        "streamed",
        "half-swaps",
        "fuse",
        "basis",
        "faults",
        "transpile",
    ])?;
    let n: u32 = args.required("qubits")?;
    if n > 24 {
        return Err(ArgError(format!(
            "--qubits {n} is too large for an in-process run (max 24); use `qse model`"
        )));
    }
    let ranks: u64 = args.value("ranks", 4)?;
    let basis: u64 = args.value("basis", 0)?;
    let circuit = build_circuit(&args.string("circuit", "qft"), n)?;
    let mut cfg = SimConfig::default_for(ranks);
    cfg.non_blocking = args.switch("non-blocking");
    cfg.streamed = args.switch("streamed");
    cfg.half_exchange_swaps = args.switch("half-swaps");
    cfg.fuse_diagonals = args.optional::<usize>("fuse")?;
    cfg.transpile = parse_transpile(&args.string("transpile", "off"))?;
    if let Some(spec) = args.optional::<String>("faults")? {
        cfg.faults = Some(qse_comm::FaultConfig::parse_spec(&spec).map_err(ArgError)?);
    }
    let run = ThreadClusterExecutor::try_run(&circuit, &cfg, basis, false)
        .map_err(|e| ArgError(format!("run failed: {e}")))?;
    let p = &run.profiled;
    let mut out = format!(
        "ran {} gates on {} qubits over {} ranks in {:.3} s\n\
         distributed-gate share: {:.0} % of wall-clock\n\
         traffic: {} bytes in {} messages ({} bytes/rank)\n\
         exchange: {} chunks, peak scratch {} bytes, {} payload bytes\n",
        p.gate_count,
        p.n_qubits,
        p.n_ranks,
        p.wall_s,
        p.profile.distributed_fraction() * 100.0,
        p.bytes_sent,
        p.messages_sent,
        p.bytes_per_rank(),
        p.exchange_chunks,
        p.peak_inflight_bytes,
        p.bytes_exchanged,
    );
    if let Some(plan) = comm_avoid_plan(&circuit, &cfg) {
        let machine = archer2();
        let oracle = qse_machine::ModelOracle::new(&machine, cfg.to_model_config());
        let modeled = plan.price(&Layout::new(n, ranks), &oracle);
        out += &format!(
            "transpile: {} plan steps, {} batched exchange(s); \
             exchange payload {} bytes measured vs {} modeled\n",
            plan.steps.len(),
            plan.permute_count(),
            p.bytes_exchanged,
            modeled.bytes,
        );
    }
    if let Some(fc) = cfg.faults {
        out += &format!(
            "faults: seed {} — {} injected, {} retries, {} corruptions detected (recovered)\n",
            fc.seed, p.faults_injected, p.retries, p.corruptions_detected,
        );
    }
    Ok(out)
}

fn model(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&[
        "qubits", "nodes", "node-kind", "freq", "circuit", "fast", "streamed", "gpu",
        "half-swaps", "fuse",
    ])?;
    let n: u32 = args.required("qubits")?;
    let machine = pick_machine(args);
    let kind = parse_kind(&args.string("node-kind", "standard"))?;
    let nodes = match args.optional::<u64>("nodes")? {
        Some(nodes) => nodes,
        None => nodes_for(&machine, kind, n).ok_or_else(|| {
            ArgError(format!("{n} qubits do not fit any {} allocation", kind.label()))
        })?,
    };
    let circuit = if args.switch("fast") {
        let local = n - nodes.trailing_zeros();
        cache_blocked_qft(n, default_split(n, local))
    } else {
        build_circuit(&args.string("circuit", "qft"), n)?
    };
    let mut cfg = SimConfig::default_for(nodes);
    cfg.node_kind = kind;
    cfg.frequency = parse_freq(&args.string("freq", "medium"))?;
    cfg.non_blocking = args.switch("fast");
    cfg.streamed = args.switch("streamed");
    cfg.half_exchange_swaps = args.switch("half-swaps");
    cfg.fuse_diagonals = args.optional::<usize>("fuse")?;
    let est = ModelExecutor::new(&machine).run(&circuit, &cfg);
    let sacct = SacctRecord::from_estimate(format!("{}q", n), &est);
    let mut out = format!(
        "{}\n\
         runtime {:.1} s | energy {} ({:.1} kWh) | {:.1} CU\n\
         profile: {:.0} % MPI / {:.0} % memory / {:.0} % compute\n",
        sacct.render(),
        est.runtime_s,
        format_energy(est.total_energy_j()),
        joules_to_kwh(est.total_energy_j()),
        est.cu,
        est.comm_fraction() * 100.0,
        est.memory_fraction() * 100.0,
        est.compute_fraction() * 100.0,
    );
    // Modeled exchange payload, with a measured thread-cluster comparison
    // whenever the same configuration fits in one process — the honesty
    // check that the model's traffic inputs are exact.
    let layout = Layout::new(n, nodes);
    let summary = comm_summary(&circuit, &layout);
    let per_rank = if cfg.half_exchange_swaps {
        summary.bytes_half_exchange_swaps
    } else {
        summary.bytes_full_exchange
    };
    out += &format!("exchange payload (modeled): {} bytes", per_rank * nodes);
    if n <= 20 && nodes <= 8 {
        let run = ThreadClusterExecutor::try_run(&circuit, &cfg, 0, false)
            .map_err(|e| ArgError(format!("measurement run failed: {e}")))?;
        out += &format!(
            " | measured: {} bytes",
            run.profiled.bytes_exchanged
        );
    }
    out += "\n";
    Ok(out)
}

fn sweep(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["from", "to", "fast", "gpu"])?;
    let from: u32 = args.value("from", 33)?;
    let to: u32 = args.value("to", 44)?;
    if from > to {
        return Err(ArgError(format!("--from {from} exceeds --to {to}")));
    }
    let machine = pick_machine(args);
    let mut table = TextTable::new(vec!["Qubits", "Nodes", "Runtime", "Energy", "CU"]);
    for n in from..=to {
        let Some(nodes) = nodes_for(&machine, NodeKind::Standard, n) else {
            table.row(vec![n.to_string(), "-".into(), "-".into(), "-".into(), "-".into()]);
            continue;
        };
        let (circuit, mut cfg) = if args.switch("fast") {
            let local = n - nodes.trailing_zeros();
            (
                cache_blocked_qft(n, default_split(n, local)),
                SimConfig::fast_for(nodes),
            )
        } else {
            (qft(n), SimConfig::default_for(nodes))
        };
        cfg.n_ranks = nodes;
        let est = ModelExecutor::new(&machine).run(&circuit, &cfg);
        table.row(vec![
            n.to_string(),
            nodes.to_string(),
            fmt_seconds(est.runtime_s),
            format_energy(est.total_energy_j()),
            format!("{:.1}", est.cu),
        ]);
    }
    Ok(table.render())
}

fn transpile(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["qubits", "ranks", "circuit"])?;
    let n: u32 = args.required("qubits")?;
    let ranks: u64 = args.required("ranks")?;
    let layout = Layout::new(n, ranks);
    let circuit = build_circuit(&args.string("circuit", "qft"), n)?;
    let before = comm_summary(&circuit, &layout);
    let t = cache_block(&circuit, layout.local_qubits());
    let after = comm_summary(&t.circuit, &layout);
    Ok(format!(
        "{} gates on {} qubits over {} ranks ({} local qubits)\n\
         before: {} distributed gates, {} bytes/rank exchanged\n\
         after:  {} distributed gates, {} bytes/rank exchanged ({:.1}x less)\n\
         final layout is {}identity\n",
        circuit.len(),
        n,
        ranks,
        layout.local_qubits(),
        before.distributed,
        before.bytes_full_exchange,
        after.distributed,
        after.bytes_full_exchange,
        before.bytes_full_exchange as f64 / after.bytes_full_exchange.max(1) as f64,
        if t.layout.is_identity() { "the " } else { "NOT " },
    ))
}

/// Instrumented lost-update fixture for the schedule-explorer smoke: two
/// workers race a read-modify-write, so some interleaving must fail.
fn racy_counter_fixture(ctl: &Ctl) {
    use qse_util::sync::{sync_point, SyncOp};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let (tx, rx) = qse_util::mailbox::unbounded::<()>();
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..2 {
        let counter = Arc::clone(&counter);
        let tx = tx.clone();
        ctl.spawn(move || {
            let v = counter.load(Ordering::SeqCst);
            sync_point(SyncOp::User("between load and store"));
            counter.store(v + 1, Ordering::SeqCst);
            let _ = tx.send(());
        });
    }
    drop(tx);
    for _ in 0..2 {
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("worker done");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

fn check(args: &Args) -> Result<String, ArgError> {
    use qse_comm::{CommError, Universe};
    use std::time::{Duration, Instant};
    args.expect_only(&["root", "seed", "plans"])?;
    if args.switch("plans") {
        return check_plans();
    }
    let mut out = String::new();

    // 1. Source lint over the workspace tree.
    let root = match args.optional::<std::path::PathBuf>("root")? {
        Some(p) => p,
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("cannot read cwd: {e}")))?;
            qse_check::lint::find_workspace_root(&cwd).ok_or_else(|| {
                ArgError("no workspace root above the cwd; pass --root PATH".into())
            })?
        }
    };
    let violations = qse_check::lint_tree(&root)
        .map_err(|e| ArgError(format!("lint walk failed: {e}")))?;
    if !violations.is_empty() {
        let list = violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n  ");
        return Err(ArgError(format!("lint: {} violation(s)\n  {list}", violations.len())));
    }
    out += &format!("lint: clean ({})\n", root.display());

    // 2. Deadlock detector smoke: a one-sided receive must be diagnosed
    // by the wait-for graph, fast, naming the stuck rank.
    let t0 = Instant::now();
    let ranks = Universe::with_timeout(2, Duration::from_secs(300)).run(|c| {
        if c.rank() == 0 {
            c.recv(1, 9).map(|_| ())
        } else {
            Ok(())
        }
    });
    match &ranks[0] {
        Err(CommError::Deadlock { stuck, .. }) if stuck == &vec![0] => {
            out += &format!("deadlock: detector fired in {:?} naming rank 0\n", t0.elapsed());
        }
        other => {
            return Err(ArgError(format!(
                "deadlock: detector failed to diagnose a one-sided receive: {other:?}"
            )))
        }
    }

    // 3. Schedule explorer smoke: the seeded lost update must be found.
    match Explorer::exhaustive().explore(racy_counter_fixture) {
        Err(failure) => out += &format!("schedule: lost update found ({failure})\n"),
        Ok(n) => {
            return Err(ArgError(format!(
                "schedule: explorer missed the seeded lost update over {n} schedules"
            )))
        }
    }
    if let Some(seed) = args.optional::<u64>("seed")? {
        match Explorer::random(seed, 200).explore(racy_counter_fixture) {
            Err(failure) => {
                out += &format!("schedule: random mode (seed {seed}) found it too ({failure})\n")
            }
            Ok(n) => {
                return Err(ArgError(format!(
                    "schedule: random mode (seed {seed}) missed the bug over {n} schedules"
                )))
            }
        }
    }
    out += "check: all engines passed\n";
    Ok(out)
}

/// `qse check --plans`: statically verify the standard plan corpus
/// (circuits × rank counts × exchange modes × transpile strategies),
/// then prove the verifier still has teeth by feeding it three
/// deliberately broken fixtures that must each be rejected with a
/// diagnosis naming the offending plan step.
fn check_plans() -> Result<String, ArgError> {
    use qse_check::verify::{
        broken_fixture_ring_overrun, broken_fixture_tag_collision,
        broken_fixture_unrestored_layout, check_traces, verify_plan, VerifyOptions,
    };
    let mut out = String::new();

    let cases = qse_check::standard_corpus();
    let total = cases.len();
    let mut gates = 0u64;
    let mut bytes = 0u64;
    for case in &cases {
        let report = verify_plan(&case.plan, Some(&case.original), case.n_ranks, &case.opts)
            .map_err(|e| ArgError(format!("plans: {} FAILED verification: {e}", case.name)))?;
        gates += report.distributed_gates as u64;
        bytes += report.bytes_on_wire;
    }
    out += &format!(
        "plans: verified {total}/{total} corpus plans clean \
         ({gates} distributed gates, {bytes} bytes on the wire, symbolically)\n"
    );

    // Seeded-broken fixtures: each must be rejected, and the diagnosis
    // must carry enough detail to act on.
    let fixtures: [(&str, Result<(), qse_check::verify::VerifyError>); 3] = [
        ("tag collision", check_traces(&broken_fixture_tag_collision())),
        ("ring overrun", check_traces(&broken_fixture_ring_overrun())),
        (
            "unrestored layout",
            verify_plan(
                &broken_fixture_unrestored_layout(),
                None,
                4,
                &VerifyOptions::default(),
            )
            .map(|_| ()),
        ),
    ];
    for (name, result) in fixtures {
        match result {
            Err(e) => out += &format!("plans: broken fixture ({name}) rejected: {e}\n"),
            Ok(()) => {
                return Err(ArgError(format!(
                    "plans: broken fixture ({name}) passed verification — the verifier is blind"
                )))
            }
        }
    }
    out += "plans: corpus proved safe; all broken fixtures rejected\n";
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(tokens: &[&str]) -> Result<String, ArgError> {
        let args = Args::parse(tokens.iter().map(|s| s.to_string()))?;
        dispatch(&args)
    }

    #[test]
    fn help_lists_commands() {
        let out = run_cli(&["help"]).unwrap();
        for cmd in ["run", "model", "sweep", "transpile", "info", "check"] {
            assert!(out.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_cli(&["frobnicate"]).is_err());
    }

    #[test]
    fn info_describes_machines() {
        let cpu = run_cli(&["info"]).unwrap();
        assert!(cpu.contains("ARCHER2"));
        assert!(cpu.contains("switch per 8 nodes"));
        let gpu = run_cli(&["info", "--gpu"]).unwrap();
        assert!(gpu.contains("GPU"));
    }

    #[test]
    fn run_executes_small_qft() {
        let out = run_cli(&["run", "--qubits", "8", "--ranks", "4"]).unwrap();
        assert!(out.contains("over 4 ranks"));
        assert!(out.contains("distributed-gate share"));
    }

    #[test]
    fn run_rejects_oversized_registers() {
        let err = run_cli(&["run", "--qubits", "30"]).unwrap_err();
        assert!(err.0.contains("qse model"));
    }

    #[test]
    fn run_all_circuit_kinds() {
        for circuit in ["qft", "qft-blocked", "ghz", "grover", "bv"] {
            let out = run_cli(&["run", "--qubits", "6", "--ranks", "2", "--circuit", circuit]);
            assert!(out.is_ok(), "{circuit}: {out:?}");
        }
        assert!(run_cli(&["run", "--qubits", "6", "--circuit", "nope"]).is_err());
    }

    #[test]
    fn run_streamed_flag_accepted_and_reports_chunks() {
        let out = run_cli(&["run", "--qubits", "8", "--ranks", "4", "--streamed"]).unwrap();
        assert!(out.contains("exchange:"), "{out}");
        assert!(out.contains("peak scratch"), "{out}");
    }

    #[test]
    fn run_faults_flag_reports_recovery_and_replays_by_seed() {
        let args = &["run", "--qubits", "7", "--ranks", "4", "--faults", "seed=42"];
        let first = run_cli(args).unwrap();
        assert!(first.contains("faults: seed 42"), "{first}");
        assert!(first.contains("(recovered)"), "{first}");
        let fault_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("faults:"))
                .map(str::to_string)
                .expect("fault line present")
        };
        // Same seed → identical injected/retry/corruption counters.
        let second = run_cli(args).unwrap();
        assert_eq!(fault_line(&first), fault_line(&second), "seed replay drifted");
    }

    #[test]
    fn run_unrecoverable_faults_surface_a_typed_error() {
        let err = run_cli(&[
            "run", "--qubits", "6", "--ranks", "2",
            "--faults", "seed=1,fail=1,fail_burst=9,budget=2,delay=0,corrupt=0",
        ])
        .unwrap_err();
        assert!(err.0.contains("transient"), "{}", err.0);
    }

    #[test]
    fn run_rejects_malformed_fault_specs() {
        for spec in ["delay=0.5", "seed=x", "seed=1,bogus=3", "seed=1,corrupt=7"] {
            let err = run_cli(&["run", "--qubits", "6", "--faults", spec]).unwrap_err();
            assert!(err.0.contains("fault"), "spec {spec}: {}", err.0);
        }
    }

    #[test]
    fn run_transpile_flag_reports_measured_vs_modeled() {
        for mode in ["greedy", "beam"] {
            let out = run_cli(&[
                "run", "--qubits", "10", "--ranks", "4", "--transpile", mode,
            ])
            .unwrap();
            assert!(out.contains("transpile:"), "{out}");
            assert!(out.contains("measured vs"), "{out}");
            // All communication in a transpiled plan flows through batched
            // permutations, which the oracle prices exactly — measured and
            // modeled payloads must agree to the byte.
            let tail = out
                .lines()
                .find(|l| l.starts_with("transpile:"))
                .unwrap();
            let nums: Vec<u64> = tail
                .split_whitespace()
                .filter_map(|w| w.parse().ok())
                .collect();
            let (measured, modeled) = (nums[nums.len() - 2], nums[nums.len() - 1]);
            assert_eq!(measured, modeled, "{tail}");
            assert!(measured > 0, "{tail}");
        }
        assert!(run_cli(&["run", "--qubits", "8", "--transpile", "nope"]).is_err());
    }

    #[test]
    fn run_transpile_cuts_exchange_payload() {
        let payload = |out: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with("exchange:"))
                .and_then(|l| {
                    l.split(',')
                        .find(|part| part.contains("payload"))?
                        .split_whitespace()
                        .find_map(|w| w.parse().ok())
                })
                .expect("payload figure present")
        };
        let off = run_cli(&["run", "--qubits", "12", "--ranks", "4"]).unwrap();
        let beam =
            run_cli(&["run", "--qubits", "12", "--ranks", "4", "--transpile", "beam"]).unwrap();
        assert!(
            payload(&beam) < payload(&off),
            "beam {} !< off {}",
            payload(&beam),
            payload(&off)
        );
    }

    #[test]
    fn model_reports_modeled_vs_measured_exchange_when_feasible() {
        let out = run_cli(&["model", "--qubits", "12", "--nodes", "8"]).unwrap();
        assert!(out.contains("exchange payload (modeled):"), "{out}");
        assert!(out.contains("| measured:"), "{out}");
        let line = out
            .lines()
            .find(|l| l.starts_with("exchange payload"))
            .unwrap();
        let nums: Vec<u64> = line
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        assert_eq!(nums.len(), 2, "{line}");
        assert_eq!(nums[0], nums[1], "modeled and measured disagree: {line}");
        // At full scale the measurement is infeasible: modeled only.
        let big = run_cli(&["model", "--qubits", "38"]).unwrap();
        assert!(big.contains("exchange payload (modeled):"), "{big}");
        assert!(!big.contains("| measured:"), "{big}");
    }

    #[test]
    fn model_streamed_flag_changes_result() {
        let nb = run_cli(&["model", "--qubits", "38", "--fast"]).unwrap();
        let streamed = run_cli(&["model", "--qubits", "38", "--streamed"]).unwrap();
        assert_ne!(nb, streamed);
    }

    #[test]
    fn model_reports_sacct_line() {
        let out = run_cli(&["model", "--qubits", "38"]).unwrap();
        assert!(out.contains("AllocNodes=64"));
        assert!(out.contains("CU"));
        assert!(out.contains("% MPI"));
    }

    #[test]
    fn model_fast_flag_changes_result() {
        let plain = run_cli(&["model", "--qubits", "38"]).unwrap();
        let fast = run_cli(&["model", "--qubits", "38", "--fast"]).unwrap();
        assert_ne!(plain, fast);
    }

    #[test]
    fn model_rejects_infeasible() {
        let err = run_cli(&["model", "--qubits", "45"]).unwrap_err();
        assert!(err.0.contains("do not fit"));
        let err = run_cli(&["model", "--qubits", "42", "--node-kind", "highmem"]).unwrap_err();
        assert!(err.0.contains("do not fit"));
    }

    #[test]
    fn sweep_renders_table() {
        let out = run_cli(&["sweep", "--from", "33", "--to", "35"]).unwrap();
        assert!(out.contains("33"));
        assert!(out.contains("35"));
        assert!(run_cli(&["sweep", "--from", "40", "--to", "34"]).is_err());
    }

    #[test]
    fn transpile_reports_reduction() {
        let out = run_cli(&["transpile", "--qubits", "12", "--ranks", "8"]).unwrap();
        assert!(out.contains("before:"));
        assert!(out.contains("after:"));
        assert!(out.contains("x less"));
    }

    #[test]
    fn check_runs_all_engines() {
        let out = run_cli(&["check", "--seed", "7"]).unwrap();
        assert!(out.contains("lint: clean"), "{out}");
        assert!(out.contains("deadlock: detector fired"), "{out}");
        assert!(out.contains("schedule: lost update found"), "{out}");
        assert!(out.contains("seed 7"), "{out}");
        assert!(out.contains("all engines passed"), "{out}");
    }

    #[test]
    fn check_plans_proves_the_corpus_and_bites_on_fixtures() {
        let out = run_cli(&["check", "--plans"]).unwrap();
        assert!(out.contains("verified 216/216 corpus plans clean"), "{out}");
        assert!(out.contains("broken fixture (tag collision) rejected"), "{out}");
        assert!(out.contains("broken fixture (ring overrun) rejected"), "{out}");
        assert!(out.contains("broken fixture (unrestored layout) rejected"), "{out}");
        assert!(out.contains("all broken fixtures rejected"), "{out}");
    }

    #[test]
    fn check_rejects_a_missing_root() {
        let err = run_cli(&["check", "--root", "/nonexistent/nowhere"]).unwrap_err();
        assert!(err.0.contains("lint walk failed"), "{}", err.0);
    }

    #[test]
    fn unknown_flags_are_rejected_per_command() {
        assert!(run_cli(&["info", "--qubits", "3"]).is_err());
        assert!(run_cli(&["sweep", "--qubits", "3"]).is_err());
    }
}
