//! Hand-rolled argument parsing (no external parser dependency).
//!
//! Grammar: `qse <command> [--flag value | --switch]...`. Every flag has
//! a typed accessor with a default; unknown flags are an error so typos
//! fail loudly rather than silently using defaults.

use std::collections::BTreeMap;

/// Parsed command line: a command word plus `--key [value]` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, Option<String>>,
}

/// A parse or validation failure, with a message for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command; try `qse help`".into()))?;
        if command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a command before flags, got `{command}`"
            )));
        }
        let mut flags = BTreeMap::new();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument `{token}`")));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag `--`".into()));
            }
            // A value follows unless the next token is another flag.
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next(),
                _ => None,
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("flag `--{name}` given twice")));
            }
        }
        Ok(Args { command, flags })
    }

    /// All flag names, for unknown-flag validation.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }

    /// Rejects any flag not in `allowed`.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flag_names() {
            if !allowed.contains(&name) {
                return Err(ArgError(format!(
                    "unknown flag `--{name}` for `{}` (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    /// True when the boolean switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A string flag with a default.
    pub fn string(&self, name: &str, default: &str) -> String {
        match self.flags.get(name) {
            Some(Some(v)) => v.clone(),
            _ => default.to_string(),
        }
    }

    /// A required parsed value.
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        match self.flags.get(name) {
            Some(Some(v)) => v
                .parse()
                .map_err(|_| ArgError(format!("cannot parse `--{name} {v}`"))),
            Some(None) => Err(ArgError(format!("flag `--{name}` needs a value"))),
            None => Err(ArgError(format!("missing required flag `--{name}`"))),
        }
    }

    /// An optional parsed value with a default.
    pub fn value<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            Some(Some(v)) => v
                .parse()
                .map_err(|_| ArgError(format!("cannot parse `--{name} {v}`"))),
            Some(None) => Err(ArgError(format!("flag `--{name}` needs a value"))),
            None => Ok(default),
        }
    }

    /// An optional parsed value (None when absent).
    pub fn optional<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.flags.get(name) {
            Some(Some(v)) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("cannot parse `--{name} {v}`"))),
            Some(None) => Err(ArgError(format!("flag `--{name}` needs a value"))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["run", "--qubits", "12", "--non-blocking"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.required::<u32>("qubits").unwrap(), 12);
        assert!(a.switch("non-blocking"));
        assert!(!a.switch("half-swaps"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["model"]).unwrap();
        assert_eq!(a.value::<u64>("nodes", 64).unwrap(), 64);
        assert_eq!(a.string("circuit", "qft"), "qft");
        assert_eq!(a.optional::<u32>("fuse").unwrap(), None);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--qubits", "3"]).is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(parse(&["run", "--qubits", "3", "--qubits", "4"]).is_err());
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(parse(&["run", "12"]).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let a = parse(&["run"]).unwrap();
        let err = a.required::<u32>("qubits").unwrap_err();
        assert!(err.0.contains("--qubits"));
    }

    #[test]
    fn unparsable_value() {
        let a = parse(&["run", "--qubits", "many"]).unwrap();
        assert!(a.required::<u32>("qubits").is_err());
    }

    #[test]
    fn switch_followed_by_flag_takes_no_value() {
        let a = parse(&["run", "--fast", "--qubits", "10"]).unwrap();
        assert!(a.switch("fast"));
        assert_eq!(a.required::<u32>("qubits").unwrap(), 10);
    }

    #[test]
    fn unknown_flags_rejected_by_expect_only() {
        let a = parse(&["run", "--qubitz", "3"]).unwrap();
        let err = a.expect_only(&["qubits", "ranks"]).unwrap_err();
        assert!(err.0.contains("--qubitz"));
        let a = parse(&["run", "--qubits", "3"]).unwrap();
        assert!(a.expect_only(&["qubits"]).is_ok());
    }
}
