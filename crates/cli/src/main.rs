//! `qse` — the command-line interface to the reproduction.
//!
//! ```sh
//! qse help
//! qse run --qubits 12 --ranks 4 --circuit grover
//! qse model --qubits 44 --fast
//! qse sweep --from 33 --to 44 --gpu
//! qse transpile --qubits 16 --ranks 8
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help_text());
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
