//! A minimal JSON value type and serializer.
//!
//! Experiment records and bench results are written as JSON for
//! EXPERIMENTS.md; nothing in the workspace parses JSON back, so this
//! module only serialises. Types opt in by implementing [`ToJson`]
//! (build a [`Json`] tree), and [`Json::pretty`] renders it with the
//! same 2-space indentation `serde_json::to_string_pretty` produced, so
//! existing `results/*.json` diffs stay readable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (serialised without a decimal point).
    Int(i64),
    /// An unsigned integer beyond `i64` range.
    UInt(u64),
    /// A double; non-finite values serialise as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact one-line rendering.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation and a trailing newline
    /// omitted (matching `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest-roundtrip Display; force a decimal
                    // point so the value re-reads as a float.
                    let s = format!("{n}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree — the workspace's `Serialize`.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(i) => Json::Int(i),
                    Err(_) => Json::UInt(*self as u64),
                }
            }
        }
    )*};
}

impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(3.0).to_string(), "3.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        for v in [0.1, 1e-300, 123456.789, -0.007, 1e21] {
            let s = Json::Num(v).to_string();
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\n\t\u{1}".into()).to_string(),
            r#""a\"b\\c\n\t\u0001""#
        );
    }

    #[test]
    fn compact_nesting() {
        let j = Json::object([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name", Json::Str("qft".into())),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,2],"name":"qft"}"#);
    }

    #[test]
    fn pretty_matches_serde_json_shape() {
        let j = Json::object([("x", Json::Int(7))]);
        assert_eq!(j.pretty(), "{\n  \"x\": 7\n}");
        let arr = Json::Arr(vec![Json::object([("a", Json::Bool(false))])]);
        assert_eq!(arr.pretty(), "[\n  {\n    \"a\": false\n  }\n]");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::object::<&str, _>([]).pretty(), "{}");
    }

    #[test]
    fn tojson_impls_compose() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.to_json().to_string(), "[1,2,3]");
        let m: BTreeMap<u64, usize> = [(3u64, 10usize), (1, 20)].into();
        assert_eq!(m.to_json().to_string(), r#"{"1":20,"3":10}"#);
        assert_eq!(None::<f64>.to_json().to_string(), "null");
        assert_eq!(Some("hi").to_json().to_string(), "\"hi\"");
        assert_eq!(u64::MAX.to_json().to_string(), "18446744073709551615");
    }
}
