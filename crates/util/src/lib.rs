//! Std-only infrastructure shared by every crate in the workspace.
//!
//! The workspace builds and tests from a cold cache with zero network
//! access: everything that would conventionally come from a registry
//! dependency lives here instead, small enough to audit in one sitting.
//!
//! * [`rng`] — `SplitMix64` / `Xoshiro256**` PRNGs behind a small
//!   [`rng::Rng`] trait (replaces `rand`);
//! * [`json`] — a JSON value type and serializer (replaces
//!   `serde`/`serde_json` for experiment output);
//! * [`parallel`] — scoped-thread data parallelism for the statevector
//!   kernels (replaces `rayon`);
//! * [`bytes`] — a cheaply-cloneable shared byte buffer (replaces
//!   `bytes::Bytes`);
//! * [`mailbox`] — `Mutex`/`Condvar` mailbox channels for the thread
//!   cluster (replaces `crossbeam::channel`);
//! * [`check`] — seeded property loops with deterministic shrink-by-
//!   halving (replaces `proptest`);
//! * [`bench`] — a warmup + median-of-N timing harness with JSON output
//!   (replaces `criterion`);
//! * [`sync`] — the pluggable `sync_point()` scheduling hook that lets
//!   `qse-check`'s interleaving explorer drive the mailbox and pool
//!   (no-op unless a checker installs a hook).

pub mod bench;
pub mod bytes;
pub mod check;
pub mod json;
pub mod mailbox;
pub mod parallel;
pub mod rng;
pub mod sync;

pub use bytes::Bytes;
pub use json::{Json, ToJson};
pub use rng::{Rng, SplitMix64, StdRng, Xoshiro256StarStar};
