//! Seeded property loops with deterministic shrink-by-halving.
//!
//! Replaces `proptest` with something auditable in a page: a property is
//! a closure over a seeded [`StdRng`] and an integer *size*. The harness
//! runs it for `cases` deterministic seeds at randomised sizes; on a
//! failure it re-runs the failing seed at halved sizes (`size/2`,
//! `size/4`, …, 1) and reports the smallest size that still fails — for
//! circuit-shaped inputs, "size" is the gate count, so halving is the
//! shrink that matters. Seeds are derived from a fixed stream, so a
//! failure report (`seed=…, size=…`) reproduces exactly with
//! `run_case(seed, size, prop)`.

use crate::rng::{Rng, SplitMix64, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `prop` once with the generator and size a failure report names.
pub fn run_case<F: FnMut(&mut StdRng, usize)>(seed: u64, size: usize, mut prop: F) {
    let mut rng = StdRng::seed_from_u64(seed);
    prop(&mut rng, size);
}
fn case_fails<F>(seed: u64, size: usize, prop: &F) -> Option<String>
where
    F: Fn(&mut StdRng, usize),
{
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(seed);
        prop(&mut rng, size);
    }));
    match result {
        Ok(()) => None,
        Err(payload) => Some(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Checks `prop` over `cases` seeded runs with sizes in `1..=max_size`.
///
/// On failure, shrinks the failing case by halving its size until the
/// property passes, then panics with the seed and minimal failing size.
/// The panic message of the minimal case is preserved, so
/// `#[should_panic(expected = …)]` tests still match.
pub fn check_with_size<F>(cases: u64, max_size: usize, prop: F)
where
    F: Fn(&mut StdRng, usize),
{
    assert!(max_size >= 1, "max_size must be at least 1");
    // A fixed stream of (seed, size) pairs, independent of the property.
    let mut meta = SplitMix64::seed_from_u64(0x9E37_79B9_7F4A_7C15);
    for case in 0..cases {
        let seed = meta.next_u64();
        let size = 1 + (meta.next_u64() as usize) % max_size;
        if let Some(first_msg) = case_fails(seed, size, &prop) {
            // Shrink: halve the size while the property keeps failing.
            let (mut best_size, mut best_msg) = (size, first_msg);
            let mut s = size / 2;
            while s >= 1 {
                match case_fails(seed, s, &prop) {
                    Some(msg) => {
                        best_size = s;
                        best_msg = msg;
                        if s == 1 {
                            break;
                        }
                        s /= 2;
                    }
                    None => break,
                }
            }
            panic!(
                "property failed at case {case}: seed={seed}, size={best_size} \
                 (first failure at size {size}): {best_msg}"
            );
        }
    }
}

/// Checks a size-independent property over `cases` seeded runs.
pub fn check<F>(cases: u64, prop: F)
where
    F: Fn(&mut StdRng),
{
    check_with_size(cases, 1, |rng, _| prop(rng));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let runs = AtomicU64::new(0);
        check(25, |rng| {
            runs.fetch_add(1, Ordering::SeqCst);
            let v = rng.random_f64();
            assert!((0.0..1.0).contains(&v));
        });
        assert_eq!(runs.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn sizes_stay_in_range() {
        check_with_size(50, 40, |_, size| {
            assert!((1..=40).contains(&size), "size {size} out of range");
        });
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_report() {
        check(10, |_| panic!("intentional"));
    }

    #[test]
    #[should_panic(expected = "too big")]
    fn original_message_is_preserved() {
        check_with_size(10, 64, |_, size| {
            assert!(size < 100, "too big: {size}");
            panic!("too big: every size fails here");
        });
    }

    #[test]
    fn shrink_finds_smallest_failing_size() {
        // Fails for size >= 8; the report must name a size < 16 once
        // halving lands in the failing region's lower edge (8).
        let result = std::panic::catch_unwind(|| {
            check_with_size(50, 64, |_, size| assert!(size < 8, "size {size} >= 8"));
        });
        let msg = result.unwrap_err();
        let msg = msg
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        // The shrunk size is the smallest power-of-two fraction that
        // still fails — between 8 and 15 by construction.
        let size: usize = msg
            .split("size=")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("report names a size");
        assert!((8..16).contains(&size), "report: {msg}");
    }

    #[test]
    fn run_case_reproduces_deterministically() {
        let mut first = None;
        for _ in 0..2 {
            let mut value = 0.0;
            run_case(99, 5, |rng, size| {
                value = rng.random_f64() * size as f64;
            });
            match first {
                None => first = Some(value),
                Some(f) => assert_eq!(f, value),
            }
        }
    }
}
