//! Persistent-pool data parallelism for the statevector kernels.
//!
//! Exposes the one shape the kernels actually need: a list of independent
//! work items (disjoint mutable chunk views), drained through a shared
//! cursor. Work items are coarse (kernels batch ≥ 4096 amplitudes per
//! item), so the per-item `Mutex` on the cursor is noise next to the
//! memory sweep it dispatches.
//!
//! Dispatch runs on a process-wide *resident* worker pool rather than
//! spawning scoped threads per call: statevector simulation issues one
//! parallel sweep per gate, and at thousands of gates per circuit the
//! spawn+join cost of a fresh thread set dominated small sweeps. Workers
//! are created once (lazily, on the first parallel call), park on a
//! condvar between jobs, and are woken by a notify — per-gate dispatch
//! cost drops from thread creation to a wakeup.
//!
//! Invariants the pool preserves from the scoped-thread implementation:
//!
//! * the caller participates in draining its own job, so forward progress
//!   never depends on a worker being free (concurrent callers — e.g. the
//!   rank threads of a `Universe` — each drain their own job);
//! * panics in the work closure propagate to the submitting caller with
//!   their original payload, after every worker has left the job;
//! * `QSE_THREADS=1` (or a single-item list) short-circuits to a plain
//!   sequential loop and never touches the pool;
//! * nested `parallel_for_each` calls are safe: a pool worker that
//!   re-enters runs the nested job inline (sequentially), so workers
//!   never block on other workers and cannot deadlock.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::sync::{self, SyncOp};

/// Worker-thread count: `QSE_THREADS` if set (≥ 1), else the machine's
/// available parallelism. Read once per process.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("QSE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Type-erased pointer to a caller-stack drain closure.
///
/// SAFETY: the submitting caller blocks in [`run_job`] until the job is
/// retired and no worker is inside the closure, so the pointee outlives
/// every dereference despite the erased lifetime.
struct DrainPtr(*const (dyn Fn() + Sync));
// SAFETY: the pointee is `Sync` and is only called, never moved.
unsafe impl Send for DrainPtr {}
// SAFETY: same argument as `Send` — shared references only ever call
// the `Sync` pointee.
unsafe impl Sync for DrainPtr {}

/// Mutable half of a job, guarded by `Job::state`.
struct JobState {
    /// Workers currently inside the drain closure.
    active: usize,
    /// First panic payload observed in a worker.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One submitted parallel call.
struct Job {
    /// Generation counter value — identifies the job in the queue.
    id: u64,
    drain: DrainPtr,
    state: Mutex<JobState>,
    /// Signalled whenever `active` drops to zero.
    done: Condvar,
}

struct PoolQueue {
    /// Jobs whose cursors may still hold items. Workers always join the
    /// front job; a job is removed as soon as any participant observes
    /// its cursor exhausted.
    jobs: Vec<Arc<Job>>,
    /// Monotonic job-id generator (the pool's epoch counter).
    next_id: u64,
}

struct Pool {
    queue: Mutex<PoolQueue>,
    /// Signalled when a job is pushed; workers park here between jobs.
    work: Condvar,
}

thread_local! {
    /// True on pool worker threads: a nested parallel call from inside a
    /// work closure must run inline rather than wait on the pool.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Stable per-thread slot for NUMA-shaped affinity: pool worker `i`
    /// is slot `i + 1` for the life of the process; every non-pool
    /// thread (including each job's caller) is slot 0. Affine dispatch
    /// uses the slot to route a thread back to the same item subrange
    /// sweep after sweep, so pages stay on the node that first touched
    /// them.
    static WORKER_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The calling thread's stable affinity slot in `0..num_threads()`.
pub fn worker_slot() -> usize {
    WORKER_SLOT.with(|s| s.get())
}

/// The process-wide pool, created on first use with `num_threads() − 1`
/// resident workers (the caller of each job is the final participant).
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(PoolQueue {
                jobs: Vec::new(),
                next_id: 0,
            }),
            work: Condvar::new(),
        }));
        for i in 0..num_threads().saturating_sub(1) {
            std::thread::Builder::new()
                .name(format!("qse-pool-{i}"))
                .spawn(move || {
                    WORKER_SLOT.with(|s| s.set(i + 1));
                    worker_loop(pool)
                })
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool) {
    IN_POOL_WORKER.with(|f| f.set(true));
    let mut q = pool.queue.lock().expect("pool queue poisoned");
    loop {
        let Some(job) = q.jobs.first().cloned() else {
            q = pool.work.wait(q).expect("pool queue poisoned");
            continue;
        };
        // Join while holding the queue lock: once a job leaves the queue,
        // its `active` count can only decrease, which is what lets the
        // caller's completion wait conclude safely.
        job.state.lock().expect("job state poisoned").active += 1;
        drop(q);

        // SAFETY: the job was still queued under the lock above, so the
        // submitting caller is blocked in `run_job` and the pointee is
        // alive for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.drain.0 })()));

        // The drain returned: its cursor is exhausted (or it panicked and
        // the rest of the items belong to the remaining participants).
        // Retire the job so no new worker joins, then leave it.
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        queue.jobs.retain(|j| j.id != job.id);
        let mut st = job.state.lock().expect("job state poisoned");
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.active -= 1;
        if st.active == 0 {
            job.done.notify_all();
        }
        drop(st);
        q = queue;
    }
}

/// Submits `drain` to the pool, participates in it on the calling thread,
/// and returns once every participant has left the closure. Worker panics
/// (or the caller's own) resume on the calling thread with their original
/// payload.
fn run_job(drain: &(dyn Fn() + Sync)) {
    sync::sync_point(SyncOp::PoolSubmit);
    let pool = pool();
    let job = {
        let mut q = pool.queue.lock().expect("pool queue poisoned");
        q.next_id += 1;
        let raw: *const (dyn Fn() + Sync) = drain;
        let job = Arc::new(Job {
            id: q.next_id,
            // SAFETY: erases the closure's lifetime; this function does
            // not return until no worker can touch the pointer again.
            drain: DrainPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    raw,
                )
            }),
            state: Mutex::new(JobState {
                active: 0,
                panic: None,
            }),
            done: Condvar::new(),
        });
        q.jobs.push(job.clone());
        job
    };
    pool.work.notify_all();

    // Participate: the caller is always one of the drain threads, so the
    // job completes even if every resident worker is busy elsewhere.
    let caller_result = catch_unwind(AssertUnwindSafe(drain));

    // Retire the job (idempotent — a worker may have done it already),
    // then wait for stragglers still inside the closure.
    pool.queue
        .lock()
        .expect("pool queue poisoned")
        .jobs
        .retain(|j| j.id != job.id);
    let mut st = job.state.lock().expect("job state poisoned");
    while st.active > 0 {
        st = job.done.wait(st).expect("job state poisoned");
    }
    let worker_panic = st.panic.take();
    drop(st);

    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Runs `f` over every item, fanning out to the resident worker pool.
///
/// Items are handed out through a shared cursor, so a slow item does not
/// stall the rest of the list (dynamic load balancing, like Rayon's
/// work stealing at chunk granularity). Falls back to a sequential loop
/// for a single item, a single-thread configuration, or when called from
/// inside a pool worker (nested parallelism).
///
/// Panics in `f` propagate to the caller after all participants stop.
pub fn parallel_for_each<T: Send>(items: Vec<T>, f: impl Fn(T) + Sync) {
    for_each_with_threads(num_threads(), items, f)
}

/// [`parallel_for_each`] with an explicit thread budget (testable without
/// mutating `QSE_THREADS`, which is latched once per process).
fn for_each_with_threads<T: Send>(n_threads: usize, items: Vec<T>, f: impl Fn(T) + Sync) {
    let n_threads = n_threads.min(items.len());
    if n_threads <= 1 || IN_POOL_WORKER.with(|w| w.get()) {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    let drain = || loop {
        // Take the lock only to pop; run the item outside it.
        let item = queue.lock().expect("queue poisoned").next();
        match item {
            Some(it) => {
                sync::sync_point(SyncOp::PoolTask);
                f(it)
            }
            None => break,
        }
    };
    run_job(&drain);
}

/// The contiguous item subrange owned by `slot` when `len` items are
/// statically partitioned across `slots` affinity slots: the first
/// `len % slots` slots take one extra item. Purely arithmetic, so the
/// owner of an item never depends on timing — the same slot touches the
/// same amplitude range on every sweep of a same-length list.
pub fn affine_range(len: usize, slot: usize, slots: usize) -> std::ops::Range<usize> {
    debug_assert!(slots >= 1 && slot < slots);
    let base = len / slots;
    let rem = len % slots;
    let start = slot * base + slot.min(rem);
    start..start + base + usize::from(slot < rem)
}

/// Runs `f` over every item with stable worker↔item affinity.
///
/// Each participating thread first drains the contiguous subrange that
/// [`affine_range`] assigns to its [`worker_slot`], in index order, then
/// wraps around and steals from slower participants' leftovers so a
/// stalled thread never strands work. Because amplitude pages are
/// first-touched through this same static partition, the common case
/// (no stealing) keeps every worker sweeping the pages it faulted in.
///
/// Results are bit-for-bit identical to [`parallel_for_each`] for
/// independent items regardless of `QSE_THREADS` — only the visit
/// *schedule* changes, never the per-item computation. The sequential
/// fallbacks (single item, one thread, nested call) match
/// [`parallel_for_each`] exactly.
pub fn parallel_for_each_affine<T: Send>(items: Vec<T>, f: impl Fn(T) + Sync) {
    let n_threads = num_threads().min(items.len());
    if n_threads <= 1 || IN_POOL_WORKER.with(|w| w.get()) {
        for item in items {
            f(item);
        }
        return;
    }
    let len = items.len();
    let slots = num_threads();
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let cells = &cells;
    let drain = move || {
        let slot = worker_slot().min(slots - 1);
        let own = affine_range(len, slot, slots);
        let (start, end) = (own.start, own.end);
        // Own range first (index order), then wrap around the rest.
        let order = (start..end).chain((end..len).chain(0..start));
        for idx in order {
            let taken = cells[idx].lock().expect("affine cell poisoned").take();
            if let Some(item) = taken {
                sync::sync_point(SyncOp::PoolTask);
                f(item);
            }
        }
    };
    run_job(&drain);
}

/// Maps every item to an `f64` and returns the sum.
///
/// Summation order is deterministic (partial sums are combined in item
/// order), so repeated runs on the same data agree bit-for-bit.
pub fn parallel_map_sum<T: Send>(items: Vec<T>, f: impl Fn(T) -> f64 + Sync) -> f64 {
    let n = items.len();
    let slots: Vec<Mutex<f64>> = (0..n).map(|_| Mutex::new(0.0)).collect();
    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let slots_ref = &slots;
    let f = &f;
    parallel_for_each(indexed, move |(i, item)| {
        *slots_ref[i].lock().expect("slot poisoned") = f(item);
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot poisoned"))
        .sum()
}

/// Picks a work-item length for splitting `len` elements: roughly four
/// items per worker thread for load balancing, but never below
/// `min_chunk` (kernels choose `min_chunk` so per-item overhead stays
/// negligible).
pub fn chunk_len(len: usize, min_chunk: usize) -> usize {
    let target = len.div_ceil(num_threads() * 4);
    target.max(min_chunk).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    #[test]
    fn visits_every_item_exactly_once() {
        let n = 1000;
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        parallel_for_each(items, |i| {
            flags[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn mutates_disjoint_chunks() {
        let mut data = vec![0u64; 4096];
        let chunks: Vec<(usize, &mut [u64])> =
            data.chunks_mut(64).enumerate().collect();
        parallel_for_each(chunks, |(ci, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn map_sum_is_exact_and_order_stable() {
        let items: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let total = parallel_map_sum(items.clone(), |x| x);
        assert_eq!(total, 5050.0);
        let again = parallel_map_sum(items, |x| x);
        assert_eq!(total, again);
    }

    #[test]
    fn empty_and_single_item_work() {
        parallel_for_each(Vec::<u32>::new(), |_| panic!("no items"));
        let hit = AtomicUsize::new(0);
        parallel_for_each(vec![7u32], |v| {
            assert_eq!(v, 7);
            hit.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert_eq!(parallel_map_sum(Vec::<f64>::new(), |x| x), 0.0);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn affine_ranges_tile_the_items_exactly() {
        for len in [0usize, 1, 5, 7, 8, 100, 4097] {
            for slots in [1usize, 2, 3, 4, 7, 16] {
                let mut covered = Vec::new();
                for s in 0..slots {
                    covered.extend(affine_range(len, s, slots));
                }
                assert_eq!(
                    covered,
                    (0..len).collect::<Vec<_>>(),
                    "len={len} slots={slots}"
                );
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> =
                    (0..slots).map(|s| affine_range(len, s, slots).len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "len={len} slots={slots} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn affine_visits_every_item_exactly_once() {
        let n = 1000;
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_each_affine((0..n).collect::<Vec<usize>>(), |i| {
            flags[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn affine_mutates_disjoint_chunks() {
        let mut data = vec![0u64; 4096];
        let chunks: Vec<(usize, &mut [u64])> = data.chunks_mut(64).enumerate().collect();
        parallel_for_each_affine(chunks, |(ci, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn affine_steals_leftovers_from_slow_slots() {
        // One deliberately slow item must not strand the rest of its
        // slot's range: other participants wrap around and finish it.
        let n = num_threads() * 8;
        let count = AtomicUsize::new(0);
        parallel_for_each_affine((0..n).collect::<Vec<usize>>(), |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), n);
    }

    #[test]
    fn worker_slots_are_stable_across_jobs() {
        // A thread's slot never changes between jobs, and all slots are
        // inside 0..num_threads().
        let seen: Mutex<std::collections::HashMap<ThreadId, usize>> =
            Mutex::new(std::collections::HashMap::new());
        for _ in 0..4 {
            parallel_for_each_affine((0..num_threads() * 4).collect::<Vec<usize>>(), |_| {
                let slot = worker_slot();
                assert!(slot < num_threads());
                let mut map = seen.lock().unwrap();
                let prior = map.insert(std::thread::current().id(), slot);
                if let Some(p) = prior {
                    assert_eq!(p, slot, "slot changed between jobs");
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            });
        }
    }

    #[test]
    #[should_panic(expected = "affine panic 7")]
    fn affine_panic_propagates() {
        parallel_for_each_affine((0..256usize).collect::<Vec<_>>(), |i| {
            if i == 201 {
                panic!("affine panic {}", 7);
            }
        });
    }

    #[test]
    fn chunk_len_respects_minimum() {
        assert!(chunk_len(1 << 20, 4096) >= 4096);
        assert!(chunk_len(10, 4096) >= 4096);
        assert!(chunk_len(0, 1) >= 1);
    }

    #[test]
    #[should_panic(expected = "deliberate kernel panic 42")]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<usize> = (0..256).collect();
        parallel_for_each(items, |i| {
            if i == 37 {
                panic!("deliberate kernel panic {}", 42);
            }
            std::hint::black_box(i);
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // A panic in one job must not poison the pool for later jobs.
        let bad = catch_unwind(AssertUnwindSafe(|| {
            parallel_for_each((0..64usize).collect::<Vec<_>>(), |i| {
                if i % 2 == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(bad.is_err());
        let count = AtomicUsize::new(0);
        parallel_for_each((0..64usize).collect::<Vec<_>>(), |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn single_thread_budget_runs_sequentially_in_order() {
        // The QSE_THREADS=1 path: no pool involvement, caller's thread
        // only, items in submission order.
        let order = Mutex::new(Vec::new());
        let me = std::thread::current().id();
        for_each_with_threads(1, (0..100usize).collect(), |i| {
            assert_eq!(std::thread::current().id(), me, "escaped the caller thread");
            order.lock().unwrap().push(i);
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_complete_without_deadlock() {
        // Outer job items each launch an inner parallel call. Inner calls
        // from pool workers run inline; inner calls from the caller thread
        // queue a second job. Either way every leaf runs exactly once.
        let n_outer = 32;
        let n_inner = 64;
        let count = AtomicUsize::new(0);
        parallel_for_each((0..n_outer).collect::<Vec<usize>>(), |_| {
            parallel_for_each((0..n_inner).collect::<Vec<usize>>(), |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), n_outer * n_inner);
    }

    #[test]
    fn nested_results_match_sequential() {
        // A nested parallel reduction agrees with the straight-line loop.
        let items: Vec<usize> = (0..48).collect();
        let got = parallel_map_sum(items.clone(), |i| {
            parallel_map_sum((0..=i).map(|k| k as f64).collect(), |x| x)
        });
        let want: f64 = items
            .iter()
            .map(|&i| (0..=i).map(|k| k as f64).sum::<f64>())
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn workers_are_resident_across_calls() {
        // Every thread that ever executes an item belongs to the fixed set
        // {caller} ∪ {pool workers}: repeated calls must not mint new
        // threads the way scoped spawning did.
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..5 {
            let items: Vec<usize> = (0..num_threads() * 8).collect();
            parallel_for_each(items, |_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        }
        assert!(seen.into_inner().unwrap().len() <= num_threads());
    }

    #[test]
    fn concurrent_outside_callers_share_the_pool() {
        // Two non-pool threads submitting jobs at once (the Universe rank
        // pattern): both complete, each visiting all of its items.
        let totals: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for t in &totals {
                scope.spawn(move || {
                    parallel_for_each((0..500usize).collect::<Vec<_>>(), |_| {
                        t.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        for t in &totals {
            assert_eq!(t.load(Ordering::SeqCst), 500);
        }
    }
}
