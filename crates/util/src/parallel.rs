//! Scoped-thread data parallelism for the statevector kernels.
//!
//! Replaces Rayon's `par_chunks_mut` pattern with the one shape the
//! kernels actually need: a list of independent work items (disjoint
//! mutable chunk views), drained by a small pool of scoped threads
//! through a shared cursor. Work items are coarse (kernels batch ≥ 4096
//! amplitudes per item), so the per-item `Mutex` on the cursor is noise
//! next to the memory sweep it dispatches.

use std::sync::{Mutex, OnceLock};

/// Worker-thread count: `QSE_THREADS` if set (≥ 1), else the machine's
/// available parallelism. Read once per process.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("QSE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Runs `f` over every item on a pool of scoped threads.
///
/// Items are handed out through a shared cursor, so a slow item does not
/// stall the rest of the list (dynamic load balancing, like Rayon's
/// work stealing at chunk granularity). Falls back to a sequential loop
/// for a single item or a single-thread pool.
///
/// Panics in `f` propagate to the caller after all threads stop.
pub fn parallel_for_each<T: Send>(items: Vec<T>, f: impl Fn(T) + Sync) {
    let n_threads = num_threads().min(items.len());
    if n_threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    let f = &f;
    let queue = &queue;
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(move || loop {
                // Take the lock only to pop; run the item outside it.
                let item = queue.lock().expect("queue poisoned").next();
                match item {
                    Some(it) => f(it),
                    None => break,
                }
            });
        }
    });
}

/// Maps every item to an `f64` and returns the sum.
///
/// Summation order is deterministic (partial sums are combined in item
/// order), so repeated runs on the same data agree bit-for-bit.
pub fn parallel_map_sum<T: Send>(items: Vec<T>, f: impl Fn(T) -> f64 + Sync) -> f64 {
    let n = items.len();
    let slots: Vec<Mutex<f64>> = (0..n).map(|_| Mutex::new(0.0)).collect();
    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let slots_ref = &slots;
    let f = &f;
    parallel_for_each(indexed, move |(i, item)| {
        *slots_ref[i].lock().expect("slot poisoned") = f(item);
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot poisoned"))
        .sum()
}

/// Picks a work-item length for splitting `len` elements: roughly four
/// items per worker thread for load balancing, but never below
/// `min_chunk` (kernels choose `min_chunk` so per-item overhead stays
/// negligible).
pub fn chunk_len(len: usize, min_chunk: usize) -> usize {
    let target = len.div_ceil(num_threads() * 4);
    target.max(min_chunk).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn visits_every_item_exactly_once() {
        let n = 1000;
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        parallel_for_each(items, |i| {
            flags[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn mutates_disjoint_chunks() {
        let mut data = vec![0u64; 4096];
        let chunks: Vec<(usize, &mut [u64])> =
            data.chunks_mut(64).enumerate().collect();
        parallel_for_each(chunks, |(ci, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn map_sum_is_exact_and_order_stable() {
        let items: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let total = parallel_map_sum(items.clone(), |x| x);
        assert_eq!(total, 5050.0);
        let again = parallel_map_sum(items, |x| x);
        assert_eq!(total, again);
    }

    #[test]
    fn empty_and_single_item_work() {
        parallel_for_each(Vec::<u32>::new(), |_| panic!("no items"));
        let hit = AtomicUsize::new(0);
        parallel_for_each(vec![7u32], |v| {
            assert_eq!(v, 7);
            hit.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert_eq!(parallel_map_sum(Vec::<f64>::new(), |x| x), 0.0);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn chunk_len_respects_minimum() {
        assert!(chunk_len(1 << 20, 4096) >= 4096);
        assert!(chunk_len(10, 4096) >= 4096);
        assert!(chunk_len(0, 1) >= 1);
    }
}
