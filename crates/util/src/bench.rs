//! A small timing harness: warmup + median-of-N, JSON output.
//!
//! Replaces `criterion` for the workspace's benches. Each measurement
//! auto-calibrates an iteration count so one sample lasts at least a
//! few milliseconds, runs a warmup pass, takes N timed samples, and
//! reports min / median / max per iteration. `finish()` prints a table
//! and writes `results/bench_<group>.json` (directory overridable with
//! `QSE_RESULTS_DIR`, like the experiment harness).
//!
//! Keep benches honest: wrap inputs and results in
//! [`std::hint::black_box`] exactly as under criterion.

use crate::json::{Json, ToJson};
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 15;

/// Target wall-clock per sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// One benchmark's collected statistics (seconds per iteration).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name within its group.
    pub name: String,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest per-iteration time, seconds.
    pub min_s: f64,
    /// Median per-iteration time, seconds.
    pub median_s: f64,
    /// Slowest per-iteration time, seconds.
    pub max_s: f64,
    /// Optional bytes processed per iteration (for throughput).
    pub bytes_per_iter: Option<u64>,
}

impl Measurement {
    /// Median throughput in GiB/s, when a byte count was declared.
    pub fn gib_per_s(&self) -> Option<f64> {
        self.bytes_per_iter
            .map(|b| b as f64 / self.median_s / (1u64 << 30) as f64)
    }
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
            ("samples", self.samples.to_json()),
            ("min_s", self.min_s.to_json()),
            ("median_s", self.median_s.to_json()),
            ("max_s", self.max_s.to_json()),
            ("bytes_per_iter", self.bytes_per_iter.to_json()),
            ("gib_per_s", self.gib_per_s().to_json()),
        ])
    }
}

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct BenchGroup {
    group: String,
    samples: usize,
    throughput_bytes: Option<u64>,
    results: Vec<Measurement>,
}

impl BenchGroup {
    /// Starts a group named `group`.
    pub fn new(group: impl Into<String>) -> Self {
        BenchGroup {
            group: group.into(),
            samples: DEFAULT_SAMPLES,
            throughput_bytes: None,
            results: Vec::new(),
        }
    }

    /// Sets the timed sample count for subsequent benches.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples >= 3, "need at least 3 samples for a median");
        self.samples = samples;
        self
    }

    /// Declares bytes processed per iteration (enables GiB/s reporting).
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Times `f`, auto-calibrating iterations per sample.
    pub fn bench(&mut self, name: impl Into<String>, mut f: impl FnMut()) -> &mut Self {
        let name = name.into();
        // Calibrate: double the iteration count until one batch takes
        // TARGET_SAMPLE (first call doubles as warmup / lazy init).
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            // Jump straight to the estimated count when we can.
            let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
        }
        // Timed samples.
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            name,
            iters_per_sample: iters,
            samples: self.samples,
            min_s: per_iter[0],
            median_s: per_iter[per_iter.len() / 2],
            max_s: per_iter[per_iter.len() - 1],
            bytes_per_iter: self.throughput_bytes,
        };
        print_row(&self.group, &m);
        self.results.push(m);
        self
    }

    /// Prints the summary and writes `results/bench_<group>.json`.
    /// Returns the measurements for further inspection.
    pub fn finish(self) -> Vec<Measurement> {
        let dir = std::env::var_os("QSE_RESULTS_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| "results".into());
        let path = dir.join(format!("bench_{}.json", self.group));
        let doc = Json::object([
            ("group", self.group.to_json()),
            ("results", self.results.to_json()),
        ]);
        if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, doc.pretty()).is_ok() {
            println!("[saved {}]", path.display());
        }
        self.results
    }
}

fn print_row(group: &str, m: &Measurement) {
    let throughput = m
        .gib_per_s()
        .map(|g| format!("  {g:8.2} GiB/s"))
        .unwrap_or_default();
    println!(
        "{group}/{name:<28} median {median:>12}  (min {min}, max {max}, {iters} it/sample){throughput}",
        name = m.name,
        median = fmt_time(m.median_s),
        min = fmt_time(m.min_s),
        max = fmt_time(m.max_s),
        iters = m.iters_per_sample,
    );
}

/// Human-readable seconds with an auto-scaled unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let dir = std::env::temp_dir().join("qse_bench_harness_test");
        std::env::set_var("QSE_RESULTS_DIR", &dir);
        let mut g = BenchGroup::new("selftest");
        g.sample_size(3).throughput_bytes(8 * 1024);
        g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
            std::hint::black_box(acc);
        });
        let results = g.finish();
        std::env::remove_var("QSE_RESULTS_DIR");
        assert_eq!(results.len(), 1);
        let m = &results[0];
        assert!(m.min_s > 0.0 && m.min_s <= m.median_s && m.median_s <= m.max_s);
        assert!(m.gib_per_s().unwrap() > 0.0);
        let written = std::fs::read_to_string(dir.join("bench_selftest.json")).unwrap();
        assert!(written.contains("\"median_s\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    #[should_panic(expected = "at least 3 samples")]
    fn tiny_sample_size_rejected() {
        BenchGroup::new("x").sample_size(2);
    }
}
