//! Pluggable scheduling hook for concurrency checking.
//!
//! The mailbox channels and the worker pool call [`sync_point`] at every
//! operation where thread interleaving matters. In normal operation the
//! hook is a single relaxed atomic load that branches away — effectively
//! free. Under `qse-check`'s schedule explorer a [`ScheduleHook`] is
//! installed that serializes *participant* threads onto a controlled
//! scheduler, letting the explorer permute thread wakeups deterministically
//! (a mini-loom: exhaustive for small thread counts, seeded-random above).
//!
//! Threads that have not registered with the installed hook (for example
//! the resident workers of [`crate::parallel`]) are non-participants: every
//! entry point here is a no-op for them, so instrumented code behaves
//! identically whether or not a hook is installed.
//!
//! The contract between the mailbox and a hook:
//!
//! * [`sync_point`] — a scheduling decision point; the hook may suspend the
//!   calling thread and run another participant first. Must be called
//!   *without* holding the mailbox lock.
//! * [`participant_hook`] + [`ScheduleHook::wait_channel`] — replaces the
//!   condvar wait: the receiver drops its queue lock and blocks inside the
//!   scheduler until a send notifies the channel (`true`) or the scheduler
//!   decides no runnable thread can ever wake it, modelling a timeout
//!   (`false`).
//! * [`notify_channel`] — mirrors `Condvar::notify_one`/`notify_all`; the
//!   hook chooses *which* blocked waiter wakes, which is exactly the
//!   nondeterminism the explorer enumerates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// The instrumented operation at a [`sync_point`], for diagnostics and for
/// hooks that want to filter decision points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// About to enqueue into mailbox channel `chan`.
    MailboxSend {
        /// Channel id from [`new_channel_id`].
        chan: u64,
    },
    /// About to dequeue (blocking) from mailbox channel `chan`.
    MailboxRecv {
        /// Channel id from [`new_channel_id`].
        chan: u64,
    },
    /// About to dequeue (non-blocking) from mailbox channel `chan`.
    MailboxTryRecv {
        /// Channel id from [`new_channel_id`].
        chan: u64,
    },
    /// About to submit a job to the worker pool.
    PoolSubmit,
    /// About to execute one work item drained from a pool job.
    PoolTask,
    /// A user-labelled decision point (test fixtures insert these between
    /// the load and store of a deliberately racy update, say).
    User(&'static str),
}

/// A controlled scheduler installed by a concurrency checker.
///
/// Implementations serialize registered participant threads: at most one
/// runs at a time, and every method below is a point where the scheduler
/// may switch which one.
pub trait ScheduleHook: Send + Sync {
    /// True when the *calling thread* is managed by this hook. All other
    /// entry points are only invoked for participants (except
    /// [`Self::notify_channel`], which any thread may trigger).
    fn is_participant(&self) -> bool;

    /// A scheduling decision point reached by a participant.
    fn sync_point(&self, op: SyncOp);

    /// Blocks the participant until channel `chan` is notified (`true`) or
    /// the scheduler models a timeout because no runnable thread remains
    /// (`false`). Callers must not hold locks the notifier needs.
    fn wait_channel(&self, chan: u64) -> bool;

    /// A value became available on channel `chan`; wake one blocked waiter
    /// (`all == false`) or all of them (`all == true`). May be invoked from
    /// non-participant threads.
    fn notify_channel(&self, chan: u64, all: bool);
}

/// Fast-path flag: true only while a hook is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<dyn ScheduleHook>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn ScheduleHook>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs `hook` process-wide. Checkers must serialize explorations
/// themselves; installing while another hook is active replaces it.
pub fn install(hook: Arc<dyn ScheduleHook>) {
    let mut guard = slot().write().unwrap_or_else(|e| e.into_inner());
    *guard = Some(hook);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the installed hook; instrumentation reverts to no-ops.
pub fn uninstall() {
    ACTIVE.store(false, Ordering::SeqCst);
    let mut guard = slot().write().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

fn current_hook() -> Option<Arc<dyn ScheduleHook>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// The installed hook, if any, *and* the calling thread participates in it.
/// Instrumented blocking paths branch on this to decide between the real
/// condvar wait and the modelled [`ScheduleHook::wait_channel`].
#[inline]
pub fn participant_hook() -> Option<Arc<dyn ScheduleHook>> {
    current_hook().filter(|h| h.is_participant())
}

/// A scheduling decision point. No-op unless a hook is installed and the
/// calling thread participates in it.
#[inline]
pub fn sync_point(op: SyncOp) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(hook) = participant_hook() {
        hook.sync_point(op);
    }
}

/// Reports a channel notification to the hook (from any thread). No-op
/// when no hook is installed.
#[inline]
pub fn notify_channel(chan: u64, all: bool) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(hook) = current_hook() {
        hook.notify_channel(chan, all);
    }
}

/// Allocates a process-unique channel id for [`SyncOp`] reporting.
pub fn new_channel_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn channel_ids_are_unique() {
        let a = new_channel_id();
        let b = new_channel_id();
        assert_ne!(a, b);
    }

    #[test]
    fn sync_point_is_noop_without_hook() {
        // Must not panic, block, or require any setup.
        sync_point(SyncOp::User("no hook"));
        notify_channel(0, false);
        assert!(participant_hook().is_none());
    }

    struct CountingHook {
        participant: bool,
        points: AtomicUsize,
    }

    impl ScheduleHook for CountingHook {
        fn is_participant(&self) -> bool {
            self.participant
        }
        fn sync_point(&self, _op: SyncOp) {
            self.points.fetch_add(1, Ordering::SeqCst);
        }
        fn wait_channel(&self, _chan: u64) -> bool {
            false
        }
        fn notify_channel(&self, _chan: u64, _all: bool) {}
    }

    #[test]
    fn non_participant_threads_skip_the_hook() {
        // Serialize against other tests that might install hooks: this is
        // the only test in this binary that installs one.
        let hook = Arc::new(CountingHook {
            participant: false,
            points: AtomicUsize::new(0),
        });
        install(hook.clone());
        sync_point(SyncOp::PoolSubmit);
        assert_eq!(hook.points.load(Ordering::SeqCst), 0);
        uninstall();
        sync_point(SyncOp::PoolSubmit);
        assert_eq!(hook.points.load(Ordering::SeqCst), 0);
    }
}
