//! Unbounded MPMC mailbox channels on `std::sync::{Mutex, Condvar}`.
//!
//! Replaces `crossbeam::channel` for the thread-rank substrate. Each
//! rank owns one [`Receiver`]; every rank holds a cloned [`Sender`] for
//! every mailbox. Sends never block (unbounded queue); receives block
//! with a deadline so a deadlocked exchange fails loudly instead of
//! hanging the test suite.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::sync::{self, SyncOp};

/// Saturating deadline arithmetic: `now + timeout` would panic inside
/// `Instant`'s `Add` impl for huge durations (`Duration::MAX` overflows
/// the platform clock representation), so saturate to a far-future
/// deadline instead — a year out is indistinguishable from forever for a
/// blocking receive.
pub fn deadline_after(now: Instant, timeout: Duration) -> Instant {
    const FAR: Duration = Duration::from_secs(365 * 24 * 60 * 60);
    now.checked_add(timeout)
        .or_else(|| now.checked_add(FAR))
        .unwrap_or(now)
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    /// Process-unique id reported to the scheduling hook.
    chan: u64,
}

struct Inner<T> {
    queue: VecDeque<T>,
    /// Live `Sender` clones; 0 → the channel can never produce again.
    senders: usize,
    /// Set when the `Receiver` is dropped; sends start failing.
    receiver_gone: bool,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Every sender dropped and the queue is drained.
    Disconnected,
}

/// The sending half; clone freely across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; owned by exactly one thread.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded mailbox channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receiver_gone: false,
        }),
        available: Condvar::new(),
        chan: sync::new_channel_id(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; never blocks. Fails only when the receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        sync::sync_point(SyncOp::MailboxSend {
            chan: self.shared.chan,
        });
        let mut inner = self.shared.inner.lock().expect("mailbox poisoned");
        if inner.receiver_gone {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.available.notify_one();
        sync::notify_channel(self.shared.chan, false);
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("mailbox poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("mailbox poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake a blocked receiver so it can observe disconnection.
            self.shared.available.notify_all();
            sync::notify_channel(self.shared.chan, true);
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, waiting up to `timeout`.
    ///
    /// Under an installed [`crate::sync::ScheduleHook`], a participant
    /// thread waits inside the controlled scheduler instead of the
    /// condvar; the timeout is then *modelled* — the receive times out
    /// only when the scheduler proves no runnable thread can ever notify
    /// this channel, keeping explorations deterministic.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        sync::sync_point(SyncOp::MailboxRecv {
            chan: self.shared.chan,
        });
        let deadline = deadline_after(Instant::now(), timeout);
        let mut inner = self.shared.inner.lock().expect("mailbox poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            if let Some(hook) = sync::participant_hook() {
                drop(inner);
                let notified = hook.wait_channel(self.shared.chan);
                inner = self.shared.inner.lock().expect("mailbox poisoned");
                if !notified {
                    if let Some(value) = inner.queue.pop_front() {
                        return Ok(value);
                    }
                    return Err(if inner.senders == 0 {
                        RecvTimeoutError::Disconnected
                    } else {
                        RecvTimeoutError::Timeout
                    });
                }
            } else {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, wait) = self
                    .shared
                    .available
                    .wait_timeout(inner, remaining)
                    .expect("mailbox poisoned");
                inner = guard;
                if wait.timed_out() && inner.queue.is_empty() {
                    return Err(if inner.senders == 0 {
                        RecvTimeoutError::Disconnected
                    } else {
                        RecvTimeoutError::Timeout
                    });
                }
            }
        }
    }

    /// Dequeues without waiting; `None` when the queue is empty (even if
    /// senders remain).
    pub fn try_recv(&self) -> Option<T> {
        sync::sync_point(SyncOp::MailboxTryRecv {
            chan: self.shared.chan,
        });
        self.shared
            .inner
            .lock()
            .expect("mailbox poisoned")
            .queue
            .pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().expect("mailbox poisoned").receiver_gone = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = unbounded();
        tx.send(41u32).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(41));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
    }

    #[test]
    fn recv_times_out_when_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_reported_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_once_receiver_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7u8), Err(SendError(7)));
    }

    #[test]
    fn clones_keep_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(9));
        drop(tx2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(123u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(123));
    }

    #[test]
    fn deadline_after_saturates_instead_of_panicking() {
        let now = Instant::now();
        // `now + Duration::MAX` panics; the helper must not.
        let far = deadline_after(now, Duration::MAX);
        assert!(far > now);
        // Ordinary timeouts are exact.
        let soon = deadline_after(now, Duration::from_millis(5));
        assert_eq!(soon, now + Duration::from_millis(5));
    }

    #[test]
    fn recv_with_huge_timeout_still_receives() {
        // Regression: recv_timeout(Duration::MAX) used to panic computing
        // the deadline before ever waiting.
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(77u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::MAX), Ok(77));
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), None);
        tx.send(5u8).unwrap();
        assert_eq!(rx.try_recv(), Some(5));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let n_threads = 8;
        let per = 500;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per {
                        tx.send(t * per + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv_timeout(Duration::from_secs(1)) {
            got.push(v);
        }
        got.sort_unstable();
        let want: Vec<usize> = (0..n_threads * per).collect();
        assert_eq!(got, want);
    }
}
