//! Unbounded MPMC mailbox channels on `std::sync::{Mutex, Condvar}`.
//!
//! Replaces `crossbeam::channel` for the thread-rank substrate. Each
//! rank owns one [`Receiver`]; every rank holds a cloned [`Sender`] for
//! every mailbox. Sends never block (unbounded queue); receives block
//! with a deadline so a deadlocked exchange fails loudly instead of
//! hanging the test suite.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    /// Live `Sender` clones; 0 → the channel can never produce again.
    senders: usize,
    /// Set when the `Receiver` is dropped; sends start failing.
    receiver_gone: bool,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Every sender dropped and the queue is drained.
    Disconnected,
}

/// The sending half; clone freely across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; owned by exactly one thread.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded mailbox channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receiver_gone: false,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; never blocks. Fails only when the receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("mailbox poisoned");
        if inner.receiver_gone {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("mailbox poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("mailbox poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake a blocked receiver so it can observe disconnection.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("mailbox poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, wait) = self
                .shared
                .available
                .wait_timeout(inner, remaining)
                .expect("mailbox poisoned");
            inner = guard;
            if wait.timed_out() && inner.queue.is_empty() {
                return Err(if inner.senders == 0 {
                    RecvTimeoutError::Disconnected
                } else {
                    RecvTimeoutError::Timeout
                });
            }
        }
    }

    /// Dequeues without waiting; `None` when the queue is empty (even if
    /// senders remain).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .inner
            .lock()
            .expect("mailbox poisoned")
            .queue
            .pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().expect("mailbox poisoned").receiver_gone = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = unbounded();
        tx.send(41u32).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(41));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
    }

    #[test]
    fn recv_times_out_when_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_reported_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_once_receiver_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7u8), Err(SendError(7)));
    }

    #[test]
    fn clones_keep_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(9));
        drop(tx2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(123u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(123));
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), None);
        tx.send(5u8).unwrap();
        assert_eq!(rx.try_recv(), Some(5));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let n_threads = 8;
        let per = 500;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per {
                        tx.send(t * per + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv_timeout(Duration::from_secs(1)) {
            got.push(v);
        }
        got.sort_unstable();
        let want: Vec<usize> = (0..n_threads * per).collect();
        assert_eq!(got, want);
    }
}
