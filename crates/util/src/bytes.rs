//! A cheaply-cloneable, immutable shared byte buffer.
//!
//! Replaces the `bytes` crate for the message-passing substrate: a
//! payload is copied once at send time into an `Arc<[u8]>`, after which
//! every hand-off between threads — including `slice` views taken when
//! unframing gathered messages — is a reference-count bump, the same
//! property `bytes::Bytes` provided.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (optionally a view into a
/// shared parent allocation).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `src` into a new shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        let data: Arc<[u8]> = src.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy view of `range` within this buffer; shares the
    /// underlying allocation. Panics when the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice range {}..{} out of bounds for Bytes of length {}",
            range.start,
            range.end,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        // Same allocation: the Arc data pointers match.
        assert!(std::ptr::eq(b.as_ref(), c.as_ref()));
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let b = Bytes::from((0u8..32).collect::<Vec<_>>());
        let s = b.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(&s[..], &[4, 5, 6, 7, 8, 9, 10, 11]);
        assert!(std::ptr::eq(s.as_ref(), &b.as_ref()[4..12]));
        // Nested slices compose against the parent view.
        let t = s.slice(2..5);
        assert_eq!(&t[..], &[6, 7, 8]);
        let empty = b.slice(32..32);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(2..6);
    }

    #[test]
    fn equality_ignores_view_offsets() {
        let b = Bytes::from(vec![7u8, 8, 9, 7, 8, 9]);
        assert_eq!(b.slice(0..3), b.slice(3..6));
    }

    #[test]
    fn from_vec_does_not_copy_twice() {
        let v = vec![5u8; 16];
        let b = Bytes::from(v);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 5));
    }
}
