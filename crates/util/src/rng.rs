//! In-tree pseudo-random number generation.
//!
//! Two small, well-studied generators replace the `rand` crate:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. One u64 of state,
//!   equidistributed, and the canonical seeder for larger generators.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's xoshiro256**, the
//!   general-purpose workhorse (period 2^256 − 1, passes BigCrush).
//!
//! Everything in the workspace draws randomness through the [`Rng`]
//! trait, so tests and kernels stay deterministic for a fixed seed
//! across platforms and toolchain updates — unlike `rand`, whose
//! `StdRng` stream is explicitly not stable between versions.

use std::ops::{Range, RangeInclusive};

/// The random-source trait: one required method, everything else derived.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard uniform double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`
    /// integer ranges, half-open `f64` ranges).
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Uniform integer in `[0, span)` by masked rejection — unbiased, and
/// cheap because the expected number of draws is below 2.
#[inline]
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let mask = span.next_power_of_two() - 1;
    loop {
        let x = rng.next_u64() & mask;
        if x < span {
            return x;
        }
    }
}

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, u32, i64, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.random_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Steele/Lea/Flood SplitMix64: `z = (s += 0x9E3779B97F4A7C15)` mixed
/// through two xor-shift-multiply rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed (all seeds are valid).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Blackman/Vigna xoshiro256**: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default generator (deterministic across platforms).
pub type StdRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state through SplitMix64, per the authors'
    /// recommendation (guarantees a nonzero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<G: Rng + ?Sized> Rng for &mut G {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference output for seed 1234567 from the public-domain C
        // implementation (Vigna, prng.di.unimi.it).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(10u32..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
        for _ in 0..1000 {
            let v = rng.random_range(2u32..=4);
            assert!((2..=4).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        // 13 random bytes are essentially never all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        StdRng::seed_from_u64(0).random_range(5u32..5);
    }
}
