//! Quantum circuit IR, builders, locality analysis and transpilation.
//!
//! This crate is the "front end" of the reproduction: it defines the gate
//! set QuEST exposes (as far as the paper exercises it), builds the three
//! circuits the paper benchmarks — the Quantum Fourier Transform (fig 1a),
//! its cache-blocked variant (fig 1b), and the Hadamard/SWAP stress
//! circuits (§2.3) — and implements the transformations of §2.2:
//!
//! * [`classify`] — the paper's three operator classes: *fully local*
//!   (diagonal matrices), *local memory* (block-diagonal within a rank) and
//!   *distributed* (requires pairwise exchange);
//! * [`transpile::cache_blocking`] — a general cache-blocking pass in the
//!   style of Doi & Horii (the paper's reference [3]) plus the
//!   QFT-specific SWAP-shifting construction the paper uses;
//! * [`transpile::fusion`] — diagonal-gate fusion, modelling QuEST's
//!   "controlled phase gates applied more efficiently" (§3.2).
//!
//! ## Qubit convention
//!
//! Amplitude index bit `q` stores qubit `q` (little-endian storage, QuEST
//! layout): qubit 0 varies fastest, and with `2^r` ranks the *top* `r`
//! qubits select the owning rank. The QFT builders follow the paper's
//! figure, which processes qubit 0 first and ends with SWAPs — under this
//! layout, qubit 0 is the most significant bit *of the transform*, so
//! `QFT |x⟩ = N^{-1/2} Σ_k ω^{rev(x)·rev(k)} |k⟩` with bit-reversed indices
//! (see `qft` module tests for the exact statement).

pub mod algorithms;
pub mod benchmarks;
pub mod circuit;
pub mod classify;
pub mod gate;
pub mod permutation;
pub mod qft;
pub mod random;
pub mod stats;
pub mod transpile;

pub use circuit::Circuit;
pub use classify::{GateClass, Layout};
pub use gate::Gate;
pub use permutation::Permutation;
