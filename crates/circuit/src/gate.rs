//! The gate set.
//!
//! Mirrors the slice of QuEST's API the paper exercises, plus the generic
//! single-qubit unitary QuEST also provides. Every variant knows its
//! matrix, its adjoint, whether it is diagonal in the computational basis
//! (the paper's *fully local* class), and how to relabel its qubits — the
//! primitive the cache-blocking transpiler is built on.

use qse_math::{Complex64, Matrix2, Matrix4};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, FRAC_PI_4};
use std::fmt;

/// A quantum gate instance bound to specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(u32),
    /// Pauli-X (NOT).
    X(u32),
    /// Pauli-Y.
    Y(u32),
    /// Pauli-Z (diagonal).
    Z(u32),
    /// Phase gate S = diag(1, i) (diagonal).
    S(u32),
    /// S†.
    Sdg(u32),
    /// T = diag(1, e^{iπ/4}) (diagonal).
    T(u32),
    /// T†.
    Tdg(u32),
    /// Phase shift diag(1, e^{iθ}) (diagonal).
    Phase {
        /// Target qubit.
        target: u32,
        /// Phase angle in radians.
        theta: f64,
    },
    /// Z-rotation diag(e^{-iθ/2}, e^{iθ/2}) (diagonal).
    Rz {
        /// Target qubit.
        target: u32,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// X-rotation.
    Rx {
        /// Target qubit.
        target: u32,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Y-rotation.
    Ry {
        /// Target qubit.
        target: u32,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Arbitrary single-qubit unitary.
    Unitary1 {
        /// Target qubit.
        target: u32,
        /// The 2×2 unitary to apply.
        matrix: Matrix2,
    },
    /// Controlled NOT.
    CNot {
        /// Control qubit.
        control: u32,
        /// Target qubit.
        target: u32,
    },
    /// Controlled Z (diagonal, symmetric in its qubits).
    CZ(u32, u32),
    /// Controlled phase diag(1,1,1,e^{iθ}) (diagonal, symmetric) — the
    /// workhorse of the QFT.
    CPhase {
        /// First qubit (order irrelevant).
        a: u32,
        /// Second qubit.
        b: u32,
        /// Phase applied to |11⟩.
        theta: f64,
    },
    /// SWAP of two qubits — the gate cache-blocking is built from.
    Swap(u32, u32),
    /// Multi-controlled phase: multiplies the amplitude by `e^{iθ}` when
    /// **every** listed qubit is 1 (diagonal, fully symmetric). The
    /// building block of Grover oracles and diffusion operators.
    MCPhase {
        /// The participating qubits (≥ 1, all distinct).
        qubits: Vec<u32>,
        /// Phase applied to the all-ones subspace.
        theta: f64,
    },
    /// Controlled application of an arbitrary single-qubit unitary.
    CUnitary {
        /// Control qubit.
        control: u32,
        /// Target qubit.
        target: u32,
        /// The 2×2 unitary applied when the control is 1.
        matrix: Matrix2,
    },
    /// Arbitrary two-qubit unitary. The matrix acts on the basis
    /// `|b a⟩` — column/row index `(bit_b << 1) | bit_a`.
    Unitary2 {
        /// Low-order orbit qubit.
        a: u32,
        /// High-order orbit qubit.
        b: u32,
        /// The 4×4 unitary.
        matrix: Matrix4,
    },
}

impl Gate {
    /// The qubits this gate touches, in a stable order.
    pub fn qubits(&self) -> Vec<u32> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q) => vec![q],
            Gate::Phase { target, .. }
            | Gate::Rz { target, .. }
            | Gate::Rx { target, .. }
            | Gate::Ry { target, .. }
            | Gate::Unitary1 { target, .. } => vec![target],
            Gate::CNot { control, target } => vec![control, target],
            Gate::CZ(a, b) | Gate::Swap(a, b) => vec![a, b],
            Gate::CPhase { a, b, .. } => vec![a, b],
            Gate::MCPhase { ref qubits, .. } => qubits.clone(),
            Gate::CUnitary {
                control, target, ..
            } => vec![control, target],
            Gate::Unitary2 { a, b, .. } => vec![a, b],
        }
    }

    /// Highest qubit index used (for validation).
    pub fn max_qubit(&self) -> u32 {
        self.qubits().into_iter().max().expect("gates touch ≥1 qubit")
    }

    /// True when the gate's matrix is diagonal in the computational basis —
    /// the paper's *fully local* class: "each amplitude can be updated
    /// without accessing other amplitudes" (§2.1).
    pub fn is_diagonal(&self) -> bool {
        match self {
            Gate::Z(_)
            | Gate::S(_)
            | Gate::Sdg(_)
            | Gate::T(_)
            | Gate::Tdg(_)
            | Gate::Phase { .. }
            | Gate::Rz { .. }
            | Gate::CZ(..)
            | Gate::CPhase { .. }
            | Gate::MCPhase { .. } => true,
            Gate::Unitary1 { matrix, .. } => matrix.is_diagonal(1e-14),
            Gate::CUnitary { matrix, .. } => matrix.is_diagonal(1e-14),
            Gate::Unitary2 { matrix, .. } => matrix.is_diagonal(1e-14),
            _ => false,
        }
    }

    /// For single-qubit (possibly controlled) gates: the 2×2 matrix applied
    /// to the target. `None` for SWAP, which is handled as a permutation.
    pub fn matrix1(&self) -> Option<Matrix2> {
        let h = Complex64::real(FRAC_1_SQRT_2);
        Some(match *self {
            Gate::H(_) => Matrix2::new(h, h, h, -h),
            Gate::X(_) | Gate::CNot { .. } => Matrix2::new(
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ZERO,
            ),
            Gate::Y(_) => Matrix2::new(
                Complex64::ZERO,
                -Complex64::I,
                Complex64::I,
                Complex64::ZERO,
            ),
            Gate::Z(_) | Gate::CZ(..) => {
                Matrix2::diagonal(Complex64::ONE, Complex64::real(-1.0))
            }
            Gate::S(_) => Matrix2::diagonal(Complex64::ONE, Complex64::I),
            Gate::Sdg(_) => Matrix2::diagonal(Complex64::ONE, -Complex64::I),
            Gate::T(_) => Matrix2::diagonal(Complex64::ONE, Complex64::cis(FRAC_PI_4)),
            Gate::Tdg(_) => Matrix2::diagonal(Complex64::ONE, Complex64::cis(-FRAC_PI_4)),
            Gate::Phase { theta, .. } | Gate::CPhase { theta, .. } => {
                Matrix2::diagonal(Complex64::ONE, Complex64::cis(theta))
            }
            Gate::Rz { theta, .. } => Matrix2::diagonal(
                Complex64::cis(-theta / 2.0),
                Complex64::cis(theta / 2.0),
            ),
            Gate::Rx { theta, .. } => {
                let c = Complex64::real((theta / 2.0).cos());
                let s = Complex64::new(0.0, -(theta / 2.0).sin());
                Matrix2::new(c, s, s, c)
            }
            Gate::Ry { theta, .. } => {
                let c = Complex64::real((theta / 2.0).cos());
                let s = (theta / 2.0).sin();
                Matrix2::new(c, Complex64::real(-s), Complex64::real(s), c)
            }
            Gate::Unitary1 { matrix, .. } | Gate::CUnitary { matrix, .. } => matrix,
            Gate::MCPhase { theta, .. } => {
                Matrix2::diagonal(Complex64::ONE, Complex64::cis(theta))
            }
            Gate::Swap(..) | Gate::Unitary2 { .. } => return None,
        })
    }

    /// The control qubit, for controlled gates.
    pub fn control(&self) -> Option<u32> {
        match *self {
            Gate::CNot { control, .. } | Gate::CUnitary { control, .. } => Some(control),
            // CZ/CPhase are symmetric; by convention the first qubit
            // is reported as the control.
            Gate::CZ(a, _) => Some(a),
            Gate::CPhase { a, .. } => Some(a),
            _ => None,
        }
    }

    /// The target qubit — the qubit whose amplitude pairing matters for
    /// distribution. For symmetric diagonal two-qubit gates this is the
    /// second qubit (irrelevant in practice: diagonal gates never
    /// communicate).
    pub fn target(&self) -> u32 {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q) => q,
            Gate::Phase { target, .. }
            | Gate::Rz { target, .. }
            | Gate::Rx { target, .. }
            | Gate::Ry { target, .. }
            | Gate::Unitary1 { target, .. } => target,
            Gate::CNot { target, .. } | Gate::CUnitary { target, .. } => target,
            Gate::CZ(_, b) => b,
            Gate::CPhase { b, .. } => b,
            Gate::Swap(_, b) => b,
            // Diagonal — the notion of a target never matters for it,
            // but return a stable choice.
            Gate::MCPhase { ref qubits, .. } => *qubits.last().expect("≥1 qubit"),
            Gate::Unitary2 { b, .. } => b,
        }
    }

    /// The adjoint (inverse) gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Phase { target, theta } => Gate::Phase {
                target,
                theta: -theta,
            },
            Gate::Rz { target, theta } => Gate::Rz {
                target,
                theta: -theta,
            },
            Gate::Rx { target, theta } => Gate::Rx {
                target,
                theta: -theta,
            },
            Gate::Ry { target, theta } => Gate::Ry {
                target,
                theta: -theta,
            },
            Gate::CPhase { a, b, theta } => Gate::CPhase { a, b, theta: -theta },
            Gate::Unitary1 { target, matrix } => Gate::Unitary1 {
                target,
                matrix: matrix.adjoint(),
            },
            Gate::MCPhase { ref qubits, theta } => Gate::MCPhase {
                qubits: qubits.clone(),
                theta: -theta,
            },
            Gate::CUnitary {
                control,
                target,
                matrix,
            } => Gate::CUnitary {
                control,
                target,
                matrix: matrix.adjoint(),
            },
            Gate::Unitary2 { a, b, matrix } => Gate::Unitary2 {
                a,
                b,
                matrix: matrix.adjoint(),
            },
            // Self-inverse gates.
            ref g @ (Gate::H(_)
            | Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::CNot { .. }
            | Gate::CZ(..)
            | Gate::Swap(..)) => g.clone(),
        }
    }

    /// Relabels every qubit through `f` — the primitive behind the paper's
    /// "gates to the right of the swaps need to be vertically flipped".
    pub fn remap(&self, f: &dyn Fn(u32) -> u32) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Phase { target, theta } => Gate::Phase {
                target: f(target),
                theta,
            },
            Gate::Rz { target, theta } => Gate::Rz {
                target: f(target),
                theta,
            },
            Gate::Rx { target, theta } => Gate::Rx {
                target: f(target),
                theta,
            },
            Gate::Ry { target, theta } => Gate::Ry {
                target: f(target),
                theta,
            },
            Gate::Unitary1 { target, matrix } => Gate::Unitary1 {
                target: f(target),
                matrix,
            },
            Gate::CNot { control, target } => Gate::CNot {
                control: f(control),
                target: f(target),
            },
            Gate::CZ(a, b) => Gate::CZ(f(a), f(b)),
            Gate::CPhase { a, b, theta } => Gate::CPhase {
                a: f(a),
                b: f(b),
                theta,
            },
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::MCPhase { ref qubits, theta } => Gate::MCPhase {
                qubits: qubits.iter().map(|&q| f(q)).collect(),
                theta,
            },
            Gate::CUnitary {
                control,
                target,
                matrix,
            } => Gate::CUnitary {
                control: f(control),
                target: f(target),
                matrix,
            },
            Gate::Unitary2 { a, b, matrix } => Gate::Unitary2 {
                a: f(a),
                b: f(b),
                matrix,
            },
        }
    }

    /// Short mnemonic for display and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "H",
            Gate::X(_) => "X",
            Gate::Y(_) => "Y",
            Gate::Z(_) => "Z",
            Gate::S(_) => "S",
            Gate::Sdg(_) => "Sdg",
            Gate::T(_) => "T",
            Gate::Tdg(_) => "Tdg",
            Gate::Phase { .. } => "Phase",
            Gate::Rz { .. } => "Rz",
            Gate::Rx { .. } => "Rx",
            Gate::Ry { .. } => "Ry",
            Gate::Unitary1 { .. } => "U1q",
            Gate::CNot { .. } => "CNot",
            Gate::CZ(..) => "CZ",
            Gate::CPhase { .. } => "CPhase",
            Gate::Swap(..) => "Swap",
            Gate::MCPhase { .. } => "MCPhase",
            Gate::CUnitary { .. } => "CU1q",
            Gate::Unitary2 { .. } => "U2q",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::CPhase { a, b, theta } => write!(f, "CPhase({a},{b},{theta:.4})"),
            Gate::Swap(a, b) => write!(f, "Swap({a},{b})"),
            Gate::CNot { control, target } => write!(f, "CNot({control}->{target})"),
            g => write!(f, "{}({})", g.name(), g.target()),
        }
    }
}

/// The QFT's controlled phase between two qubits at distance `d = |b − a|`:
/// `θ = π / 2^d` (the textbook `R_{d+1}` rotation), so nearest neighbours
/// get `π/2`, next-nearest `π/4`, and so on.
pub fn qft_cphase(a: u32, b: u32) -> Gate {
    let d = a.abs_diff(b);
    Gate::CPhase {
        a,
        b,
        theta: FRAC_PI_2 / (1u64 << (d - 1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_complex_close;

    fn all_sample_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::X(1),
            Gate::Y(2),
            Gate::Z(3),
            Gate::S(0),
            Gate::Sdg(1),
            Gate::T(2),
            Gate::Tdg(3),
            Gate::Phase {
                target: 0,
                theta: 0.7,
            },
            Gate::Rz {
                target: 1,
                theta: 0.3,
            },
            Gate::Rx {
                target: 2,
                theta: 1.1,
            },
            Gate::Ry {
                target: 3,
                theta: -0.4,
            },
            Gate::CNot {
                control: 0,
                target: 1,
            },
            Gate::CZ(2, 3),
            Gate::CPhase {
                a: 0,
                b: 3,
                theta: 0.9,
            },
            Gate::Swap(1, 2),
        ]
    }

    #[test]
    fn qubits_and_max() {
        assert_eq!(Gate::H(5).qubits(), vec![5]);
        assert_eq!(
            Gate::CNot {
                control: 2,
                target: 7
            }
            .qubits(),
            vec![2, 7]
        );
        assert_eq!(Gate::Swap(3, 1).max_qubit(), 3);
    }

    #[test]
    fn diagonal_classification_matches_matrices() {
        for g in all_sample_gates() {
            if let Some(m) = g.matrix1() {
                // For uncontrolled single-qubit gates the flag must agree
                // with the matrix; controlled gates are diagonal iff their
                // target matrix is diagonal.
                assert_eq!(
                    g.is_diagonal(),
                    m.is_diagonal(1e-14),
                    "flag mismatch for {g}"
                );
            }
        }
        // SWAP is a permutation, not diagonal.
        assert!(!Gate::Swap(0, 1).is_diagonal());
    }

    #[test]
    fn all_matrices_are_unitary() {
        for g in all_sample_gates() {
            if let Some(m) = g.matrix1() {
                assert!(m.is_unitary(1e-12), "{g} matrix not unitary");
            }
        }
    }

    #[test]
    fn dagger_composes_to_identity() {
        for g in all_sample_gates() {
            let (Some(m), Some(md)) = (g.matrix1(), g.dagger().matrix1()) else {
                continue;
            };
            let prod = md.matmul(&m);
            let id = Matrix2::identity();
            for (a, b) in prod.m.iter().zip(id.m.iter()) {
                assert_complex_close(*a, *b, 1e-12);
            }
        }
    }

    #[test]
    fn dagger_of_swap_is_swap() {
        assert_eq!(Gate::Swap(1, 2).dagger(), Gate::Swap(1, 2));
    }

    #[test]
    fn remap_relabels_all_qubits() {
        let flip = |n: u32| move |q: u32| n - 1 - q;
        let g = Gate::CNot {
            control: 1,
            target: 6,
        };
        assert_eq!(
            g.remap(&flip(8)),
            Gate::CNot {
                control: 6,
                target: 1
            }
        );
        assert_eq!(Gate::Swap(0, 7).remap(&flip(8)), Gate::Swap(7, 0));
        // remap twice with an involution restores the gate
        for g in all_sample_gates() {
            assert_eq!(g.remap(&flip(8)).remap(&flip(8)), g);
        }
    }

    #[test]
    fn controls_and_targets() {
        assert_eq!(
            Gate::CNot {
                control: 3,
                target: 1
            }
            .control(),
            Some(3)
        );
        assert_eq!(Gate::H(4).control(), None);
        assert_eq!(Gate::CZ(2, 5).target(), 5);
        assert_eq!(
            Gate::Phase {
                target: 9,
                theta: 0.1
            }
            .target(),
            9
        );
    }

    #[test]
    fn s_equals_phase_pi_2() {
        let s = Gate::S(0).matrix1().unwrap();
        let p = Gate::Phase {
            target: 0,
            theta: std::f64::consts::FRAC_PI_2,
        }
        .matrix1()
        .unwrap();
        for (a, b) in s.m.iter().zip(p.m.iter()) {
            assert_complex_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn t_squared_equals_s() {
        let t = Gate::T(0).matrix1().unwrap();
        let s = Gate::S(0).matrix1().unwrap();
        let t2 = t.matmul(&t);
        for (a, b) in t2.m.iter().zip(s.m.iter()) {
            assert_complex_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Gate::H(3).to_string(), "H(3)");
        assert_eq!(
            Gate::CNot {
                control: 1,
                target: 2
            }
            .to_string(),
            "CNot(1->2)"
        );
        assert_eq!(Gate::Swap(4, 5).to_string(), "Swap(4,5)");
    }
}
