//! Circuit structure statistics: depth, layers, qubit activity.
//!
//! The cost model charges gates sequentially (QuEST applies one gate at a
//! time across the whole machine), but depth and layer structure matter
//! for reporting and for reasoning about how much fusion/cache-blocking
//! can help: a circuit whose distributed gates cluster on few qubits
//! amortises SWAPs much better than one that scatters them.

use crate::circuit::Circuit;

/// Aggregate structural statistics for one circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Register width.
    pub n_qubits: u32,
    /// Total gates.
    pub gate_count: usize,
    /// Circuit depth (longest chain of dependent gates).
    pub depth: usize,
    /// Gates per qubit (index = qubit).
    pub gates_per_qubit: Vec<usize>,
    /// Number of two-qubit gates.
    pub two_qubit_gates: usize,
}

impl CircuitStats {
    /// The busiest qubit and its gate count.
    pub fn hottest_qubit(&self) -> (u32, usize) {
        self.gates_per_qubit
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(q, &c)| (q as u32, c))
            .expect("non-empty register")
    }
}

/// Computes structural statistics.
pub fn stats(circuit: &Circuit) -> CircuitStats {
    let n = circuit.n_qubits();
    let mut per_qubit = vec![0usize; n as usize];
    let mut frontier = vec![0usize; n as usize]; // depth reached per qubit
    let mut depth = 0usize;
    let mut two_qubit = 0usize;
    for g in circuit.gates() {
        let qubits = g.qubits();
        if qubits.len() == 2 {
            two_qubit += 1;
        }
        let level = 1 + qubits
            .iter()
            .map(|&q| frontier[q as usize])
            .max()
            .expect("gates touch ≥1 qubit");
        for &q in &qubits {
            per_qubit[q as usize] += 1;
            frontier[q as usize] = level;
        }
        depth = depth.max(level);
    }
    CircuitStats {
        n_qubits: n,
        gate_count: circuit.len(),
        depth,
        gates_per_qubit: per_qubit,
        two_qubit_gates: two_qubit,
    }
}

/// Greedy layering: partitions gate indices into parallel layers (gates
/// within a layer touch disjoint qubits). Reported by examples; the
/// sequential cost model does not use it.
pub fn layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let n = circuit.n_qubits() as usize;
    let mut frontier = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, g) in circuit.gates().iter().enumerate() {
        let level = g
            .qubits()
            .iter()
            .map(|&q| frontier[q as usize])
            .max()
            .expect("gates touch ≥1 qubit");
        if level == out.len() {
            out.push(Vec::new());
        }
        out[level].push(i);
        for q in g.qubits() {
            frontier[q as usize] = level + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::ghz;
    use crate::qft::qft;

    #[test]
    fn empty_circuit_stats() {
        let s = stats(&Circuit::new(3));
        assert_eq!(s.depth, 0);
        assert_eq!(s.gate_count, 0);
        assert_eq!(s.two_qubit_gates, 0);
        assert_eq!(s.gates_per_qubit, vec![0, 0, 0]);
    }

    #[test]
    fn ghz_depth_is_sequential() {
        // H(0), then each CNOT depends on qubit 0: depth = n.
        let s = stats(&ghz(5));
        assert_eq!(s.depth, 5);
        assert_eq!(s.two_qubit_gates, 4);
        assert_eq!(s.hottest_qubit().0, 0);
        assert_eq!(s.hottest_qubit().1, 5);
    }

    #[test]
    fn parallel_gates_share_depth() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3).cnot(0, 1).cnot(2, 3);
        let s = stats(&c);
        assert_eq!(s.depth, 2);
        let l = layers(&c);
        assert_eq!(l.len(), 2);
        assert_eq!(l[0], vec![0, 1, 2, 3]);
        assert_eq!(l[1], vec![4, 5]);
    }

    #[test]
    fn layers_cover_all_gates_disjointly() {
        let c = qft(6);
        let l = layers(&c);
        let mut seen = vec![false; c.len()];
        for layer in &l {
            // within a layer, qubit sets are disjoint
            let mut used = std::collections::HashSet::new();
            for &i in layer {
                assert!(!seen[i]);
                seen[i] = true;
                for q in c.gates()[i].qubits() {
                    assert!(used.insert(q), "layer reuses qubit {q}");
                }
            }
        }
        assert!(seen.into_iter().all(|b| b));
        // depth equals layer count
        assert_eq!(l.len(), stats(&c).depth);
    }

    #[test]
    fn qft_gate_totals() {
        let n = 8u32;
        let s = stats(&qft(n));
        assert_eq!(
            s.gate_count,
            (n + n * (n - 1) / 2 + n / 2) as usize
        );
        assert_eq!(
            s.two_qubit_gates,
            (n * (n - 1) / 2 + n / 2) as usize
        );
    }
}
