//! Quantum Fourier Transform builders — fig 1a and fig 1b of the paper.
//!
//! The standard circuit ([`qft`]) processes qubit 0 first: a Hadamard,
//! then controlled phases `π/2^d` coupling it to every later qubit, and so
//! on, finishing with the bit-reversing SWAP network. Following the paper's
//! figure, qubit 0 is therefore the most significant bit *of the
//! transform* while remaining the least significant bit of the amplitude
//! index (QuEST storage). The statevector tests pin the exact semantics:
//! `QFT |x⟩ = N^{-1/2} Σ_k ω^{rev(x)·rev(k)} |k⟩` where `rev` reverses the
//! `n`-bit pattern.
//!
//! The cache-blocked variant ([`cache_blocked_qft`]) is the paper's §2.3
//! construction: the trailing SWAPs are shifted left so that every
//! Hadamard after them lands on a *local* qubit once flipped. The
//! correctness argument is an exact operator identity: for a circuit
//! `[A, B, P]` with `P` a product of disjoint SWAPs realising an
//! involution `π`, the circuit `[A, P, flip_π(B)]` applies the same
//! operator, because `flip_π(B) = P B P⁻¹` as an operator and
//! `P B P⁻¹ · P · A = P B A`.

use crate::circuit::Circuit;
use crate::gate::{qft_cphase, Gate};

/// Builds the standard `n`-qubit QFT of fig 1a: per-qubit Hadamard +
/// controlled-phase blocks, then the final SWAP network.
pub fn qft(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for j in 0..n {
        c.h(j);
        for m in (j + 1)..n {
            c.push(qft_cphase(j, m));
        }
    }
    append_reversal_swaps(&mut c);
    c
}

/// Builds the inverse QFT (adjoint of [`qft`]).
pub fn inverse_qft(n: u32) -> Circuit {
    qft(n).inverse()
}

/// Appends the bit-reversing SWAP network `Swap(i, n-1-i)`.
fn append_reversal_swaps(c: &mut Circuit) {
    let n = c.n_qubits();
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
}

/// The largest register a split point must respect: with `local` local
/// qubits, a valid split lies in `[n − local, local]` (inclusive). Returns
/// the paper's preferred split: two below the local window top, to keep
/// flipped Hadamards out of the NUMA-penalised top-of-window strides —
/// "the swaps are done after the 30th Hadamard gate to prevent any
/// increase in gate execution time" (§3.2: n = 38, 32 local qubits,
/// split = 30).
pub fn default_split(n: u32, local_qubits: u32) -> u32 {
    assert!(
        valid_split_range(n, local_qubits).is_some(),
        "{n} qubits cannot be cache-blocked with {local_qubits} local qubits"
    );
    let lo = n.saturating_sub(local_qubits);
    let hi = local_qubits;
    local_qubits.saturating_sub(2).clamp(lo, hi)
}

/// The inclusive range of valid split points, or `None` when the register
/// is more than twice the local window (one SWAP layer cannot localise
/// every Hadamard then).
pub fn valid_split_range(n: u32, local_qubits: u32) -> Option<(u32, u32)> {
    let lo = n.saturating_sub(local_qubits);
    let hi = local_qubits.min(n);
    (lo <= hi).then_some((lo, hi))
}

/// Builds the cache-blocked QFT of fig 1b.
///
/// `split` is the number of Hadamard blocks executed before the SWAP
/// layer; blocks after it are "vertically flipped" (`q → n−1−q`). With
/// `split` in the valid range for `local_qubits` (see
/// [`valid_split_range`]), every Hadamard in the result acts on a local
/// qubit and the only distributed operations are SWAPs.
///
/// # Panics
/// Panics when `split > n` — an impossible insertion point. (A split
/// outside the *valid* range still builds a correct circuit, it just
/// leaves some Hadamards distributed; callers use [`default_split`].)
pub fn cache_blocked_qft(n: u32, split: u32) -> Circuit {
    assert!(split <= n, "split {split} exceeds qubit count {n}");
    let standard = qft(n);
    let gates = standard.gates();
    let n_swaps = (n / 2) as usize;
    let body = &gates[..gates.len() - n_swaps];

    // Locate the start of Hadamard block `split` in the body.
    let mut h_seen = 0u32;
    let mut cut = body.len();
    for (i, g) in body.iter().enumerate() {
        if matches!(g, Gate::H(_)) {
            if h_seen == split {
                cut = i;
                break;
            }
            h_seen += 1;
        }
    }

    let flip = move |q: u32| n - 1 - q;
    let mut c = Circuit::new(n);
    for g in &body[..cut] {
        c.push(g.clone());
    }
    append_reversal_swaps(&mut c);
    for g in &body[cut..] {
        c.push(g.remap(&flip));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, GateClass, Layout};

    #[test]
    fn qft_gate_counts() {
        let n = 8;
        let c = qft(n);
        let counts = c.gate_counts();
        assert_eq!(counts["H"], n as usize);
        assert_eq!(counts["CPhase"], (n * (n - 1) / 2) as usize);
        assert_eq!(counts["Swap"], (n / 2) as usize);
        assert_eq!(c.len(), (n + n * (n - 1) / 2 + n / 2) as usize);
    }

    #[test]
    fn qft_single_qubit_is_hadamard() {
        let c = qft(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], Gate::H(0));
    }

    #[test]
    fn qft_phases_decay_geometrically() {
        let c = qft(4);
        // First block: H(0), CP(0,1,π/2), CP(0,2,π/4), CP(0,3,π/8)
        match c.gates()[1] {
            Gate::CPhase { a: 0, b: 1, theta } => {
                assert!((theta - std::f64::consts::FRAC_PI_2).abs() < 1e-12)
            }
            ref g => panic!("unexpected gate {g}"),
        }
        match c.gates()[3] {
            Gate::CPhase { a: 0, b: 3, theta } => {
                assert!((theta - std::f64::consts::PI / 8.0).abs() < 1e-12)
            }
            ref g => panic!("unexpected gate {g}"),
        }
    }

    #[test]
    fn inverse_qft_has_same_size() {
        assert_eq!(inverse_qft(6).len(), qft(6).len());
    }

    #[test]
    fn cache_blocked_preserves_gate_multiset_sizes() {
        let n = 10;
        let cb = cache_blocked_qft(n, 7);
        let counts = cb.gate_counts();
        assert_eq!(counts["H"], n as usize);
        assert_eq!(counts["CPhase"], (n * (n - 1) / 2) as usize);
        assert_eq!(counts["Swap"], (n / 2) as usize);
    }

    #[test]
    fn cache_blocked_hadamards_all_local() {
        // n = 10 qubits over 4 ranks → 8 local qubits; split in [2, 8].
        let n = 10;
        let layout = Layout::new(n, 4);
        assert_eq!(layout.local_qubits(), 8);
        let split = default_split(n, layout.local_qubits());
        assert!((2..=8).contains(&split));
        let cb = cache_blocked_qft(n, split);
        for g in cb.gates() {
            if matches!(g, Gate::H(_)) {
                assert_eq!(
                    classify(g, &layout),
                    GateClass::LocalMemory,
                    "H not local after cache blocking: {g}"
                );
            }
        }
    }

    #[test]
    fn standard_qft_has_distributed_hadamards() {
        let n = 10;
        let layout = Layout::new(n, 4);
        let distributed_h = qft(n)
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::H(_)))
            .filter(|g| classify(g, &layout) == GateClass::Distributed)
            .count();
        assert_eq!(distributed_h, 2); // qubits 8 and 9
    }

    #[test]
    fn cache_blocking_halves_distributed_gates_paper_scale() {
        // Paper scale: 38 qubits on 64 ranks (32 local). Built-in QFT has
        // 6 distributed H + 6 distributed SWAPs; cache-blocked only the 6
        // distributed SWAPs.
        let n = 38;
        let layout = Layout::new(n, 64);
        let count_distributed = |c: &Circuit| {
            c.gates()
                .iter()
                .filter(|g| classify(g, &layout) == GateClass::Distributed)
                .count()
        };
        let built_in = count_distributed(&qft(n));
        let fast = count_distributed(&cache_blocked_qft(n, 30));
        assert_eq!(built_in, 12);
        assert_eq!(fast, 6);
    }

    #[test]
    fn split_range_and_default() {
        assert_eq!(valid_split_range(38, 32), Some((6, 32)));
        assert_eq!(default_split(38, 32), 30);
        assert_eq!(valid_split_range(44, 32), Some((12, 32)));
        assert_eq!(default_split(44, 32), 30);
        // window too small: 20 qubits with only 8 local
        assert_eq!(valid_split_range(20, 8), None);
    }

    #[test]
    #[should_panic(expected = "cannot be cache-blocked")]
    fn default_split_rejects_tiny_windows() {
        default_split(20, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds qubit count")]
    fn oversized_split_rejected() {
        cache_blocked_qft(6, 7);
    }

    #[test]
    fn split_zero_flips_everything() {
        let n = 6;
        let cb = cache_blocked_qft(n, 0);
        // Circuit starts with the swap layer.
        for (i, g) in cb.gates().iter().take((n / 2) as usize).enumerate() {
            assert_eq!(*g, Gate::Swap(i as u32, n - 1 - i as u32));
        }
        // First post-swap gate is the flipped H(0) → H(5).
        assert_eq!(cb.gates()[(n / 2) as usize], Gate::H(5));
    }

    #[test]
    fn split_n_keeps_standard_shape() {
        // split = n leaves the body untouched: identical to standard QFT.
        assert_eq!(cache_blocked_qft(9, 9), qft(9));
    }
}
