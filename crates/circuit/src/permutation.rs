//! Qubit permutations.
//!
//! The cache-blocking transpiler reasons about *layouts*: a bijection from
//! logical qubits to physical positions. This module provides that algebra
//! plus conversion to explicit SWAP networks for re-insertion into circuits.

use qse_math::bits;

/// A bijection on qubit labels `0..n`.
///
/// `map[q]` is where qubit `q` goes. Identity is `map[q] == q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` labels.
    pub fn identity(n: u32) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Builds from an explicit image vector, validating bijectivity.
    pub fn from_map(map: Vec<u32>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &v in &map {
            assert!((v as usize) < n, "image {v} out of range 0..{n}");
            assert!(!seen[v as usize], "duplicate image {v}");
            seen[v as usize] = true;
        }
        Permutation { map }
    }

    /// The full bit-reversal `q → n-1-q` — the permutation realised by the
    /// QFT's trailing SWAP network.
    pub fn reversal(n: u32) -> Self {
        Permutation {
            map: (0..n).rev().collect(),
        }
    }

    /// Number of labels.
    pub fn len(&self) -> u32 {
        self.map.len() as u32
    }

    /// True for the zero-width permutation (never built in practice).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image of label `q`.
    #[inline]
    pub fn apply(&self, q: u32) -> u32 {
        self.map[q as usize]
    }

    /// True when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// Swaps the images of labels `a` and `b` in place.
    pub fn swap(&mut self, a: u32, b: u32) {
        self.map.swap(a as usize, b as usize);
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &v) in self.map.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Permutation { map: inv }
    }

    /// Composition: `(self.compose(other)).apply(q) == self.apply(other.apply(q))`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        Permutation {
            map: (0..self.len()).map(|q| self.apply(other.apply(q))).collect(),
        }
    }

    /// Applies the permutation to an amplitude index: bit `q` of the input
    /// moves to bit `apply(q)` of the output. Used by tests to verify that
    /// a transpiled circuit equals the original up to this relabelling.
    pub fn permute_index(&self, index: u64) -> u64 {
        let mut out = 0u64;
        for q in 0..self.len() {
            out |= bits::bit(index, q) << self.apply(q);
        }
        out
    }

    /// Decomposes into a minimal sequence of transpositions `(a, b)` such
    /// that applying `swap(a, b)` operations in order to the identity
    /// yields this permutation. Used to materialise a layout change as
    /// SWAP gates.
    pub fn as_transpositions(&self) -> Vec<(u32, u32)> {
        let mut current = Permutation::identity(self.len());
        let mut swaps = Vec::new();
        // Greedy cycle decomposition: put each label into its place.
        for q in 0..self.len() {
            if current.apply(q) != self.apply(q) {
                // find label r (> q) whose current image equals target
                let target = self.apply(q);
                let r = (q + 1..self.len())
                    .find(|&r| current.apply(r) == target)
                    .expect("bijection guarantees a source");
                current.swap(q, r);
                swaps.push((q, r));
            }
        }
        debug_assert_eq!(&current, self);
        swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.inverse(), p);
        assert!(p.as_transpositions().is_empty());
        assert_eq!(p.permute_index(0b10110), 0b10110);
    }

    #[test]
    fn reversal_flips_labels() {
        let p = Permutation::reversal(4);
        assert_eq!(p.apply(0), 3);
        assert_eq!(p.apply(3), 0);
        assert!(p.compose(&p).is_identity());
    }

    #[test]
    #[should_panic(expected = "duplicate image")]
    fn non_bijection_rejected() {
        Permutation::from_map(vec![0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_image_rejected() {
        Permutation::from_map(vec![0, 5]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_map(vec![2, 0, 3, 1]);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn compose_order() {
        // other first, then self.
        let shift = Permutation::from_map(vec![1, 2, 0]); // q -> q+1 mod 3
        let rev = Permutation::reversal(3);
        let c = rev.compose(&shift);
        for q in 0..3 {
            assert_eq!(c.apply(q), rev.apply(shift.apply(q)));
        }
    }

    #[test]
    fn permute_index_moves_bits() {
        let p = Permutation::from_map(vec![2, 0, 1]); // bit0->2, bit1->0, bit2->1
        assert_eq!(p.permute_index(0b001), 0b100);
        assert_eq!(p.permute_index(0b010), 0b001);
        assert_eq!(p.permute_index(0b100), 0b010);
        assert_eq!(p.permute_index(0b111), 0b111);
    }

    #[test]
    fn reversal_permute_index_is_bit_reverse() {
        let p = Permutation::reversal(5);
        for x in 0..32u64 {
            assert_eq!(p.permute_index(x), qse_math::bits::reverse_bits(x, 5));
        }
    }

    #[test]
    fn transpositions_rebuild_permutation() {
        for map in [
            vec![2, 0, 3, 1],
            vec![4, 3, 2, 1, 0],
            vec![1, 0],
            vec![0, 1, 2],
            vec![3, 2, 1, 0],
        ] {
            let p = Permutation::from_map(map);
            let mut rebuilt = Permutation::identity(p.len());
            for (a, b) in p.as_transpositions() {
                rebuilt.swap(a, b);
            }
            assert_eq!(rebuilt, p);
        }
    }

    #[test]
    fn reversal_needs_floor_half_swaps() {
        let p = Permutation::reversal(6);
        assert_eq!(p.as_transpositions().len(), 3);
        let p = Permutation::reversal(7);
        assert_eq!(p.as_transpositions().len(), 3);
    }
}
