//! Gate locality classification — the paper's §2.1 taxonomy.
//!
//! With the statevector split evenly across `2^r` ranks, the low
//! `n − r` qubits are *local* (their amplitude pairs live within one rank)
//! and the top `r` qubits are *global* (pairs span two ranks). Every gate
//! then falls into one of three classes:
//!
//! * **fully local** — diagonal matrices: "each amplitude can be updated
//!   without accessing other amplitudes";
//! * **local memory** — block-diagonal with blocks no larger than a rank's
//!   share: updates combine amplitudes on the same process;
//! * **distributed** — "new amplitudes depend on amplitudes from other
//!   processes": requires a pairwise exchange of the local statevector.

use crate::circuit::Circuit;
use crate::gate::Gate;
use qse_math::bits;

/// How the register is split across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    n_qubits: u32,
    rank_qubits: u32,
}

impl Layout {
    /// Builds a layout for `n_qubits` over `n_ranks` ranks (a power of
    /// two, as QuEST requires; at most `2^n_qubits`).
    pub fn new(n_qubits: u32, n_ranks: u64) -> Self {
        let rank_qubits = bits::log2_exact(n_ranks);
        assert!(
            rank_qubits <= n_qubits,
            "{n_ranks} ranks need at least {rank_qubits} qubits, have {n_qubits}"
        );
        Layout {
            n_qubits,
            rank_qubits,
        }
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of ranks (`2^r`).
    #[inline]
    pub fn n_ranks(&self) -> u64 {
        1u64 << self.rank_qubits
    }

    /// Number of global ("rank") qubits `r`.
    #[inline]
    pub fn rank_qubits(&self) -> u32 {
        self.rank_qubits
    }

    /// Number of local qubits `n − r`.
    #[inline]
    pub fn local_qubits(&self) -> u32 {
        self.n_qubits - self.rank_qubits
    }

    /// Amplitudes held by each rank.
    #[inline]
    pub fn local_amps(&self) -> u64 {
        1u64 << self.local_qubits()
    }

    /// True when qubit `q`'s amplitude pairs stay within one rank.
    #[inline]
    pub fn is_local(&self, q: u32) -> bool {
        q < self.local_qubits()
    }

    /// For a global qubit, the rank-address bit it corresponds to.
    ///
    /// The pair rank for a distributed gate on qubit `q` is
    /// `rank XOR (1 << rank_bit(q))` (§2.1's pairwise communication).
    #[inline]
    pub fn rank_bit(&self, q: u32) -> u32 {
        debug_assert!(!self.is_local(q), "qubit {q} is local");
        q - self.local_qubits()
    }

    /// The communication partner of `rank` for a gate on global qubit `q`.
    #[inline]
    pub fn pair_rank(&self, rank: u64, q: u32) -> u64 {
        rank ^ (1u64 << self.rank_bit(q))
    }
}

/// The paper's three operator classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// Diagonal matrix; no amplitude ever reads another amplitude.
    FullyLocal,
    /// Amplitude pairs combine within one rank; memory traffic only.
    LocalMemory,
    /// Amplitude pairs span ranks; requires pairwise exchange.
    Distributed,
}

/// Classifies one gate under a layout.
pub fn classify(gate: &Gate, layout: &Layout) -> GateClass {
    if gate.is_diagonal() {
        return GateClass::FullyLocal;
    }
    match *gate {
        Gate::Swap(a, b) => {
            if layout.is_local(a) && layout.is_local(b) {
                GateClass::LocalMemory
            } else {
                GateClass::Distributed
            }
        }
        // A general two-qubit unitary mixes amplitudes across both of its
        // qubits' pairings, so both must be local to avoid communication.
        Gate::Unitary2 { a, b, .. } => {
            if layout.is_local(a) && layout.is_local(b) {
                GateClass::LocalMemory
            } else {
                GateClass::Distributed
            }
        }
        // For every remaining gate (plain or controlled single-target),
        // only the target's pairing matters: a global *control* merely
        // masks which ranks participate, it never moves data.
        ref g => {
            if layout.is_local(g.target()) {
                GateClass::LocalMemory
            } else {
                GateClass::Distributed
            }
        }
    }
}

/// Communication summary of a circuit under a layout — what the paper's
/// optimisations change. Byte counts are *per participating rank*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommSummary {
    /// Gates in the fully-local (diagonal) class.
    pub fully_local: usize,
    /// Gates in the local-memory class.
    pub local_memory: usize,
    /// Gates requiring exchange.
    pub distributed: usize,
    /// Of the distributed gates, how many are SWAPs (half-exchangeable).
    pub distributed_swaps: usize,
    /// Bytes exchanged per rank with full exchanges everywhere.
    pub bytes_full_exchange: u64,
    /// Bytes exchanged per rank when SWAPs use the half exchange (the
    /// paper's future-work optimisation, §4).
    pub bytes_half_exchange_swaps: u64,
}

/// Bytes per amplitude: two `f64`s.
pub const BYTES_PER_AMP: u64 = 16;

/// Summarises a circuit's communication behaviour under `layout`.
pub fn comm_summary(circuit: &Circuit, layout: &Layout) -> CommSummary {
    let mut s = CommSummary::default();
    let full = layout.local_amps() * BYTES_PER_AMP;
    for g in circuit.gates() {
        match classify(g, layout) {
            GateClass::FullyLocal => s.fully_local += 1,
            GateClass::LocalMemory => s.local_memory += 1,
            GateClass::Distributed => {
                s.distributed += 1;
                s.bytes_full_exchange += full;
                if matches!(g, Gate::Swap(..)) {
                    s.distributed_swaps += 1;
                    // Only amplitudes whose two swap bits differ move:
                    // half the local vector.
                    s.bytes_half_exchange_swaps += full / 2;
                } else {
                    s.bytes_half_exchange_swaps += full;
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qft::{cache_blocked_qft, qft};

    #[test]
    fn layout_arithmetic() {
        let l = Layout::new(38, 64);
        assert_eq!(l.rank_qubits(), 6);
        assert_eq!(l.local_qubits(), 32);
        assert_eq!(l.local_amps(), 1u64 << 32);
        assert!(l.is_local(31));
        assert!(!l.is_local(32));
        assert_eq!(l.rank_bit(32), 0);
        assert_eq!(l.rank_bit(37), 5);
    }

    #[test]
    fn pair_rank_is_xor() {
        let l = Layout::new(10, 8); // 7 local qubits
        assert_eq!(l.pair_rank(0, 7), 1);
        assert_eq!(l.pair_rank(5, 8), 7); // 0b101 ^ 0b010
        assert_eq!(l.pair_rank(l.pair_rank(3, 9), 9), 3); // involution
    }

    #[test]
    #[should_panic(expected = "ranks need at least")]
    fn too_many_ranks_rejected() {
        Layout::new(2, 8);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_pow2_ranks_rejected() {
        Layout::new(10, 6);
    }

    #[test]
    fn single_rank_everything_at_worst_local_memory() {
        let l = Layout::new(5, 1);
        for g in [
            Gate::H(4),
            Gate::X(0),
            Gate::Swap(0, 4),
            Gate::CNot {
                control: 4,
                target: 3,
            },
        ] {
            assert_ne!(classify(&g, &l), GateClass::Distributed, "{g}");
        }
    }

    #[test]
    fn diagonal_gates_are_fully_local_even_on_global_qubits() {
        let l = Layout::new(8, 16); // 4 local
        for g in [
            Gate::Z(7),
            Gate::S(6),
            Gate::T(5),
            Gate::Phase {
                target: 7,
                theta: 0.4,
            },
            Gate::CPhase {
                a: 6,
                b: 7,
                theta: 0.2,
            },
            Gate::CZ(4, 7),
            Gate::Rz {
                target: 7,
                theta: 1.0,
            },
        ] {
            assert_eq!(classify(&g, &l), GateClass::FullyLocal, "{g}");
        }
    }

    #[test]
    fn nondiagonal_follow_target_locality() {
        let l = Layout::new(8, 16); // local: 0..3
        assert_eq!(classify(&Gate::H(3), &l), GateClass::LocalMemory);
        assert_eq!(classify(&Gate::H(4), &l), GateClass::Distributed);
        assert_eq!(classify(&Gate::X(7), &l), GateClass::Distributed);
        // global control, local target: no communication
        assert_eq!(
            classify(
                &Gate::CNot {
                    control: 7,
                    target: 0
                },
                &l
            ),
            GateClass::LocalMemory
        );
        // local control, global target: distributed
        assert_eq!(
            classify(
                &Gate::CNot {
                    control: 0,
                    target: 7
                },
                &l
            ),
            GateClass::Distributed
        );
    }

    #[test]
    fn swap_locality() {
        let l = Layout::new(8, 16);
        assert_eq!(classify(&Gate::Swap(0, 3), &l), GateClass::LocalMemory);
        assert_eq!(classify(&Gate::Swap(0, 4), &l), GateClass::Distributed);
        assert_eq!(classify(&Gate::Swap(5, 7), &l), GateClass::Distributed);
    }

    #[test]
    fn qft_summary_paper_scale() {
        // 38 qubits, 64 ranks: 6 global qubits.
        let l = Layout::new(38, 64);
        let s = comm_summary(&qft(38), &l);
        assert_eq!(s.distributed, 12); // 6 H + 6 SWAP
        assert_eq!(s.distributed_swaps, 6);
        // CPhases are all fully local.
        assert_eq!(s.fully_local, (38 * 37 / 2) as usize);
        let cb = comm_summary(&cache_blocked_qft(38, 30), &l);
        assert_eq!(cb.distributed, 6); // SWAPs only
        assert_eq!(cb.distributed_swaps, 6);
        // Cache blocking halves exchanged bytes...
        assert_eq!(cb.bytes_full_exchange * 2, s.bytes_full_exchange);
        // ...and half-exchange SWAPs halve them again (paper §4).
        assert_eq!(
            cb.bytes_half_exchange_swaps * 2,
            cb.bytes_full_exchange
        );
    }

    #[test]
    fn exchange_bytes_match_local_share() {
        let l = Layout::new(10, 4); // 8 local qubits, 256 amps → 4096 B
        let mut c = Circuit::new(10);
        c.h(9); // one distributed gate
        let s = comm_summary(&c, &l);
        assert_eq!(s.bytes_full_exchange, 256 * 16);
    }
}
