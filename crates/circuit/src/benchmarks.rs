//! The paper's §2.3 stress circuits.
//!
//! "Two other benchmarking circuits were designed — the Hadamard gate
//! benchmark and the SWAP gate benchmark. Their structure is simple,
//! consisting of k gates applied sequentially to the same target qubits."
//!
//! A Hadamard benchmark on the last qubit is the worst-case simulation
//! scenario: every gate is distributed (when the run spans multiple
//! ranks), so the profile is pure communication (fig 5, left).

use crate::circuit::Circuit;

/// `k` Hadamard gates applied to `target`. The paper sweeps `target`
/// across 0–37 with `k = 50` on 64 nodes (Table 1).
pub fn hadamard_benchmark(n_qubits: u32, target: u32, k: usize) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for _ in 0..k {
        c.h(target);
    }
    c
}

/// `k` SWAP gates applied to `(a, b)`. The paper's fig 4 uses local
/// targets {0, 4, 8, 12, 16} against distributed targets {35, 36, 37}
/// with `k = 50`.
pub fn swap_benchmark(n_qubits: u32, a: u32, b: u32, k: usize) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for _ in 0..k {
        c.swap(a, b);
    }
    c
}

/// The paper's fig 4 target grid: every (local, distributed) combination.
///
/// `locals` and `globals` are the qubit index lists; the return value
/// pairs them in row-major order, matching the figure's series.
pub fn swap_benchmark_grid(locals: &[u32], globals: &[u32]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::with_capacity(locals.len() * globals.len());
    for &g in globals {
        for &l in locals {
            pairs.push((l, g));
        }
    }
    pairs
}

/// The fig 4 experiment's published qubit choices (38-qubit register on
/// 64 nodes): "we instead selected 5 local targets [0, 4, 8, 12, 16],
/// and 3 distributed targets [35, 36, 37]".
pub fn paper_swap_targets() -> (Vec<u32>, Vec<u32>) {
    (vec![0, 4, 8, 12, 16], vec![35, 36, 37])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, GateClass, Layout};
    use crate::gate::Gate;

    #[test]
    fn hadamard_benchmark_shape() {
        let c = hadamard_benchmark(38, 31, 50);
        assert_eq!(c.len(), 50);
        assert!(c.gates().iter().all(|g| *g == Gate::H(31)));
    }

    #[test]
    fn worst_case_is_all_distributed() {
        let layout = Layout::new(38, 64);
        let c = hadamard_benchmark(38, 37, 50);
        assert!(c
            .gates()
            .iter()
            .all(|g| classify(g, &layout) == GateClass::Distributed));
    }

    #[test]
    fn low_qubit_hadamards_stay_local() {
        let layout = Layout::new(38, 64);
        let c = hadamard_benchmark(38, 29, 50);
        assert!(c
            .gates()
            .iter()
            .all(|g| classify(g, &layout) == GateClass::LocalMemory));
    }

    #[test]
    fn swap_benchmark_shape() {
        let c = swap_benchmark(38, 4, 36, 50);
        assert_eq!(c.len(), 50);
        assert!(c.gates().iter().all(|g| *g == Gate::Swap(4, 36)));
    }

    #[test]
    fn paper_grid_has_15_series() {
        let (locals, globals) = paper_swap_targets();
        let grid = swap_benchmark_grid(&locals, &globals);
        assert_eq!(grid.len(), 15);
        assert_eq!(grid[0], (0, 35));
        assert_eq!(grid[14], (16, 37));
        // every pair mixes a local and a distributed target on 64 ranks
        let layout = Layout::new(38, 64);
        for (l, g) in grid {
            assert!(layout.is_local(l));
            assert!(!layout.is_local(g));
        }
    }
}
