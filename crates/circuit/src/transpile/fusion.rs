//! Diagonal-gate run segmentation ("fusion").
//!
//! Diagonal gates commute with each other and each one multiplies every
//! amplitude by an index-dependent phase. A run of `k` consecutive
//! diagonal gates can therefore be applied in a *single* sweep over the
//! statevector — one read and one write per amplitude instead of `k`.
//! QuEST exploits this for the QFT's controlled phases ("the controlled
//! phase gates are applied more efficiently", §3.2); the statevector
//! engine and the cost model both consume these run descriptors.

use crate::circuit::Circuit;

/// A maximal run `[start, end)` of consecutive diagonal gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagonalRun {
    /// First gate index of the run.
    pub start: usize,
    /// One past the last gate index.
    pub end: usize,
}

impl DiagonalRun {
    /// Number of gates fused.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Runs are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Finds every maximal run of ≥ `min_len` consecutive diagonal gates.
pub fn diagonal_runs(circuit: &Circuit, min_len: usize) -> Vec<DiagonalRun> {
    let min_len = min_len.max(1);
    let mut runs = Vec::new();
    let mut start = None;
    for (i, g) in circuit.gates().iter().enumerate() {
        match (g.is_diagonal(), start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                if i - s >= min_len {
                    runs.push(DiagonalRun { start: s, end: i });
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        let end = circuit.len();
        if end - s >= min_len {
            runs.push(DiagonalRun { start: s, end });
        }
    }
    runs
}

/// An execution schedule: each step is either one gate or a fused run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleStep {
    /// Apply gate `index` on its own.
    Single(usize),
    /// Apply gates `[start, end)` as one fused diagonal sweep.
    Fused(DiagonalRun),
}

/// Builds a full execution schedule with runs of ≥ `min_len` fused.
pub fn fused_schedule(circuit: &Circuit, min_len: usize) -> Vec<ScheduleStep> {
    let runs = diagonal_runs(circuit, min_len);
    let mut steps = Vec::new();
    let mut next_run = 0;
    let mut i = 0;
    while i < circuit.len() {
        if next_run < runs.len() && runs[next_run].start == i {
            steps.push(ScheduleStep::Fused(runs[next_run]));
            i = runs[next_run].end;
            next_run += 1;
        } else {
            steps.push(ScheduleStep::Single(i));
            i += 1;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qft::qft;
    use crate::random::{random_circuit, GatePool};

    #[test]
    fn empty_circuit_has_no_runs() {
        let c = Circuit::new(3);
        assert!(diagonal_runs(&c, 1).is_empty());
        assert!(fused_schedule(&c, 1).is_empty());
    }

    #[test]
    fn all_diagonal_is_one_run() {
        let c = random_circuit(5, 50, GatePool::DiagonalOnly, 1);
        let runs = diagonal_runs(&c, 1);
        assert_eq!(runs, vec![DiagonalRun { start: 0, end: 50 }]);
        assert_eq!(runs[0].len(), 50);
    }

    #[test]
    fn runs_split_at_non_diagonal_gates() {
        let mut c = Circuit::new(3);
        c.z(0).s(1).h(2).t(0).cphase(0, 1, 0.1).h(1).z(2);
        let runs = diagonal_runs(&c, 1);
        assert_eq!(
            runs,
            vec![
                DiagonalRun { start: 0, end: 2 },
                DiagonalRun { start: 3, end: 5 },
                DiagonalRun { start: 6, end: 7 },
            ]
        );
    }

    #[test]
    fn min_len_filters_short_runs() {
        let mut c = Circuit::new(3);
        c.z(0).h(1).t(0).s(1).h(2);
        let runs = diagonal_runs(&c, 2);
        assert_eq!(runs, vec![DiagonalRun { start: 2, end: 4 }]);
    }

    #[test]
    fn qft_runs_are_the_cphase_blocks() {
        // In the QFT each H is followed by a block of CPhases: the runs
        // are exactly those blocks (n−1 blocks have ≥1 CPhase).
        let n = 6;
        let runs = diagonal_runs(&qft(n), 1);
        assert_eq!(runs.len(), (n - 1) as usize);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, (n * (n - 1) / 2) as usize);
    }

    #[test]
    fn schedule_covers_every_gate_exactly_once() {
        let c = random_circuit(6, 80, GatePool::Full, 9);
        let steps = fused_schedule(&c, 2);
        let mut covered = vec![false; c.len()];
        for s in steps {
            match s {
                ScheduleStep::Single(i) => {
                    assert!(!covered[i]);
                    covered[i] = true;
                }
                ScheduleStep::Fused(r) => {
                    for slot in covered[r.start..r.end].iter_mut() {
                        assert!(!*slot);
                        *slot = true;
                    }
                }
            }
        }
        assert!(covered.into_iter().all(|b| b));
    }

    #[test]
    fn schedule_with_huge_min_len_is_all_singles() {
        let c = random_circuit(5, 30, GatePool::Full, 2);
        let steps = fused_schedule(&c, 1000);
        assert_eq!(steps.len(), 30);
        assert!(steps.iter().all(|s| matches!(s, ScheduleStep::Single(_))));
    }
}
