//! Comm-avoiding transpilation: cost-model-driven placement search with
//! batched global swaps.
//!
//! The cache-blocking pass ([`super::cache_blocking`]) evicts greedily,
//! one offender at a time, and lowers every layout change to a pairwise
//! SWAP — k layout changes cost k full exchanges. mpiQulacs showed that
//! rank-local relabeling plus *batched* global swaps collapses many
//! distributed exchanges into a few large ones. This pass closes that gap
//! in two ways:
//!
//! 1. **Search.** Instead of committing to the first legal eviction, the
//!    pass looks ahead over the gate stream, enumerates candidate batched
//!    placements (greedy-LRU baseline, lookahead-window beam search, an
//!    exhaustive victim enumeration for small windows) and scores each
//!    candidate with a pluggable [`ExchangeOracle`] — the machine crate's
//!    calibrated time/energy model implements the trait, making it a
//!    compile-time oracle rather than a reporting tool. Schedules are
//!    ordered by modeled exchange bytes first ([`StepCost::better_than`]),
//!    modeled seconds and joules as tie-breaks.
//! 2. **Batching.** Layout changes are emitted as [`PlanStep::Permute`]
//!    steps — whole index-bit permutations, adjacent changes coalesced by
//!    composition — which the statevector engine lowers to *one* global
//!    exchange that moves each amplitude block exactly once. A batched
//!    permutation mixing k rank bits moves `1 − 2^-k` of each slice, so
//!    even a single swap-in costs half of what the engine's full pairwise
//!    exchange moves.
//!
//! ## Contract
//!
//! Same shape as cache-blocking: for input circuit `C` the pass returns a
//! [`Plan`] whose steps, applied in order (a `Permute(p)` acting as the
//! index-bit permutation `Π(p)`), equal `Π(layout) · C` as operators.
//! Running the plan and un-permuting through `layout` reproduces `C`
//! amplitude-for-amplitude; the statevector property suite pins this.

use crate::circuit::Circuit;
use crate::classify::{Layout, BYTES_PER_AMP};
use crate::gate::Gate;
use crate::permutation::Permutation;

/// Modeled cost of one (or several, accumulated) communication steps.
///
/// Ordered lexicographically: exchange bytes dominate, modeled wall-clock
/// seconds and then energy break ties — the e-graph joint-cost idiom with
/// bytes as the primary objective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepCost {
    /// Total payload bytes sent across all ranks.
    pub bytes: u64,
    /// Modeled wall-clock seconds (driven by the busiest rank).
    pub seconds: f64,
    /// Modeled energy in joules.
    pub joules: f64,
}

impl StepCost {
    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: StepCost) {
        self.bytes += other.bytes;
        self.seconds += other.seconds;
        self.joules += other.joules;
    }

    /// Strict schedule ordering: fewer bytes wins; equal bytes fall back
    /// to modeled seconds, then joules.
    pub fn better_than(&self, other: &StepCost) -> bool {
        if self.bytes != other.bytes {
            return self.bytes < other.bytes;
        }
        if self.seconds != other.seconds {
            return self.seconds < other.seconds;
        }
        self.joules < other.joules
    }
}

/// Payload moved by lowering one index-bit permutation to a batched
/// global exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PermTraffic {
    /// Bytes sent summed over all ranks.
    pub total_bytes: u64,
    /// Bytes sent by the busiest rank (sets the step's wall-clock).
    pub max_rank_bytes: u64,
}

/// Compile-time communication oracle: prices one batched exchange step.
///
/// Defined here (the transpiler's crate) so the pass has no dependency on
/// the machine crate; `qse-machine` implements it over the calibrated
/// ARCHER2 model and hands it back down as a trait object.
pub trait ExchangeOracle {
    /// Scores one exchange step with the given traffic shape.
    fn exchange(&self, traffic: PermTraffic) -> StepCost;
}

/// Byte-counting oracle: the in-crate default when no machine model is
/// wired in. Seconds are a nominal 1 GiB/s so tie-breaks stay monotone.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteOracle;

impl ExchangeOracle for ByteOracle {
    fn exchange(&self, traffic: PermTraffic) -> StepCost {
        StepCost {
            bytes: traffic.total_bytes,
            seconds: traffic.max_rank_bytes as f64 / (1u64 << 30) as f64,
            joules: 0.0,
        }
    }
}

/// Exact traffic of applying index-bit permutation `perm` (over the full
/// register) as one batched exchange under `layout`.
///
/// Rank-address bit `p` of an amplitude's destination is sourced from bit
/// `perm⁻¹(L+p)` of its current index. A *local* source bit varies over
/// the local slice — each rank keeps only the `2^-m` fraction whose m
/// such bits match its own address — while a *global* source bit pins a
/// constraint on the rank address: ranks violating any constraint keep
/// nothing. Amplitudes that stay are never serialised, so a permutation
/// touching no rank bit costs zero network traffic.
pub fn permutation_traffic(perm: &Permutation, layout: &Layout) -> PermTraffic {
    assert_eq!(perm.len(), layout.n_qubits(), "permutation/layout width");
    let l = layout.local_qubits();
    let local_amps = layout.local_amps();
    let inv = perm.inverse();
    let mut m = 0u32;
    let mut constraints: Vec<(u32, u32)> = Vec::new(); // (dest rank bit, src rank bit)
    for p in l..layout.n_qubits() {
        let src = inv.apply(p);
        if src < l {
            m += 1;
        } else if src != p {
            constraints.push((p - l, src - l));
        }
    }
    let mut total_bytes = 0u64;
    let mut max_rank_bytes = 0u64;
    for u in 0..layout.n_ranks() {
        let stays = constraints
            .iter()
            .all(|&(d, s)| (u >> d) & 1 == (u >> s) & 1);
        let stay_amps = if stays { local_amps >> m } else { 0 };
        let sent = (local_amps - stay_amps) * BYTES_PER_AMP;
        total_bytes += sent;
        max_rank_bytes = max_rank_bytes.max(sent);
    }
    PermTraffic {
        total_bytes,
        max_rank_bytes,
    }
}

/// One step of a comm-avoiding schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// A physical gate, all non-diagonal operands inside the local window.
    Gate(Gate),
    /// A batched layout change: state index bit `q` moves to bit
    /// `perm.apply(q)`, lowered to a single multi-qubit global exchange.
    Permute(Permutation),
}

/// A comm-avoiding schedule: the tentpole output of [`comm_avoid`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    n_qubits: u32,
    /// Steps in application order.
    pub steps: Vec<PlanStep>,
    /// Final layout: logical qubit `q` ends at physical position
    /// `layout.apply(q)` (same contract as cache-blocking).
    pub layout: Permutation,
}

impl Plan {
    /// Wraps a plain physical circuit and its final layout (no permutes).
    pub fn from_circuit(circuit: &Circuit, layout: Permutation) -> Plan {
        assert_eq!(circuit.n_qubits(), layout.len(), "circuit/layout width");
        Plan {
            n_qubits: circuit.n_qubits(),
            steps: circuit.gates().iter().cloned().map(PlanStep::Gate).collect(),
            layout,
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of gate steps.
    pub fn gate_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Gate(_)))
            .count()
    }

    /// Number of batched-permutation steps.
    pub fn permute_count(&self) -> usize {
        self.steps.len() - self.gate_count()
    }

    /// Modeled exchange cost of every `Permute` step under `layout`,
    /// scored by `oracle` — the compile-time estimate reported next to
    /// the measured `bytes_exchanged`.
    pub fn price(&self, layout: &Layout, oracle: &dyn ExchangeOracle) -> StepCost {
        let mut cost = StepCost::default();
        for step in &self.steps {
            if let PlanStep::Permute(p) = step {
                cost.accumulate(oracle.exchange(permutation_traffic(p, layout)));
            }
        }
        cost
    }

    /// Appends the single batched permutation that restores the identity
    /// layout, making the plan strictly equivalent to the original
    /// circuit (one exchange, however many transpositions the layout
    /// decomposes into). Coalesces with a trailing `Permute` step.
    pub fn with_layout_restored(&self) -> Plan {
        let mut out = self.clone();
        if !out.layout.is_identity() {
            let inverse = out.layout.inverse();
            push_permute(&mut out.steps, inverse);
            out.layout = Permutation::identity(out.n_qubits);
        }
        out
    }
}

/// Placement-search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The cache-blocking baseline: one offender at a time, LRU victim.
    /// Batching happens only through adjacency coalescing (e.g. a
    /// both-global two-qubit unitary still becomes one permutation).
    Greedy,
    /// Lookahead-window beam search: at each decision point, candidate
    /// batches cover the next few upcoming offenders at once, with up to
    /// `width` victim-set variants per batch size, each scored by a
    /// greedy rollout over the window.
    Beam {
        /// Victim-set variants considered per batch size.
        width: usize,
        /// Gates of lookahead for offender collection and rollout.
        lookahead: usize,
    },
    /// Beam search with *every* victim combination enumerated (capped at
    /// [`EXHAUSTIVE_CAP`] sets, past which it degrades to beam variants).
    /// Intended for small windows and tests.
    Exhaustive {
        /// Gates of lookahead for offender collection and rollout.
        lookahead: usize,
    },
}

impl Strategy {
    /// The default beam configuration used by the CLI.
    pub fn beam() -> Strategy {
        Strategy::Beam {
            width: 4,
            lookahead: 48,
        }
    }
}

/// Upper bound on victim sets enumerated by [`Strategy::Exhaustive`].
pub const EXHAUSTIVE_CAP: usize = 512;

/// Coalesces a layout change into the step list: composes with a
/// trailing `Permute`, drops identities (including a pair that cancels).
fn push_permute(steps: &mut Vec<PlanStep>, perm: Permutation) {
    if perm.is_identity() {
        return;
    }
    if let Some(PlanStep::Permute(prev)) = steps.last_mut() {
        // `prev` is applied first, then `perm`: combined = perm ∘ prev.
        let combined = perm.compose(prev);
        if combined.is_identity() {
            steps.pop();
        } else {
            *prev = combined;
        }
        return;
    }
    steps.push(PlanStep::Permute(perm));
}

/// Layout bookkeeping shared by the pass and its rollout simulations.
#[derive(Debug, Clone)]
struct Tracker {
    phys_of: Vec<u32>, // logical -> physical
    log_of: Vec<u32>,  // physical -> logical
    last_use: Vec<u64>, // by physical slot
}

impl Tracker {
    fn new(n: u32) -> Tracker {
        Tracker {
            phys_of: (0..n).collect(),
            log_of: (0..n).collect(),
            last_use: vec![0; n as usize],
        }
    }

    /// Absorbs an input SWAP into the layout (no emitted step).
    fn virtual_swap(&mut self, a: u32, b: u32, clock: u64) {
        let (pa, pb) = (self.phys_of[a as usize], self.phys_of[b as usize]);
        self.phys_of.swap(a as usize, b as usize);
        self.log_of.swap(pa as usize, pb as usize);
        self.last_use[pa as usize] = clock;
        self.last_use[pb as usize] = clock;
    }

    /// Applies a batch of disjoint (victim, offender) physical-position
    /// transpositions to the layout.
    fn apply_batch(&mut self, batch: &[(u32, u32)], clock: u64) {
        for &(victim, offender) in batch {
            let (la, lb) = (
                self.log_of[victim as usize],
                self.log_of[offender as usize],
            );
            self.phys_of.swap(la as usize, lb as usize);
            self.log_of.swap(victim as usize, offender as usize);
            self.last_use[victim as usize] = clock;
        }
    }

    fn remap(&self, gate: &Gate) -> Gate {
        gate.remap(&|q: u32| self.phys_of[q as usize])
    }
}

/// Physical positions a gate needs inside the local window: both qubits
/// for a general two-qubit unitary, the target otherwise, nothing for
/// diagonals (mirrors the cache-blocking rule).
fn needs_local(physical: &Gate) -> Vec<u32> {
    if physical.is_diagonal() {
        return Vec::new();
    }
    match *physical {
        Gate::Unitary2 { a, b, .. } => vec![a, b],
        ref g => vec![g.target()],
    }
}

fn offenders(physical: &Gate, local: u32) -> Vec<u32> {
    needs_local(physical)
        .into_iter()
        .filter(|&p| p >= local)
        .collect()
}

/// Builds the permutation realising a batch of disjoint transpositions.
fn batch_permutation(n: u32, batch: &[(u32, u32)]) -> Permutation {
    let mut p = Permutation::identity(n);
    for &(a, b) in batch {
        p.swap(a, b);
    }
    p
}

/// Shared read-only context for the search.
struct Ctx<'a> {
    gates: &'a [Gate],
    /// Per-logical-qubit gate indices (1-based clocks), ascending.
    uses: Vec<Vec<u64>>,
    local: u32,
    layout: &'a Layout,
    oracle: &'a dyn ExchangeOracle,
}

impl Ctx<'_> {
    /// Bélády distance: the next clock at which `logical` is used.
    fn next_use(&self, logical: u32, now: u64) -> u64 {
        let u = &self.uses[logical as usize];
        match u.partition_point(|&t| t <= now) {
            i if i < u.len() => u[i],
            _ => u64::MAX,
        }
    }
}

/// Runs the comm-avoiding pass.
///
/// `layout` fixes the rank geometry (how many qubits are global) and the
/// traffic model; `oracle` prices candidate exchanges. The returned plan
/// satisfies the module-level contract.
pub fn comm_avoid(
    circuit: &Circuit,
    layout: &Layout,
    strategy: Strategy,
    oracle: &dyn ExchangeOracle,
) -> Plan {
    let n = circuit.n_qubits();
    assert_eq!(layout.n_qubits(), n, "layout geometry must match the circuit");
    let local = layout.local_qubits();
    assert!(local >= 1, "at least one local qubit is required");

    let uses = {
        let mut uses = vec![Vec::new(); n as usize];
        for (i, g) in circuit.gates().iter().enumerate() {
            for q in g.qubits() {
                uses[q as usize].push(i as u64 + 1);
            }
        }
        uses
    };
    let ctx = Ctx {
        gates: circuit.gates(),
        uses,
        local,
        layout,
        oracle,
    };

    let mut tr = Tracker::new(n);
    let mut steps: Vec<PlanStep> = Vec::new();
    for (i, gate) in ctx.gates.iter().enumerate() {
        let clock = i as u64 + 1;
        if let Gate::Swap(a, b) = *gate {
            tr.virtual_swap(a, b, clock);
            continue;
        }
        let mut physical = tr.remap(gate);
        loop {
            let offs = offenders(&physical, local);
            if offs.is_empty() {
                break;
            }
            let batch = choose_batch(&ctx, &tr, i, &offs, &physical, strategy);
            push_permute(&mut steps, batch_permutation(n, &batch));
            tr.apply_batch(&batch, clock);
            physical = tr.remap(gate);
        }
        for p in physical.qubits() {
            tr.last_use[p as usize] = clock;
        }
        steps.push(PlanStep::Gate(physical));
    }

    Plan {
        n_qubits: n,
        steps,
        layout: Permutation::from_map(tr.phys_of),
    }
}

/// Picks the batch of (victim, offender) transpositions resolving the
/// current gate's offenders, possibly pre-fetching upcoming ones.
fn choose_batch(
    ctx: &Ctx<'_>,
    tr: &Tracker,
    i: usize,
    offs: &[u32],
    physical: &Gate,
    strategy: Strategy,
) -> Vec<(u32, u32)> {
    let in_gate = physical.qubits();
    let eligible: Vec<u32> = (0..ctx.local).filter(|p| !in_gate.contains(p)).collect();
    assert!(
        eligible.len() >= offs.len(),
        "local window big enough for a victim slot"
    );
    match strategy {
        Strategy::Greedy => {
            // One offender, least-recently-used victim — the
            // cache-blocking baseline, lowered through Permute steps.
            let victim = eligible
                .iter()
                .copied()
                .min_by_key(|&p| tr.last_use[p as usize])
                .expect("eligible is non-empty");
            vec![(victim, offs[0])]
        }
        Strategy::Beam { width, lookahead } => {
            search_batch(ctx, tr, i, offs, &eligible, width.max(1), lookahead, false)
        }
        Strategy::Exhaustive { lookahead } => {
            search_batch(ctx, tr, i, offs, &eligible, 2, lookahead, true)
        }
    }
}

/// Distinct global physical positions needed within the window, in
/// first-need order, scanned with the layout frozen (input SWAPs are
/// still absorbed). The current gate is scanned first, so its offenders
/// form a prefix of the result.
fn upcoming_offenders(ctx: &Ctx<'_>, tr: &Tracker, i: usize, window: usize) -> Vec<u32> {
    let mut t = tr.clone();
    let mut out: Vec<u32> = Vec::new();
    let end = usize::min(ctx.gates.len(), i + usize::max(window, 1));
    for (j, g) in ctx.gates.iter().enumerate().take(end).skip(i) {
        if let Gate::Swap(a, b) = *g {
            t.virtual_swap(a, b, j as u64 + 1);
            continue;
        }
        for p in offenders(&t.remap(g), ctx.local) {
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    out
}

/// Beam / exhaustive candidate search: enumerate batch sizes covering the
/// current offenders plus 0.. upcoming ones, pair each size with victim
/// sets, score every candidate (immediate exchange + greedy rollout over
/// the window) and keep the best by [`StepCost::better_than`].
#[allow(clippy::too_many_arguments)]
fn search_batch(
    ctx: &Ctx<'_>,
    tr: &Tracker,
    i: usize,
    offs: &[u32],
    eligible: &[u32],
    width: usize,
    lookahead: usize,
    exhaustive: bool,
) -> Vec<(u32, u32)> {
    let clock = i as u64 + 1;
    let upcoming = upcoming_offenders(ctx, tr, i, lookahead);
    debug_assert!(upcoming.starts_with(offs), "current offenders lead");
    let max_batch = usize::min(upcoming.len(), eligible.len());

    // Victims ranked best-first: furthest next use of the occupant
    // (Bélády), least-recently-used slot breaking ties.
    let mut ranked: Vec<u32> = eligible.to_vec();
    ranked.sort_by_key(|&p| {
        (
            std::cmp::Reverse(ctx.next_use(tr.log_of[p as usize], clock)),
            tr.last_use[p as usize],
            p,
        )
    });
    let mut lru: Vec<u32> = eligible.to_vec();
    lru.sort_by_key(|&p| (tr.last_use[p as usize], p));

    let mut best: Option<(StepCost, Vec<(u32, u32)>)> = None;
    for k in usize::max(offs.len(), 1)..=max_batch {
        let batch_offs = &upcoming[..k];
        for victims in victim_sets(&ranked, &lru, k, width, exhaustive) {
            let batch: Vec<(u32, u32)> = victims
                .iter()
                .copied()
                .zip(batch_offs.iter().copied())
                .collect();
            let cost = score_batch(ctx, tr, i, &batch, lookahead);
            let is_better = match &best {
                None => true,
                Some((b, _)) => cost.better_than(b),
            };
            if is_better {
                best = Some((cost, batch));
            }
        }
    }
    best.expect("at least one candidate batch exists").1
}

/// Victim-set candidates of size `k`: the Bélády-ranked prefix, the LRU
/// prefix, tail perturbations of the ranked prefix up to `width` sets —
/// or every combination when `exhaustive` (capped at [`EXHAUSTIVE_CAP`]).
fn victim_sets(
    ranked: &[u32],
    lru: &[u32],
    k: usize,
    width: usize,
    exhaustive: bool,
) -> Vec<Vec<u32>> {
    if exhaustive {
        let all = combinations(ranked, k, EXHAUSTIVE_CAP);
        if all.len() < EXHAUSTIVE_CAP {
            return all;
        }
        // Too many combinations for the cap: degrade to beam variants.
    }
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let push = |s: Vec<u32>, sets: &mut Vec<Vec<u32>>| {
        let mut key = s.clone();
        key.sort_unstable();
        if !sets.iter().any(|e| {
            let mut ek = e.clone();
            ek.sort_unstable();
            ek == key
        }) {
            sets.push(s);
        }
    };
    push(ranked[..k].to_vec(), &mut sets);
    push(lru[..k].to_vec(), &mut sets);
    // Perturb the ranked prefix: swap its last pick for the next-ranked.
    let mut alt = 0usize;
    while sets.len() < width && k + alt < ranked.len() {
        let mut s = ranked[..k].to_vec();
        s[k - 1] = ranked[k + alt];
        push(s, &mut sets);
        alt += 1;
    }
    sets.truncate(width.max(1));
    sets
}

/// All k-subsets of `items` in lexicographic order, stopping at `cap`.
fn combinations(items: &[u32], k: usize, cap: usize) -> Vec<Vec<u32>> {
    let n = items.len();
    let mut out = Vec::new();
    if k == 0 || k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&j| items[j]).collect());
        if out.len() >= cap {
            return out;
        }
        // Advance the rightmost index that can still move.
        let mut pos = k;
        while pos > 0 {
            pos -= 1;
            if idx[pos] != pos + n - k {
                idx[pos] += 1;
                for j in pos + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
            if pos == 0 {
                return out;
            }
        }
    }
}

/// Scores a candidate batch: its own exchange cost plus a greedy-LRU
/// rollout over the lookahead window (each rollout swap-in priced as its
/// own single-transposition permutation).
fn score_batch(
    ctx: &Ctx<'_>,
    tr: &Tracker,
    i: usize,
    batch: &[(u32, u32)],
    lookahead: usize,
) -> StepCost {
    let n = ctx.layout.n_qubits();
    let mut cost = ctx
        .oracle
        .exchange(permutation_traffic(&batch_permutation(n, batch), ctx.layout));
    let mut t = tr.clone();
    t.apply_batch(batch, i as u64 + 1);
    let end = usize::min(ctx.gates.len(), i + usize::max(lookahead, 1));
    for (j, g) in ctx.gates.iter().enumerate().take(end).skip(i) {
        let clock = j as u64 + 1;
        if let Gate::Swap(a, b) = *g {
            t.virtual_swap(a, b, clock);
            continue;
        }
        let mut physical = t.remap(g);
        loop {
            let offs = offenders(&physical, ctx.local);
            let Some(&off) = offs.first() else { break };
            let in_gate = physical.qubits();
            let victim = (0..ctx.local)
                .filter(|p| !in_gate.contains(p))
                .min_by_key(|&p| t.last_use[p as usize])
                .expect("local window big enough for a victim slot");
            cost.accumulate(ctx.oracle.exchange(permutation_traffic(
                &batch_permutation(n, &[(victim, off)]),
                ctx.layout,
            )));
            t.apply_batch(&[(victim, off)], clock);
            physical = t.remap(g);
        }
        for p in physical.qubits() {
            t.last_use[p as usize] = clock;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qft::qft;
    use crate::random::{random_circuit, GatePool};

    fn geometry(n: u32, ranks: u64) -> Layout {
        Layout::new(n, ranks)
    }

    /// Brute-force traffic: enumerate every amplitude index, count the
    /// ones whose destination rank differs from their source rank.
    fn brute_traffic(perm: &Permutation, layout: &Layout) -> PermTraffic {
        let l = layout.local_qubits();
        let mut sent = vec![0u64; layout.n_ranks() as usize];
        for s in 0..(1u64 << layout.n_qubits()) {
            let d = perm.permute_index(s);
            if s >> l != d >> l {
                sent[(s >> l) as usize] += BYTES_PER_AMP;
            }
        }
        PermTraffic {
            total_bytes: sent.iter().sum(),
            max_rank_bytes: sent.iter().copied().max().unwrap_or(0),
        }
    }

    #[test]
    fn traffic_matches_brute_force() {
        let cases: Vec<(u32, u64, Vec<u32>)> = vec![
            (4, 4, vec![0, 1, 2, 3]),        // identity
            (4, 4, vec![3, 1, 2, 0]),        // local<->global transposition
            (4, 4, vec![2, 3, 0, 1]),        // both globals swapped in
            (4, 4, vec![0, 1, 3, 2]),        // global<->global
            (5, 8, vec![4, 3, 2, 1, 0]),     // full reversal
            (5, 8, vec![1, 0, 2, 3, 4]),     // purely local: zero traffic
            (6, 4, vec![5, 1, 2, 3, 0, 4]),  // 3-cycle through the globals
        ];
        for (n, ranks, map) in cases {
            let layout = geometry(n, ranks);
            let p = Permutation::from_map(map);
            assert_eq!(
                permutation_traffic(&p, &layout),
                brute_traffic(&p, &layout),
                "mismatch for {p:?} at R={ranks}"
            );
        }
    }

    #[test]
    fn local_permutation_is_free() {
        let layout = geometry(6, 4);
        let mut p = Permutation::identity(6);
        p.swap(0, 3);
        p.swap(1, 2);
        assert_eq!(permutation_traffic(&p, &layout).total_bytes, 0);
    }

    #[test]
    fn single_swap_in_moves_half_of_each_slice() {
        // One local<->global transposition: every rank keeps the half of
        // its slice whose routing bit matches, versus the engine's full
        // pairwise exchange.
        let layout = geometry(6, 4);
        let mut p = Permutation::identity(6);
        p.swap(0, 5);
        let t = permutation_traffic(&p, &layout);
        let half_slice = layout.local_amps() / 2 * BYTES_PER_AMP;
        assert_eq!(t.max_rank_bytes, half_slice);
        assert_eq!(t.total_bytes, layout.n_ranks() * half_slice);
    }

    #[test]
    fn batched_double_swap_beats_two_singles() {
        let layout = geometry(6, 4);
        let mut batched = Permutation::identity(6);
        batched.swap(0, 4);
        batched.swap(1, 5);
        let mut single = Permutation::identity(6);
        single.swap(0, 4);
        let two_singles = 2 * permutation_traffic(&single, &layout).total_bytes;
        let one_batch = permutation_traffic(&batched, &layout).total_bytes;
        assert!(
            one_batch < two_singles,
            "batched {one_batch} vs sequential {two_singles}"
        );
    }

    #[test]
    fn step_cost_orders_bytes_first() {
        let a = StepCost { bytes: 10, seconds: 9.0, joules: 9.0 };
        let b = StepCost { bytes: 11, seconds: 0.0, joules: 0.0 };
        assert!(a.better_than(&b));
        let c = StepCost { bytes: 10, seconds: 1.0, joules: 0.0 };
        assert!(c.better_than(&a));
    }

    #[test]
    fn push_permute_coalesces_and_cancels() {
        let mut steps = Vec::new();
        let mut p1 = Permutation::identity(4);
        p1.swap(0, 3);
        push_permute(&mut steps, p1.clone());
        assert_eq!(steps.len(), 1);
        // Composing with itself cancels (transpositions are involutions).
        push_permute(&mut steps, p1.clone());
        assert!(steps.is_empty());
        // Distinct transpositions merge into one step.
        let mut p2 = Permutation::identity(4);
        p2.swap(1, 2);
        push_permute(&mut steps, p1);
        push_permute(&mut steps, p2);
        assert_eq!(steps.len(), 1);
        let PlanStep::Permute(ref merged) = steps[0] else {
            panic!("expected a permute step");
        };
        assert_eq!(merged.apply(0), 3);
        assert_eq!(merged.apply(1), 2);
    }

    #[test]
    fn local_circuit_passes_through() {
        let mut c = Circuit::new(6);
        c.h(0).cnot(1, 2).t(3);
        let layout = geometry(6, 4);
        for strategy in [Strategy::Greedy, Strategy::beam()] {
            let plan = comm_avoid(&c, &layout, strategy, &ByteOracle);
            assert_eq!(plan.permute_count(), 0);
            assert_eq!(plan.gate_count(), 3);
            assert!(plan.layout.is_identity());
        }
    }

    #[test]
    fn greedy_matches_cache_blocking_decisions() {
        // Same LRU rule, so the emitted gate stream equals cache_block's
        // with each inserted SWAP lowered to a Permute step.
        let c = random_circuit(8, 80, GatePool::Full, 42);
        let layout = geometry(8, 8);
        let plan = comm_avoid(&c, &layout, Strategy::Greedy, &ByteOracle);
        let t = crate::transpile::cache_block(&c, layout.local_qubits());
        let plan_gates: Vec<&Gate> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Gate(g) => Some(g),
                PlanStep::Permute(_) => None,
            })
            .collect();
        let blocked_gates: Vec<&Gate> = t
            .circuit
            .gates()
            .iter()
            .filter(|g| !matches!(g, Gate::Swap(..)))
            .collect();
        assert_eq!(plan_gates, blocked_gates);
        assert_eq!(plan.layout, t.layout);
    }

    #[test]
    fn emitted_gates_are_local(){
        let c = random_circuit(9, 150, GatePool::Full, 7);
        let layout = geometry(9, 16);
        for strategy in [
            Strategy::Greedy,
            Strategy::beam(),
            Strategy::Exhaustive { lookahead: 12 },
        ] {
            let plan = comm_avoid(&c, &layout, strategy, &ByteOracle);
            for step in &plan.steps {
                if let PlanStep::Gate(g) = step {
                    for p in offenders(g, layout.local_qubits()) {
                        panic!("global operand {p} leaked from {g} under {strategy:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn gate_multiset_preserved() {
        let c = random_circuit(8, 120, GatePool::Full, 99);
        let layout = geometry(8, 8);
        for strategy in [Strategy::Greedy, Strategy::beam()] {
            let plan = comm_avoid(&c, &layout, strategy, &ByteOracle);
            let mut before = c.gate_counts();
            before.remove("Swap");
            let mut after = std::collections::BTreeMap::new();
            for step in &plan.steps {
                if let PlanStep::Gate(g) = step {
                    *after.entry(g.name()).or_insert(0usize) += 1;
                }
            }
            let before: Vec<_> = before.into_iter().collect();
            let after: Vec<_> = after.into_iter().collect();
            assert_eq!(before, after, "strategy {strategy:?}");
        }
    }

    #[test]
    fn beam_coalesces_qft_swap_ins() {
        // QFT at R=4: the two global qubits are both needed within the
        // lookahead window, so beam brings them in with a single batched
        // permutation; greedy needs one permutation each.
        let n = 12u32;
        let layout = geometry(n, 4);
        let greedy = comm_avoid(&qft(n), &layout, Strategy::Greedy, &ByteOracle);
        let beam = comm_avoid(&qft(n), &layout, Strategy::beam(), &ByteOracle);
        assert_eq!(greedy.permute_count(), 2);
        assert_eq!(beam.permute_count(), 1);
        let gb = greedy.price(&layout, &ByteOracle).bytes;
        let bb = beam.price(&layout, &ByteOracle).bytes;
        assert!(bb < gb, "beam {bb} vs greedy {gb} modeled bytes");
    }

    #[test]
    fn beam_never_models_more_bytes_than_greedy() {
        for seed in 0..10u64 {
            let c = random_circuit(9, 60, GatePool::Full, seed + 1000);
            let layout = geometry(9, 8);
            let g = comm_avoid(&c, &layout, Strategy::Greedy, &ByteOracle)
                .with_layout_restored();
            let b = comm_avoid(&c, &layout, Strategy::beam(), &ByteOracle)
                .with_layout_restored();
            let gb = g.price(&layout, &ByteOracle).bytes;
            let bb = b.price(&layout, &ByteOracle).bytes;
            assert!(bb <= gb, "seed {seed}: beam {bb} > greedy {gb}");
        }
    }

    #[test]
    fn exhaustive_never_models_more_bytes_than_beam() {
        for seed in 0..6u64 {
            let c = random_circuit(8, 40, GatePool::Full, seed + 77);
            let layout = geometry(8, 4);
            let b = comm_avoid(&c, &layout, Strategy::beam(), &ByteOracle);
            let e = comm_avoid(
                &c,
                &layout,
                Strategy::Exhaustive { lookahead: 48 },
                &ByteOracle,
            );
            let bb = b.price(&layout, &ByteOracle).bytes;
            let eb = e.price(&layout, &ByteOracle).bytes;
            assert!(eb <= bb, "seed {seed}: exhaustive {eb} > beam {bb}");
        }
    }

    #[test]
    fn restore_appends_one_permute_step() {
        let mut c = Circuit::new(6);
        c.swap(0, 5).h(5); // virtual swap leaves a non-identity layout
        let layout = geometry(6, 4);
        let plan = comm_avoid(&c, &layout, Strategy::Greedy, &ByteOracle);
        assert!(!plan.layout.is_identity());
        let restored = plan.with_layout_restored();
        assert!(restored.layout.is_identity());
        assert_eq!(restored.permute_count(), plan.permute_count() + 1);
        // The appended step is the inverse of the unrestored layout.
        let PlanStep::Permute(ref last) = restored.steps[restored.steps.len() - 1]
        else {
            panic!("restore must end in a permute step");
        };
        assert_eq!(last.compose(&plan.layout), Permutation::identity(6));
    }

    #[test]
    fn combinations_enumerate_and_cap() {
        let items = [1u32, 2, 3, 4];
        let all = combinations(&items, 2, 100);
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![1, 2]);
        assert_eq!(all[5], vec![3, 4]);
        assert_eq!(combinations(&items, 2, 3).len(), 3);
        assert!(combinations(&items, 5, 10).is_empty());
        assert_eq!(combinations(&items, 4, 10).len(), 1);
    }
}
