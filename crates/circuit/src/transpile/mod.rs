//! Circuit transformations: cache-blocking and diagonal fusion.
//!
//! The paper's §2.2 optimisation (3) is "transpiling the circuit to reduce
//! communication via cache-blocking". Two implementations live here:
//!
//! * the QFT-specific SWAP-shift of fig 1b is in [`crate::qft`] (it needs
//!   no new gates because the QFT already ends in SWAPs);
//! * [`cache_blocking`] is the *general* pass — "it would also be useful
//!   to implement a cache-blocking transpiler" (§4 future work) — in the
//!   style of Doi & Horii's technique that Qiskit and cuQuantum use.
//!
//! [`fusion`] segments maximal runs of diagonal gates, modelling QuEST's
//! more efficient application of controlled phase gates (§3.2): a run of
//! diagonal gates can be applied in a single sweep over the statevector.
//!
//! [`comm_avoid`] is the cost-model-driven evolution of cache-blocking:
//! it *searches* placements (greedy baseline, lookahead beam, exhaustive)
//! against a pluggable exchange-cost oracle and emits batched
//! [`crate::Permutation`] steps instead of pairwise SWAPs.

pub mod cache_blocking;
pub mod comm_avoid;
pub mod fusion;
pub mod scheduling;

pub use cache_blocking::{cache_block, Transpiled};
pub use comm_avoid::{
    comm_avoid, permutation_traffic, ByteOracle, ExchangeOracle, PermTraffic, Plan,
    PlanStep, StepCost, Strategy,
};
pub use fusion::{diagonal_runs, DiagonalRun};
pub use scheduling::sink_diagonals;
