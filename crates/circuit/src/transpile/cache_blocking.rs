//! General cache-blocking transpiler.
//!
//! Keeps a *layout* (logical qubit → physical position) and rewrites the
//! circuit so that every communication-requiring gate is preceded by a
//! SWAP that drags its target into the local window. Input SWAP gates are
//! absorbed into the layout for free ("virtual swaps"), which is exactly
//! why the QFT cache-blocks so well — its trailing SWAP network costs
//! nothing, and only the physical SWAPs inserted for formerly-global
//! targets communicate.
//!
//! ## Contract
//!
//! For input circuit `C` the pass returns a physical circuit `T` and a
//! final layout `π` such that, as operators, `T = Π(π) · C`, where `Π(π)`
//! permutes qubit `q` to position `π(q)`. Equivalently: running `T` and
//! then un-permuting through `π` reproduces `C` exactly. Integration
//! tests in the statevector crate verify this amplitude-for-amplitude.

use crate::circuit::Circuit;
use crate::classify::Layout;
use crate::gate::Gate;
use crate::permutation::Permutation;
use crate::transpile::comm_avoid::Plan;

/// Result of the cache-blocking pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Transpiled {
    /// The rewritten (physical) circuit.
    pub circuit: Circuit,
    /// Final layout: logical qubit `q` ends at physical position
    /// `layout.apply(q)`.
    pub layout: Permutation,
}

impl Transpiled {
    /// Restores the identity layout through the batched-permutation
    /// lowering: the result is a [`Plan`] whose steps are the transpiled
    /// gates followed by a *single* `Permute` step, strictly equivalent
    /// to the original circuit. Earlier versions emitted one SWAP gate
    /// per transposition — k distributed exchanges where one batched
    /// exchange suffices.
    pub fn with_layout_restored(&self) -> Plan {
        Plan::from_circuit(&self.circuit, self.layout.clone()).with_layout_restored()
    }
}

/// Which local slot to evict when a global target must be swapped in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Evict the least-recently-used slot — cheap, online, the classic
    /// heuristic.
    #[default]
    Lru,
    /// Evict the slot whose occupant is next used furthest in the future
    /// (Bélády's optimal replacement) — possible here because the whole
    /// circuit is known ahead of time, unlike a hardware cache.
    FurthestUse,
}

/// Runs the cache-blocking pass with the default (LRU) victim policy.
pub fn cache_block(circuit: &Circuit, local_qubits: u32) -> Transpiled {
    cache_block_with(circuit, local_qubits, VictimPolicy::Lru)
}

/// Runs the cache-blocking pass for a rank layout with `local_qubits`
/// local positions.
///
/// Gates whose physical target already sits in the local window pass
/// through; a gate with a global physical target gets a SWAP inserted
/// that exchanges the target with a victim local position chosen by
/// `policy` (excluding positions the gate itself touches). Diagonal
/// gates never trigger SWAPs — they are "fully local" at any position.
pub fn cache_block_with(
    circuit: &Circuit,
    local_qubits: u32,
    policy: VictimPolicy,
) -> Transpiled {
    let n = circuit.n_qubits();
    assert!(
        local_qubits >= 1 && local_qubits <= n,
        "local window must be within the register"
    );
    // At least 2 local positions are needed when the gate being localised
    // also uses a local control; 1 works for plain single-qubit gates.
    let mut phys_of: Vec<u32> = (0..n).collect(); // logical -> physical
    let mut log_of: Vec<u32> = (0..n).collect(); // physical -> logical
    let mut last_use: Vec<u64> = vec![0; n as usize]; // by physical slot
    let mut clock: u64 = 0;

    // For Bélády: every input-gate index at which each logical qubit is
    // used, ascending; next use is found by binary search past `clock`.
    let uses: Vec<Vec<u64>> = {
        let mut uses = vec![Vec::new(); n as usize];
        for (i, g) in circuit.gates().iter().enumerate() {
            for q in g.qubits() {
                uses[q as usize].push(i as u64 + 1); // clock is 1-based
            }
        }
        uses
    };
    let next_use = |logical: u32, now: u64| -> u64 {
        let u = &uses[logical as usize];
        match u.partition_point(|&t| t <= now) {
            i if i < u.len() => u[i],
            _ => u64::MAX, // never used again: the perfect victim
        }
    };

    let mut out = Circuit::new(n);
    for gate in circuit.gates() {
        clock += 1;
        // Virtual swap: pure layout bookkeeping, no emitted gate.
        if let Gate::Swap(a, b) = *gate {
            let (pa, pb) = (phys_of[a as usize], phys_of[b as usize]);
            phys_of.swap(a as usize, b as usize);
            log_of.swap(pa as usize, pb as usize);
            last_use[pa as usize] = clock;
            last_use[pb as usize] = clock;
            continue;
        }

        let mut physical = gate.remap(&|q: u32| phys_of[q as usize]);
        if !physical.is_diagonal() {
            // The positions this gate needs inside the local window: the
            // target for single-target gates, *both* qubits for a general
            // two-qubit unitary (its orbits pair on both).
            loop {
                let needs_local = match physical {
                    Gate::Unitary2 { a, b, .. } => vec![a, b],
                    ref g => vec![g.target()],
                };
                let Some(&offender) = needs_local.iter().find(|&&p| p >= local_qubits)
                else {
                    break;
                };
                // Choose the victim local slot (not touched by this gate).
                let in_gate = physical.qubits();
                let victim = match policy {
                    VictimPolicy::Lru => (0..local_qubits)
                        .filter(|p| !in_gate.contains(p))
                        .min_by_key(|&p| last_use[p as usize]),
                    VictimPolicy::FurthestUse => (0..local_qubits)
                        .filter(|p| !in_gate.contains(p))
                        .max_by_key(|&p| next_use(log_of[p as usize], clock)),
                }
                .expect("local window big enough for a victim slot");
                out.swap(victim, offender);
                // The logical occupants of `victim` and `offender`
                // exchange physical positions.
                let (la, lb) = (log_of[victim as usize], log_of[offender as usize]);
                phys_of.swap(la as usize, lb as usize);
                log_of.swap(victim as usize, offender as usize);
                last_use[victim as usize] = clock;
                physical = gate.remap(&|q: u32| phys_of[q as usize]);
            }
        }
        for p in physical.qubits() {
            last_use[p as usize] = clock;
        }
        out.push(physical);
    }

    Transpiled {
        circuit: out,
        layout: Permutation::from_map(phys_of),
    }
}

/// Convenience: runs the pass for an explicit rank [`Layout`].
pub fn cache_block_for(circuit: &Circuit, layout: &Layout) -> Transpiled {
    cache_block(circuit, layout.local_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, comm_summary, GateClass, Layout};
    use crate::qft::qft;
    use crate::random::{random_circuit, GatePool};

    #[test]
    fn local_circuit_passes_through_unchanged() {
        let mut c = Circuit::new(6);
        c.h(0).cnot(1, 2).t(3);
        let t = cache_block(&c, 6);
        assert_eq!(t.circuit, c);
        assert!(t.layout.is_identity());
    }

    #[test]
    fn swaps_are_virtualised() {
        let mut c = Circuit::new(4);
        c.swap(0, 3).h(3); // after the swap, logical 3 sits at physical 0
        let t = cache_block(&c, 2);
        // No swap emitted; the H lands on physical 0.
        assert_eq!(t.circuit.gates(), &[Gate::H(0)]);
        assert_eq!(t.layout.apply(3), 0);
        assert_eq!(t.layout.apply(0), 3);
    }

    #[test]
    fn global_target_triggers_one_swap() {
        let mut c = Circuit::new(4);
        c.h(3);
        let t = cache_block(&c, 2); // physical locals: 0, 1
        let gates = t.circuit.gates();
        assert_eq!(gates.len(), 2);
        assert!(matches!(gates[0], Gate::Swap(_, 3)));
        assert!(matches!(gates[1], Gate::H(p) if p < 2));
    }

    #[test]
    fn repeated_gates_amortise_the_swap() {
        // 50 H's on a global qubit: one swap then 50 local H's — the
        // paper's "it can be compensated if the target is frequently
        // acted on" (§2.2).
        let c = crate::benchmarks::hadamard_benchmark(8, 7, 50);
        let t = cache_block(&c, 4);
        let layout = Layout::new(8, 16);
        let distributed = t
            .circuit
            .gates()
            .iter()
            .filter(|g| classify(g, &layout) == GateClass::Distributed)
            .count();
        assert_eq!(distributed, 1);
        assert_eq!(t.circuit.gate_counts()["H"], 50);
        assert_eq!(t.circuit.gate_counts()["Swap"], 1);
    }

    #[test]
    fn diagonal_gates_never_trigger_swaps() {
        let mut c = Circuit::new(6);
        c.cphase(4, 5, 0.3).z(5).s(4).phase(5, 0.1);
        let t = cache_block(&c, 2);
        assert_eq!(t.circuit.gate_counts().get("Swap"), None);
        assert!(t.layout.is_identity());
    }

    #[test]
    fn qft_cache_blocks_to_swap_only_communication() {
        // Matches the hand construction: on the QFT, the general pass
        // leaves exactly the rank-qubit count of distributed SWAPs.
        let n = 12;
        let layout = Layout::new(n, 8); // 9 local, 3 global
        let t = cache_block_for(&qft(n), &layout);
        let s = comm_summary(&t.circuit, &layout);
        assert_eq!(s.distributed, 3);
        assert_eq!(s.distributed_swaps, 3);
        // Far fewer than the untranspiled circuit.
        let orig = comm_summary(&qft(n), &layout);
        assert_eq!(orig.distributed, 6); // 3 H + 3 swaps
    }

    #[test]
    fn controls_may_stay_global() {
        let mut c = Circuit::new(4);
        c.cnot(3, 0); // global control, local target: no swap needed
        let t = cache_block(&c, 2);
        assert_eq!(
            t.circuit.gates(),
            &[Gate::CNot {
                control: 3,
                target: 0
            }]
        );
    }

    #[test]
    fn layout_restoration_appends_one_permute_step() {
        use crate::transpile::comm_avoid::PlanStep;
        let mut c = Circuit::new(4);
        c.swap(0, 3).h(1);
        let t = cache_block(&c, 2);
        assert!(!t.layout.is_identity());
        let restored = t.with_layout_restored();
        assert!(restored.layout.is_identity());
        assert_eq!(restored.permute_count(), 1, "batched restore: one exchange");
        let PlanStep::Permute(ref p) = restored.steps[restored.steps.len() - 1] else {
            panic!("restore must end in a permute step");
        };
        assert_eq!(p.compose(&t.layout), Permutation::identity(4));
    }

    #[test]
    fn gate_multiset_preserved_modulo_swaps() {
        // The pass may add/remove Swap gates but never touches others.
        let c = random_circuit(8, 120, GatePool::Full, 99);
        let t = cache_block(&c, 5);
        let mut before = c.gate_counts();
        let mut after = t.circuit.gate_counts();
        before.remove("Swap");
        after.remove("Swap");
        assert_eq!(before, after);
    }

    #[test]
    fn all_emitted_nonswap_gates_have_local_targets() {
        let c = random_circuit(9, 200, GatePool::Full, 5);
        let local = 5;
        let t = cache_block(&c, local);
        for g in t.circuit.gates() {
            if !matches!(g, Gate::Swap(..)) && !g.is_diagonal() {
                assert!(g.target() < local, "global target leaked: {g}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "local window")]
    fn zero_window_rejected() {
        cache_block(&Circuit::new(3), 0);
    }

    #[test]
    fn furthest_use_keeps_hot_qubits_resident() {
        // Alternating H's on two global qubits with a cold local window:
        // LRU evicts the slot that is about to be needed, Bélády keeps
        // both hot qubits resident after the initial two swaps.
        let n = 4u32;
        let mut c = Circuit::new(n);
        for _ in 0..6 {
            c.h(2).h(3);
        }
        let swaps = |policy: VictimPolicy| {
            cache_block_with(&c, 2, policy)
                .circuit
                .gate_counts()
                .get("Swap")
                .copied()
                .unwrap_or(0)
        };
        let belady = swaps(VictimPolicy::FurthestUse);
        assert_eq!(belady, 2, "two swap-ins, then everything stays local");
        assert!(swaps(VictimPolicy::Lru) >= belady);
    }

    #[test]
    fn furthest_use_never_needs_more_swaps_in_aggregate() {
        let mut lru_total = 0usize;
        let mut belady_total = 0usize;
        for seed in 0..20 {
            let c = random_circuit(9, 80, GatePool::Full, seed + 500);
            let count = |policy: VictimPolicy| {
                cache_block_with(&c, 5, policy)
                    .circuit
                    .gate_counts()
                    .get("Swap")
                    .copied()
                    .unwrap_or(0)
            };
            lru_total += count(VictimPolicy::Lru);
            belady_total += count(VictimPolicy::FurthestUse);
        }
        assert!(
            belady_total <= lru_total,
            "Bélády {belady_total} vs LRU {lru_total}"
        );
    }

    #[test]
    fn furthest_use_satisfies_the_same_contract() {
        // Semantics contract holds for the optimal policy too.
        let c = random_circuit(7, 60, GatePool::Full, 321);
        let t = cache_block_with(&c, 4, VictimPolicy::FurthestUse);
        for g in t.circuit.gates() {
            if matches!(g, Gate::Swap(..)) || g.is_diagonal() {
                continue;
            }
            if let Gate::Unitary2 { a, b, .. } = *g {
                assert!(a < 4 && b < 4, "2q unitary not localised: {g}");
            } else {
                assert!(g.target() < 4, "target not localised: {g}");
            }
        }
        let mut before = c.gate_counts();
        let mut after = t.circuit.gate_counts();
        before.remove("Swap");
        after.remove("Swap");
        assert_eq!(before, after);
    }
}
