//! Commutation-aware diagonal scheduling.
//!
//! Diagonal gates commute with each other, and any two gates on disjoint
//! qubit sets commute. This pass exploits both facts to *sink diagonal
//! gates leftward* past gates they commute with, coalescing scattered
//! diagonal gates into longer runs so that [`super::fusion`] can fuse
//! more per sweep. Semantics are preserved exactly — the property tests
//! verify operator equality on random circuits.
//!
//! The rule used for adjacent gates `(a, b)` (can `b` hop before `a`?):
//!
//! * both diagonal → commute (simultaneously diagonalisable);
//! * disjoint qubit sets → commute (operate on different tensor factors);
//! * otherwise → assume they do not commute.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// True when the two gates provably commute under the rules above.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    if a.is_diagonal() && b.is_diagonal() {
        return true;
    }
    let qa = a.qubits();
    b.qubits().iter().all(|q| !qa.contains(q))
}

/// Sinks each *maximal diagonal run* leftward as a block, past any
/// non-diagonal gate that commutes with every member of the run. Moving
/// whole runs (rather than single gates) guarantees the pass can only
/// merge runs, never split one — the fusable gate count is monotonically
/// non-decreasing, which the property tests assert.
pub fn sink_diagonals(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    let mut i = 0usize;
    while i < gates.len() {
        if !gates[i].is_diagonal() {
            i += 1;
            continue;
        }
        // Maximal run [i, j).
        let mut j = i;
        while j < gates.len() && gates[j].is_diagonal() {
            j += 1;
        }
        // Slide the whole block left while the displaced gate commutes
        // with every run member (all diagonal, so: disjoint qubits).
        let mut start = i;
        let mut end = j;
        while start > 0 && !gates[start - 1].is_diagonal() {
            let blocker_ok = {
                let blocker = &gates[start - 1];
                gates[start..end].iter().all(|d| commutes(blocker, d))
            };
            if !blocker_ok {
                break;
            }
            gates[start - 1..end].rotate_left(1);
            start -= 1;
            end -= 1;
        }
        // Continue after the run's ORIGINAL end: the displaced gates now
        // sitting in [end, j) are all non-diagonal.
        i = j;
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for g in gates {
        out.push(g);
    }
    out
}

/// Total gates covered by fusable diagonal runs of length ≥ `min_len` —
/// the quantity the pass tries to increase.
pub fn fusable_gate_count(circuit: &Circuit, min_len: usize) -> usize {
    super::fusion::diagonal_runs(circuit, min_len)
        .iter()
        .map(|r| r.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_circuit, GatePool};

    #[test]
    fn commutation_rules() {
        // diagonal × diagonal: always
        assert!(commutes(&Gate::Z(0), &Gate::S(0)));
        assert!(commutes(
            &Gate::CPhase {
                a: 0,
                b: 1,
                theta: 0.3
            },
            &Gate::T(0)
        ));
        // disjoint: always
        assert!(commutes(&Gate::H(0), &Gate::X(1)));
        assert!(commutes(
            &Gate::CNot {
                control: 0,
                target: 1
            },
            &Gate::H(2)
        ));
        // overlapping non-diagonal: assumed no
        assert!(!commutes(&Gate::H(0), &Gate::Z(0)));
        assert!(!commutes(&Gate::H(0), &Gate::X(0)));
    }

    #[test]
    fn sinking_coalesces_split_runs() {
        // Z(0), H(1), T(0): the H on qubit 1 separates two diagonal gates
        // on qubit 0 — sinking T past H merges them.
        let mut c = Circuit::new(2);
        c.z(0).h(1).t(0);
        let scheduled = sink_diagonals(&c);
        assert_eq!(
            scheduled.gates(),
            &[Gate::Z(0), Gate::T(0), Gate::H(1)]
        );
        assert!(fusable_gate_count(&scheduled, 2) > fusable_gate_count(&c, 2));
    }

    #[test]
    fn blocked_gates_stay_put() {
        // H(0), Z(0): Z cannot cross the H on its own qubit.
        let mut c = Circuit::new(2);
        c.h(0).z(0);
        assert_eq!(sink_diagonals(&c), c);
    }

    #[test]
    fn never_reduces_fusable_count() {
        for seed in 0..10 {
            let c = random_circuit(6, 60, GatePool::Full, seed);
            let s = sink_diagonals(&c);
            assert!(
                fusable_gate_count(&s, 2) >= fusable_gate_count(&c, 2),
                "seed {seed}"
            );
            // gate multiset unchanged
            assert_eq!(s.gate_counts(), c.gate_counts());
        }
    }

    #[test]
    fn idempotent() {
        for seed in 0..5 {
            let c = random_circuit(5, 50, GatePool::Full, seed + 100);
            let once = sink_diagonals(&c);
            let twice = sink_diagonals(&once);
            assert_eq!(once, twice);
        }
    }
}
