//! The circuit container and builder API.

use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// An ordered list of gates over a fixed-width register.
///
/// Gates are applied in list order: `gates[0]` first. The builder methods
/// validate qubit indices eagerly, so a malformed circuit cannot reach the
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` (≥ 1).
    pub fn new(n_qubits: u32) -> Self {
        assert!(n_qubits >= 1, "circuit needs at least one qubit");
        assert!(n_qubits < 64, "more than 63 qubits cannot be indexed");
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The gate list, in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate, validating its qubit indices.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds register width {}",
            self.n_qubits
        );
        if let Gate::Swap(a, b) = gate {
            assert!(a != b, "Swap targets must differ");
        }
        if let Gate::CNot { control, target } = gate {
            assert!(control != target, "CNot control and target must differ");
        }
        if let Gate::CZ(a, b) = gate {
            assert!(a != b, "CZ qubits must differ");
        }
        if let Gate::CPhase { a, b, .. } = gate {
            assert!(a != b, "CPhase qubits must differ");
        }
        if let Gate::MCPhase { ref qubits, .. } = gate {
            assert!(!qubits.is_empty(), "MCPhase needs at least one qubit");
            let mut sorted = qubits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), qubits.len(), "MCPhase qubits must be distinct");
        }
        if let Gate::CUnitary {
            control,
            target,
            ref matrix,
        } = gate
        {
            assert!(control != target, "CUnitary control and target must differ");
            assert!(matrix.is_unitary(1e-9), "CUnitary matrix is not unitary");
        }
        if let Gate::Unitary2 { a, b, ref matrix } = gate {
            assert!(a != b, "Unitary2 qubits must differ");
            assert!(matrix.is_unitary(1e-9), "Unitary2 matrix is not unitary");
        }
        if let Gate::Unitary1 { ref matrix, .. } = gate {
            assert!(matrix.is_unitary(1e-9), "Unitary1 matrix is not unitary");
        }
        self.gates.push(gate);
        self
    }

    /// Appends every gate of `other` (register widths must match).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot extend across register widths"
        );
        for g in &other.gates {
            self.push(g.clone());
        }
        self
    }

    // -- fluent builders ---------------------------------------------------

    /// Appends a Hadamard.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.push(Gate::T(q))
    }

    /// Appends a phase shift.
    pub fn phase(&mut self, target: u32, theta: f64) -> &mut Self {
        self.push(Gate::Phase { target, theta })
    }

    /// Appends a CNOT.
    pub fn cnot(&mut self, control: u32, target: u32) -> &mut Self {
        self.push(Gate::CNot { control, target })
    }

    /// Appends a controlled phase.
    pub fn cphase(&mut self, a: u32, b: u32, theta: f64) -> &mut Self {
        self.push(Gate::CPhase { a, b, theta })
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }

    // -- structural operations ----------------------------------------------

    /// The inverse circuit: gates reversed, each replaced by its adjoint.
    /// `c.then(c.inverse())` is the identity operator, which the test
    /// suites exploit heavily.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::dagger).collect(),
        }
    }

    /// Concatenation: `self` followed by `other`.
    pub fn then(&self, other: &Circuit) -> Circuit {
        let mut out = self.clone();
        out.extend(other);
        out
    }

    /// Relabels every gate's qubits through `f` (must be a bijection on
    /// `0..n_qubits`; not checked here — the transpiler guarantees it).
    pub fn remap(&self, f: &dyn Fn(u32) -> u32) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().map(|g| g.remap(f)).collect(),
        }
    }

    /// Gate histogram by mnemonic, for reports.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of Hadamard gates (used to locate the paper's "after the
    /// k-th Hadamard" SWAP insertion point).
    pub fn hadamard_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::H(_))).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits, {} gates:", self.n_qubits, self.len())?;
        for (i, g) in self.gates.iter().enumerate() {
            writeln!(f, "  {i:4}: {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cphase(1, 2, 0.5).swap(0, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_qubits(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds register width")]
    fn out_of_range_qubit_rejected() {
        Circuit::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "Swap targets must differ")]
    fn degenerate_swap_rejected() {
        Circuit::new(2).swap(1, 1);
    }

    #[test]
    #[should_panic(expected = "control and target must differ")]
    fn degenerate_cnot_rejected() {
        Circuit::new(2).cnot(0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_register_rejected() {
        Circuit::new(0);
    }

    #[test]
    fn inverse_reverses_and_daggers() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cnot(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::CNot { control: 0, target: 1 });
        assert_eq!(inv.gates()[1], Gate::Sdg(1));
        assert_eq!(inv.gates()[2], Gate::H(0));
    }

    #[test]
    fn double_inverse_is_identity_list() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cphase(0, 2, 0.3).swap(1, 2);
        assert_eq!(c.inverse().inverse(), c);
    }

    #[test]
    fn then_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.x(1);
        let c = a.then(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[0], Gate::H(0));
        assert_eq!(c.gates()[1], Gate::X(1));
    }

    #[test]
    #[should_panic(expected = "across register widths")]
    fn width_mismatch_rejected() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        a.then(&b);
    }

    #[test]
    fn remap_flips_qubits() {
        let mut c = Circuit::new(4);
        c.h(0).swap(1, 3);
        let flipped = c.remap(&|q| 3 - q);
        assert_eq!(flipped.gates()[0], Gate::H(3));
        assert_eq!(flipped.gates()[1], Gate::Swap(2, 0));
    }

    #[test]
    fn gate_counts_histogram() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cphase(0, 1, 0.1).swap(0, 2);
        let counts = c.gate_counts();
        assert_eq!(counts["H"], 2);
        assert_eq!(counts["CPhase"], 1);
        assert_eq!(counts["Swap"], 1);
        assert_eq!(c.hadamard_count(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(1);
        let s = c.to_string();
        assert!(s.contains("2 qubits"));
        assert!(s.contains("H(1)"));
    }
}
