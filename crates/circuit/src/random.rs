//! Seeded random circuit generation for property-based testing.
//!
//! The distributed engine, the transpiler and the storage layouts are all
//! verified against a dense reference simulator on random circuits; this
//! module is the workload generator for those checks.

use crate::circuit::Circuit;
use crate::gate::Gate;
use qse_math::{Complex64, Matrix2, Matrix4};
use qse_util::rng::{Rng, StdRng};

/// A Haar-ish random single-qubit unitary from Euler angles (exactly
/// unitary by construction).
pub fn random_unitary1<R: Rng>(rng: &mut R) -> Matrix2 {
    let theta = rng.random_range(0.0..std::f64::consts::PI);
    let phi = rng.random_range(0.0..std::f64::consts::TAU);
    let lam = rng.random_range(0.0..std::f64::consts::TAU);
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix2::new(
        Complex64::real(c),
        -Complex64::cis(lam) * s,
        Complex64::cis(phi) * s,
        Complex64::cis(phi + lam) * c,
    )
}

/// A random two-qubit unitary: a tensor product of random single-qubit
/// unitaries, optionally entangled by conjugation with SWAP + CZ-like
/// phases (unitary by construction).
pub fn random_unitary2<R: Rng>(rng: &mut R) -> Matrix4 {
    let u = Matrix4::kron(&random_unitary1(rng), &random_unitary1(rng));
    if rng.random_bool(0.5) {
        // Entangle: multiply by SWAP and a random diagonal phase layer.
        let mut d = Matrix4::identity();
        for i in 0..4 {
            d.m[i * 4 + i] = Complex64::cis(rng.random_range(0.0..std::f64::consts::TAU));
        }
        Matrix4::swap().matmul(&d.matmul(&u))
    } else {
        u
    }
}

/// Which gate families a random circuit may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatePool {
    /// Every supported gate.
    Full,
    /// Only gates the QFT uses: H, CPhase, SWAP.
    QftLike,
    /// Only diagonal gates (for fusion tests).
    DiagonalOnly,
}

/// Generates a reproducible random circuit.
pub fn random_circuit(n_qubits: u32, n_gates: usize, pool: GatePool, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_qubits);
    for _ in 0..n_gates {
        c.push(random_gate(&mut rng, n_qubits, pool));
    }
    c
}

fn two_distinct<R: Rng>(rng: &mut R, n: u32) -> (u32, u32) {
    let a = rng.random_range(0..n);
    let mut b = rng.random_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

fn random_gate<R: Rng>(rng: &mut R, n: u32, pool: GatePool) -> Gate {
    let theta = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
    match pool {
        GatePool::QftLike => match rng.random_range(0..3) {
            0 => Gate::H(rng.random_range(0..n)),
            1 => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (a, b) = two_distinct(rng, n);
                Gate::CPhase { a, b, theta }
            }
            _ => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (a, b) = two_distinct(rng, n);
                Gate::Swap(a, b)
            }
        },
        GatePool::DiagonalOnly => match rng.random_range(0..5) {
            0 => Gate::Z(rng.random_range(0..n)),
            1 => Gate::S(rng.random_range(0..n)),
            2 => Gate::T(rng.random_range(0..n)),
            3 => Gate::Phase {
                target: rng.random_range(0..n),
                theta,
            },
            _ => {
                if n < 2 {
                    return Gate::Z(0);
                }
                let (a, b) = two_distinct(rng, n);
                Gate::CPhase { a, b, theta }
            }
        },
        GatePool::Full => match rng.random_range(0..15) {
            0 => Gate::H(rng.random_range(0..n)),
            1 => Gate::X(rng.random_range(0..n)),
            2 => Gate::Y(rng.random_range(0..n)),
            3 => Gate::Z(rng.random_range(0..n)),
            4 => Gate::S(rng.random_range(0..n)),
            5 => Gate::T(rng.random_range(0..n)),
            6 => Gate::Phase {
                target: rng.random_range(0..n),
                theta,
            },
            7 => Gate::Rx {
                target: rng.random_range(0..n),
                theta,
            },
            8 => Gate::Ry {
                target: rng.random_range(0..n),
                theta,
            },
            9 => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (control, target) = two_distinct(rng, n);
                Gate::CNot { control, target }
            }
            10 => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (a, b) = two_distinct(rng, n);
                Gate::CPhase { a, b, theta }
            }
            11 => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (a, b) = two_distinct(rng, n);
                Gate::Swap(a, b)
            }
            12 => {
                if n < 2 {
                    return Gate::H(0);
                }
                let k = rng.random_range(2..=n.min(4));
                let mut qubits: Vec<u32> = (0..n).collect();
                for i in 0..k as usize {
                    let j = rng.random_range(i..n as usize);
                    qubits.swap(i, j);
                }
                qubits.truncate(k as usize);
                Gate::MCPhase { qubits, theta }
            }
            13 => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (control, target) = two_distinct(rng, n);
                Gate::CUnitary {
                    control,
                    target,
                    matrix: random_unitary1(rng),
                }
            }
            _ => {
                if n < 2 {
                    return Gate::H(0);
                }
                let (a, b) = two_distinct(rng, n);
                Gate::Unitary2 {
                    a,
                    b,
                    matrix: random_unitary2(rng),
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_circuit(6, 40, GatePool::Full, 7);
        let b = random_circuit(6, 40, GatePool::Full, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(6, 40, GatePool::Full, 7);
        let b = random_circuit(6, 40, GatePool::Full, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn requested_length_is_honoured() {
        assert_eq!(random_circuit(4, 25, GatePool::QftLike, 0).len(), 25);
    }

    #[test]
    fn qft_pool_only_emits_qft_gates() {
        let c = random_circuit(5, 100, GatePool::QftLike, 3);
        for g in c.gates() {
            assert!(
                matches!(g, Gate::H(_) | Gate::CPhase { .. } | Gate::Swap(..)),
                "unexpected gate {g}"
            );
        }
    }

    #[test]
    fn diagonal_pool_is_all_diagonal() {
        let c = random_circuit(5, 100, GatePool::DiagonalOnly, 3);
        assert!(c.gates().iter().all(|g| g.is_diagonal()));
    }

    #[test]
    fn single_qubit_register_works() {
        let c = random_circuit(1, 30, GatePool::Full, 11);
        assert_eq!(c.len(), 30);
        assert!(c.gates().iter().all(|g| g.max_qubit() == 0));
    }

    #[test]
    fn gates_stay_in_range() {
        let c = random_circuit(7, 500, GatePool::Full, 42);
        assert!(c.gates().iter().all(|g| g.max_qubit() < 7));
    }
}
