//! Algorithm circuit builders beyond the QFT.
//!
//! The paper motivates the QFT as "a common subroutine of larger quantum
//! algorithms, like Quantum Phase Estimation" (§2.3). This module builds
//! QPE itself plus a set of standard circuits used by the examples,
//! integration tests and benchmarks as realistic workloads: GHZ state
//! preparation, Bernstein–Vazirani, and phase-oracle utilities.

use crate::circuit::Circuit;
use crate::qft::inverse_qft;

/// GHZ state preparation: `H(0)` then a CNOT fan-out. The maximally
/// entangled all-or-nothing state — a standard stress input because every
/// amplitude pair matters.
pub fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cnot(0, q);
    }
    c
}

/// Bernstein–Vazirani for a hidden bit-string `secret` (bit `q` set means
/// qubit `q` participates): one query recovers the whole string. Uses the
/// phase-oracle form: H-layer, Z on secret bits sandwiched in CNOTs is
/// simplified here to the standard H / CZ-free construction with an
/// ancilla-free phase oracle (Z on each secret qubit between H layers
/// realises `(-1)^{s·x}`).
pub fn bernstein_vazirani(n: u32, secret: u64) -> Circuit {
    assert!(secret < (1u64 << n), "secret wider than register");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.z(q);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Quantum Phase Estimation for the single-qubit oracle
/// `diag(1, e^{2πiφ})`, with `t` counting qubits and the work qubit at
/// index `t` (prepared in the |1⟩ eigenstate).
///
/// With this repository's big-endian QFT convention (qubit 0 is the
/// transform's most significant bit), counting qubit `q` controls
/// `U^{2^{t−1−q}}`, and the measured counting value must be bit-reversed
/// before dividing by `2^t` — see [`read_phase_estimate`].
pub fn qpe(t: u32, phi: f64) -> Circuit {
    let n = t + 1;
    let mut c = Circuit::new(n);
    c.x(t);
    for q in 0..t {
        c.h(q);
    }
    for q in 0..t {
        let theta = 2.0 * std::f64::consts::PI * phi * (1u64 << (t - 1 - q)) as f64;
        c.cphase(q, t, theta);
    }
    for g in inverse_qft(t).gates() {
        c.push(g.clone());
    }
    c
}

/// Converts a measured basis index of a [`qpe`] circuit into the phase
/// estimate in `[0, 1)`.
pub fn read_phase_estimate(index: u64, t: u32) -> f64 {
    let counting = index & ((1u64 << t) - 1);
    qse_math::bits::reverse_bits(counting, t) as f64 / (1u64 << t) as f64
}

/// Grover's search for a single marked basis state.
///
/// `iterations` rounds of (phase oracle, diffusion) after the uniform
/// superposition. The oracle flips the phase of `|marked⟩` by
/// X-conjugating a multi-controlled phase of π on all qubits; the
/// diffusion operator is the same construction around `|0…0⟩`. The
/// optimal iteration count is ≈ ⌊π·√N/4⌋ ([`grover_optimal_iterations`]).
pub fn grover(n: u32, marked: u64, iterations: u32) -> Circuit {
    assert!(n >= 2, "Grover needs at least two qubits");
    assert!(marked < (1u64 << n), "marked state out of range");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    let all: Vec<u32> = (0..n).collect();
    let pi = std::f64::consts::PI;
    for _ in 0..iterations {
        // Oracle: phase-flip |marked⟩.
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        c.push(crate::gate::Gate::MCPhase {
            qubits: all.clone(),
            theta: pi,
        });
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion: 2|s⟩⟨s| − 1 = H^n · (phase-flip |0…0⟩) · H^n.
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.x(q);
        }
        c.push(crate::gate::Gate::MCPhase {
            qubits: all.clone(),
            theta: pi,
        });
        for q in 0..n {
            c.x(q);
        }
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

/// The iteration count maximising Grover's success probability for one
/// marked state in `2^n`: ⌊π/(4·asin(2^{-n/2}))⌋ rounded to nearest.
pub fn grover_optimal_iterations(n: u32) -> u32 {
    let theta = (1.0 / (1u64 << n) as f64).sqrt().asin();
    (std::f64::consts::FRAC_PI_4 / theta - 0.5).round().max(1.0) as u32
}

/// A layered hardware-efficient-style circuit: per layer, one rotation on
/// every qubit followed by a CNOT ladder. Used as a "deep generic
/// workload" in benchmarks (`depth` layers).
pub fn layered_ansatz(n: u32, depth: u32, seed: u64) -> Circuit {
    let mut c = Circuit::new(n);
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for _ in 0..depth {
        for q in 0..n {
            let theta = (next() % 10_000) as f64 / 10_000.0 * std::f64::consts::TAU;
            c.push(crate::gate::Gate::Ry { target: q, theta });
        }
        for q in 0..n.saturating_sub(1) {
            c.cnot(q, q + 1);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn ghz_shape() {
        let c = ghz(5);
        assert_eq!(c.len(), 5); // 1 H + 4 CNOT
        assert_eq!(c.gates()[0], Gate::H(0));
        assert!(c.gates()[1..]
            .iter()
            .all(|g| matches!(g, Gate::CNot { control: 0, .. })));
    }

    #[test]
    fn bv_gate_count_tracks_secret_weight() {
        let c = bernstein_vazirani(6, 0b101101);
        let counts = c.gate_counts();
        assert_eq!(counts["H"], 12);
        assert_eq!(counts["Z"], 4);
    }

    #[test]
    #[should_panic(expected = "wider than register")]
    fn bv_rejects_wide_secret() {
        bernstein_vazirani(3, 0b1000);
    }

    #[test]
    fn qpe_structure() {
        let c = qpe(4, 0.25);
        assert_eq!(c.n_qubits(), 5);
        // X + 4 H + 4 CPhase + inverse QFT(4)
        let iqft_len = inverse_qft(4).len();
        assert_eq!(c.len(), 1 + 4 + 4 + iqft_len);
    }

    #[test]
    fn phase_readout_inverts_bit_reversal() {
        // counting register value 0b0010 (qubit 1 set) on t=4 reads as
        // rev(0b0010, 4) = 0b0100 = 4 → φ = 4/16.
        assert_eq!(read_phase_estimate(0b0010, 4), 0.25);
        assert_eq!(read_phase_estimate(0, 4), 0.0);
        // the work qubit (bit t) is masked off
        assert_eq!(read_phase_estimate(0b1_0010, 4), 0.25);
    }

    #[test]
    fn grover_structure() {
        let c = grover(4, 0b1010, 2);
        let counts = c.gate_counts();
        assert_eq!(counts["MCPhase"], 4); // 2 per iteration
        // initial H layer + 2 × diffusion double-layer
        assert_eq!(counts["H"], 4 + 2 * 8);
        // oracle X-conjugation (2 zero bits × 2 sides × 2 iters)
        // + diffusion X layers (4 × 2 sides × 2 iters)
        assert_eq!(counts["X"], 2 * 2 * 2 + 4 * 2 * 2);
    }

    #[test]
    fn optimal_iterations_grow_with_sqrt_n() {
        assert_eq!(grover_optimal_iterations(2), 1);
        let k8 = grover_optimal_iterations(8);
        let k10 = grover_optimal_iterations(10);
        // doubling n (×4 the space) roughly doubles the iterations
        assert!((1.8..2.2).contains(&(k10 as f64 / k8 as f64)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grover_rejects_wide_marked_state() {
        grover(3, 8, 1);
    }

    #[test]
    fn layered_ansatz_is_deterministic_and_sized() {
        let a = layered_ansatz(5, 3, 7);
        let b = layered_ansatz(5, 3, 7);
        assert_eq!(a, b);
        assert_ne!(a, layered_ansatz(5, 3, 8));
        // per layer: n rotations + (n-1) CNOTs
        assert_eq!(a.len(), 3 * (5 + 4));
    }
}
