//! Collective operations over the whole universe.
//!
//! QuEST needs only a handful of collectives around its point-to-point core:
//! a barrier between circuit phases, broadcast of configuration, and
//! reductions for norms/probabilities (e.g. total probability of measuring
//! a qubit in |1⟩ is an all-reduce of per-rank partial sums). These are
//! implemented as simple linear algorithms over the point-to-point layer —
//! rank counts here are small (≤ 64 threads), so tree algorithms would be
//! complexity without measurable benefit.

use crate::message::{bytes_to_f64s, f64s_to_bytes};
use crate::Communicator;
use crate::Result;
use qse_util::Bytes;

/// Reserved tag space for collectives; user tags must stay below `1 << 31`
/// (see [`crate::chunking::chunk_tag`]), so anything at or above `1 << 62`
/// can never collide with an exchange tag.
const COLLECTIVE_BASE: u64 = 1 << 62;
const TAG_BCAST: u64 = COLLECTIVE_BASE;
const TAG_GATHER: u64 = COLLECTIVE_BASE + 1;
const TAG_REDUCE: u64 = COLLECTIVE_BASE + 2;

/// Decodes a little-endian `u64` from the first 8 bytes of `bytes`
/// (panics via slice indexing if shorter — collective frames are produced
/// in this module, so a short frame is an internal invariant violation).
fn u64_le(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

/// Broadcasts `payload` from `root` to every rank; returns the payload on
/// all ranks (including the root, for uniform call sites).
pub fn broadcast(comm: &mut Communicator, root: usize, payload: &[u8]) -> Result<Bytes> {
    if comm.rank() == root {
        for dst in 0..comm.size() {
            if dst != root {
                comm.send(dst, TAG_BCAST, payload)?;
            }
        }
        Ok(Bytes::copy_from_slice(payload))
    } else {
        comm.recv(root, TAG_BCAST)
    }
}

/// Gathers every rank's payload at `root`, in rank order. Non-root ranks
/// receive `None`.
pub fn gather(comm: &mut Communicator, root: usize, payload: &[u8]) -> Result<Option<Vec<Bytes>>> {
    if comm.rank() == root {
        let mut out = Vec::with_capacity(comm.size());
        for src in 0..comm.size() {
            if src == root {
                out.push(Bytes::copy_from_slice(payload));
            } else {
                out.push(comm.recv(src, TAG_GATHER)?);
            }
        }
        Ok(Some(out))
    } else {
        comm.send(root, TAG_GATHER, payload)?;
        Ok(None)
    }
}

/// All-reduce: element-wise sum of `values` across all ranks, delivered to
/// every rank. Used for probability normalisation and global norms.
pub fn allreduce_sum_f64(comm: &mut Communicator, values: &[f64]) -> Result<Vec<f64>> {
    let gathered = gather(comm, 0, &f64s_to_bytes(values))?;
    let summed: Vec<f64> = if let Some(parts) = gathered {
        let mut acc = vec![0.0f64; values.len()];
        for part in parts {
            let decoded = bytes_to_f64s(&part);
            assert_eq!(decoded.len(), acc.len(), "ranks reduced different lengths");
            for (a, v) in acc.iter_mut().zip(decoded) {
                *a += v;
            }
        }
        acc
    } else {
        Vec::new()
    };
    let result = broadcast(comm, 0, &f64s_to_bytes(&summed))?;
    Ok(bytes_to_f64s(&result))
}

/// All-reduce max of a single `f64` across ranks.
pub fn allreduce_max_f64(comm: &mut Communicator, value: f64) -> Result<f64> {
    let gathered = gather(comm, 0, &f64s_to_bytes(&[value]))?;
    let max = if let Some(parts) = gathered {
        parts
            .iter()
            .map(|p| bytes_to_f64s(p)[0])
            .fold(f64::NEG_INFINITY, f64::max)
    } else {
        0.0
    };
    let result = broadcast(comm, 0, &f64s_to_bytes(&[max]))?;
    Ok(bytes_to_f64s(&result)[0])
}

/// All-gather: every rank receives every rank's payload, in rank order.
pub fn allgather(comm: &mut Communicator, payload: &[u8]) -> Result<Vec<Bytes>> {
    let at_root = gather(comm, 0, payload)?;
    // Root re-broadcasts the concatenation with a simple length-prefixed frame.
    let frame = if let Some(parts) = at_root {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(parts.len() as u64).to_le_bytes());
        for p in &parts {
            buf.extend_from_slice(&(p.len() as u64).to_le_bytes());
            buf.extend_from_slice(p);
        }
        buf
    } else {
        Vec::new()
    };
    let framed = broadcast(comm, 0, &frame)?;
    // Decode the frame. Length fields round-trip `Vec` lengths framed
    // by a rank of this same process, so they always fit `usize` here.
    let mut cursor = 0usize;
    let read_len = |buf: &[u8], at: usize| -> usize {
        u64_le(&buf[at..]) as usize // qse-lint: allow — in-process Vec length round-trip
    };
    let count = read_len(&framed, cursor);
    cursor += 8;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_len(&framed, cursor);
        cursor += 8;
        out.push(framed.slice(cursor..cursor + len));
        cursor += len;
    }
    Ok(out)
}

/// Reduces a single `u64` by summation to every rank (e.g. total distributed
/// gate counts in reports).
pub fn allreduce_sum_u64(comm: &mut Communicator, value: u64) -> Result<u64> {
    if comm.rank() == 0 {
        let mut total = value;
        for src in 1..comm.size() {
            let p = comm.recv(src, TAG_REDUCE)?;
            total += u64_le(&p);
        }
        let b = broadcast(comm, 0, &total.to_le_bytes())?;
        Ok(u64_le(&b))
    } else {
        comm.send(0, TAG_REDUCE, &value.to_le_bytes())?;
        let b = broadcast(comm, 0, &[])?;
        Ok(u64_le(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn broadcast_reaches_all_ranks() {
        let out = Universe::new(4).run(|c| {
            let payload = if c.rank() == 2 { b"hello".to_vec() } else { vec![] };
            broadcast(c, 2, &payload).unwrap().to_vec()
        });
        for p in out {
            assert_eq!(p, b"hello");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::new(4).run(|c| {
            let payload = [c.rank() as u8 * 3];
            gather(c, 0, &payload).unwrap()
        });
        let parts = out[0].as_ref().expect("root gets parts");
        let values: Vec<u8> = parts.iter().map(|p| p[0]).collect();
        assert_eq!(values, vec![0, 3, 6, 9]);
        assert!(out[1].is_none());
    }

    #[test]
    fn allreduce_sum_f64_sums_elementwise() {
        let out = Universe::new(4).run(|c| {
            let vals = [c.rank() as f64, 1.0];
            allreduce_sum_f64(c, &vals).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![6.0, 4.0]); // 0+1+2+3, 1×4
        }
    }

    #[test]
    fn allreduce_max_finds_max() {
        let out = Universe::new(5).run(|c| {
            allreduce_max_f64(c, -(c.rank() as f64)).unwrap()
        });
        for v in out {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn allreduce_sum_u64_counts() {
        let out = Universe::new(3).run(|c| allreduce_sum_u64(c, c.rank() as u64 + 1).unwrap());
        assert_eq!(out, vec![6, 6, 6]);
    }

    #[test]
    fn allgather_delivers_everything_everywhere() {
        let out = Universe::new(3).run(|c| {
            let payload = vec![c.rank() as u8; c.rank() + 1]; // varying lengths
            let parts = allgather(c, &payload).unwrap();
            parts.iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        });
        let expected = vec![vec![0u8; 1], vec![1u8; 2], vec![2u8; 3]];
        for rank_view in out {
            assert_eq!(rank_view, expected);
        }
    }

    #[test]
    fn collectives_recover_under_seeded_faults() {
        // Linear collectives lean entirely on the point-to-point recovery
        // layer; under a recoverable plan every rank must still see the
        // exact fault-free reduction results.
        for seed in [3u64, 14, 159] {
            let universe =
                Universe::with_faults(4, crate::FaultConfig::recoverable(seed)).unwrap();
            let out = universe.run(|c| {
                let sums = allreduce_sum_f64(c, &[c.rank() as f64, 1.0]).unwrap();
                let total = allreduce_sum_u64(c, c.rank() as u64 + 1).unwrap();
                let parts = allgather(c, &[c.rank() as u8 * 5]).unwrap();
                (sums, total, parts.iter().map(|p| p.to_vec()).collect::<Vec<_>>())
            });
            for (sums, total, parts) in out {
                assert_eq!(sums, vec![6.0, 4.0], "seed {seed}");
                assert_eq!(total, 10, "seed {seed}");
                assert_eq!(
                    parts,
                    vec![vec![0u8], vec![5u8], vec![10u8], vec![15u8]],
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn collectives_compose_with_p2p_traffic() {
        // Interleave point-to-point messages with a collective to check tag
        // spaces do not collide.
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.send(peer, 5, &[42]).unwrap();
            let sum = allreduce_sum_u64(c, 1).unwrap();
            assert_eq!(sum, 2);
            let got = c.recv(peer, 5).unwrap();
            assert_eq!(got[0], 42);
        });
    }
}
