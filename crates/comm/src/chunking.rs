//! Chunked pairwise exchange — the heart of a distributed gate.
//!
//! QuEST exchanges the *entire local statevector* with a single pair rank
//! for every distributed gate: 64 GB per process on ARCHER2. "Due to
//! limitations of some implementations of MPI, individual messages cannot
//! be larger than 2 GB, so the communication cannot be done in a single
//! message. Instead, 32 messages are exchanged per distributed gate"
//! (§2.1). This module reproduces that structure with a configurable cap:
//!
//! * [`exchange_blocking`] — QuEST's original scheme: one blocking
//!   `sendrecv` per chunk, strictly serialised;
//! * [`exchange_nonblocking`] — the paper's improvement: post every
//!   `isend`/`irecv` up front, then complete them all, letting chunks fly
//!   concurrently;
//! * [`StreamedExchange`] — one step further than the paper: chunks are
//!   *consumed in completion order* via [`crate::Communicator::wait_any`],
//!   so the caller can apply the gate kernel to each chunk's amplitude
//!   range while later chunks are still in flight, holding only a small
//!   ring of chunk-sized scratch buffers instead of the peer's full half.
//!
//! All strategies deliver identical bytes; the thread-cluster benchmarks
//! measure the wall-clock difference, and the analytic model assigns them
//! different effective bandwidths calibrated from the paper's Table 1.

use crate::error::CommError;
use crate::nonblocking::Request;
use crate::Communicator;
use crate::Result;
use qse_util::Bytes;
use std::ops::Range;

/// Message-size policy for chunked transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Maximum bytes per message. The paper's machines cap at 2 GiB; tests
    /// and benches use small values to force multi-chunk behaviour.
    pub max_message_bytes: usize,
}

impl ChunkPolicy {
    /// The paper's production cap: 2 GiB per MPI message.
    pub const ARCHER2: ChunkPolicy = ChunkPolicy {
        max_message_bytes: 2 * 1024 * 1024 * 1024,
    };

    /// Creates a policy, rejecting a zero cap.
    pub fn new(max_message_bytes: usize) -> Result<Self> {
        if max_message_bytes == 0 {
            return Err(CommError::InvalidConfig("max_message_bytes must be > 0"));
        }
        Ok(ChunkPolicy { max_message_bytes })
    }

    /// Number of messages needed for `total` bytes (0 bytes → 0 messages).
    pub fn num_chunks(&self, total: usize) -> usize {
        total.div_ceil(self.max_message_bytes)
    }

    /// Byte ranges of each chunk, in order.
    ///
    /// Chunk starts use saturating arithmetic: for any `total <=
    /// usize::MAX` every start offset `i * cap` is `< total` and therefore
    /// cannot overflow; the saturation plus debug assertion keep a future
    /// refactor from silently wrapping on pathological `(total, cap)`
    /// combinations without putting a panic on the library path.
    pub fn ranges(&self, total: usize) -> impl Iterator<Item = Range<usize>> + '_ {
        let cap = self.max_message_bytes;
        (0..self.num_chunks(total)).map(move |i| {
            let start = i.saturating_mul(cap);
            debug_assert!(start < total, "chunk start {start} beyond total {total}");
            start..usize::min(start.saturating_add(cap), total)
        })
    }

    /// Byte range of chunk `i` out of `total` bytes, or `None` past the end.
    pub fn chunk_range(&self, i: usize, total: usize) -> Option<Range<usize>> {
        if i >= self.num_chunks(total) {
            return None;
        }
        let start = i.saturating_mul(self.max_message_bytes);
        Some(start..usize::min(start.saturating_add(self.max_message_bytes), total))
    }

    /// Derives a policy whose chunk boundaries fall on multiples of
    /// `align_bytes` (a gate kernel's orbit size), by rounding the cap
    /// *down* to the nearest multiple — or up to exactly `align_bytes`
    /// when the cap is smaller. Streamed exchanges need this so every
    /// chunk maps to a whole number of kernel orbits; both partners derive
    /// the same policy from the same config, keeping tags and counts
    /// matched.
    pub fn aligned(&self, align_bytes: usize) -> ChunkPolicy {
        assert!(align_bytes > 0, "alignment must be positive");
        let cap = (self.max_message_bytes / align_bytes).max(1) * align_bytes;
        ChunkPolicy {
            max_message_bytes: cap,
        }
    }
}

/// Base tags must leave the low 32 bits for chunk indices.
const CHUNK_TAG_SHIFT: u64 = 32;

/// Builds the wire tag for chunk `idx` of an exchange tagged `base`.
///
/// # Panics
/// Panics if `base >= 2^31` or `idx >= 2^32`; exchanges never get near
/// either bound, and colliding tags would corrupt message matching.
#[inline]
pub fn chunk_tag(base: u64, idx: usize) -> u64 {
    assert!(base < (1 << 31), "exchange base tag too large: {base}");
    assert!((idx as u64) < (1 << 32), "chunk index too large: {idx}");
    (base << CHUNK_TAG_SHIFT) | idx as u64
}

/// Symmetric full exchange using blocking sendrecv, chunk by chunk.
///
/// `send_buf` and `recv_buf` may differ in length (the half-exchange SWAP
/// optimisation sends half the vector); chunking applies to each direction
/// independently, in lockstep over the longer of the two chunk counts.
pub fn exchange_blocking(
    comm: &mut Communicator,
    peer: usize,
    base_tag: u64,
    send_buf: &[u8],
    recv_buf: &mut Vec<u8>,
    expected_recv: usize,
    policy: ChunkPolicy,
) -> Result<()> {
    recv_buf.clear();
    recv_buf.reserve(expected_recv);
    let send_chunks = policy.num_chunks(send_buf.len());
    let recv_chunks = policy.num_chunks(expected_recv);
    let steps = usize::max(send_chunks, recv_chunks);
    for i in 0..steps {
        if let Some(r) = policy.chunk_range(i, send_buf.len()) {
            comm.send(peer, chunk_tag(base_tag, i), &send_buf[r])?;
        }
        if i < recv_chunks {
            let payload = comm.recv(peer, chunk_tag(base_tag, i))?;
            recv_buf.extend_from_slice(&payload);
        }
    }
    if !send_buf.is_empty() {
        comm.record_exchange_bytes(send_buf.len() as u64);
    }
    debug_assert_eq!(recv_buf.len(), expected_recv, "peer sent unexpected size");
    Ok(())
}

/// Symmetric full exchange with all sends and receives posted up front.
pub fn exchange_nonblocking(
    comm: &mut Communicator,
    peer: usize,
    base_tag: u64,
    send_buf: &[u8],
    recv_buf: &mut Vec<u8>,
    expected_recv: usize,
    policy: ChunkPolicy,
) -> Result<()> {
    recv_buf.clear();
    recv_buf.reserve(expected_recv);
    // Post all receives first (mirrors MPI best practice), then all sends.
    let recv_reqs: Vec<_> = (0..policy.num_chunks(expected_recv))
        .map(|i| comm.irecv(peer, chunk_tag(base_tag, i)))
        .collect::<Result<_>>()?;
    for (i, r) in policy.ranges(send_buf.len()).enumerate() {
        comm.isend(peer, chunk_tag(base_tag, i), &send_buf[r])?;
    }
    if !send_buf.is_empty() {
        comm.record_exchange_bytes(send_buf.len() as u64);
    }
    for payload in comm.wait_all(recv_reqs)? {
        recv_buf.extend_from_slice(&payload);
    }
    debug_assert_eq!(recv_buf.len(), expected_recv, "peer sent unexpected size");
    Ok(())
}

/// A chunk-pipelined exchange in progress: receives are posted up front,
/// sends are interleaved with completions, and chunks are handed back in
/// *completion order* so the caller can overlap the gate kernel with the
/// remaining communication.
///
/// Deadlock freedom with a symmetric peer follows by induction: `begin`
/// primes `ring_depth >= 1` sends before any blocking wait, and every
/// [`Self::next`] sends one further chunk *before* blocking, so whenever
/// both partners have completed `k` receives each has already sent at
/// least `min(ring_depth + k, n)` chunks — always strictly ahead of what
/// the peer is waiting on. When this side's receives run out, the
/// remaining sends are flushed so an asymmetric partner (half-exchange)
/// still completes.
pub struct StreamedExchange {
    peer: usize,
    base_tag: u64,
    policy: ChunkPolicy,
    /// Total send bytes fixed at `begin`; `next` asserts the same buffer.
    send_total: usize,
    /// Total receive bytes, for mapping chunk indices to byte ranges.
    recv_total: usize,
    n_send: usize,
    next_send: usize,
    /// Outstanding receive requests, with their chunk indices alongside
    /// (kept aligned through `swap_remove`).
    reqs: Vec<Request>,
    chunk_idx: Vec<usize>,
    /// Receives completed so far, for the final stats record.
    completed: usize,
}

impl StreamedExchange {
    /// Scratch-ring depth used by the statevector engine: enough to keep
    /// one chunk in flight while the previous one is being consumed.
    pub const DEFAULT_RING_DEPTH: usize = 2;

    /// Posts every receive and primes the pipeline with the first
    /// `ring_depth` sends (at least one). Chunk tags follow
    /// [`chunk_tag`]`(base_tag, i)` in both directions, so the peer may
    /// run any exchange strategy with the same policy.
    pub fn begin(
        comm: &mut Communicator,
        peer: usize,
        base_tag: u64,
        send_buf: &[u8],
        expected_recv: usize,
        policy: ChunkPolicy,
        ring_depth: usize,
    ) -> Result<Self> {
        let ring_depth = ring_depth.max(1);
        let n_recv = policy.num_chunks(expected_recv);
        let n_send = policy.num_chunks(send_buf.len());
        let mut reqs = Vec::with_capacity(n_recv);
        let mut chunk_idx = Vec::with_capacity(n_recv);
        for i in 0..n_recv {
            reqs.push(comm.irecv(peer, chunk_tag(base_tag, i))?);
            chunk_idx.push(i);
        }
        let mut ex = StreamedExchange {
            peer,
            base_tag,
            policy,
            send_total: send_buf.len(),
            recv_total: expected_recv,
            n_send,
            next_send: 0,
            reqs,
            chunk_idx,
            completed: 0,
        };
        for _ in 0..ring_depth.min(n_send) {
            ex.send_next(comm, send_buf)?;
        }
        if ex.reqs.is_empty() {
            // Nothing to receive: flush and record immediately so `next`
            // is a pure terminator.
            ex.finish(comm, send_buf)?;
        }
        Ok(ex)
    }

    /// Sends the next unsent chunk, if any.
    fn send_next(&mut self, comm: &mut Communicator, send_buf: &[u8]) -> Result<()> {
        if let Some(r) = self.policy.chunk_range(self.next_send, self.send_total) {
            comm.send(self.peer, chunk_tag(self.base_tag, self.next_send), &send_buf[r])?;
            self.next_send += 1;
        }
        Ok(())
    }

    /// Flushes all remaining sends and records the exchange's chunk count
    /// (the larger direction, so half-exchanges still report their full
    /// pipeline depth) in the rank's traffic counters.
    fn finish(&mut self, comm: &mut Communicator, send_buf: &[u8]) -> Result<()> {
        while self.next_send < self.n_send {
            self.send_next(comm, send_buf)?;
        }
        let chunks = usize::max(self.completed, self.n_send) as u64;
        if chunks > 0 {
            comm.record_exchange_chunks(chunks);
        }
        if self.send_total > 0 {
            comm.record_exchange_bytes(self.send_total as u64);
        }
        Ok(())
    }

    /// Advances the pipeline: sends one further chunk, then blocks until
    /// *some* outstanding receive completes, returning its chunk index,
    /// its byte range within the expected receive buffer, and its payload.
    /// Returns `Ok(None)` once every receive has been delivered (after
    /// flushing any remaining sends).
    ///
    /// `send_buf` must be the same buffer passed to [`Self::begin`]; it is
    /// re-borrowed per call so the caller can hold mutable state (the
    /// statevector) between calls.
    pub fn next(
        &mut self,
        comm: &mut Communicator,
        send_buf: &[u8],
    ) -> Result<Option<(usize, Range<usize>, Bytes)>> {
        assert_eq!(send_buf.len(), self.send_total, "send buffer changed size");
        if self.reqs.is_empty() {
            return Ok(None);
        }
        self.send_next(comm, send_buf)?;
        let (i, payload) = comm.wait_any(&self.reqs)?;
        let idx = self.chunk_idx[i];
        self.reqs.swap_remove(i);
        self.chunk_idx.swap_remove(i);
        self.completed += 1;
        let range = self
            .policy
            .chunk_range(idx, self.recv_total)
            .unwrap_or(0..0); // unreachable: idx was derived from the policy
        debug_assert_eq!(range.len(), payload.len(), "peer sent unexpected chunk size");
        if self.reqs.is_empty() {
            // Last receive: complete our side so a caller that stops
            // polling after the final chunk cannot starve the peer.
            self.finish(comm, send_buf)?;
        }
        Ok(Some((idx, range, payload)))
    }

    /// Receives still outstanding (for diagnostics and tests).
    pub fn outstanding(&self) -> usize {
        self.reqs.len()
    }
}

/// Streamed exchange with the assemble-into-a-buffer interface of the
/// other strategies: drives [`StreamedExchange`] and scatters each chunk
/// into place as it completes. The statevector engine bypasses this and
/// applies kernels per chunk instead.
#[allow(clippy::too_many_arguments)]
pub fn exchange_streamed(
    comm: &mut Communicator,
    peer: usize,
    base_tag: u64,
    send_buf: &[u8],
    recv_buf: &mut Vec<u8>,
    expected_recv: usize,
    policy: ChunkPolicy,
) -> Result<()> {
    recv_buf.clear();
    recv_buf.resize(expected_recv, 0);
    let mut ex = StreamedExchange::begin(
        comm,
        peer,
        base_tag,
        send_buf,
        expected_recv,
        policy,
        StreamedExchange::DEFAULT_RING_DEPTH,
    )?;
    while let Some((_, range, payload)) = ex.next(comm, send_buf)? {
        recv_buf[range].copy_from_slice(&payload);
    }
    Ok(())
}

/// Strategy selector shared by the statevector engine and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// QuEST's original blocking `MPI_Sendrecv` sequence.
    #[default]
    Blocking,
    /// The paper's non-blocking rewrite (`Isend`/`Irecv` + `Waitall`).
    NonBlocking,
    /// Chunk-pipelined streaming: receives complete in arrival order and
    /// each chunk is consumed while later chunks are still in flight.
    Streamed,
}

/// Dispatches to the selected exchange strategy.
#[allow(clippy::too_many_arguments)]
pub fn exchange(
    mode: ExchangeMode,
    comm: &mut Communicator,
    peer: usize,
    base_tag: u64,
    send_buf: &[u8],
    recv_buf: &mut Vec<u8>,
    expected_recv: usize,
    policy: ChunkPolicy,
) -> Result<()> {
    match mode {
        ExchangeMode::Blocking => {
            exchange_blocking(comm, peer, base_tag, send_buf, recv_buf, expected_recv, policy)
        }
        ExchangeMode::NonBlocking => {
            exchange_nonblocking(comm, peer, base_tag, send_buf, recv_buf, expected_recv, policy)
        }
        ExchangeMode::Streamed => {
            exchange_streamed(comm, peer, base_tag, send_buf, recv_buf, expected_recv, policy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn policy_rejects_zero() {
        assert!(ChunkPolicy::new(0).is_err());
        assert!(ChunkPolicy::new(1).is_ok());
    }

    #[test]
    fn chunk_counts_and_ranges() {
        let p = ChunkPolicy::new(10).unwrap();
        assert_eq!(p.num_chunks(0), 0);
        assert_eq!(p.num_chunks(10), 1);
        assert_eq!(p.num_chunks(11), 2);
        assert_eq!(p.num_chunks(95), 10);
        let ranges: Vec<_> = p.ranges(25).collect();
        assert_eq!(ranges, vec![0..10, 10..20, 20..25]);
    }

    #[test]
    fn boundary_totals_zero_cap_and_cap_plus_one() {
        let cap = 64;
        let p = ChunkPolicy::new(cap).unwrap();
        // total = 0: no chunks, no ranges.
        assert_eq!(p.num_chunks(0), 0);
        assert_eq!(p.ranges(0).count(), 0);
        // total = cap: exactly one full chunk.
        assert_eq!(p.num_chunks(cap), 1);
        assert_eq!(p.ranges(cap).collect::<Vec<_>>(), vec![0..cap]);
        // total = cap + 1: a full chunk plus a one-byte tail.
        assert_eq!(p.num_chunks(cap + 1), 2);
        assert_eq!(
            p.ranges(cap + 1).collect::<Vec<_>>(),
            vec![0..cap, cap..cap + 1]
        );
    }

    #[test]
    fn ranges_near_usize_max_do_not_wrap() {
        // The last chunk's nominal end (start + cap) would exceed
        // usize::MAX; the saturating add must clamp to `total` instead of
        // wrapping around to a tiny range.
        let cap = usize::MAX / 2 + 1; // 2^63 on 64-bit targets
        let total = usize::MAX;
        let p = ChunkPolicy::new(cap).unwrap();
        assert_eq!(p.num_chunks(total), 2);
        let ranges: Vec<_> = p.ranges(total).collect();
        assert_eq!(ranges, vec![0..cap, cap..total]);
    }

    #[test]
    fn archer2_policy_matches_paper() {
        // 64 GB local statevector / 2 GB cap = 32 messages (paper §2.1).
        let local_bytes = 64usize * 1024 * 1024 * 1024;
        assert_eq!(ChunkPolicy::ARCHER2.num_chunks(local_bytes), 32);
    }

    #[test]
    fn chunk_tags_unique_across_chunks_and_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for idx in 0..8usize {
                assert!(seen.insert(chunk_tag(base, idx)));
            }
        }
    }

    #[test]
    fn chunk_tags_unique_at_documented_bounds() {
        // The extreme corners of the documented domain (base < 2^31,
        // idx < 2^32) must still map to distinct tags.
        let bases = [0u64, 1, (1 << 31) - 1];
        let idxs = [0usize, 1, (1usize << 32) - 1];
        let mut seen = std::collections::HashSet::new();
        for &base in &bases {
            for &idx in &idxs {
                assert!(seen.insert(chunk_tag(base, idx)), "collision at ({base}, {idx})");
            }
        }
        assert_eq!(seen.len(), bases.len() * idxs.len());
    }

    #[test]
    fn chunk_tag_round_trips_base_and_index() {
        let tag = chunk_tag((1 << 31) - 1, (1usize << 32) - 1);
        assert_eq!(tag >> CHUNK_TAG_SHIFT, (1 << 31) - 1);
        assert_eq!(tag & 0xFFFF_FFFF, (1u64 << 32) - 1);
    }

    #[test]
    #[should_panic(expected = "base tag too large")]
    fn oversized_base_tag_panics() {
        chunk_tag(1 << 31, 0);
    }

    #[test]
    #[should_panic(expected = "chunk index too large")]
    fn oversized_chunk_index_panics() {
        chunk_tag(0, 1usize << 32);
    }

    fn roundtrip(mode: ExchangeMode, len: usize, cap: usize) {
        let policy = ChunkPolicy::new(cap).unwrap();
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let send: Vec<u8> = (0..len).map(|i| (i + c.rank() * 7) as u8).collect();
            let mut recv = Vec::new();
            exchange(mode, c, peer, 3, &send, &mut recv, len, policy).unwrap();
            let expected: Vec<u8> = (0..len).map(|i| (i + peer * 7) as u8).collect();
            assert_eq!(recv, expected);
        });
    }

    #[test]
    fn blocking_exchange_roundtrips() {
        roundtrip(ExchangeMode::Blocking, 1000, 64);
        roundtrip(ExchangeMode::Blocking, 64, 64); // exactly one chunk
        roundtrip(ExchangeMode::Blocking, 65, 64); // one byte spillover
    }

    #[test]
    fn nonblocking_exchange_roundtrips() {
        roundtrip(ExchangeMode::NonBlocking, 1000, 64);
        roundtrip(ExchangeMode::NonBlocking, 1, 1024);
        roundtrip(ExchangeMode::NonBlocking, 0, 16); // empty exchange is legal
    }

    #[test]
    fn streamed_exchange_roundtrips() {
        roundtrip(ExchangeMode::Streamed, 1000, 64);
        roundtrip(ExchangeMode::Streamed, 64, 64); // exactly one chunk
        roundtrip(ExchangeMode::Streamed, 65, 64); // one byte spillover
        roundtrip(ExchangeMode::Streamed, 1, 1024);
        roundtrip(ExchangeMode::Streamed, 0, 16); // empty exchange is legal
    }

    #[test]
    fn chunk_range_matches_ranges_iterator() {
        let p = ChunkPolicy::new(10).unwrap();
        let from_iter: Vec<_> = p.ranges(25).collect();
        let from_index: Vec<_> = (0..3).map(|i| p.chunk_range(i, 25).unwrap()).collect();
        assert_eq!(from_iter, from_index);
        assert_eq!(p.chunk_range(3, 25), None);
        assert_eq!(p.chunk_range(0, 0), None);
    }

    #[test]
    fn aligned_policy_rounds_down_with_floor() {
        let p = ChunkPolicy::new(100).unwrap();
        assert_eq!(p.aligned(16).max_message_bytes, 96);
        assert_eq!(p.aligned(100).max_message_bytes, 100);
        // A cap smaller than the alignment is rounded *up* to one orbit.
        assert_eq!(p.aligned(128).max_message_bytes, 128);
        // Already aligned caps are untouched.
        assert_eq!(ChunkPolicy::new(256).unwrap().aligned(64).max_message_bytes, 256);
    }

    #[test]
    fn streamed_driver_yields_every_chunk_exactly_once() {
        let policy = ChunkPolicy::new(32).unwrap();
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let send: Vec<u8> = (0..300).map(|i| (i + c.rank() * 11) as u8).collect();
            let mut ex =
                StreamedExchange::begin(c, peer, 4, &send, 300, policy, 2).unwrap();
            let mut seen = vec![false; policy.num_chunks(300)];
            let mut assembled = vec![0u8; 300];
            while let Some((idx, range, payload)) = ex.next(c, &send).unwrap() {
                assert!(!seen[idx], "chunk {idx} delivered twice");
                seen[idx] = true;
                assert_eq!(range.len(), payload.len());
                assembled[range].copy_from_slice(&payload);
            }
            assert_eq!(ex.outstanding(), 0);
            assert!(seen.iter().all(|&s| s));
            let expected: Vec<u8> = (0..300).map(|i| (i + peer * 11) as u8).collect();
            assert_eq!(assembled, expected);
        });
    }

    #[test]
    fn streamed_asymmetric_sizes_do_not_deadlock() {
        // Half-exchange shape: one side sends twice as much as the other.
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let my_len = if c.rank() == 0 { 100 } else { 50 };
            let peer_len = if c.rank() == 0 { 50 } else { 100 };
            let send = vec![c.rank() as u8; my_len];
            let mut recv = Vec::new();
            let policy = ChunkPolicy::new(16).unwrap();
            exchange_streamed(c, peer, 9, &send, &mut recv, peer_len, policy).unwrap();
            assert_eq!(recv, vec![peer as u8; peer_len]);
        });
    }

    #[test]
    fn streamed_exchange_records_chunk_stats() {
        let stats = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let send = vec![0u8; 256];
            let mut recv = Vec::new();
            let policy = ChunkPolicy::new(64).unwrap();
            exchange_streamed(c, peer, 0, &send, &mut recv, 256, policy).unwrap();
            c.barrier();
            c.stats()
        });
        for s in stats {
            assert_eq!(s.messages_sent, 4);
            assert_eq!(s.bytes_sent, 256);
            assert_eq!(s.bytes_received, 256);
            assert_eq!(s.exchange_chunks, 4);
            assert_eq!(s.bytes_exchanged, 256);
        }
    }

    #[test]
    fn asymmetric_exchange_sizes() {
        // One side sends 100 bytes, the other 50 (half-exchange pattern).
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let my_len = if c.rank() == 0 { 100 } else { 50 };
            let peer_len = if c.rank() == 0 { 50 } else { 100 };
            let send = vec![c.rank() as u8; my_len];
            let mut recv = Vec::new();
            let policy = ChunkPolicy::new(16).unwrap();
            exchange_blocking(c, peer, 9, &send, &mut recv, peer_len, policy).unwrap();
            assert_eq!(recv, vec![peer as u8; peer_len]);
        });
    }

    #[test]
    fn exchange_message_counts_match_policy() {
        let stats = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let send = vec![0u8; 256];
            let mut recv = Vec::new();
            let policy = ChunkPolicy::new(64).unwrap();
            exchange_nonblocking(c, peer, 0, &send, &mut recv, 256, policy).unwrap();
            c.barrier();
            c.stats()
        });
        for s in stats {
            assert_eq!(s.messages_sent, 4); // 256 / 64
            assert_eq!(s.bytes_sent, 256);
            assert_eq!(s.bytes_received, 256);
            assert_eq!(s.bytes_exchanged, 256, "exchange payload tracked");
        }
    }

    /// Delay-only fault plan: heavy jitter, nothing else, so chunk
    /// delivery order is scrambled without any retry machinery engaging.
    fn delay_jitter(seed: u64) -> crate::FaultConfig {
        let mut cfg = crate::FaultConfig::disabled(seed);
        cfg.p_delay = 0.6;
        cfg.max_delay_slices = 3;
        cfg
    }

    #[test]
    fn streamed_completion_order_shuffles_under_delay_jitter() {
        // Held-back chunks let later chunks overtake them, so wait_any
        // hands chunks back out of posting order; the per-chunk byte
        // ranges must still compose into exactly the peer's buffer.
        let total = 600usize;
        let policy = ChunkPolicy::new(16).unwrap();
        let mut saw_reorder = false;
        for seed in [11u64, 23, 47, 101] {
            let universe = Universe::with_faults(2, delay_jitter(seed)).unwrap();
            let orders = universe.run(|c| {
                let peer = 1 - c.rank();
                let send: Vec<u8> =
                    (0..total).map(|i| (i * 3 + c.rank() * 17) as u8).collect();
                let mut ex =
                    StreamedExchange::begin(c, peer, 6, &send, total, policy, 2).unwrap();
                let mut order = Vec::new();
                let mut assembled = vec![0u8; total];
                while let Some((idx, range, payload)) = ex.next(c, &send).unwrap() {
                    order.push(idx);
                    assert_eq!(range.len(), payload.len());
                    assembled[range].copy_from_slice(&payload);
                }
                let expected: Vec<u8> =
                    (0..total).map(|i| (i * 3 + peer * 17) as u8).collect();
                assert_eq!(assembled, expected, "seed {seed} reassembly broke");
                order
            });
            for order in orders {
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..policy.num_chunks(total)).collect::<Vec<_>>());
                if order.windows(2).any(|w| w[0] > w[1]) {
                    saw_reorder = true;
                }
            }
        }
        assert!(saw_reorder, "delay jitter never reordered a chunk on any seed");
    }

    #[test]
    fn every_mode_survives_recoverable_faults() {
        // Full fault cocktail (delay + corruption + transient failures),
        // recoverable by construction: each strategy must deliver exactly
        // the fault-free bytes.
        for &mode in &[
            ExchangeMode::Blocking,
            ExchangeMode::NonBlocking,
            ExchangeMode::Streamed,
        ] {
            for seed in [5u64, 9, 31] {
                let universe =
                    Universe::with_faults(2, crate::FaultConfig::recoverable(seed)).unwrap();
                let out = universe.run(|c| {
                    let peer = 1 - c.rank();
                    let send: Vec<u8> =
                        (0..500).map(|i| (i * 7 + c.rank()) as u8).collect();
                    let mut recv = Vec::new();
                    let policy = ChunkPolicy::new(64).unwrap();
                    exchange(mode, c, peer, 2, &send, &mut recv, 500, policy).unwrap();
                    c.barrier();
                    (recv, c.stats().faults_injected)
                });
                let mut injected_total = 0;
                for (rank, (recv, injected)) in out.into_iter().enumerate() {
                    let peer = 1 - rank;
                    let expected: Vec<u8> =
                        (0..500).map(|i| (i * 7 + peer) as u8).collect();
                    assert_eq!(recv, expected, "mode {mode:?} seed {seed} rank {rank}");
                    injected_total += injected;
                }
                assert!(injected_total > 0, "plan {seed} never fired a fault");
            }
        }
    }

    #[test]
    fn both_modes_deliver_identical_bytes() {
        for &mode in &[
            ExchangeMode::Blocking,
            ExchangeMode::NonBlocking,
            ExchangeMode::Streamed,
        ] {
            let out = Universe::new(2).run(|c| {
                let peer = 1 - c.rank();
                let send: Vec<u8> = (0..777).map(|i| (i * (c.rank() + 2)) as u8).collect();
                let mut recv = Vec::new();
                let policy = ChunkPolicy::new(100).unwrap();
                exchange(mode, c, peer, 1, &send, &mut recv, 777, policy).unwrap();
                recv
            });
            let expect0: Vec<u8> = (0..777).map(|i| (i * 3) as u8).collect();
            let expect1: Vec<u8> = (0..777).map(|i| (i * 2) as u8).collect();
            assert_eq!(out[0], expect0);
            assert_eq!(out[1], expect1);
        }
    }
}
