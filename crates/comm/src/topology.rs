//! Rank-to-switch topology mapping.
//!
//! ARCHER2 groups 8 nodes per switch (§2.4); messages between ranks under
//! the same switch never cross the spine. This module classifies traffic
//! accordingly, which lets experiments report how much of an exchange
//! pattern is switch-local — the reason the paper's pairwise pattern
//! (`rank XOR 2^k`) stresses the network more as the flipped bit rises.

/// A grouping of ranks into switches of fixed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Ranks per switch (8 on ARCHER2 with one rank per node).
    pub ranks_per_switch: usize,
}

impl Topology {
    /// The ARCHER2 grouping.
    pub const ARCHER2: Topology = Topology { ranks_per_switch: 8 };

    /// Creates a topology (group size ≥ 1).
    pub fn new(ranks_per_switch: usize) -> Self {
        assert!(ranks_per_switch >= 1);
        Topology { ranks_per_switch }
    }

    /// The switch a rank hangs off.
    pub fn switch_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_switch
    }

    /// Switches needed for `n_ranks`.
    pub fn switches_for(&self, n_ranks: usize) -> usize {
        n_ranks.div_ceil(self.ranks_per_switch)
    }

    /// True when a message between the two ranks stays under one switch.
    pub fn is_local(&self, a: usize, b: usize) -> bool {
        self.switch_of(a) == self.switch_of(b)
    }

    /// For the paper's pairwise exchange (`rank XOR 2^bit` across all
    /// ranks), the fraction of pairs that stay switch-local.
    ///
    /// With `2^s` ranks per switch, flipping bit `k < s` is always local;
    /// any higher bit always crosses switches — the step function that
    /// makes high global qubits strictly network-bound.
    pub fn local_fraction_for_xor(&self, n_ranks: usize, bit: u32) -> f64 {
        assert!(n_ranks >= 1);
        let mut local = 0usize;
        for rank in 0..n_ranks {
            let pair = rank ^ (1usize << bit);
            if pair < n_ranks && self.is_local(rank, pair) {
                local += 1;
            }
        }
        local as f64 / n_ranks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_assignment() {
        let t = Topology::ARCHER2;
        assert_eq!(t.switch_of(0), 0);
        assert_eq!(t.switch_of(7), 0);
        assert_eq!(t.switch_of(8), 1);
        assert_eq!(t.switches_for(64), 8);
        assert_eq!(t.switches_for(65), 9);
    }

    #[test]
    fn locality_classification() {
        let t = Topology::ARCHER2;
        assert!(t.is_local(0, 7));
        assert!(!t.is_local(7, 8));
        assert!(t.is_local(9, 15));
    }

    #[test]
    fn xor_exchange_locality_is_a_step_function() {
        // 64 ranks, 8 per switch: bits 0–2 are switch-local, 3–5 are not.
        let t = Topology::ARCHER2;
        for bit in 0..3u32 {
            assert_eq!(t.local_fraction_for_xor(64, bit), 1.0, "bit {bit}");
        }
        for bit in 3..6u32 {
            assert_eq!(t.local_fraction_for_xor(64, bit), 0.0, "bit {bit}");
        }
    }

    #[test]
    fn non_pow2_group_sizes_work() {
        let t = Topology::new(3);
        assert_eq!(t.switch_of(2), 0);
        assert_eq!(t.switch_of(3), 1);
        // XOR bit 0 pairs (0,1): same switch; (2,3): different.
        let f = t.local_fraction_for_xor(6, 0);
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_group_rejected() {
        Topology::new(0);
    }
}
