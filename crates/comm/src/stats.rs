//! Per-rank traffic accounting.
//!
//! The analytic performance model (and several tests) need to know exactly
//! how much data a simulation moved: the paper's core claim is that
//! cache-blocking *halves the required communication*. Every send and
//! receive updates these counters, so a test can assert e.g. that a
//! cache-blocked QFT moves fewer bytes than the built-in one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counters for one rank's traffic. Cheap to clone (shared).
#[derive(Debug, Default)]
pub struct TrafficCounters {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_received: AtomicU64,
}

impl TrafficCounters {
    /// Records one outgoing message of `bytes` length.
    pub fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one incoming message of `bytes` length.
    pub fn record_recv(&self, bytes: usize) {
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.messages_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of one rank's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Messages received by this rank.
    pub messages_received: u64,
    /// Payload bytes received by this rank.
    pub bytes_received: u64,
}

impl TrafficStats {
    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(self, other: TrafficStats) -> TrafficStats {
        TrafficStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_received: self.messages_received + other.messages_received,
            bytes_received: self.bytes_received + other.bytes_received,
        }
    }

    /// Aggregates a collection of per-rank snapshots.
    pub fn total(stats: &[TrafficStats]) -> TrafficStats {
        stats.iter().fold(TrafficStats::default(), |a, &b| a.merge(b))
    }
}

/// Shared handle to a rank's counters.
pub type SharedCounters = Arc<TrafficCounters>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = TrafficCounters::default();
        c.record_send(100);
        c.record_send(50);
        c.record_recv(30);
        let s = c.snapshot();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.messages_received, 1);
        assert_eq!(s.bytes_received, 30);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = TrafficCounters::default();
        c.record_send(10);
        c.record_recv(10);
        c.reset();
        assert_eq!(c.snapshot(), TrafficStats::default());
    }

    #[test]
    fn merge_and_total() {
        let a = TrafficStats {
            messages_sent: 1,
            bytes_sent: 10,
            messages_received: 2,
            bytes_received: 20,
        };
        let b = TrafficStats {
            messages_sent: 3,
            bytes_sent: 30,
            messages_received: 4,
            bytes_received: 40,
        };
        let t = TrafficStats::total(&[a, b]);
        assert_eq!(t.messages_sent, 4);
        assert_eq!(t.bytes_sent, 40);
        assert_eq!(t.messages_received, 6);
        assert_eq!(t.bytes_received, 60);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Arc::new(TrafficCounters::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_send(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().messages_sent, 4000);
        assert_eq!(c.snapshot().bytes_sent, 4000);
    }
}
