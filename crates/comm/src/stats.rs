//! Per-rank traffic accounting.
//!
//! The analytic performance model (and several tests) need to know exactly
//! how much data a simulation moved: the paper's core claim is that
//! cache-blocking *halves the required communication*. Every send and
//! receive updates these counters, so a test can assert e.g. that a
//! cache-blocked QFT moves fewer bytes than the built-in one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counters for one rank's traffic. Cheap to clone (shared).
#[derive(Debug, Default)]
pub struct TrafficCounters {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_received: AtomicU64,
    /// Chunks completed by streamed exchanges (pipeline depth observable).
    exchange_chunks: AtomicU64,
    /// Payload bytes this rank contributed to statevector amplitude
    /// exchanges (chunked pairwise exchanges and batched permutations).
    /// A subset of `bytes_sent`: collectives and control traffic are
    /// excluded, so transpiler ablations compare like with like.
    bytes_exchanged: AtomicU64,
    /// Exchange scratch bytes currently held (ring occupancy gauge).
    inflight_bytes: AtomicU64,
    /// High-water mark of `inflight_bytes`.
    peak_inflight_bytes: AtomicU64,
    /// Fault events injected by this rank's fault lane (delays, transient
    /// failures, corruption bursts, stalls). Zero when faults are off.
    faults_injected: AtomicU64,
    /// Operations retried after an injected transient failure.
    retries: AtomicU64,
    /// Corrupt payloads detected by checksum validation and discarded.
    corruptions_detected: AtomicU64,
}

impl TrafficCounters {
    /// Records one outgoing message of `bytes` length.
    pub fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one incoming message of `bytes` length.
    pub fn record_recv(&self, bytes: usize) {
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `chunks` completed chunks of one streamed exchange.
    pub fn record_exchange_chunks(&self, chunks: u64) {
        self.exchange_chunks.fetch_add(chunks, Ordering::Relaxed);
    }

    /// Records `bytes` of amplitude payload sent as part of a statevector
    /// exchange (pairwise chunked exchange or batched permutation).
    pub fn record_exchange_bytes(&self, bytes: u64) {
        self.bytes_exchanged.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accounts `bytes` of exchange scratch acquired (a ring slot filled
    /// with an in-flight chunk), updating the high-water mark.
    pub fn scratch_acquire(&self, bytes: u64) {
        let now = self.inflight_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_inflight_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes` of exchange scratch (the chunk was consumed).
    pub fn scratch_release(&self, bytes: u64) {
        self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Records one injected fault event (a delay, a transient-failure
    /// burst, a corruption burst, or a stall window hit).
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `attempts` retried operations after transient failures.
    pub fn record_retries(&self, attempts: u64) {
        self.retries.fetch_add(attempts, Ordering::Relaxed);
    }

    /// Records one corrupt payload caught by checksum validation.
    pub fn record_corruption_detected(&self) {
        self.corruptions_detected.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            exchange_chunks: self.exchange_chunks.load(Ordering::Relaxed),
            bytes_exchanged: self.bytes_exchanged.load(Ordering::Relaxed),
            peak_inflight_bytes: self.peak_inflight_bytes.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            corruptions_detected: self.corruptions_detected.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.messages_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.exchange_chunks.store(0, Ordering::Relaxed);
        self.bytes_exchanged.store(0, Ordering::Relaxed);
        self.inflight_bytes.store(0, Ordering::Relaxed);
        self.peak_inflight_bytes.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.corruptions_detected.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of one rank's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Messages received by this rank.
    pub messages_received: u64,
    /// Payload bytes received by this rank.
    pub bytes_received: u64,
    /// Chunks completed by streamed exchanges on this rank.
    pub exchange_chunks: u64,
    /// Amplitude payload bytes this rank sent through statevector
    /// exchanges (a subset of `bytes_sent` that excludes collectives).
    pub bytes_exchanged: u64,
    /// High-water mark of exchange scratch held at once (ring occupancy).
    pub peak_inflight_bytes: u64,
    /// Fault events injected on this rank (zero when faults are off).
    pub faults_injected: u64,
    /// Operations retried after injected transient failures.
    pub retries: u64,
    /// Corrupt payloads detected by checksum validation and discarded.
    pub corruptions_detected: u64,
}

impl TrafficStats {
    /// Element-wise aggregate, for combining across ranks: traffic totals
    /// sum; the scratch high-water mark takes the per-rank maximum (peaks
    /// on different ranks are concurrent, not additive).
    pub fn merge(self, other: TrafficStats) -> TrafficStats {
        TrafficStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_received: self.messages_received + other.messages_received,
            bytes_received: self.bytes_received + other.bytes_received,
            exchange_chunks: self.exchange_chunks + other.exchange_chunks,
            bytes_exchanged: self.bytes_exchanged + other.bytes_exchanged,
            peak_inflight_bytes: self.peak_inflight_bytes.max(other.peak_inflight_bytes),
            faults_injected: self.faults_injected + other.faults_injected,
            retries: self.retries + other.retries,
            corruptions_detected: self.corruptions_detected + other.corruptions_detected,
        }
    }

    /// Aggregates a collection of per-rank snapshots.
    pub fn total(stats: &[TrafficStats]) -> TrafficStats {
        stats.iter().fold(TrafficStats::default(), |a, &b| a.merge(b))
    }
}

/// Shared handle to a rank's counters.
pub type SharedCounters = Arc<TrafficCounters>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = TrafficCounters::default();
        c.record_send(100);
        c.record_send(50);
        c.record_recv(30);
        let s = c.snapshot();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.messages_received, 1);
        assert_eq!(s.bytes_received, 30);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = TrafficCounters::default();
        c.record_send(10);
        c.record_recv(10);
        c.reset();
        assert_eq!(c.snapshot(), TrafficStats::default());
    }

    #[test]
    fn merge_and_total() {
        let a = TrafficStats {
            messages_sent: 1,
            bytes_sent: 10,
            messages_received: 2,
            bytes_received: 20,
            exchange_chunks: 4,
            bytes_exchanged: 8,
            peak_inflight_bytes: 128,
            faults_injected: 2,
            retries: 1,
            corruptions_detected: 0,
        };
        let b = TrafficStats {
            messages_sent: 3,
            bytes_sent: 30,
            messages_received: 4,
            bytes_received: 40,
            exchange_chunks: 6,
            bytes_exchanged: 24,
            peak_inflight_bytes: 96,
            faults_injected: 1,
            retries: 2,
            corruptions_detected: 3,
        };
        let t = TrafficStats::total(&[a, b]);
        assert_eq!(t.messages_sent, 4);
        assert_eq!(t.bytes_sent, 40);
        assert_eq!(t.messages_received, 6);
        assert_eq!(t.bytes_received, 60);
        assert_eq!(t.exchange_chunks, 10, "chunk counts sum");
        assert_eq!(t.bytes_exchanged, 32, "exchange payload bytes sum");
        assert_eq!(t.peak_inflight_bytes, 128, "peaks merge via max");
        assert_eq!(t.faults_injected, 3, "fault counts sum");
        assert_eq!(t.retries, 3, "retry counts sum");
        assert_eq!(t.corruptions_detected, 3, "corruption counts sum");
    }

    #[test]
    fn fault_counters_accumulate_and_reset() {
        let c = TrafficCounters::default();
        c.record_fault_injected();
        c.record_fault_injected();
        c.record_retries(3);
        c.record_corruption_detected();
        let s = c.snapshot();
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.retries, 3);
        assert_eq!(s.corruptions_detected, 1);
        c.reset();
        assert_eq!(c.snapshot(), TrafficStats::default());
    }

    #[test]
    fn scratch_gauge_tracks_high_water_mark() {
        let c = TrafficCounters::default();
        c.scratch_acquire(100);
        c.scratch_acquire(60); // 160 held at once
        c.scratch_release(100);
        c.scratch_acquire(50); // back to 110: below the peak
        assert_eq!(c.snapshot().peak_inflight_bytes, 160);
        c.record_exchange_chunks(8);
        c.record_exchange_chunks(3);
        assert_eq!(c.snapshot().exchange_chunks, 11);
        c.record_exchange_bytes(512);
        c.record_exchange_bytes(256);
        assert_eq!(c.snapshot().bytes_exchanged, 768);
        c.reset();
        assert_eq!(c.snapshot(), TrafficStats::default());
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Arc::new(TrafficCounters::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_send(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().messages_sent, 4000);
        assert_eq!(c.snapshot().bytes_sent, 4000);
    }
}
