//! Message envelope and payload conversion helpers.

use qse_util::Bytes;

/// A message in flight: source rank, user tag, and an owned byte payload.
///
/// `Bytes` gives cheap reference-counted hand-off between threads; the
/// payload is copied exactly once, at send time, mirroring an eager-protocol
/// MPI implementation.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Rank that sent the message.
    pub src: usize,
    /// User-supplied tag; receives match on `(src, tag)`.
    pub tag: u64,
    /// Message body.
    pub payload: Bytes,
    /// Checksum of the payload *as the sender intended it*, stamped only
    /// when a fault plan is active. A mismatch against the received
    /// payload means the transport corrupted the message; the receiver
    /// discards it and waits for the retransmission. `None` on the
    /// zero-overhead fault-free path — no checksum is ever computed.
    pub checksum: Option<u64>,
    /// Injected delivery delay, in deadlock-poll slices. The receiver
    /// holds the envelope back for this many poll events before it
    /// becomes visible to matching. Always `0` without a fault plan.
    pub delay_slices: u32,
}

impl Envelope {
    /// Creates an envelope, copying `payload` into owned storage.
    pub fn new(src: usize, tag: u64, payload: &[u8]) -> Self {
        Self::from_bytes(src, tag, Bytes::copy_from_slice(payload))
    }

    /// Creates an envelope from an already-owned payload without copying.
    pub fn from_bytes(src: usize, tag: u64, payload: Bytes) -> Self {
        Envelope {
            src,
            tag,
            payload,
            checksum: None,
            delay_slices: 0,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty (e.g. barrier/ack messages).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// True when the stamped checksum (if any) matches the payload —
    /// envelopes without a checksum always validate.
    pub fn checksum_ok(&self) -> bool {
        self.checksum
            .map(|c| c == checksum64(&self.payload))
            .unwrap_or(true)
    }
}

/// FNV-1a over the payload bytes: a cheap, deterministic 64-bit checksum.
///
/// Not cryptographic — it only needs to catch the single-byte flips the
/// fault injector produces, the role a link-layer CRC plays on a real
/// fabric.
pub fn checksum64(payload: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Reinterprets a slice of `f64` as bytes (little-endian native layout).
///
/// The statevector engine ships amplitude data as `f64` arrays exactly as
/// QuEST ships `qreal` buffers through MPI.
pub fn f64s_to_bytes(values: &[f64]) -> Bytes {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(buf)
}

/// Encodes `values` into a caller-provided byte buffer (cleared first),
/// reusing its capacity — the allocation-free staging half of the
/// exchange hot path (the copy into owned [`Bytes`] happens once, at
/// send time, as with any eager-protocol MPI send).
pub fn f64s_to_bytes_into(values: &[f64], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes one little-endian `f64` from an 8-byte chunk handed out by
/// `chunks_exact(8)`, whose contract guarantees the length.
#[inline]
fn f64_le(chunk: &[u8]) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(chunk);
    f64::from_le_bytes(b)
}

/// Decodes a byte payload produced by [`f64s_to_bytes`].
///
/// # Panics
/// Panics if the payload length is not a multiple of 8 — that would mean a
/// framing bug, which must never be silently tolerated.
pub fn bytes_to_f64s(payload: &[u8]) -> Vec<f64> {
    assert!(
        payload.len().is_multiple_of(8),
        "payload length {} is not a multiple of 8",
        payload.len()
    );
    payload.chunks_exact(8).map(f64_le).collect()
}

/// Decodes a byte payload into a caller-provided `f64` buffer, avoiding an
/// allocation on the hot exchange path.
///
/// # Panics
/// Panics if `out.len() * 8 != payload.len()`.
pub fn bytes_to_f64s_into(payload: &[u8], out: &mut [f64]) {
    assert_eq!(
        payload.len(),
        out.len() * 8,
        "payload length {} does not match output buffer {} f64s",
        payload.len(),
        out.len()
    );
    for (slot, c) in out.iter_mut().zip(payload.chunks_exact(8)) {
        *slot = f64_le(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_copies_payload() {
        let data = vec![1u8, 2, 3];
        let env = Envelope::new(0, 5, &data);
        assert_eq!(env.src, 0);
        assert_eq!(env.tag, 5);
        assert_eq!(&env.payload[..], &[1, 2, 3]);
        assert_eq!(env.len(), 3);
        assert!(!env.is_empty());
    }

    #[test]
    fn empty_envelope() {
        let env = Envelope::new(1, 0, &[]);
        assert!(env.is_empty());
        assert_eq!(env.len(), 0);
    }

    #[test]
    fn envelopes_default_to_the_fault_free_path() {
        let env = Envelope::new(0, 1, &[1, 2, 3]);
        assert_eq!(env.checksum, None);
        assert_eq!(env.delay_slices, 0);
        assert!(env.checksum_ok(), "no checksum always validates");
    }

    #[test]
    fn checksum_validation_catches_flips() {
        let payload = [0u8, 1, 2, 3, 4, 5];
        let mut env = Envelope::new(0, 1, &payload);
        env.checksum = Some(checksum64(&payload));
        assert!(env.checksum_ok());
        // A corrupted copy keeps the original checksum but a flipped body.
        let mut flipped = payload;
        flipped[2] ^= 0xFF;
        let mut bad = Envelope::new(0, 1, &flipped);
        bad.checksum = env.checksum;
        assert!(!bad.checksum_ok());
    }

    #[test]
    fn checksum64_is_deterministic_and_spread() {
        assert_eq!(checksum64(&[]), checksum64(&[]));
        assert_eq!(checksum64(b"abc"), checksum64(b"abc"));
        assert_ne!(checksum64(b"abc"), checksum64(b"abd"));
        assert_ne!(checksum64(&[0]), checksum64(&[0, 0]));
    }

    #[test]
    fn f64_roundtrip() {
        let values = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let bytes = f64s_to_bytes(&values);
        assert_eq!(bytes.len(), values.len() * 8);
        assert_eq!(bytes_to_f64s(&bytes), values);
    }

    #[test]
    fn f64_roundtrip_into_buffer() {
        let values = vec![1.0, 2.0, 3.0];
        let bytes = f64s_to_bytes(&values);
        let mut out = vec![0.0; 3];
        bytes_to_f64s_into(&bytes, &mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn encode_into_buffer_reuses_capacity() {
        let values = vec![-0.5, 7.25, f64::MAX];
        let mut buf = vec![0xAAu8; 64];
        let cap = buf.capacity();
        f64s_to_bytes_into(&values, &mut buf);
        assert_eq!(&buf[..], &f64s_to_bytes(&values)[..]);
        assert_eq!(buf.capacity(), cap);
        // and shrinking inputs still produce exact-length output
        f64s_to_bytes_into(&[], &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple of 8")]
    fn misframed_payload_panics() {
        bytes_to_f64s(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not match output buffer")]
    fn wrong_buffer_size_panics() {
        let bytes = f64s_to_bytes(&[1.0, 2.0]);
        let mut out = vec![0.0; 3];
        bytes_to_f64s_into(&bytes, &mut out);
    }
}
