//! Runtime deadlock detection over a shared wait-for graph.
//!
//! Every [`crate::Communicator`] registers what it is currently blocked on
//! — the peer rank and tag of a receive, or the barrier — in a
//! [`WaitRegistry`] shared by the whole universe. Blocked receives wake on
//! a short poll slice and run [`WaitRegistry::detect`], which declares a
//! deadlock under either of two sound rules:
//!
//! 1. **Wait cycle**: following the "waiting on" edges from the calling
//!    rank returns to a rank already on the path, and no member of the
//!    cycle has a message in flight towards it. None of them can ever be
//!    satisfied.
//! 2. **Global starvation**: every rank is blocked (receive or barrier) or
//!    has finished, zero messages are in flight anywhere, and at least one
//!    rank is blocked in a receive. Nobody can ever send again.
//!
//! Soundness rests on the in-flight counters: a sender increments the
//! destination's counter *before* the message enters the mailbox and the
//! receiver decrements it at dequeue, so any message that could still wake
//! a rank keeps its counter positive and suppresses detection (the safe
//! direction — detection is retried on the next poll slice). A detected
//! deadlock is reported as [`crate::CommError::Deadlock`] with a per-rank
//! diagnostic (rank → waiting-on peer/tag → queue depths) instead of a
//! 60-second timeout.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// What a rank is currently blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Blocked in `recv(src, tag)`.
    Recv {
        /// Rank we are waiting to hear from.
        src: usize,
        /// Tag we are matching.
        tag: u64,
    },
    /// Blocked in `wait_any` over a set of posted receives.
    RecvAny {
        /// Source rank of the first outstanding receive. When
        /// `multi_source` is false this is the *only* source, so the
        /// cycle rule may follow it as a wait-for edge.
        src: usize,
        /// Number of receives still outstanding in the set.
        outstanding: usize,
        /// True when the outstanding receives name more than one source
        /// rank. A multi-source waiter wakes if *any* of them sends, so
        /// no single wait-for edge is sound; only the global rule can
        /// claim certainty for it.
        multi_source: bool,
    },
    /// Blocked in `barrier()`.
    Barrier,
}

impl fmt::Display for WaitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitKind::Recv { src, tag } => write!(f, "recv(src={src}, tag={tag})"),
            WaitKind::RecvAny {
                src,
                outstanding,
                multi_source,
            } => {
                if *multi_source {
                    write!(f, "wait_any({outstanding} outstanding, multiple sources)")
                } else {
                    write!(f, "wait_any(src={src}, {outstanding} outstanding)")
                }
            }
            WaitKind::Barrier => write!(f, "barrier"),
        }
    }
}

/// Per-rank slot in the wait-for graph.
#[derive(Debug, Default, Clone)]
struct RankWait {
    /// What the rank is blocked on right now, if anything.
    waiting: Option<WaitKind>,
    /// Depth of the rank's unexpected-message queue (buffered arrivals
    /// that matched no receive yet) — diagnostic only.
    pending_depth: usize,
}

/// One rank's line in a [`DeadlockReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDiag {
    /// The rank this line describes.
    pub rank: usize,
    /// What it is blocked on (`None` → running or finished).
    pub waiting: Option<WaitKind>,
    /// True when the rank's communicator has been dropped.
    pub done: bool,
    /// Buffered unexpected messages held by the rank.
    pub pending_depth: usize,
    /// Messages in flight towards the rank (sent, not yet dequeued).
    pub in_flight: u64,
}

/// The full diagnosis produced when a deadlock is detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Ranks that can never be satisfied (every recv-blocked rank on the
    /// cycle, or all recv-blocked ranks under the global rule).
    pub stuck: Vec<usize>,
    /// One line per rank in the universe.
    pub ranks: Vec<RankDiag>,
}

impl DeadlockReport {
    /// Renders the per-rank diagnostic table as a multi-line string.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "stuck ranks: {:?}", self.stuck);
        for d in &self.ranks {
            let state = match (&d.waiting, d.done) {
                (Some(w), _) => format!("waiting on {w}"),
                (None, true) => "finished".to_string(),
                (None, false) => "running".to_string(),
            };
            let _ = write!(
                out,
                "; rank {} -> {} [{} buffered, {} in flight]",
                d.rank, state, d.pending_depth, d.in_flight
            );
        }
        out
    }
}

/// Shared wait-for graph for one universe: one slot and one in-flight
/// counter per rank.
pub struct WaitRegistry {
    slots: Vec<Mutex<RankWait>>,
    /// Messages sent towards each rank that it has not yet dequeued.
    in_flight: Vec<AtomicU64>,
    /// Set when the rank's communicator is dropped: it can never send.
    done: Vec<AtomicBool>,
    /// First proven diagnosis, shared so every stuck rank reports the
    /// same full picture even after earlier detectors unregister.
    verdict: Mutex<Option<DeadlockReport>>,
}

impl WaitRegistry {
    /// Creates an empty registry for `size` ranks.
    pub fn new(size: usize) -> Self {
        WaitRegistry {
            slots: (0..size).map(|_| Mutex::new(RankWait::default())).collect(),
            in_flight: (0..size).map(|_| AtomicU64::new(0)).collect(),
            done: (0..size).map(|_| AtomicBool::new(false)).collect(),
            verdict: Mutex::new(None),
        }
    }

    /// Number of ranks tracked.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, rank: usize) -> std::sync::MutexGuard<'_, RankWait> {
        self.slots[rank]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Marks `rank` blocked on `kind`; `pending_depth` is its current
    /// unexpected-queue depth.
    pub fn begin_wait(&self, rank: usize, kind: WaitKind, pending_depth: usize) {
        let mut s = self.slot(rank);
        s.waiting = Some(kind);
        s.pending_depth = pending_depth;
    }

    /// Marks `rank` running again.
    pub fn end_wait(&self, rank: usize) {
        self.slot(rank).waiting = None;
    }

    /// Updates the diagnostic unexpected-queue depth for `rank`.
    pub fn set_pending_depth(&self, rank: usize, depth: usize) {
        self.slot(rank).pending_depth = depth;
    }

    /// A message towards `dst` entered the transport. Must be called
    /// *before* the enqueue so detection never misses an in-flight message.
    pub fn msg_sent(&self, dst: usize) {
        self.in_flight[dst].fetch_add(1, Ordering::SeqCst);
    }

    /// Undo of [`Self::msg_sent`] when the enqueue itself failed.
    pub fn msg_unsent(&self, dst: usize) {
        self.in_flight[dst].fetch_sub(1, Ordering::SeqCst);
    }

    /// `dst` dequeued one message from its mailbox.
    pub fn msg_delivered(&self, dst: usize) {
        self.in_flight[dst].fetch_sub(1, Ordering::SeqCst);
    }

    /// The rank's communicator was dropped; it can never send again.
    pub fn mark_done(&self, rank: usize) {
        self.done[rank].store(true, Ordering::SeqCst);
    }

    /// Snapshot every rank's state for a report.
    fn snapshot(&self) -> Vec<RankDiag> {
        (0..self.size())
            .map(|r| {
                let s = self.slot(r).clone();
                RankDiag {
                    rank: r,
                    waiting: s.waiting,
                    done: self.done[r].load(Ordering::SeqCst),
                    pending_depth: s.pending_depth,
                    in_flight: self.in_flight[r].load(Ordering::SeqCst),
                }
            })
            .collect()
    }

    /// Runs both detection rules from the point of view of recv-blocked
    /// rank `me`. Returns a report only when the deadlock is certain.
    pub fn detect(&self, me: usize) -> Option<DeadlockReport> {
        // A deadlock already proven for a set containing `me` stays true
        // even after other members error out and unregister — adopt the
        // shared verdict so every stuck rank reports the same full picture.
        if let Some(v) = self.verdict().as_ref() {
            if v.stuck.contains(&me) {
                return Some(v.clone());
            }
        }

        let snap = self.snapshot();
        // `me` must still be recv-blocked in the snapshot (it is, unless a
        // racing update is in progress — then skip this slice).
        let my_wait = snap[me].waiting?;
        if !matches!(
            my_wait,
            WaitKind::Recv { .. } | WaitKind::RecvAny { .. }
        ) {
            return None;
        }

        // Rule 1: wait cycle among recv-blocked ranks with no in-flight
        // messages towards any member.
        if let Some(cycle) = self.find_cycle(me, &snap) {
            return Some(self.publish(me, DeadlockReport {
                stuck: cycle,
                ranks: snap,
            }));
        }

        // Rule 2: global starvation — every rank blocked or finished, no
        // message in flight anywhere, so no future send can happen.
        let all_inert = snap.iter().all(|d| d.waiting.is_some() || d.done);
        let none_in_flight = snap.iter().all(|d| d.in_flight == 0);
        if all_inert && none_in_flight {
            let stuck: Vec<usize> = snap
                .iter()
                .filter(|d| {
                    matches!(
                        d.waiting,
                        Some(WaitKind::Recv { .. }) | Some(WaitKind::RecvAny { .. })
                    )
                })
                .map(|d| d.rank)
                .collect();
            if !stuck.is_empty() {
                return Some(self.publish(me, DeadlockReport { stuck, ranks: snap }));
            }
        }
        None
    }

    fn verdict(&self) -> std::sync::MutexGuard<'_, Option<DeadlockReport>> {
        self.verdict.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records the first proven report so later detectors on the same
    /// stuck set render an identical diagnosis. A concurrently proven
    /// *disjoint* deadlock keeps its own report.
    fn publish(&self, me: usize, report: DeadlockReport) -> DeadlockReport {
        let mut slot = self.verdict();
        match slot.as_ref() {
            Some(v) if v.stuck.contains(&me) => v.clone(),
            Some(_) => report,
            None => {
                *slot = Some(report.clone());
                report
            }
        }
    }

    /// Follows "waiting on" edges from `me`; a revisited rank closes a
    /// cycle. Every member must be recv-blocked with zero in-flight
    /// messages, otherwise a wake-up is still possible.
    fn find_cycle(&self, me: usize, snap: &[RankDiag]) -> Option<Vec<usize>> {
        let mut path: Vec<usize> = Vec::new();
        let mut cur = me;
        loop {
            let d = &snap[cur];
            // A `wait_any` over a single source is equivalent to a plain
            // receive for the cycle rule: only that source can wake it.
            // Multi-source waiters have no sound single edge, so the walk
            // gives up (the global rule still covers them).
            let src = match d.waiting {
                Some(WaitKind::Recv { src, .. }) => src,
                Some(WaitKind::RecvAny {
                    src,
                    multi_source: false,
                    ..
                }) => src,
                _ => return None,
            };
            if d.in_flight != 0 {
                return None;
            }
            if let Some(pos) = path.iter().position(|&r| r == cur) {
                let mut cycle = path[pos..].to_vec();
                cycle.sort_unstable();
                // Only report if the caller itself is trapped on the cycle.
                if cycle.contains(&me) {
                    return Some(cycle);
                }
                return None;
            }
            path.push(cur);
            if src == cur {
                // Self-wait without a buffered match: a one-rank cycle.
                return Some(vec![cur]);
            }
            cur = src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_cycle_is_detected() {
        let reg = WaitRegistry::new(2);
        reg.begin_wait(0, WaitKind::Recv { src: 1, tag: 5 }, 0);
        reg.begin_wait(1, WaitKind::Recv { src: 0, tag: 6 }, 1);
        let report = reg.detect(0).expect("cycle should be found");
        assert_eq!(report.stuck, vec![0, 1]);
        let text = report.render();
        assert!(text.contains("rank 0"));
        assert!(text.contains("tag=5"));
        assert!(text.contains("tag=6"));
    }

    #[test]
    fn in_flight_message_suppresses_detection() {
        let reg = WaitRegistry::new(2);
        reg.begin_wait(0, WaitKind::Recv { src: 1, tag: 5 }, 0);
        reg.begin_wait(1, WaitKind::Recv { src: 0, tag: 6 }, 0);
        reg.msg_sent(0); // something is still en route to rank 0
        assert!(reg.detect(0).is_none());
        reg.msg_delivered(0);
        assert!(reg.detect(0).is_some());
    }

    #[test]
    fn running_rank_prevents_global_rule() {
        let reg = WaitRegistry::new(3);
        reg.begin_wait(0, WaitKind::Recv { src: 2, tag: 1 }, 0);
        reg.begin_wait(1, WaitKind::Barrier, 0);
        // Rank 2 is running: no cycle through it, no global starvation.
        assert!(reg.detect(0).is_none());
    }

    #[test]
    fn global_rule_fires_with_done_and_barrier_ranks() {
        let reg = WaitRegistry::new(3);
        reg.begin_wait(0, WaitKind::Recv { src: 2, tag: 1 }, 0);
        reg.begin_wait(1, WaitKind::Barrier, 0);
        reg.mark_done(2);
        let report = reg.detect(0).expect("global starvation");
        assert_eq!(report.stuck, vec![0]);
        assert!(report.render().contains("finished"));
    }

    #[test]
    fn three_rank_cycle_is_detected() {
        let reg = WaitRegistry::new(4);
        reg.begin_wait(0, WaitKind::Recv { src: 1, tag: 0 }, 0);
        reg.begin_wait(1, WaitKind::Recv { src: 2, tag: 0 }, 0);
        reg.begin_wait(2, WaitKind::Recv { src: 0, tag: 0 }, 0);
        // Rank 3 keeps running: the cycle rule must still fire.
        let report = reg.detect(1).expect("3-cycle");
        assert_eq!(report.stuck, vec![0, 1, 2]);
    }

    #[test]
    fn single_source_wait_any_participates_in_cycle_rule() {
        // rank 0 is in wait_any over several chunks, all from rank 1;
        // rank 1 symmetrically waits on rank 0 — a 2-cycle.
        let reg = WaitRegistry::new(2);
        reg.begin_wait(
            0,
            WaitKind::RecvAny {
                src: 1,
                outstanding: 4,
                multi_source: false,
            },
            0,
        );
        reg.begin_wait(1, WaitKind::Recv { src: 0, tag: 3 }, 0);
        let report = reg.detect(0).expect("cycle through wait_any");
        assert_eq!(report.stuck, vec![0, 1]);
        assert!(report.render().contains("wait_any(src=1, 4 outstanding)"));
    }

    #[test]
    fn multi_source_wait_any_has_no_cycle_edge_but_global_rule_applies() {
        // rank 0 waits on {1, 2}; following either edge alone would be
        // unsound, so the cycle rule must not fire even though rank 1
        // waits back on rank 0. Once rank 2 finishes, the global rule
        // proves starvation.
        let reg = WaitRegistry::new(3);
        reg.begin_wait(
            0,
            WaitKind::RecvAny {
                src: 1,
                outstanding: 2,
                multi_source: true,
            },
            0,
        );
        reg.begin_wait(1, WaitKind::Recv { src: 0, tag: 9 }, 0);
        assert!(
            reg.find_cycle(0, &reg.snapshot()).is_none(),
            "multi-source wait_any must not contribute a wait-for edge"
        );
        // Rank 1's walk reaches rank 0 and must also stop there.
        assert!(reg.find_cycle(1, &reg.snapshot()).is_none());
        // Rank 2 still running: nothing is certain yet.
        assert!(reg.detect(0).is_none());
        reg.mark_done(2);
        let report = reg.detect(0).expect("global starvation");
        assert_eq!(report.stuck, vec![0, 1]);
        assert!(report.render().contains("multiple sources"));
    }

    #[test]
    fn in_flight_message_suppresses_wait_any_detection() {
        let reg = WaitRegistry::new(2);
        reg.begin_wait(
            0,
            WaitKind::RecvAny {
                src: 1,
                outstanding: 2,
                multi_source: false,
            },
            0,
        );
        reg.mark_done(1);
        reg.msg_sent(0); // a chunk is still en route
        assert!(reg.detect(0).is_none());
        reg.msg_delivered(0);
        assert!(reg.detect(0).is_some());
    }

    #[test]
    fn chain_into_foreign_cycle_is_not_reported_for_outsider() {
        // 0 waits on 1, but the cycle is 1 <-> 2; rank 0 is NOT on a cycle
        // (though it is transitively stuck, the cycle rule only claims
        // certainty for cycle members; the global rule handles the rest).
        let reg = WaitRegistry::new(3);
        reg.begin_wait(0, WaitKind::Recv { src: 1, tag: 0 }, 0);
        reg.begin_wait(1, WaitKind::Recv { src: 2, tag: 0 }, 0);
        reg.begin_wait(2, WaitKind::Recv { src: 1, tag: 0 }, 0);
        assert!(reg.find_cycle(0, &reg.snapshot()).is_none());
        // But the global rule still catches it: everyone is blocked.
        let report = reg.detect(0).expect("global rule");
        assert_eq!(report.stuck, vec![0, 1, 2]);
    }
}
