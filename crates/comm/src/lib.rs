//! A thread-rank message-passing substrate ("virtual MPI").
//!
//! The paper's simulations run QuEST over MPI with one process per ARCHER2
//! node. This crate reproduces the communication layer those simulations
//! depend on, at laptop scale: a fixed set of *ranks* run as OS threads and
//! exchange byte messages through per-rank mailboxes.
//!
//! The API mirrors the slice of MPI that QuEST actually uses:
//!
//! * blocking point-to-point: [`Communicator::send`], [`Communicator::recv`],
//!   and the combined [`Communicator::sendrecv`] (QuEST's distributed gates
//!   are "a sequence of blocking `MPI_Sendrecv`", §2.1);
//! * non-blocking point-to-point: [`Communicator::isend`] /
//!   [`Communicator::irecv`] returning [`nonblocking::Request`]s, with
//!   [`nonblocking::wait_all`] — the paper's modification that "allows
//!   multiple messages to be sent and received in parallel" (§3.2) — and
//!   [`Communicator::wait_any`], completing requests in arrival order so
//!   [`chunking::StreamedExchange`] can overlap per-chunk computation with
//!   the remaining communication;
//! * message chunking: MPI implementations cap individual messages (2 GB in
//!   the paper, hence 32 messages per 64 GB exchange); [`chunking`]
//!   reproduces the cap and both exchange strategies over it;
//! * collectives: barrier, broadcast, all-reduce, gather ([`collective`]);
//! * traffic accounting: every communicator records bytes and message
//!   counts ([`stats`]), which the performance model and tests consume.
//!
//! # Example
//!
//! ```
//! use qse_comm::Universe;
//!
//! // Two ranks exchange their rank ids.
//! let results = Universe::new(2).run(|comm| {
//!     let peer = 1 - comm.rank();
//!     let payload = [comm.rank() as u8];
//!     let got = comm.sendrecv(peer, 7, &payload, peer, 7).unwrap();
//!     got[0] as usize
//! });
//! assert_eq!(results, vec![1, 0]);
//! ```

pub mod chunking;
pub mod collective;
pub mod communicator;
pub mod deadlock;
pub mod error;
pub mod faults;
pub mod message;
pub mod nonblocking;
pub mod stats;
pub mod topology;
pub mod universe;

pub use communicator::Communicator;
pub use error::{CommError, FaultOp};
pub use faults::{FaultConfig, FaultPlan};
pub use stats::TrafficStats;
pub use universe::Universe;

/// Result alias for communication operations.
pub type Result<T> = std::result::Result<T, CommError>;
