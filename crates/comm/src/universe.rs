//! Universe construction: spins up the ranks and hands out communicators.

use crate::communicator::Communicator;
use crate::deadlock::WaitRegistry;
use crate::faults::{FaultConfig, FaultPlan};
use crate::message::Envelope;
use crate::stats::{SharedCounters, TrafficCounters};
use crate::Result;
use qse_util::mailbox::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

/// Default receive deadline; generous enough for debug-build statevector
/// exchanges, short enough that a deadlocked test fails rather than hangs.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Receive deadline used by [`Universe::new`]: `QSE_RECV_TIMEOUT_SECS`
/// from the environment if set to a positive integer, else
/// [`DEFAULT_RECV_TIMEOUT`]. Read once per process, so CI can run
/// intentional-deadlock suites with a ~2 s ceiling instead of 60 s.
pub fn default_recv_timeout() -> Duration {
    static T: OnceLock<Duration> = OnceLock::new();
    *T.get_or_init(|| recv_timeout_from_env(std::env::var("QSE_RECV_TIMEOUT_SECS").ok().as_deref()))
}

/// Pure parsing half of [`default_recv_timeout`], split out for tests
/// (the env var itself is latched once per process).
pub fn recv_timeout_from_env(value: Option<&str>) -> Duration {
    value
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&secs| secs >= 1)
        .map(Duration::from_secs)
        .unwrap_or(DEFAULT_RECV_TIMEOUT)
}

/// A fixed-size set of ranks with fully connected mailboxes.
///
/// The universe is the analogue of `MPI_COMM_WORLD` after `MPI_Init`: it
/// owns one mailbox per rank and a shared barrier. Consume it either with
/// [`Universe::run`] (spawn one thread per rank, run a closure, collect
/// results in rank order) or [`Universe::into_communicators`] for manual
/// thread management.
pub struct Universe {
    senders: Arc<Vec<Sender<Envelope>>>,
    receivers: Vec<Receiver<Envelope>>,
    barrier: Arc<Barrier>,
    counters: Arc<Vec<SharedCounters>>,
    recv_timeout: Duration,
    registry: Arc<WaitRegistry>,
    faults: Option<FaultPlan>,
}

impl Universe {
    /// Creates a universe of `size` ranks (size ≥ 1) with the
    /// [`default_recv_timeout`] receive deadline.
    pub fn new(size: usize) -> Self {
        Self::with_timeout(size, default_recv_timeout())
    }

    /// Creates a universe whose communicators run under the seeded,
    /// deterministic fault plan described by `config` — every rank's
    /// fault stream replays exactly for a fixed seed. Fails on an
    /// invalid configuration (probability outside `[0, 1]`).
    pub fn with_faults(size: usize, config: FaultConfig) -> Result<Self> {
        Self::with_timeout_and_faults(size, default_recv_timeout(), config)
    }

    /// [`Universe::with_faults`] with a custom receive deadline, for
    /// tests pinning the modelled delay-versus-timeout boundary.
    pub fn with_timeout_and_faults(
        size: usize,
        recv_timeout: Duration,
        config: FaultConfig,
    ) -> Result<Self> {
        let plan = FaultPlan::new(config)?;
        let mut universe = Self::with_timeout(size, recv_timeout);
        universe.faults = Some(plan);
        Ok(universe)
    }

    /// Creates a universe with a custom receive deadline (mainly for tests
    /// that intentionally deadlock).
    pub fn with_timeout(size: usize, recv_timeout: Duration) -> Self {
        assert!(size >= 1, "universe needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let counters: Vec<SharedCounters> = (0..size)
            .map(|_| Arc::new(TrafficCounters::default()))
            .collect();
        Universe {
            senders: Arc::new(senders),
            receivers,
            barrier: Arc::new(Barrier::new(size)),
            counters: Arc::new(counters),
            recv_timeout,
            registry: Arc::new(WaitRegistry::new(size)),
            faults: None,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Splits the universe into one [`Communicator`] per rank, in rank
    /// order. Each communicator must move to its own thread.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let size = self.size();
        self.receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                Communicator::new(
                    rank,
                    size,
                    Arc::clone(&self.senders),
                    rx,
                    Arc::clone(&self.barrier),
                    Arc::clone(&self.counters[rank]),
                    Arc::clone(&self.counters),
                    self.recv_timeout,
                    Arc::clone(&self.registry),
                    self.faults.as_ref().map(|plan| plan.lane(rank)),
                )
            })
            .collect()
    }

    /// Runs `f` on every rank in its own thread and returns the results in
    /// rank order. A panic in any rank is re-raised on the caller with its
    /// original payload, so a failed assertion inside a rank fails the
    /// enclosing test with its own message.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        let comms = self.into_communicators();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| scope.spawn(move || f(&mut comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::new(1).run(|c| {
            c.barrier();
            c.rank() + c.size()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = Universe::new(8).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::new(0);
    }

    #[test]
    fn into_communicators_yields_rank_order() {
        let comms = Universe::new(3).into_communicators();
        let ranks: Vec<usize> = comms.iter().map(|c| c.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
        assert!(comms.iter().all(|c| c.size() == 3));
    }

    #[test]
    fn ring_pass_around() {
        // Each rank sends its id to the next; receives from the previous.
        let n = 6;
        let out = Universe::new(n).run(|c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, &[c.rank() as u8]).unwrap();
            let got = c.recv(prev, 0).unwrap();
            got[0] as usize
        });
        for (rank, &got) in out.iter().enumerate() {
            assert_eq!(got, (rank + n - 1) % n);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        Universe::new(4).run(|c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all four increments.
            assert_eq!(phase1.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_fails_run() {
        // The original payload must survive the join (resume_unwind).
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn recv_timeout_env_parsing() {
        assert_eq!(recv_timeout_from_env(None), DEFAULT_RECV_TIMEOUT);
        assert_eq!(recv_timeout_from_env(Some("2")), Duration::from_secs(2));
        assert_eq!(recv_timeout_from_env(Some(" 5 ")), Duration::from_secs(5));
        assert_eq!(recv_timeout_from_env(Some("0")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(recv_timeout_from_env(Some("junk")), DEFAULT_RECV_TIMEOUT);
        assert!(default_recv_timeout() >= Duration::from_secs(1));
    }
}
