//! Universe construction: spins up the ranks and hands out communicators.

use crate::communicator::Communicator;
use crate::message::Envelope;
use crate::stats::{SharedCounters, TrafficCounters};
use qse_util::mailbox::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Default receive deadline; generous enough for debug-build statevector
/// exchanges, short enough that a deadlocked test fails rather than hangs.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A fixed-size set of ranks with fully connected mailboxes.
///
/// The universe is the analogue of `MPI_COMM_WORLD` after `MPI_Init`: it
/// owns one mailbox per rank and a shared barrier. Consume it either with
/// [`Universe::run`] (spawn one thread per rank, run a closure, collect
/// results in rank order) or [`Universe::into_communicators`] for manual
/// thread management.
pub struct Universe {
    senders: Arc<Vec<Sender<Envelope>>>,
    receivers: Vec<Receiver<Envelope>>,
    barrier: Arc<Barrier>,
    counters: Arc<Vec<SharedCounters>>,
    recv_timeout: Duration,
}

impl Universe {
    /// Creates a universe of `size` ranks (size ≥ 1).
    pub fn new(size: usize) -> Self {
        Self::with_timeout(size, DEFAULT_RECV_TIMEOUT)
    }

    /// Creates a universe with a custom receive deadline (mainly for tests
    /// that intentionally deadlock).
    pub fn with_timeout(size: usize, recv_timeout: Duration) -> Self {
        assert!(size >= 1, "universe needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let counters: Vec<SharedCounters> = (0..size)
            .map(|_| Arc::new(TrafficCounters::default()))
            .collect();
        Universe {
            senders: Arc::new(senders),
            receivers,
            barrier: Arc::new(Barrier::new(size)),
            counters: Arc::new(counters),
            recv_timeout,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Splits the universe into one [`Communicator`] per rank, in rank
    /// order. Each communicator must move to its own thread.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let size = self.size();
        self.receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                Communicator::new(
                    rank,
                    size,
                    Arc::clone(&self.senders),
                    rx,
                    Arc::clone(&self.barrier),
                    Arc::clone(&self.counters[rank]),
                    Arc::clone(&self.counters),
                    self.recv_timeout,
                )
            })
            .collect()
    }

    /// Runs `f` on every rank in its own thread and returns the results in
    /// rank order. Panics in any rank propagate (the run is aborted), so a
    /// failed assertion inside a rank fails the enclosing test.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Communicator) -> R + Sync,
    {
        let comms = self.into_communicators();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| scope.spawn(move || f(&mut comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::new(1).run(|c| {
            c.barrier();
            c.rank() + c.size()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = Universe::new(8).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::new(0);
    }

    #[test]
    fn into_communicators_yields_rank_order() {
        let comms = Universe::new(3).into_communicators();
        let ranks: Vec<usize> = comms.iter().map(|c| c.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
        assert!(comms.iter().all(|c| c.size() == 3));
    }

    #[test]
    fn ring_pass_around() {
        // Each rank sends its id to the next; receives from the previous.
        let n = 6;
        let out = Universe::new(n).run(|c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, &[c.rank() as u8]).unwrap();
            let got = c.recv(prev, 0).unwrap();
            got[0] as usize
        });
        for (rank, &got) in out.iter().enumerate() {
            assert_eq!(got, (rank + n - 1) % n);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        Universe::new(4).run(|c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all four increments.
            assert_eq!(phase1.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_fails_run() {
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
