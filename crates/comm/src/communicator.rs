//! The per-rank communication endpoint.

use crate::deadlock::{WaitKind, WaitRegistry};
use crate::error::{CommError, FaultOp};
use crate::faults::{self, FaultLane};
use crate::message::{checksum64, Envelope};
use crate::nonblocking::Request;
use crate::stats::{SharedCounters, TrafficStats};
use crate::Result;
use qse_util::Bytes;
use qse_util::mailbox::{deadline_after, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Poll slice for blocked receives: each expiry re-runs the wait-for-graph
/// deadlock detector, so a protocol bug is diagnosed within a few slices
/// instead of after the full receive deadline.
const DEADLOCK_POLL: Duration = Duration::from_millis(25);

/// One rank's endpoint into the universe.
///
/// Owned by exactly one thread. All sends are *eager*: the payload is copied
/// into the peer's mailbox immediately and the call returns (matching an MPI
/// implementation's eager protocol for buffered messages). Receives match on
/// `(source, tag)` and buffer out-of-order arrivals, like MPI's unexpected-
/// message queue.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    barrier: Arc<Barrier>,
    counters: SharedCounters,
    all_counters: Arc<Vec<SharedCounters>>,
    recv_timeout: Duration,
    registry: Arc<WaitRegistry>,
    /// Deterministic fault stream for this rank, if the universe was
    /// constructed with a [`crate::faults::FaultPlan`]. `None` is the
    /// zero-overhead path: no checksums, no delays, no extra branches
    /// beyond this option check.
    lane: Option<FaultLane>,
}

impl Communicator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Arc<Vec<Sender<Envelope>>>,
        rx: Receiver<Envelope>,
        barrier: Arc<Barrier>,
        counters: SharedCounters,
        all_counters: Arc<Vec<SharedCounters>>,
        recv_timeout: Duration,
        registry: Arc<WaitRegistry>,
        lane: Option<FaultLane>,
    ) -> Self {
        Communicator {
            rank,
            size,
            senders,
            rx,
            pending: VecDeque::new(),
            barrier,
            counters,
            all_counters,
            recv_timeout,
            registry,
            lane,
        }
    }

    /// True when this rank runs under an injected fault plan.
    pub fn faults_active(&self) -> bool {
        self.lane.is_some()
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Deadline applied to blocking receives before reporting a deadlock.
    pub fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank >= self.size {
            Err(CommError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// Sends `payload` to `dst` with `tag`, copying it once. Returns as soon
    /// as the message is enqueued in the destination mailbox.
    pub fn send(&mut self, dst: usize, tag: u64, payload: &[u8]) -> Result<()> {
        self.send_bytes(dst, tag, Bytes::copy_from_slice(payload))
    }

    /// Sends an already-owned payload without copying.
    ///
    /// Under an injected fault plan the send may be transiently failed
    /// (retried internally with deterministic backoff, surfacing
    /// [`CommError::Transient`] past the retry budget), delayed, or
    /// preceded by corrupted copies that the receiver's checksum
    /// validation will discard.
    pub fn send_bytes(&mut self, dst: usize, tag: u64, payload: Bytes) -> Result<()> {
        self.check_rank(dst)?;
        if self.lane.is_some() {
            return self.send_bytes_faulty(dst, tag, payload);
        }
        self.enqueue(dst, Envelope::from_bytes(self.rank, tag, payload))
    }

    /// Counts the message in flight, pushes it into `dst`'s mailbox, and
    /// records the traffic. The in-flight count precedes the enqueue: the
    /// deadlock detector must never observe a queued message with a zero
    /// counter.
    fn enqueue(&self, dst: usize, env: Envelope) -> Result<()> {
        let len = env.len();
        self.registry.msg_sent(dst);
        if self.senders[dst].send(env).is_err() {
            self.registry.msg_unsent(dst);
            return Err(CommError::Disconnected { peer: dst });
        }
        self.counters.record_send(len);
        Ok(())
    }

    /// The fault-lane send path: draws this send's fault decisions in
    /// program order, models transient failures as retried attempts,
    /// stamps every copy with a checksum and the drawn delivery delay,
    /// and delivers corrupted copies ahead of the pristine payload (the
    /// eager-transport collapse of detect → reject → retransmit).
    fn send_bytes_faulty(&mut self, dst: usize, tag: u64, payload: Bytes) -> Result<()> {
        let (plan, budget) = match &mut self.lane {
            Some(lane) => (lane.plan_send(), lane.retry_budget()),
            None => return self.enqueue(dst, Envelope::from_bytes(self.rank, tag, payload)),
        };
        for _ in 0..plan.injected_events {
            self.counters.record_fault_injected();
        }
        if plan.transient_attempts > 0 {
            self.counters.record_retries(plan.transient_attempts as u64);
            if plan.transient_attempts > budget {
                return Err(CommError::Transient {
                    op: FaultOp::Send,
                    peer: dst,
                    attempts: plan.transient_attempts,
                });
            }
            for attempt in 0..plan.transient_attempts {
                faults::backoff(attempt);
            }
        }
        let checksum = Some(checksum64(&payload));
        for _ in 0..plan.corrupt_copies {
            let bad = match &mut self.lane {
                Some(lane) => lane.corrupt_payload(&payload),
                None => payload.clone(),
            };
            let mut env = Envelope::from_bytes(self.rank, tag, bad);
            env.checksum = checksum;
            env.delay_slices = plan.delay_slices;
            self.enqueue(dst, env)?;
        }
        if plan.drop_pristine {
            // Permanent corruption: the good copy never makes it out.
            return Ok(());
        }
        let mut env = Envelope::from_bytes(self.rank, tag, payload);
        env.checksum = checksum;
        env.delay_slices = plan.delay_slices;
        self.enqueue(dst, env)
    }

    /// Blocking receive matching `(src, tag)` exactly.
    ///
    /// Out-of-order arrivals for other `(src, tag)` pairs are buffered and
    /// delivered to their own matching `recv` calls later. While blocked,
    /// the rank is registered in the universe's wait-for graph and wakes
    /// every [`DEADLOCK_POLL`] to run the deadlock detector: a protocol
    /// bug (mismatched tags, one-sided exchange, wait cycle) returns
    /// [`CommError::Deadlock`] with a per-rank diagnostic in well under a
    /// second instead of burning the whole receive deadline.
    pub fn recv(&mut self, src: usize, tag: u64) -> Result<Bytes> {
        self.check_rank(src)?;
        // Fault decisions are drawn before any arrival-dependent branch
        // so the per-rank stream stays in program order.
        self.fault_recv_entry(src)?;
        // First consult the unexpected-message queue.
        if let Some(env) = self.take_pending(src, tag) {
            self.counters.record_recv(env.len());
            return Ok(env.payload);
        }
        self.registry
            .begin_wait(self.rank, WaitKind::Recv { src, tag }, self.pending.len());
        let result = self.blocking_wait(src, tag, |env| {
            (env.src == src && env.tag == tag).then_some(0)
        });
        self.registry.end_wait(self.rank);
        result.map(|(_, payload)| payload)
    }

    /// Applies this receive entry's injected transient failures: retried
    /// with deterministic backoff inside the budget, surfaced as
    /// [`CommError::Transient`] beyond it.
    fn fault_recv_entry(&mut self, peer: usize) -> Result<()> {
        let Some(lane) = &mut self.lane else {
            return Ok(());
        };
        let forced = lane.plan_recv();
        if forced == 0 {
            return Ok(());
        }
        let budget = lane.retry_budget();
        lane.tick(forced as u64);
        self.counters.record_fault_injected();
        self.counters.record_retries(forced as u64);
        if forced > budget {
            return Err(CommError::Transient {
                op: FaultOp::Recv,
                peer,
                attempts: forced,
            });
        }
        for attempt in 0..forced {
            faults::backoff(attempt);
        }
        Ok(())
    }

    /// Removes and returns the first buffered envelope matching
    /// `(src, tag)`, keeping the registry's queue-depth diagnostic fresh.
    fn take_pending(&mut self, src: usize, tag: u64) -> Option<Envelope> {
        let pos = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)?;
        let env = self.pending.remove(pos)?;
        self.registry.set_pending_depth(self.rank, self.pending.len());
        Some(env)
    }

    /// The shared blocked phase of [`Self::recv`] and [`Self::wait_any`]:
    /// poll-sliced mailbox waits with deadlock detection at each slice
    /// expiry. `matcher` returns the completed request index for an
    /// envelope this wait can consume; non-matching arrivals are buffered.
    ///
    /// Without a fault lane the deadline is wall-clock, exactly as before.
    /// With one, the deadline is *modelled*: it counts empty poll slices,
    /// so an injected delivery delay of D slices meets a timeout of T
    /// slices deterministically — due releases are processed before the
    /// deadline check, so a message arriving at the boundary is delivered
    /// (`D <= T`) and only `D > T` times out — instead of racing the
    /// host's scheduler. Held (delayed) envelopes stay counted as
    /// in-flight until released, which keeps the deadlock detector sound:
    /// a rank whose wake-up message is merely delayed is never reported.
    fn blocking_wait<M>(&mut self, err_src: usize, err_tag: u64, matcher: M) -> Result<(usize, Bytes)>
    where
        M: Fn(&Envelope) -> Option<usize>,
    {
        let deadline = deadline_after(Instant::now(), self.recv_timeout);
        let slice_budget = self
            .lane
            .as_ref()
            .map(|_| Self::timeout_slices(self.recv_timeout));
        let mut slices_used: u64 = 0;
        loop {
            if let Some(out) = self.process_due_held(&matcher)? {
                return Ok(out);
            }
            let wait = match slice_budget {
                Some(budget) => {
                    if slices_used >= budget {
                        return Err(CommError::RecvTimeout {
                            src: err_src,
                            tag: err_tag,
                            waited: self.recv_timeout,
                        });
                    }
                    DEADLOCK_POLL
                }
                None => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(CommError::RecvTimeout {
                            src: err_src,
                            tag: err_tag,
                            waited: self.recv_timeout,
                        });
                    }
                    remaining.min(DEADLOCK_POLL)
                }
            };
            match self.rx.recv_timeout(wait) {
                Ok(env) => {
                    if let Some(lane) = &mut self.lane {
                        // Every poll event advances the modelled clock, so
                        // held releases keep pace even under arrival storms.
                        lane.tick(1);
                        if env.delay_slices > 0 {
                            // Held without msg_delivered: the in-flight
                            // count keeps suppressing deadlock detection.
                            lane.hold(env);
                            continue;
                        }
                    }
                    self.registry.msg_delivered(self.rank);
                    if let Some(out) = self.admit(env, &matcher)? {
                        return Ok(out);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(lane) = &mut self.lane {
                        lane.tick(1);
                    }
                    slices_used += 1;
                    if let Some(report) = self.registry.detect(self.rank) {
                        return Err(CommError::Deadlock {
                            rank: self.rank,
                            stuck: report.stuck.clone(),
                            detail: report.render(),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { peer: err_src })
                }
            }
        }
    }

    /// Number of deadlock-poll slices the receive deadline spans, for the
    /// modelled timeout used when a fault lane is active.
    fn timeout_slices(timeout: Duration) -> u64 {
        let slice_ms = DEADLOCK_POLL.as_millis().max(1) as u64;
        (timeout.as_millis() as u64).div_ceil(slice_ms).max(1)
    }

    /// Releases and processes every due held (delayed) envelope. Returns
    /// a completion if one of them satisfies the current wait.
    fn process_due_held<M>(&mut self, matcher: &M) -> Result<Option<(usize, Bytes)>>
    where
        M: Fn(&Envelope) -> Option<usize>,
    {
        loop {
            let Some(env) = self.lane.as_mut().and_then(|lane| lane.pop_due()) else {
                return Ok(None);
            };
            // Only now does the delayed message count as delivered.
            self.registry.msg_delivered(self.rank);
            if let Some(out) = self.admit(env, matcher)? {
                return Ok(Some(out));
            }
        }
    }

    /// Validates and routes one dequeued (or released) envelope: corrupt
    /// payloads are discarded — giving up with [`CommError::Corrupt`]
    /// once a link's consecutive discards exhaust the retry budget —
    /// matching envelopes complete the wait, and everything else is
    /// buffered for a later receive.
    fn admit<M>(&mut self, env: Envelope, matcher: &M) -> Result<Option<(usize, Bytes)>>
    where
        M: Fn(&Envelope) -> Option<usize>,
    {
        if !env.checksum_ok() {
            self.counters.record_corruption_detected();
            if let Some(lane) = &mut self.lane {
                let discarded = lane.note_corrupt_discard(env.src, env.tag);
                if discarded > lane.retry_budget() {
                    return Err(CommError::Corrupt {
                        src: env.src,
                        tag: env.tag,
                        discarded,
                    });
                }
            }
            return Ok(None);
        }
        if env.checksum.is_some() {
            if let Some(lane) = &mut self.lane {
                lane.note_valid_delivery(env.src, env.tag);
            }
        }
        if let Some(idx) = matcher(&env) {
            self.counters.record_recv(env.len());
            return Ok(Some((idx, env.payload)));
        }
        self.pending.push_back(env);
        self.registry.set_pending_depth(self.rank, self.pending.len());
        Ok(None)
    }

    /// Combined send + receive, the workhorse of QuEST's distributed gates
    /// (`MPI_Sendrecv`). The send is eager so this cannot deadlock even when
    /// both partners call it simultaneously.
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        payload: &[u8],
        src: usize,
        recv_tag: u64,
    ) -> Result<Bytes> {
        self.send(dst, send_tag, payload)?;
        self.recv(src, recv_tag)
    }

    /// Non-blocking send. With an eager transport the operation completes
    /// immediately; the returned request exists so call sites read like
    /// their MPI counterparts and can be passed to [`Self::wait_all`].
    pub fn isend(&mut self, dst: usize, tag: u64, payload: &[u8]) -> Result<Request> {
        self.send(dst, tag, payload)?;
        Ok(Request::SendDone)
    }

    /// Non-blocking receive: registers interest in `(src, tag)` and returns
    /// a request to be completed by [`Self::wait`] / [`Self::wait_all`].
    pub fn irecv(&self, src: usize, tag: u64) -> Result<Request> {
        self.check_rank(src)?;
        Ok(Request::Recv { src, tag })
    }

    /// Completes one request, returning its payload (empty for sends).
    pub fn wait(&mut self, request: Request) -> Result<Bytes> {
        match request {
            Request::SendDone => Ok(Bytes::new()),
            Request::Recv { src, tag } => self.recv(src, tag),
        }
    }

    /// Completes a batch of requests in order, returning their payloads.
    ///
    /// Because arrivals are buffered by `(src, tag)`, completion order does
    /// not depend on network arrival order — exactly the property the
    /// paper's non-blocking rewrite of QuEST exploits.
    pub fn wait_all(&mut self, requests: Vec<Request>) -> Result<Vec<Bytes>> {
        requests.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Completes *whichever* request in `requests` finishes first,
    /// returning its index and payload — the `MPI_Waitany` analogue that
    /// lets a streamed exchange process chunks in completion order.
    ///
    /// Send requests are already complete on an eager transport and are
    /// returned immediately (with an empty payload). Among receives, a
    /// buffered out-of-order arrival wins in its arrival order; otherwise
    /// the call blocks like [`Self::recv`], registered in the wait-for
    /// graph as a `wait_any` over the set so the deadlock detector can
    /// diagnose a stuck streamed exchange in ~50 ms. Non-matching
    /// arrivals are buffered for later receives exactly as in `recv`.
    ///
    /// Returns `CommError::InvalidConfig` for an empty request set.
    pub fn wait_any(&mut self, requests: &[Request]) -> Result<(usize, Bytes)> {
        if requests.is_empty() {
            return Err(CommError::InvalidConfig("wait_any needs at least one request"));
        }
        if let Some(i) = requests.iter().position(|r| r.is_send()) {
            return Ok((i, Bytes::new()));
        }
        // Drawn before the arrival-dependent pending scan so the fault
        // stream stays in program order (the request set is deterministic;
        // what has already arrived is not).
        let entry_peer = match requests[0] {
            Request::Recv { src, .. } => src,
            Request::SendDone => self.rank,
        };
        self.fault_recv_entry(entry_peer)?;
        // Oldest buffered arrival matching any request wins, mirroring
        // completion order on a real network.
        if let Some((pos, idx)) = self.pending.iter().enumerate().find_map(|(pos, env)| {
            Self::match_request(requests, env).map(|idx| (pos, idx))
        }) {
            let env = self.pending.remove(pos).ok_or(CommError::InvalidConfig(
                "pending queue changed underfoot", // unreachable: single-threaded access
            ))?;
            self.registry.set_pending_depth(self.rank, self.pending.len());
            self.counters.record_recv(env.len());
            return Ok((idx, env.payload));
        }
        let (src0, multi_source) = match requests[0] {
            Request::Recv { src, .. } => (
                src,
                requests
                    .iter()
                    .any(|r| !matches!(r, Request::Recv { src: s, .. } if *s == src)),
            ),
            Request::SendDone => (0, false), // unreachable: sends returned above
        };
        self.registry.begin_wait(
            self.rank,
            WaitKind::RecvAny {
                src: src0,
                outstanding: requests.len(),
                multi_source,
            },
            self.pending.len(),
        );
        let (err_src, err_tag) = match requests[0] {
            Request::Recv { src, tag } => (src, tag),
            Request::SendDone => (self.rank, 0),
        };
        let result = self.blocking_wait(err_src, err_tag, |env| {
            Self::match_request(requests, env)
        });
        self.registry.end_wait(self.rank);
        result
    }

    /// Index of the first request in `requests` matching `env`, if any.
    fn match_request(requests: &[Request], env: &Envelope) -> Option<usize> {
        requests
            .iter()
            .position(|r| matches!(r, Request::Recv { src, tag } if *src == env.src && *tag == env.tag))
    }

    /// Synchronises all ranks. The wait is registered in the wait-for
    /// graph so other ranks' deadlock diagnostics can name barrier-blocked
    /// peers, but a barrier itself cannot be interrupted.
    pub fn barrier(&self) {
        self.registry
            .begin_wait(self.rank, WaitKind::Barrier, self.pending.len());
        self.barrier.wait();
        self.registry.end_wait(self.rank);
    }

    /// Records `chunks` completed chunks of one streamed exchange in this
    /// rank's traffic counters.
    pub fn record_exchange_chunks(&self, chunks: u64) {
        self.counters.record_exchange_chunks(chunks);
    }

    /// Records `bytes` of amplitude payload this rank sent as part of a
    /// statevector exchange (pairwise chunked exchange or batched
    /// permutation) — the subset of `bytes_sent` that transpiler
    /// ablations compare.
    pub fn record_exchange_bytes(&self, bytes: u64) {
        self.counters.record_exchange_bytes(bytes);
    }

    /// Accounts `bytes` of exchange scratch acquired (a ring slot holding
    /// an in-flight chunk), updating the peak-occupancy high-water mark.
    pub fn scratch_acquire(&self, bytes: u64) {
        self.counters.scratch_acquire(bytes);
    }

    /// Releases `bytes` of exchange scratch previously accounted via
    /// [`Self::scratch_acquire`].
    pub fn scratch_release(&self, bytes: u64) {
        self.counters.scratch_release(bytes);
    }

    /// This rank's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.counters.snapshot()
    }

    /// Snapshot of every rank's counters (for aggregate reporting).
    pub fn all_stats(&self) -> Vec<TrafficStats> {
        self.all_counters.iter().map(|c| c.snapshot()).collect()
    }

    /// Resets this rank's counters (e.g. between benchmark phases).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        // A dropped rank can never send again; recording that lets the
        // global-starvation rule diagnose one-sided exchanges where the
        // peer has already returned.
        self.registry.mark_done(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;
    use crate::CommError;

    #[test]
    fn rank_and_size_are_exposed() {
        let sizes = Universe::new(4).run(|c| (c.rank(), c.size()));
        assert_eq!(sizes, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn invalid_rank_rejected() {
        Universe::new(2).run(|c| {
            let err = c.send(5, 0, &[]).unwrap_err();
            assert_eq!(err, CommError::InvalidRank { rank: 5, size: 2 });
            let err = c.recv(9, 0).unwrap_err();
            assert_eq!(err, CommError::InvalidRank { rank: 9, size: 2 });
        });
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 10, b"first").unwrap();
                c.send(1, 20, b"second").unwrap();
            } else {
                // Receive in the opposite order to the sends.
                let b = c.recv(0, 20).unwrap();
                let a = c.recv(0, 10).unwrap();
                assert_eq!(&a[..], b"first");
                assert_eq!(&b[..], b"second");
            }
        });
    }

    #[test]
    fn messages_from_different_sources_do_not_cross() {
        Universe::new(3).run(|c| match c.rank() {
            0 => c.send(2, 7, b"from0").unwrap(),
            1 => c.send(2, 7, b"from1").unwrap(),
            2 => {
                let from1 = c.recv(1, 7).unwrap();
                let from0 = c.recv(0, 7).unwrap();
                assert_eq!(&from0[..], b"from0");
                assert_eq!(&from1[..], b"from1");
            }
            _ => unreachable!(),
        });
    }

    #[test]
    fn simultaneous_sendrecv_does_not_deadlock() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let payload = vec![c.rank() as u8; 1024];
            let got = c.sendrecv(peer, 3, &payload, peer, 3).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn recv_timeout_reports_deadlock() {
        let out = Universe::with_timeout(2, std::time::Duration::from_millis(120)).run(|c| {
            if c.rank() == 0 {
                // Nobody ever sends tag 99.
                c.recv(1, 99).unwrap_err()
            } else {
                CommError::InvalidConfig("placeholder")
            }
        });
        // Once rank 1 returns, the wait-for graph proves nobody can send
        // tag 99 and the receive fails with a diagnosis; if the detector's
        // poll loses the race with the deadline, a plain timeout is also
        // acceptable.
        match &out[0] {
            CommError::Deadlock { rank: 0, stuck, .. } => assert_eq!(stuck, &vec![0]),
            CommError::RecvTimeout { src: 1, tag: 99, .. } => {}
            other => panic!("expected deadlock diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn nonblocking_roundtrip() {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let reqs = vec![
                c.irecv(peer, 1).unwrap(),
                c.isend(peer, 1, &[c.rank() as u8]).unwrap(),
            ];
            let payloads = c.wait_all(reqs).unwrap();
            assert_eq!(payloads[0][0] as usize, peer);
            assert!(payloads[1].is_empty());
        });
    }

    #[test]
    fn wait_any_completes_in_arrival_order() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                // Send tags out of request order so completion order and
                // posting order differ.
                for tag in [2u64, 0, 1] {
                    c.send(1, tag, &[tag as u8]).unwrap();
                }
            } else {
                let mut reqs: Vec<_> =
                    (0..3u64).map(|t| c.irecv(0, t).unwrap()).collect();
                let mut tags_seen = Vec::new();
                while !reqs.is_empty() {
                    let (i, payload) = c.wait_any(&reqs).unwrap();
                    tags_seen.push(payload[0]);
                    reqs.swap_remove(i);
                }
                tags_seen.sort_unstable();
                assert_eq!(tags_seen, vec![0, 1, 2]);
            }
        });
    }

    #[test]
    fn wait_any_prefers_completed_sends_and_rejects_empty_sets() {
        Universe::new(2).run(|c| {
            let err = c.wait_any(&[]).unwrap_err();
            assert!(matches!(err, CommError::InvalidConfig(_)));
            let peer = 1 - c.rank();
            let reqs = vec![
                c.irecv(peer, 7).unwrap(),
                c.isend(peer, 7, &[9]).unwrap(),
            ];
            // The eager send is already complete: index 1, empty payload.
            let (i, payload) = c.wait_any(&reqs).unwrap();
            assert_eq!(i, 1);
            assert!(payload.is_empty());
            // The receive then completes normally.
            let (i, payload) = c.wait_any(&reqs[..1]).unwrap();
            assert_eq!(i, 0);
            assert_eq!(&payload[..], &[9]);
        });
    }

    #[test]
    fn wait_any_buffers_non_matching_arrivals() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 50, b"other").unwrap();
                c.send(1, 40, b"match").unwrap();
            } else {
                // Only tag 40 is in the set; tag 50 must be buffered and
                // remain available to a later plain recv.
                let reqs = vec![c.irecv(0, 40).unwrap()];
                let (i, payload) = c.wait_any(&reqs).unwrap();
                assert_eq!(i, 0);
                assert_eq!(&payload[..], b"match");
                let other = c.recv(0, 50).unwrap();
                assert_eq!(&other[..], b"other");
            }
        });
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let stats = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.sendrecv(peer, 0, &[0u8; 100], peer, 0).unwrap();
            c.barrier();
            c.stats()
        });
        for s in stats {
            assert_eq!(s.messages_sent, 1);
            assert_eq!(s.bytes_sent, 100);
            assert_eq!(s.messages_received, 1);
            assert_eq!(s.bytes_received, 100);
        }
    }

    #[test]
    fn reset_stats_clears_counts() {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.sendrecv(peer, 0, &[0u8; 8], peer, 0).unwrap();
            c.reset_stats();
            assert_eq!(c.stats().messages_sent, 0);
        });
    }

    #[test]
    fn all_stats_sees_every_rank() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.sendrecv(peer, 0, &[0u8; 8], peer, 0).unwrap();
            c.barrier();
            c.all_stats().len()
        });
        assert_eq!(out, vec![2, 2]);
    }
}

#[cfg(test)]
mod fault_tests {
    use crate::faults::FaultConfig;
    use crate::universe::Universe;
    use crate::{CommError, FaultOp, TrafficStats};
    use std::time::Duration;

    /// Plenty of head-room for the modelled waits in these tests; wall
    /// time stays tiny because delays are counted in 25 ms poll slices.
    const ROOMY: Duration = Duration::from_secs(20);

    #[test]
    fn recoverable_faults_preserve_every_payload() {
        for seed in [1u64, 2, 3, 7, 1234] {
            let cfg = FaultConfig {
                p_delay: 0.4,
                max_delay_slices: 2,
                ..FaultConfig::recoverable(seed)
            };
            let stats = Universe::with_timeout_and_faults(2, ROOMY, cfg)
                .unwrap()
                .run(|c| {
                    let peer = 1 - c.rank();
                    for round in 0..20u64 {
                        let payload = vec![(round as u8) ^ (c.rank() as u8); 96];
                        let got = c.sendrecv(peer, round, &payload, peer, round).unwrap();
                        let want = vec![(round as u8) ^ (peer as u8); 96];
                        assert_eq!(&got[..], &want[..], "seed {seed} round {round}");
                    }
                    c.barrier();
                    c.stats()
                });
            let total = TrafficStats::total(&stats);
            assert!(
                total.faults_injected > 0,
                "seed {seed}: 40 sends under a recoverable plan should inject something"
            );
            assert!(total.messages_received >= 40);
        }
    }

    #[test]
    fn fault_free_runs_take_the_zero_overhead_path() {
        let stats = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            for round in 0..8u64 {
                c.sendrecv(peer, round, &[7u8; 64], peer, round).unwrap();
            }
            assert!(!c.faults_active());
            c.stats()
        });
        for s in stats {
            assert_eq!(s.faults_injected, 0);
            assert_eq!(s.retries, 0);
            assert_eq!(s.corruptions_detected, 0);
        }
    }

    #[test]
    fn delay_at_the_timeout_boundary_is_delivered() {
        // timeout 100 ms over 25 ms slices → a modelled budget of exactly
        // 4 slices; a 4-slice delay releases at the boundary and due
        // releases are processed before the deadline check, so the
        // message must be delivered — deterministically, not by racing
        // the scheduler.
        let mut cfg = FaultConfig::disabled(11);
        cfg.p_delay = 1.0;
        cfg.max_delay_slices = 4;
        let out = Universe::with_timeout_and_faults(2, Duration::from_millis(100), cfg)
            .unwrap()
            .run(|c| {
                if c.rank() == 1 {
                    c.send(0, 5, b"boundary").unwrap();
                    c.barrier();
                    Vec::new()
                } else {
                    c.barrier(); // the message is in the mailbox before recv
                    c.recv(1, 5).unwrap().to_vec()
                }
            });
        assert_eq!(out[0], b"boundary");
    }

    #[test]
    fn delay_past_the_timeout_boundary_times_out() {
        // One slice beyond the 4-slice budget → a deterministic
        // RecvTimeout naming the awaited (src, tag).
        let mut cfg = FaultConfig::disabled(11);
        cfg.p_delay = 1.0;
        cfg.max_delay_slices = 5;
        let out = Universe::with_timeout_and_faults(2, Duration::from_millis(100), cfg)
            .unwrap()
            .run(|c| {
                if c.rank() == 1 {
                    c.send(0, 5, b"late").unwrap();
                    c.barrier();
                    None
                } else {
                    c.barrier();
                    Some(c.recv(1, 5).unwrap_err())
                }
            });
        match out[0].as_ref().unwrap() {
            CommError::RecvTimeout { src: 1, tag: 5, .. } => {}
            other => panic!("expected deterministic timeout, got {other:?}"),
        }
    }

    #[test]
    fn permanent_corruption_surfaces_a_typed_error() {
        let errs = Universe::with_timeout_and_faults(2, ROOMY, FaultConfig::permanent_corruption(3))
            .unwrap()
            .run(|c| {
                let peer = 1 - c.rank();
                c.sendrecv(peer, 9, &[1u8; 128], peer, 9).unwrap_err()
            });
        for (rank, err) in errs.iter().enumerate() {
            match err {
                CommError::Corrupt { src, tag: 9, discarded } => {
                    assert_eq!(*src, 1 - rank);
                    assert!(*discarded > 2, "gave up only past the retry budget");
                }
                other => panic!("rank {rank}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhausted_send_retries_surface_transient() {
        let errs = Universe::with_timeout_and_faults(2, ROOMY, FaultConfig::exhausted_retries(3))
            .unwrap()
            .run(|c| {
                let peer = 1 - c.rank();
                c.send(peer, 0, &[0u8; 16]).unwrap_err()
            });
        for err in errs {
            match err {
                CommError::Transient {
                    op: FaultOp::Send,
                    attempts,
                    ..
                } => assert!(attempts > 2),
                other => panic!("expected Transient send failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhausted_recv_retries_surface_transient() {
        let mut cfg = FaultConfig::disabled(4);
        cfg.p_recv_fail = 1.0;
        cfg.max_fail_burst = cfg.retry_budget + 2;
        let errs = Universe::with_timeout_and_faults(1, ROOMY, cfg)
            .unwrap()
            .run(|c| c.recv(0, 0).unwrap_err());
        match &errs[0] {
            CommError::Transient {
                op: FaultOp::Recv,
                peer: 0,
                attempts,
            } => assert!(*attempts > 3),
            other => panic!("expected Transient recv failure, got {other:?}"),
        }
    }

    #[test]
    fn within_budget_recv_failures_recover() {
        let mut cfg = FaultConfig::disabled(4);
        cfg.p_recv_fail = 1.0;
        cfg.max_fail_burst = cfg.retry_budget; // every recv retried, none fatal
        let stats = Universe::with_timeout_and_faults(2, ROOMY, cfg)
            .unwrap()
            .run(|c| {
                let peer = 1 - c.rank();
                let got = c.sendrecv(peer, 1, &[c.rank() as u8], peer, 1).unwrap();
                assert_eq!(got[0] as usize, peer);
                c.barrier();
                c.stats()
            });
        assert!(TrafficStats::total(&stats).retries >= 2);
    }

    #[test]
    fn detector_stays_silent_while_every_message_is_delayed() {
        // Every message delayed by 3 slices: ranks sit recv-blocked with
        // their wake-up held back. Held messages stay counted in flight,
        // so the deadlock detector must not fire, and the ring must
        // complete with correct data.
        let mut cfg = FaultConfig::disabled(8);
        cfg.p_delay = 1.0;
        cfg.max_delay_slices = 3;
        let n = 4;
        let out = Universe::with_timeout_and_faults(n, ROOMY, cfg)
            .unwrap()
            .run(|c| {
                let next = (c.rank() + 1) % c.size();
                let prev = (c.rank() + c.size() - 1) % c.size();
                let mut seen = Vec::new();
                for round in 0..4u64 {
                    c.send(next, round, &[c.rank() as u8]).unwrap();
                    seen.push(c.recv(prev, round).unwrap()[0] as usize);
                }
                seen
            });
        for (rank, seen) in out.iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(seen, &vec![prev; 4]);
        }
    }

    #[test]
    fn stalled_rank_slows_but_completes() {
        let mut cfg = FaultConfig::disabled(2);
        cfg.stall_rank = Some(0);
        cfg.stall_window = (0, 8);
        cfg.stall_extra_slices = 2;
        let stats = Universe::with_timeout_and_faults(2, ROOMY, cfg)
            .unwrap()
            .run(|c| {
                let peer = 1 - c.rank();
                for round in 0..4u64 {
                    let got = c.sendrecv(peer, round, &[round as u8], peer, round).unwrap();
                    assert_eq!(got[0], round as u8);
                }
                c.barrier();
                c.stats()
            });
        assert!(stats[0].faults_injected >= 4, "rank 0's sends all stalled");
        assert_eq!(stats[1].faults_injected, 0, "rank 1 is unaffected");
    }
}
