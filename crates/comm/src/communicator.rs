//! The per-rank communication endpoint.

use crate::deadlock::{WaitKind, WaitRegistry};
use crate::error::CommError;
use crate::message::Envelope;
use crate::nonblocking::Request;
use crate::stats::{SharedCounters, TrafficStats};
use crate::Result;
use qse_util::Bytes;
use qse_util::mailbox::{deadline_after, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Poll slice for blocked receives: each expiry re-runs the wait-for-graph
/// deadlock detector, so a protocol bug is diagnosed within a few slices
/// instead of after the full receive deadline.
const DEADLOCK_POLL: Duration = Duration::from_millis(25);

/// One rank's endpoint into the universe.
///
/// Owned by exactly one thread. All sends are *eager*: the payload is copied
/// into the peer's mailbox immediately and the call returns (matching an MPI
/// implementation's eager protocol for buffered messages). Receives match on
/// `(source, tag)` and buffer out-of-order arrivals, like MPI's unexpected-
/// message queue.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    barrier: Arc<Barrier>,
    counters: SharedCounters,
    all_counters: Arc<Vec<SharedCounters>>,
    recv_timeout: Duration,
    registry: Arc<WaitRegistry>,
}

impl Communicator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Arc<Vec<Sender<Envelope>>>,
        rx: Receiver<Envelope>,
        barrier: Arc<Barrier>,
        counters: SharedCounters,
        all_counters: Arc<Vec<SharedCounters>>,
        recv_timeout: Duration,
        registry: Arc<WaitRegistry>,
    ) -> Self {
        Communicator {
            rank,
            size,
            senders,
            rx,
            pending: VecDeque::new(),
            barrier,
            counters,
            all_counters,
            recv_timeout,
            registry,
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Deadline applied to blocking receives before reporting a deadlock.
    pub fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank >= self.size {
            Err(CommError::InvalidRank {
                rank,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// Sends `payload` to `dst` with `tag`, copying it once. Returns as soon
    /// as the message is enqueued in the destination mailbox.
    pub fn send(&self, dst: usize, tag: u64, payload: &[u8]) -> Result<()> {
        self.send_bytes(dst, tag, Bytes::copy_from_slice(payload))
    }

    /// Sends an already-owned payload without copying.
    pub fn send_bytes(&self, dst: usize, tag: u64, payload: Bytes) -> Result<()> {
        self.check_rank(dst)?;
        let len = payload.len();
        // Count the message in flight *before* the enqueue: the deadlock
        // detector must never observe a queued message with a zero counter.
        self.registry.msg_sent(dst);
        if self
            .senders[dst]
            .send(Envelope::from_bytes(self.rank, tag, payload))
            .is_err()
        {
            self.registry.msg_unsent(dst);
            return Err(CommError::Disconnected { peer: dst });
        }
        self.counters.record_send(len);
        Ok(())
    }

    /// Blocking receive matching `(src, tag)` exactly.
    ///
    /// Out-of-order arrivals for other `(src, tag)` pairs are buffered and
    /// delivered to their own matching `recv` calls later. While blocked,
    /// the rank is registered in the universe's wait-for graph and wakes
    /// every [`DEADLOCK_POLL`] to run the deadlock detector: a protocol
    /// bug (mismatched tags, one-sided exchange, wait cycle) returns
    /// [`CommError::Deadlock`] with a per-rank diagnostic in well under a
    /// second instead of burning the whole receive deadline.
    pub fn recv(&mut self, src: usize, tag: u64) -> Result<Bytes> {
        self.check_rank(src)?;
        // First consult the unexpected-message queue.
        if let Some(env) = self.take_pending(src, tag) {
            self.counters.record_recv(env.len());
            return Ok(env.payload);
        }
        self.registry
            .begin_wait(self.rank, WaitKind::Recv { src, tag }, self.pending.len());
        let result = self.recv_blocking(src, tag);
        self.registry.end_wait(self.rank);
        result
    }

    /// Removes and returns the first buffered envelope matching
    /// `(src, tag)`, keeping the registry's queue-depth diagnostic fresh.
    fn take_pending(&mut self, src: usize, tag: u64) -> Option<Envelope> {
        let pos = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)?;
        let env = self.pending.remove(pos)?;
        self.registry.set_pending_depth(self.rank, self.pending.len());
        Some(env)
    }

    /// The blocked phase of [`Self::recv`]: poll-sliced mailbox waits with
    /// deadlock detection at each slice expiry.
    fn recv_blocking(&mut self, src: usize, tag: u64) -> Result<Bytes> {
        let deadline = deadline_after(Instant::now(), self.recv_timeout);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::RecvTimeout {
                    src,
                    tag,
                    waited: self.recv_timeout,
                });
            }
            match self.rx.recv_timeout(remaining.min(DEADLOCK_POLL)) {
                Ok(env) => {
                    self.registry.msg_delivered(self.rank);
                    if env.src == src && env.tag == tag {
                        self.counters.record_recv(env.len());
                        return Ok(env.payload);
                    }
                    self.pending.push_back(env);
                    self.registry.set_pending_depth(self.rank, self.pending.len());
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(report) = self.registry.detect(self.rank) {
                        return Err(CommError::Deadlock {
                            rank: self.rank,
                            stuck: report.stuck.clone(),
                            detail: report.render(),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { peer: src })
                }
            }
        }
    }

    /// Combined send + receive, the workhorse of QuEST's distributed gates
    /// (`MPI_Sendrecv`). The send is eager so this cannot deadlock even when
    /// both partners call it simultaneously.
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        payload: &[u8],
        src: usize,
        recv_tag: u64,
    ) -> Result<Bytes> {
        self.send(dst, send_tag, payload)?;
        self.recv(src, recv_tag)
    }

    /// Non-blocking send. With an eager transport the operation completes
    /// immediately; the returned request exists so call sites read like
    /// their MPI counterparts and can be passed to [`Self::wait_all`].
    pub fn isend(&self, dst: usize, tag: u64, payload: &[u8]) -> Result<Request> {
        self.send(dst, tag, payload)?;
        Ok(Request::SendDone)
    }

    /// Non-blocking receive: registers interest in `(src, tag)` and returns
    /// a request to be completed by [`Self::wait`] / [`Self::wait_all`].
    pub fn irecv(&self, src: usize, tag: u64) -> Result<Request> {
        self.check_rank(src)?;
        Ok(Request::Recv { src, tag })
    }

    /// Completes one request, returning its payload (empty for sends).
    pub fn wait(&mut self, request: Request) -> Result<Bytes> {
        match request {
            Request::SendDone => Ok(Bytes::new()),
            Request::Recv { src, tag } => self.recv(src, tag),
        }
    }

    /// Completes a batch of requests in order, returning their payloads.
    ///
    /// Because arrivals are buffered by `(src, tag)`, completion order does
    /// not depend on network arrival order — exactly the property the
    /// paper's non-blocking rewrite of QuEST exploits.
    pub fn wait_all(&mut self, requests: Vec<Request>) -> Result<Vec<Bytes>> {
        requests.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Completes *whichever* request in `requests` finishes first,
    /// returning its index and payload — the `MPI_Waitany` analogue that
    /// lets a streamed exchange process chunks in completion order.
    ///
    /// Send requests are already complete on an eager transport and are
    /// returned immediately (with an empty payload). Among receives, a
    /// buffered out-of-order arrival wins in its arrival order; otherwise
    /// the call blocks like [`Self::recv`], registered in the wait-for
    /// graph as a `wait_any` over the set so the deadlock detector can
    /// diagnose a stuck streamed exchange in ~50 ms. Non-matching
    /// arrivals are buffered for later receives exactly as in `recv`.
    ///
    /// Returns `CommError::InvalidConfig` for an empty request set.
    pub fn wait_any(&mut self, requests: &[Request]) -> Result<(usize, Bytes)> {
        if requests.is_empty() {
            return Err(CommError::InvalidConfig("wait_any needs at least one request"));
        }
        if let Some(i) = requests.iter().position(|r| r.is_send()) {
            return Ok((i, Bytes::new()));
        }
        // Oldest buffered arrival matching any request wins, mirroring
        // completion order on a real network.
        if let Some((pos, idx)) = self.pending.iter().enumerate().find_map(|(pos, env)| {
            Self::match_request(requests, env).map(|idx| (pos, idx))
        }) {
            let env = self.pending.remove(pos).ok_or(CommError::InvalidConfig(
                "pending queue changed underfoot", // unreachable: single-threaded access
            ))?;
            self.registry.set_pending_depth(self.rank, self.pending.len());
            self.counters.record_recv(env.len());
            return Ok((idx, env.payload));
        }
        let (src0, multi_source) = match requests[0] {
            Request::Recv { src, .. } => (
                src,
                requests
                    .iter()
                    .any(|r| !matches!(r, Request::Recv { src: s, .. } if *s == src)),
            ),
            Request::SendDone => (0, false), // unreachable: sends returned above
        };
        self.registry.begin_wait(
            self.rank,
            WaitKind::RecvAny {
                src: src0,
                outstanding: requests.len(),
                multi_source,
            },
            self.pending.len(),
        );
        let result = self.wait_any_blocking(requests);
        self.registry.end_wait(self.rank);
        result
    }

    /// Index of the first request in `requests` matching `env`, if any.
    fn match_request(requests: &[Request], env: &Envelope) -> Option<usize> {
        requests
            .iter()
            .position(|r| matches!(r, Request::Recv { src, tag } if *src == env.src && *tag == env.tag))
    }

    /// The blocked phase of [`Self::wait_any`]: poll-sliced mailbox waits
    /// with deadlock detection at each slice expiry, matching arrivals
    /// against the whole request set.
    fn wait_any_blocking(&mut self, requests: &[Request]) -> Result<(usize, Bytes)> {
        let deadline = deadline_after(Instant::now(), self.recv_timeout);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                let (src, tag) = match requests[0] {
                    Request::Recv { src, tag } => (src, tag),
                    Request::SendDone => (self.rank, 0),
                };
                return Err(CommError::RecvTimeout {
                    src,
                    tag,
                    waited: self.recv_timeout,
                });
            }
            match self.rx.recv_timeout(remaining.min(DEADLOCK_POLL)) {
                Ok(env) => {
                    self.registry.msg_delivered(self.rank);
                    if let Some(idx) = Self::match_request(requests, &env) {
                        self.counters.record_recv(env.len());
                        return Ok((idx, env.payload));
                    }
                    self.pending.push_back(env);
                    self.registry.set_pending_depth(self.rank, self.pending.len());
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(report) = self.registry.detect(self.rank) {
                        return Err(CommError::Deadlock {
                            rank: self.rank,
                            stuck: report.stuck.clone(),
                            detail: report.render(),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let peer = match requests[0] {
                        Request::Recv { src, .. } => src,
                        Request::SendDone => self.rank,
                    };
                    return Err(CommError::Disconnected { peer });
                }
            }
        }
    }

    /// Synchronises all ranks. The wait is registered in the wait-for
    /// graph so other ranks' deadlock diagnostics can name barrier-blocked
    /// peers, but a barrier itself cannot be interrupted.
    pub fn barrier(&self) {
        self.registry
            .begin_wait(self.rank, WaitKind::Barrier, self.pending.len());
        self.barrier.wait();
        self.registry.end_wait(self.rank);
    }

    /// Records `chunks` completed chunks of one streamed exchange in this
    /// rank's traffic counters.
    pub fn record_exchange_chunks(&self, chunks: u64) {
        self.counters.record_exchange_chunks(chunks);
    }

    /// Accounts `bytes` of exchange scratch acquired (a ring slot holding
    /// an in-flight chunk), updating the peak-occupancy high-water mark.
    pub fn scratch_acquire(&self, bytes: u64) {
        self.counters.scratch_acquire(bytes);
    }

    /// Releases `bytes` of exchange scratch previously accounted via
    /// [`Self::scratch_acquire`].
    pub fn scratch_release(&self, bytes: u64) {
        self.counters.scratch_release(bytes);
    }

    /// This rank's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.counters.snapshot()
    }

    /// Snapshot of every rank's counters (for aggregate reporting).
    pub fn all_stats(&self) -> Vec<TrafficStats> {
        self.all_counters.iter().map(|c| c.snapshot()).collect()
    }

    /// Resets this rank's counters (e.g. between benchmark phases).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        // A dropped rank can never send again; recording that lets the
        // global-starvation rule diagnose one-sided exchanges where the
        // peer has already returned.
        self.registry.mark_done(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;
    use crate::CommError;

    #[test]
    fn rank_and_size_are_exposed() {
        let sizes = Universe::new(4).run(|c| (c.rank(), c.size()));
        assert_eq!(sizes, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn invalid_rank_rejected() {
        Universe::new(2).run(|c| {
            let err = c.send(5, 0, &[]).unwrap_err();
            assert_eq!(err, CommError::InvalidRank { rank: 5, size: 2 });
            let err = c.recv(9, 0).unwrap_err();
            assert_eq!(err, CommError::InvalidRank { rank: 9, size: 2 });
        });
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 10, b"first").unwrap();
                c.send(1, 20, b"second").unwrap();
            } else {
                // Receive in the opposite order to the sends.
                let b = c.recv(0, 20).unwrap();
                let a = c.recv(0, 10).unwrap();
                assert_eq!(&a[..], b"first");
                assert_eq!(&b[..], b"second");
            }
        });
    }

    #[test]
    fn messages_from_different_sources_do_not_cross() {
        Universe::new(3).run(|c| match c.rank() {
            0 => c.send(2, 7, b"from0").unwrap(),
            1 => c.send(2, 7, b"from1").unwrap(),
            2 => {
                let from1 = c.recv(1, 7).unwrap();
                let from0 = c.recv(0, 7).unwrap();
                assert_eq!(&from0[..], b"from0");
                assert_eq!(&from1[..], b"from1");
            }
            _ => unreachable!(),
        });
    }

    #[test]
    fn simultaneous_sendrecv_does_not_deadlock() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let payload = vec![c.rank() as u8; 1024];
            let got = c.sendrecv(peer, 3, &payload, peer, 3).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn recv_timeout_reports_deadlock() {
        let out = Universe::with_timeout(2, std::time::Duration::from_millis(120)).run(|c| {
            if c.rank() == 0 {
                // Nobody ever sends tag 99.
                c.recv(1, 99).unwrap_err()
            } else {
                CommError::InvalidConfig("placeholder")
            }
        });
        // Once rank 1 returns, the wait-for graph proves nobody can send
        // tag 99 and the receive fails with a diagnosis; if the detector's
        // poll loses the race with the deadline, a plain timeout is also
        // acceptable.
        match &out[0] {
            CommError::Deadlock { rank: 0, stuck, .. } => assert_eq!(stuck, &vec![0]),
            CommError::RecvTimeout { src: 1, tag: 99, .. } => {}
            other => panic!("expected deadlock diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn nonblocking_roundtrip() {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let reqs = vec![
                c.irecv(peer, 1).unwrap(),
                c.isend(peer, 1, &[c.rank() as u8]).unwrap(),
            ];
            let payloads = c.wait_all(reqs).unwrap();
            assert_eq!(payloads[0][0] as usize, peer);
            assert!(payloads[1].is_empty());
        });
    }

    #[test]
    fn wait_any_completes_in_arrival_order() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                // Send tags out of request order so completion order and
                // posting order differ.
                for tag in [2u64, 0, 1] {
                    c.send(1, tag, &[tag as u8]).unwrap();
                }
            } else {
                let mut reqs: Vec<_> =
                    (0..3u64).map(|t| c.irecv(0, t).unwrap()).collect();
                let mut tags_seen = Vec::new();
                while !reqs.is_empty() {
                    let (i, payload) = c.wait_any(&reqs).unwrap();
                    tags_seen.push(payload[0]);
                    reqs.swap_remove(i);
                }
                tags_seen.sort_unstable();
                assert_eq!(tags_seen, vec![0, 1, 2]);
            }
        });
    }

    #[test]
    fn wait_any_prefers_completed_sends_and_rejects_empty_sets() {
        Universe::new(2).run(|c| {
            let err = c.wait_any(&[]).unwrap_err();
            assert!(matches!(err, CommError::InvalidConfig(_)));
            let peer = 1 - c.rank();
            let reqs = vec![
                c.irecv(peer, 7).unwrap(),
                c.isend(peer, 7, &[9]).unwrap(),
            ];
            // The eager send is already complete: index 1, empty payload.
            let (i, payload) = c.wait_any(&reqs).unwrap();
            assert_eq!(i, 1);
            assert!(payload.is_empty());
            // The receive then completes normally.
            let (i, payload) = c.wait_any(&reqs[..1]).unwrap();
            assert_eq!(i, 0);
            assert_eq!(&payload[..], &[9]);
        });
    }

    #[test]
    fn wait_any_buffers_non_matching_arrivals() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 50, b"other").unwrap();
                c.send(1, 40, b"match").unwrap();
            } else {
                // Only tag 40 is in the set; tag 50 must be buffered and
                // remain available to a later plain recv.
                let reqs = vec![c.irecv(0, 40).unwrap()];
                let (i, payload) = c.wait_any(&reqs).unwrap();
                assert_eq!(i, 0);
                assert_eq!(&payload[..], b"match");
                let other = c.recv(0, 50).unwrap();
                assert_eq!(&other[..], b"other");
            }
        });
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let stats = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.sendrecv(peer, 0, &[0u8; 100], peer, 0).unwrap();
            c.barrier();
            c.stats()
        });
        for s in stats {
            assert_eq!(s.messages_sent, 1);
            assert_eq!(s.bytes_sent, 100);
            assert_eq!(s.messages_received, 1);
            assert_eq!(s.bytes_received, 100);
        }
    }

    #[test]
    fn reset_stats_clears_counts() {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.sendrecv(peer, 0, &[0u8; 8], peer, 0).unwrap();
            c.reset_stats();
            assert_eq!(c.stats().messages_sent, 0);
        });
    }

    #[test]
    fn all_stats_sees_every_rank() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            c.sendrecv(peer, 0, &[0u8; 8], peer, 0).unwrap();
            c.barrier();
            c.all_stats().len()
        });
        assert_eq!(out, vec![2, 2]);
    }
}
