//! Deterministic fault injection for the message-passing substrate.
//!
//! The paper's 4,096-node runs assume a healthy fabric; at that scale
//! transient link stalls, slow ranks, and corrupted frames are routine.
//! This module lets a [`crate::Universe`] be constructed with a seeded
//! [`FaultPlan`] that perturbs every communicator deterministically:
//!
//! * **delivery delay jitter** — messages are stamped with a delay in
//!   deadlock-poll slices; the receiver holds them back for that many
//!   poll events before they become visible to matching;
//! * **transient send/recv failures** — an operation fails a bounded
//!   number of times and is retried with deterministic backoff; a burst
//!   longer than the retry budget surfaces as
//!   [`crate::CommError::Transient`];
//! * **payload corruption** — a send delivers one or more corrupted
//!   copies (flipped byte, original checksum) ahead of the pristine
//!   retransmission; the receiver's checksum validation discards them,
//!   and a corruption burst longer than the budget with no pristine
//!   copy surfaces as [`crate::CommError::Corrupt`];
//! * **per-rank stall windows** — one rank's sends inside an operation
//!   window pick up extra delay slices, modelling a slow node.
//!
//! # Determinism
//!
//! Every fault decision is drawn at the *sender*, in program order, from
//! a per-rank PRNG seeded from `(plan seed, rank)`. Thread scheduling
//! cannot reorder a single rank's sends, so the fault sequence each rank
//! experiences is a pure function of the seed — a failing soak seed
//! replays exactly. Receive-side transient failures are drawn once per
//! receive *entry* (also program order). The receiver never draws
//! randomness per arriving message, because arrival interleaving across
//! senders is scheduler-dependent.
//!
//! Delays and timeouts are *modelled*, not wall-clock: a held message is
//! released after N poll events, and when a fault lane is active the
//! receive deadline counts empty poll slices instead of elapsed time, so
//! delay-versus-timeout boundary outcomes are exact (see
//! `delay_at_timeout_boundary_*` tests).

use crate::error::CommError;
use crate::message::Envelope;
use crate::Result;
use qse_util::{Bytes, Rng, StdRng};
use std::collections::HashMap;

/// Knobs for one deterministic fault plan. `Copy` and comparable so it
/// can ride inside higher-level run configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; each rank derives its own stream from `(seed, rank)`.
    pub seed: u64,
    /// Probability that a send's delivery is delayed. A value `>= 1.0`
    /// delays every message by exactly `max_delay_slices` (the
    /// deterministic mode the timeout boundary tests rely on).
    pub p_delay: f64,
    /// Maximum injected delay, in deadlock-poll slices.
    pub max_delay_slices: u32,
    /// Probability that a send delivers corrupted copies first. `>= 1.0`
    /// corrupts with a burst of exactly `max_corrupt_burst`.
    pub p_corrupt: f64,
    /// Maximum corrupted copies per triggered corruption. A burst larger
    /// than `retry_budget` drops the pristine copy entirely — permanent
    /// corruption, unrecoverable by design.
    pub max_corrupt_burst: u32,
    /// Probability that a send transiently fails. `>= 1.0` fails with a
    /// burst of exactly `max_fail_burst`.
    pub p_send_fail: f64,
    /// Probability that a receive entry transiently fails. `>= 1.0`
    /// fails with a burst of exactly `max_fail_burst`.
    pub p_recv_fail: f64,
    /// Maximum forced failures per triggered transient fault. A burst
    /// larger than `retry_budget` exhausts the retry loop.
    pub max_fail_burst: u32,
    /// Retries (and corrupt discards) tolerated before giving up with a
    /// typed error.
    pub retry_budget: u32,
    /// Rank whose sends stall inside the window, if any.
    pub stall_rank: Option<usize>,
    /// Half-open send-operation index window `[start, end)` during which
    /// the stalled rank's sends pick up extra delay.
    pub stall_window: (u64, u64),
    /// Extra delay slices added to each stalled send.
    pub stall_extra_slices: u32,
}

impl FaultConfig {
    /// A plan that injects nothing (all probabilities zero). Running
    /// under it still stamps checksums, unlike running with no plan.
    pub fn disabled(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_delay: 0.0,
            max_delay_slices: 0,
            p_corrupt: 0.0,
            max_corrupt_burst: 0,
            p_send_fail: 0.0,
            p_recv_fail: 0.0,
            max_fail_burst: 0,
            retry_budget: 3,
            stall_rank: None,
            stall_window: (0, 0),
            stall_extra_slices: 0,
        }
    }

    /// A moderately hostile plan that is *recoverable by construction*:
    /// every fault burst fits inside the retry budget, so a run under it
    /// must produce a bit-for-bit identical result to the fault-free run.
    pub fn recoverable(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_delay: 0.25,
            max_delay_slices: 3,
            p_corrupt: 0.15,
            max_corrupt_burst: 2,
            p_send_fail: 0.15,
            p_recv_fail: 0.1,
            max_fail_burst: 2,
            retry_budget: 3,
            stall_rank: None,
            stall_window: (0, 0),
            stall_extra_slices: 0,
        }
    }

    /// A plan whose every send delivers only corrupted copies — more of
    /// them than the retry budget tolerates and never a pristine one.
    /// Every exchanging rank must surface [`CommError::Corrupt`].
    pub fn permanent_corruption(seed: u64) -> Self {
        let budget = 2;
        FaultConfig {
            p_corrupt: 1.0,
            max_corrupt_burst: budget + 2,
            retry_budget: budget,
            ..Self::disabled(seed)
        }
    }

    /// A plan whose every send fails more times than the retry budget
    /// tolerates. The very first send on each rank must surface
    /// [`CommError::Transient`].
    pub fn exhausted_retries(seed: u64) -> Self {
        let budget = 2;
        FaultConfig {
            p_send_fail: 1.0,
            max_fail_burst: budget + 2,
            retry_budget: budget,
            ..Self::disabled(seed)
        }
    }

    /// True when no fault burst can outlast the retry budget, i.e. a run
    /// under this plan must complete with a correct result.
    pub fn is_recoverable(&self) -> bool {
        self.max_fail_burst <= self.retry_budget && self.max_corrupt_burst <= self.retry_budget
    }

    /// Checks the probabilities are sane; used by [`FaultPlan::new`].
    pub fn validate(&self) -> Result<()> {
        for p in [self.p_delay, self.p_corrupt, self.p_send_fail, self.p_recv_fail] {
            if !(0.0..=1.0).contains(&p) {
                return Err(CommError::InvalidConfig(
                    "fault probabilities must lie in [0, 1]",
                ));
            }
        }
        if self.stall_window.0 > self.stall_window.1 {
            return Err(CommError::InvalidConfig(
                "stall window start must not exceed its end",
            ));
        }
        Ok(())
    }

    /// Parses a `key=value,key=value` fault spec, the `--faults` CLI
    /// syntax. `seed=N` is required; all other keys override the
    /// [`FaultConfig::recoverable`] baseline derived from that seed:
    /// `delay`, `corrupt`, `fail`, `recv_fail` (probabilities),
    /// `delay_slices`, `corrupt_burst`, `fail_burst`, `budget`,
    /// `stall_rank`, `stall_from`, `stall_len`, `stall_slices`.
    pub fn parse_spec(spec: &str) -> std::result::Result<FaultConfig, String> {
        let mut seed = None;
        let mut overrides = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item '{part}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("fault seed '{value}' is not a u64"))?,
                );
            } else {
                overrides.push((key.to_string(), value.to_string()));
            }
        }
        let seed = seed.ok_or("fault spec needs seed=N")?;
        let mut cfg = FaultConfig::recoverable(seed);
        let prob = |v: &str, key: &str| -> std::result::Result<f64, String> {
            let p = v
                .parse::<f64>()
                .map_err(|_| format!("fault {key} '{v}' is not a probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault {key} '{v}' must lie in [0, 1]"));
            }
            Ok(p)
        };
        let int = |v: &str, key: &str| -> std::result::Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("fault {key} '{v}' is not an integer"))
        };
        // Parse narrow fields at their real width so an oversized value
        // is a spec error, not a silent truncation.
        let int32 = |v: &str, key: &str| -> std::result::Result<u32, String> {
            v.parse::<u32>()
                .map_err(|_| format!("fault {key} '{v}' is not a 32-bit integer"))
        };
        let rank = |v: &str, key: &str| -> std::result::Result<usize, String> {
            v.parse::<usize>()
                .map_err(|_| format!("fault {key} '{v}' is not a rank index"))
        };
        for (key, v) in &overrides {
            match key.as_str() {
                "delay" => cfg.p_delay = prob(v, key)?,
                "corrupt" => cfg.p_corrupt = prob(v, key)?,
                "fail" => cfg.p_send_fail = prob(v, key)?,
                "recv_fail" => cfg.p_recv_fail = prob(v, key)?,
                "delay_slices" => cfg.max_delay_slices = int32(v, key)?,
                "corrupt_burst" => cfg.max_corrupt_burst = int32(v, key)?,
                "fail_burst" => cfg.max_fail_burst = int32(v, key)?,
                "budget" => cfg.retry_budget = int32(v, key)?,
                "stall_rank" => cfg.stall_rank = Some(rank(v, key)?),
                "stall_from" => cfg.stall_window.0 = int(v, key)?,
                "stall_len" => cfg.stall_window.1 = cfg.stall_window.0 + int(v, key)?,
                "stall_slices" => cfg.stall_extra_slices = int32(v, key)?,
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        if cfg.stall_rank.is_some() && cfg.stall_window.1 == 0 {
            cfg.stall_window = (0, u64::MAX);
            cfg.stall_extra_slices = cfg.stall_extra_slices.max(1);
        }
        Ok(cfg)
    }
}

/// A validated fault plan, shared by the whole universe. Each rank's
/// communicator derives its own [`FaultLane`] from it.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Validates `config` into a plan.
    pub fn new(config: FaultConfig) -> Result<FaultPlan> {
        config.validate()?;
        Ok(FaultPlan { config })
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Builds rank `rank`'s deterministic fault lane.
    pub fn lane(&self, rank: usize) -> FaultLane {
        FaultLane::new(self.config, rank)
    }
}

/// Fault decisions for one send, drawn in program order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendFaults {
    /// Forced transient failures before the send may proceed. A burst
    /// beyond the retry budget aborts the send with
    /// [`CommError::Transient`].
    pub transient_attempts: u32,
    /// Corrupted copies delivered ahead of the pristine payload.
    pub corrupt_copies: u32,
    /// True when the corruption burst exceeds the retry budget: no
    /// pristine copy is sent at all (permanent corruption).
    pub drop_pristine: bool,
    /// Delivery delay stamped on every copy, in poll slices.
    pub delay_slices: u32,
    /// How many distinct fault events this plan injected (for stats).
    pub injected_events: u32,
}

/// One held (delayed) envelope: invisible to matching until the lane's
/// modelled clock reaches `release_tick`.
#[derive(Debug)]
struct HeldEnvelope {
    release_tick: u64,
    env: Envelope,
}

/// One rank's deterministic fault stream plus its receive-side recovery
/// state (held delayed envelopes, consecutive corrupt-discard counts).
#[derive(Debug)]
pub struct FaultLane {
    config: FaultConfig,
    rank: usize,
    rng: StdRng,
    send_ops: u64,
    /// Modelled clock: advances once per receive poll event.
    now: u64,
    held: Vec<HeldEnvelope>,
    /// Consecutive checksum failures per `(src, tag)`, cleared by a
    /// valid delivery.
    corrupt_discards: HashMap<(usize, u64), u32>,
}

impl FaultLane {
    /// Builds rank `rank`'s lane for `config`.
    pub fn new(config: FaultConfig, rank: usize) -> Self {
        // Golden-ratio mix keeps per-rank streams decorrelated; StdRng's
        // seeding runs the result through SplitMix64.
        let seed = config
            .seed
            .wrapping_add((rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultLane {
            config,
            rank,
            rng: StdRng::seed_from_u64(seed),
            send_ops: 0,
            now: 0,
            held: Vec::new(),
            corrupt_discards: HashMap::new(),
        }
    }

    /// The plan's retry (and corrupt-discard) budget.
    pub fn retry_budget(&self) -> u32 {
        self.config.retry_budget
    }

    /// Draws a fault burst: zero with probability `1 - p`, otherwise
    /// uniform in `1..=max`; `p >= 1.0` always yields exactly `max`.
    fn draw_burst(&mut self, p: f64, max: u32) -> u32 {
        if max == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return max;
        }
        if self.rng.random_bool(p) {
            self.rng.random_range(1u32..=max)
        } else {
            0
        }
    }

    /// Draws the fault decisions for this rank's next send, advancing
    /// the per-rank program-order fault stream.
    pub fn plan_send(&mut self) -> SendFaults {
        let op = self.send_ops;
        self.send_ops += 1;
        let mut injected = 0;
        let transient_attempts = self.draw_burst(self.config.p_send_fail, self.config.max_fail_burst);
        if transient_attempts > 0 {
            injected += 1;
        }
        let corrupt_copies = self.draw_burst(self.config.p_corrupt, self.config.max_corrupt_burst);
        if corrupt_copies > 0 {
            injected += 1;
        }
        let mut delay_slices = self.draw_burst(self.config.p_delay, self.config.max_delay_slices);
        if delay_slices > 0 {
            injected += 1;
        }
        if let Some(stalled) = self.config.stall_rank {
            let (from, to) = self.config.stall_window;
            if stalled == self.rank && op >= from && op < to {
                delay_slices += self.config.stall_extra_slices;
                injected += 1;
            }
        }
        SendFaults {
            transient_attempts,
            corrupt_copies,
            drop_pristine: corrupt_copies > self.config.retry_budget,
            delay_slices,
            injected_events: injected,
        }
    }

    /// Draws the forced transient-failure count for this rank's next
    /// receive entry (zero for most entries).
    pub fn plan_recv(&mut self) -> u32 {
        self.draw_burst(self.config.p_recv_fail, self.config.max_fail_burst)
    }

    /// Produces a corrupted copy of `payload`: one byte flipped at a
    /// drawn position (or one junk byte appended to an empty payload,
    /// which equally fails validation).
    pub fn corrupt_payload(&mut self, payload: &[u8]) -> Bytes {
        if payload.is_empty() {
            return Bytes::from(vec![0xA5u8]);
        }
        let mut copy = payload.to_vec();
        let i = self.rng.random_range(0..copy.len());
        copy[i] ^= 0xFF;
        Bytes::from(copy)
    }

    /// Advances the modelled clock by `events` poll events.
    pub fn tick(&mut self, events: u64) {
        self.now += events;
    }

    /// Holds a delayed envelope back from matching until the modelled
    /// clock has advanced by its stamped delay.
    pub fn hold(&mut self, mut env: Envelope) {
        let release_tick = self.now + env.delay_slices as u64;
        env.delay_slices = 0;
        self.held.push(HeldEnvelope { release_tick, env });
    }

    /// Releases the first held envelope whose delay has elapsed, if any.
    pub fn pop_due(&mut self) -> Option<Envelope> {
        let i = self
            .held
            .iter()
            .position(|h| h.release_tick <= self.now)?;
        Some(self.held.swap_remove(i).env)
    }

    /// Number of envelopes currently held back by injected delays.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Records one checksum failure for `(src, tag)`, returning the
    /// consecutive-failure count. Past the retry budget the caller gives
    /// up with [`CommError::Corrupt`].
    pub fn note_corrupt_discard(&mut self, src: usize, tag: u64) -> u32 {
        let count = self.corrupt_discards.entry((src, tag)).or_insert(0);
        *count += 1;
        *count
    }

    /// Clears the consecutive-failure count for `(src, tag)` after a
    /// checksum-valid delivery (the pristine retransmission arrived).
    pub fn note_valid_delivery(&mut self, src: usize, tag: u64) {
        self.corrupt_discards.remove(&(src, tag));
    }
}

/// Deterministic backoff between retries of a transiently failed
/// operation: an exponentially growing spin (capped), then a scheduler
/// yield. No clocks — replays identically under any wall-time jitter.
pub fn backoff(attempt: u32) {
    let spins = 32u32 << attempt.min(6);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_deterministic_per_seed_and_rank() {
        let plan = FaultPlan::new(FaultConfig::recoverable(42)).unwrap();
        let mut a = plan.lane(1);
        let mut b = plan.lane(1);
        let seq_a: Vec<SendFaults> = (0..64).map(|_| a.plan_send()).collect();
        let seq_b: Vec<SendFaults> = (0..64).map(|_| b.plan_send()).collect();
        assert_eq!(seq_a, seq_b, "same seed+rank must replay identically");
        let mut c = plan.lane(2);
        let seq_c: Vec<SendFaults> = (0..64).map(|_| c.plan_send()).collect();
        assert_ne!(seq_a, seq_c, "different ranks draw different streams");
        let other = FaultPlan::new(FaultConfig::recoverable(43)).unwrap();
        let mut d = other.lane(1);
        let seq_d: Vec<SendFaults> = (0..64).map(|_| d.plan_send()).collect();
        assert_ne!(seq_a, seq_d, "different seeds draw different streams");
    }

    #[test]
    fn recoverable_plans_fit_the_budget() {
        for seed in 0..50 {
            let cfg = FaultConfig::recoverable(seed);
            assert!(cfg.is_recoverable());
            let mut lane = FaultPlan::new(cfg).unwrap().lane(0);
            for _ in 0..256 {
                let f = lane.plan_send();
                assert!(f.transient_attempts <= cfg.retry_budget);
                assert!(f.corrupt_copies <= cfg.retry_budget);
                assert!(!f.drop_pristine);
                assert!(lane.plan_recv() <= cfg.retry_budget);
            }
        }
    }

    #[test]
    fn unrecoverable_presets_exceed_the_budget_deterministically() {
        let cfg = FaultConfig::permanent_corruption(7);
        assert!(!cfg.is_recoverable());
        let mut lane = FaultPlan::new(cfg).unwrap().lane(3);
        let f = lane.plan_send();
        assert!(f.corrupt_copies > cfg.retry_budget);
        assert!(f.drop_pristine, "no pristine copy may follow");
        let cfg = FaultConfig::exhausted_retries(7);
        assert!(!cfg.is_recoverable());
        let mut lane = FaultPlan::new(cfg).unwrap().lane(0);
        let f = lane.plan_send();
        assert!(f.transient_attempts > cfg.retry_budget);
    }

    #[test]
    fn full_probability_draws_are_exact() {
        let mut cfg = FaultConfig::disabled(1);
        cfg.p_delay = 1.0;
        cfg.max_delay_slices = 4;
        let mut lane = FaultPlan::new(cfg).unwrap().lane(0);
        for _ in 0..16 {
            assert_eq!(lane.plan_send().delay_slices, 4);
        }
    }

    #[test]
    fn held_envelopes_release_on_the_modelled_clock() {
        let mut lane = FaultPlan::new(FaultConfig::disabled(0)).unwrap().lane(0);
        let mut env = Envelope::new(1, 9, b"x");
        env.delay_slices = 3;
        lane.hold(env);
        assert_eq!(lane.held_count(), 1);
        assert!(lane.pop_due().is_none(), "not due yet");
        lane.tick(2);
        assert!(lane.pop_due().is_none(), "still one slice early");
        lane.tick(1);
        let released = lane.pop_due().expect("due now");
        assert_eq!(released.tag, 9);
        assert_eq!(released.delay_slices, 0, "delay cleared on hold");
        assert_eq!(lane.held_count(), 0);
    }

    #[test]
    fn corrupt_payloads_fail_validation() {
        use crate::message::checksum64;
        let mut lane = FaultPlan::new(FaultConfig::recoverable(5)).unwrap().lane(0);
        let payload = vec![7u8; 64];
        let sum = checksum64(&payload);
        for _ in 0..32 {
            let bad = lane.corrupt_payload(&payload);
            assert_ne!(checksum64(&bad), sum, "every corruption must be visible");
        }
        let bad_empty = lane.corrupt_payload(&[]);
        assert_ne!(checksum64(&bad_empty), checksum64(&[]));
    }

    #[test]
    fn corrupt_discard_counts_are_per_link_and_clear_on_valid() {
        let mut lane = FaultPlan::new(FaultConfig::recoverable(5)).unwrap().lane(0);
        assert_eq!(lane.note_corrupt_discard(1, 7), 1);
        assert_eq!(lane.note_corrupt_discard(1, 7), 2);
        assert_eq!(lane.note_corrupt_discard(2, 7), 1, "different src is separate");
        lane.note_valid_delivery(1, 7);
        assert_eq!(lane.note_corrupt_discard(1, 7), 1, "valid delivery resets");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FaultConfig::disabled(0);
        cfg.p_corrupt = 1.5;
        assert!(FaultPlan::new(cfg).is_err());
        let mut cfg = FaultConfig::disabled(0);
        cfg.p_delay = -0.1;
        assert!(FaultPlan::new(cfg).is_err());
        let mut cfg = FaultConfig::disabled(0);
        cfg.stall_window = (5, 2);
        assert!(FaultPlan::new(cfg).is_err());
        assert!(FaultPlan::new(FaultConfig::recoverable(0)).is_ok());
    }

    #[test]
    fn parse_spec_roundtrips_and_rejects_junk() {
        let cfg = FaultConfig::parse_spec("seed=17").unwrap();
        assert_eq!(cfg, FaultConfig::recoverable(17));
        let cfg =
            FaultConfig::parse_spec("seed=3, delay=0.5, corrupt=0.0, budget=5, fail_burst=4")
                .unwrap();
        assert_eq!(cfg.seed, 3);
        assert_eq!(cfg.p_delay, 0.5);
        assert_eq!(cfg.p_corrupt, 0.0);
        assert_eq!(cfg.retry_budget, 5);
        assert_eq!(cfg.max_fail_burst, 4);
        assert!(cfg.is_recoverable());
        let cfg = FaultConfig::parse_spec("seed=1,stall_rank=2,stall_from=4,stall_len=8,stall_slices=3")
            .unwrap();
        assert_eq!(cfg.stall_rank, Some(2));
        assert_eq!(cfg.stall_window, (4, 12));
        assert_eq!(cfg.stall_extra_slices, 3);
        // A stall rank without a window stalls everywhere.
        let cfg = FaultConfig::parse_spec("seed=1,stall_rank=0").unwrap();
        assert_eq!(cfg.stall_window, (0, u64::MAX));
        assert!(cfg.stall_extra_slices >= 1);
        assert!(FaultConfig::parse_spec("delay=0.5").is_err(), "seed required");
        assert!(FaultConfig::parse_spec("seed=x").is_err());
        assert!(FaultConfig::parse_spec("seed=1,bogus=2").is_err());
        assert!(FaultConfig::parse_spec("seed=1,delay=7").is_err(), "p > 1");
        assert!(FaultConfig::parse_spec("seed=1,delay").is_err(), "no value");
    }

    #[test]
    fn stall_window_only_hits_its_rank_and_ops() {
        let mut cfg = FaultConfig::disabled(9);
        cfg.stall_rank = Some(1);
        cfg.stall_window = (2, 4);
        cfg.stall_extra_slices = 5;
        let plan = FaultPlan::new(cfg).unwrap();
        let mut stalled = plan.lane(1);
        let delays: Vec<u32> = (0..6).map(|_| stalled.plan_send().delay_slices).collect();
        assert_eq!(delays, vec![0, 0, 5, 5, 0, 0]);
        let mut other = plan.lane(0);
        assert!((0..6).all(|_| other.plan_send().delay_slices == 0));
    }
}
