//! Non-blocking request handles.
//!
//! The paper rewrites QuEST's distributed exchange from a sequence of
//! blocking `MPI_Sendrecv` calls into posted `MPI_Isend`/`MPI_Irecv` pairs
//! completed by `MPI_Waitall` (§3.2), "which allows multiple messages to be
//! sent and received in parallel when using an interconnect with high
//! bandwidth". This module gives that rewrite a shape in our substrate.
//!
//! Requests are deliberately plain data: a `Recv` request only records what
//! to match, and completion happens inside [`crate::Communicator::wait`] so
//! the borrow of the endpoint stays explicit.

use qse_util::Bytes;
use crate::Communicator;
use crate::Result;

/// A pending non-blocking operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// An eager send that already completed at post time.
    SendDone,
    /// A receive to be matched against `(src, tag)` at wait time.
    Recv {
        /// Source rank to match.
        src: usize,
        /// Tag to match.
        tag: u64,
    },
}

impl Request {
    /// True for send requests, which carry no payload at completion.
    pub fn is_send(&self) -> bool {
        matches!(self, Request::SendDone)
    }
}

/// Completes all requests, discarding send acknowledgements and returning
/// only received payloads, in the order their requests appear.
pub fn wait_all_recv(comm: &mut Communicator, requests: Vec<Request>) -> Result<Vec<Bytes>> {
    let mut out = Vec::with_capacity(requests.len());
    for req in requests {
        let is_send = req.is_send();
        let payload = comm.wait(req)?;
        if !is_send {
            out.push(payload);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn request_kinds() {
        assert!(Request::SendDone.is_send());
        assert!(!Request::Recv { src: 0, tag: 1 }.is_send());
    }

    #[test]
    fn wait_all_recv_filters_sends() {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let mut reqs = Vec::new();
            for chunk in 0..4u64 {
                reqs.push(c.isend(peer, chunk, &[chunk as u8]).unwrap());
                reqs.push(c.irecv(peer, chunk).unwrap());
            }
            let payloads = wait_all_recv(c, reqs).unwrap();
            assert_eq!(payloads.len(), 4);
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(p[0] as usize, i);
            }
        });
    }

    #[test]
    fn interleaved_posts_complete_in_request_order() {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            // Post receives before sends; arrival order is irrelevant.
            let r1 = c.irecv(peer, 100).unwrap();
            let r2 = c.irecv(peer, 200).unwrap();
            c.isend(peer, 200, b"late-tag").unwrap();
            c.isend(peer, 100, b"early-tag").unwrap();
            let got = c.wait_all(vec![r1, r2]).unwrap();
            assert_eq!(&got[0][..], b"early-tag");
            assert_eq!(&got[1][..], b"late-tag");
        });
    }
}
