//! Error type for communication operations.

use std::fmt;
use std::time::Duration;

/// Which communication operation a fault hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// The fault hit a send.
    Send,
    /// The fault hit a receive.
    Recv,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Send => write!(f, "send"),
            FaultOp::Recv => write!(f, "recv"),
        }
    }
}

/// Errors surfaced by the message-passing layer.
///
/// In a healthy run none of these occur; they exist so that tests fail with
/// a diagnosis instead of deadlocking, and so that misuse (bad rank, zero
/// chunk size) is rejected eagerly. The `Transient` and `Corrupt` variants
/// only arise under an injected [`crate::faults::FaultPlan`] whose fault
/// bursts exceed the retry budget — a recoverable plan never surfaces them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank id is outside `0..size`.
    InvalidRank {
        /// The offending rank id.
        rank: usize,
        /// Number of ranks in the universe.
        size: usize,
    },
    /// A receive did not complete within the deadline — almost always a
    /// deadlock in the calling protocol (e.g. two ranks both blocking-send
    /// with a rendezvous transport, or mismatched tags).
    RecvTimeout {
        /// Rank we were receiving from.
        src: usize,
        /// Tag we were matching.
        tag: u64,
        /// How long we waited.
        waited: Duration,
    },
    /// The peer's mailbox has been dropped; the universe is shutting down
    /// or the peer thread panicked.
    Disconnected {
        /// The peer rank.
        peer: usize,
    },
    /// A configuration value was invalid (e.g. zero maximum message size).
    InvalidConfig(&'static str),
    /// The wait-for-graph detector proved no rank can make progress: every
    /// stuck rank waits on a peer that will never send. Carries the full
    /// per-rank diagnostic so the failure names the protocol bug directly.
    Deadlock {
        /// Rank that raised the diagnosis.
        rank: usize,
        /// Ranks that can never be satisfied.
        stuck: Vec<usize>,
        /// Rendered per-rank wait-for table (rank → waiting-on peer/tag →
        /// queue depths).
        detail: String,
    },
    /// An injected transient fault persisted past the bounded retry
    /// budget. Retryable in principle — a longer budget would have
    /// recovered — but surfaced as a typed error instead of hanging.
    Transient {
        /// Whether the send or the receive side gave up.
        op: FaultOp,
        /// The peer rank of the failed operation.
        peer: usize,
        /// Attempts made before giving up (first try + retries).
        attempts: u32,
    },
    /// A collective collapse targeted a measurement outcome whose
    /// all-reduced probability is (numerically) zero. Raised by the
    /// distributed measurement path instead of asserting, so a caller
    /// bug surfaces as a diagnosable error on every rank rather than a
    /// poisoned universe. (The probability itself is not carried: it is
    /// below the 1e-15 floor by definition, and keeping the variant
    /// field-comparable preserves `Eq` for the whole error type.)
    ImpossibleOutcome {
        /// The measured qubit.
        qubit: u32,
        /// The requested classical outcome.
        bit: u8,
    },
    /// The static plan verifier (`qse-check::verify`) refused an
    /// execution plan before a byte moved: its symbolic trace violates
    /// protocol matching, deadlock freedom, buffer bounds, or layout
    /// soundness. Carries the verifier's rendered diagnosis (per-rank,
    /// naming the offending plan step) so the pre-flight rejection is as
    /// actionable as a runtime deadlock report.
    PlanRejected {
        /// Rendered verification failure.
        detail: String,
    },
    /// Checksummed payloads from `(src, tag)` kept failing validation and
    /// the retransmit budget ran out with no pristine copy arriving —
    /// permanent corruption on this link.
    Corrupt {
        /// Rank whose payloads failed validation.
        src: usize,
        /// Tag of the corrupted messages.
        tag: u64,
        /// Corrupt copies discarded before giving up.
        discarded: u32,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} (universe size {size})")
            }
            CommError::RecvTimeout { src, tag, waited } => write!(
                f,
                "receive from rank {src} with tag {tag} timed out after {waited:?} (protocol deadlock?)"
            ),
            CommError::Disconnected { peer } => {
                write!(f, "rank {peer} disconnected (thread exited or panicked)")
            }
            CommError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CommError::Deadlock {
                rank,
                stuck,
                detail,
            } => write!(
                f,
                "deadlock detected at rank {rank}: ranks {stuck:?} can never be satisfied; {detail}"
            ),
            CommError::Transient { op, peer, attempts } => write!(
                f,
                "transient {op} fault towards rank {peer} persisted for {attempts} attempts (retry budget exhausted)"
            ),
            CommError::ImpossibleOutcome { qubit, bit } => write!(
                f,
                "cannot collapse qubit {qubit} onto bit {bit}: outcome probability is numerically zero"
            ),
            CommError::PlanRejected { detail } => write!(
                f,
                "execution plan rejected by static verification: {detail}"
            ),
            CommError::Corrupt { src, tag, discarded } => write!(
                f,
                "payload corruption from rank {src} tag {tag}: {discarded} copies failed checksum validation with no pristine retransmission"
            ),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CommError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("invalid rank 9"));
        let e = CommError::RecvTimeout {
            src: 1,
            tag: 42,
            waited: Duration::from_secs(3),
        };
        assert!(e.to_string().contains("tag 42"));
        let e = CommError::Disconnected { peer: 2 };
        assert!(e.to_string().contains("rank 2"));
        let e = CommError::InvalidConfig("zero chunk");
        assert!(e.to_string().contains("zero chunk"));
        let e = CommError::Deadlock {
            rank: 0,
            stuck: vec![0, 1],
            detail: "rank 0 -> waiting on recv(src=1, tag=7)".into(),
        };
        let text = e.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("[0, 1]"));
        assert!(text.contains("tag=7"));
        let e = CommError::Transient {
            op: FaultOp::Send,
            peer: 3,
            attempts: 5,
        };
        let text = e.to_string();
        assert!(text.contains("transient send fault"));
        assert!(text.contains("rank 3"));
        assert!(text.contains("5 attempts"));
        let e = CommError::ImpossibleOutcome { qubit: 6, bit: 1 };
        let text = e.to_string();
        assert!(text.contains("qubit 6"));
        assert!(text.contains("bit 1"));
        let e = CommError::PlanRejected {
            detail: "tag collision on edge 0→1 at plan step 3".into(),
        };
        let text = e.to_string();
        assert!(text.contains("rejected by static verification"));
        assert!(text.contains("plan step 3"));
        let e = CommError::Corrupt {
            src: 2,
            tag: 11,
            discarded: 4,
        };
        let text = e.to_string();
        assert!(text.contains("corruption from rank 2"));
        assert!(text.contains("tag 11"));
        assert!(text.contains("4 copies"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CommError::Disconnected { peer: 1 },
            CommError::Disconnected { peer: 1 }
        );
        assert_ne!(
            CommError::Disconnected { peer: 1 },
            CommError::Disconnected { peer: 2 }
        );
    }
}
