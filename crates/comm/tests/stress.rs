//! Stress and soak tests for the message-passing substrate: larger rank
//! counts, randomised traffic patterns, and interleaved collectives —
//! the failure modes (deadlock, misdelivery, tag collision) that unit
//! tests are too small to provoke.

use qse_comm::chunking::{exchange, ChunkPolicy, ExchangeMode};
use qse_comm::collective;
use qse_comm::Universe;

/// Full pairwise exchange across every rank-bit, 32 ranks — the exact
/// communication pattern of a distributed gate sweep over every global
/// qubit, repeated with both strategies.
#[test]
fn butterfly_exchange_32_ranks() {
    let ranks = 32usize;
    let policy = ChunkPolicy::new(64).unwrap();
    for mode in [ExchangeMode::Blocking, ExchangeMode::NonBlocking] {
        Universe::new(ranks).run(|comm| {
            let me = comm.rank();
            for bit in 0..5u32 {
                let peer = me ^ (1 << bit);
                let payload: Vec<u8> = (0..300).map(|i| (me * 31 + i) as u8).collect();
                let mut recv = Vec::new();
                exchange(
                    mode,
                    comm,
                    peer,
                    bit as u64 + 1,
                    &payload,
                    &mut recv,
                    300,
                    policy,
                )
                .unwrap();
                let expect: Vec<u8> = (0..300).map(|i| (peer * 31 + i) as u8).collect();
                assert_eq!(recv, expect, "bit {bit} mode {mode:?}");
            }
        });
    }
}

/// Randomised all-to-all: every rank sends a distinct payload to every
/// other rank with per-pair tags, receives in a scrambled order, and
/// verifies contents — exercises the unexpected-message queue hard.
#[test]
fn all_to_all_with_scrambled_receive_order() {
    let ranks = 12usize;
    Universe::new(ranks).run(|comm| {
        let me = comm.rank();
        for dst in 0..ranks {
            if dst != me {
                let payload = vec![(me * ranks + dst) as u8; 64];
                comm.send(dst, (me * ranks + dst) as u64, &payload).unwrap();
            }
        }
        // Receive from peers in reverse order to force buffering.
        for src in (0..ranks).rev() {
            if src != me {
                let got = comm.recv(src, (src * ranks + me) as u64).unwrap();
                assert_eq!(got[0] as usize, src * ranks + me);
                assert_eq!(got.len(), 64);
            }
        }
    });
}

/// Collectives interleaved with point-to-point traffic across repeated
/// rounds must neither deadlock nor cross-deliver.
#[test]
fn repeated_collective_rounds() {
    let ranks = 8usize;
    Universe::new(ranks).run(|comm| {
        for round in 0..20u64 {
            let sum = collective::allreduce_sum_u64(comm, comm.rank() as u64).unwrap();
            assert_eq!(sum, (0..ranks as u64).sum::<u64>(), "round {round}");
            let next = (comm.rank() + 1) % ranks;
            let prev = (comm.rank() + ranks - 1) % ranks;
            comm.send(next, 1000 + round, &[round as u8]).unwrap();
            let got = comm.recv(prev, 1000 + round).unwrap();
            assert_eq!(got[0], round as u8);
            comm.barrier();
        }
    });
}

/// Large payloads through tiny chunks: a 1 MiB exchange in 1 KiB
/// messages (1,024 chunks each way) survives both strategies intact.
#[test]
fn megabyte_exchange_in_kilobyte_chunks() {
    let policy = ChunkPolicy::new(1024).unwrap();
    for mode in [ExchangeMode::Blocking, ExchangeMode::NonBlocking] {
        Universe::new(2).run(|comm| {
            let me = comm.rank();
            let n = 1 << 20;
            let payload: Vec<u8> = (0..n).map(|i| ((i * (me + 7)) % 251) as u8).collect();
            let mut recv = Vec::new();
            exchange(mode, comm, 1 - me, 3, &payload, &mut recv, n, policy).unwrap();
            let peer = 1 - me;
            assert!(recv
                .iter()
                .enumerate()
                .all(|(i, &b)| b == ((i * (peer + 7)) % 251) as u8));
        });
    }
}

/// Traffic counters stay exact across a large randomised run.
#[test]
fn counters_are_exact_under_load() {
    let ranks = 6usize;
    let stats = Universe::new(ranks).run(|comm| {
        let me = comm.rank();
        let mut sent = 0u64;
        for round in 0..50u64 {
            let dst = (me + 1 + (round as usize % (ranks - 1))) % ranks;
            let size = 10 + (round as usize * 13) % 90;
            comm.send(dst, 500 + round, &vec![0u8; size]).unwrap();
            sent += size as u64;
        }
        comm.barrier();
        // Drain everything addressed to us.
        let mut received = 0u64;
        for src in 0..ranks {
            if src == me {
                continue;
            }
            for round in 0..50u64 {
                let dst = (src + 1 + (round as usize % (ranks - 1))) % ranks;
                if dst == me {
                    received += comm.recv(src, 500 + round).unwrap().len() as u64;
                }
            }
        }
        comm.barrier();
        (comm.stats(), sent, received)
    });
    for (s, sent, received) in stats {
        assert_eq!(s.bytes_sent, sent);
        assert_eq!(s.bytes_received, received);
        assert_eq!(s.messages_sent, 50);
    }
}
