//! Single-address-space statevector engine.
//!
//! The production kernels without distribution: used by the examples, the
//! layout/fusion benchmarks, and the reference experiments on one "node".
//! Generic over the amplitude [`storage`](crate::storage) layout.

use crate::diagonal::{diagonal_phase, CompiledDiagonal};
use crate::storage::{init_basis, AmpStorage, SoaStorage};
use qse_circuit::transpile::fusion::{fused_schedule, ScheduleStep};
use qse_circuit::{Circuit, Gate};
use qse_math::Complex64;

/// Default fusion threshold for the real engines: every diagonal gate
/// already costs a full sweep here, so fusing any run of ≥ 2 strictly
/// removes sweeps (unlike QuEST's quarter-sweep controlled phases, where
/// the model's break-even sits near 4).
pub const DEFAULT_MIN_FUSE: usize = 2;

/// A full statevector in one address space over storage layout `S`.
#[derive(Debug, Clone)]
pub struct SingleState<S: AmpStorage = SoaStorage> {
    n_qubits: u32,
    amps: S,
}

impl<S: AmpStorage> SingleState<S> {
    /// |00…0⟩ on `n_qubits`.
    pub fn zero_state(n_qubits: u32) -> Self {
        Self::basis_state(n_qubits, 0)
    }

    /// Computational basis state |index⟩.
    pub fn basis_state(n_qubits: u32, index: u64) -> Self {
        assert!(
            n_qubits <= 30,
            "single-process register capped at 30 qubits (16 GiB)"
        );
        let mut amps = S::zeros(1usize << n_qubits);
        init_basis(&mut amps, 0, index);
        SingleState { n_qubits, amps }
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Immutable access to the raw storage.
    pub fn storage(&self) -> &S {
        &self.amps
    }

    /// Mutable access to the raw storage (measurement collapse, tests).
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.amps
    }

    /// Reads one amplitude.
    pub fn amplitude(&self, index: u64) -> Complex64 {
        self.amps.get(crate::ix(index))
    }

    /// All amplitudes as complex values (tests; O(2^n) allocation).
    pub fn to_vec(&self) -> Vec<Complex64> {
        self.amps.to_complex_vec()
    }

    /// Σ|amp|² — must stay 1 under unitary circuits.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.norm_sqr_sum()
    }

    /// Applies a single gate.
    pub fn apply(&mut self, gate: &Gate) {
        assert!(gate.max_qubit() < self.n_qubits, "gate out of range");
        match *gate {
            ref g if g.is_diagonal() => {
                self.amps.apply_phase_fn(0, &|i| diagonal_phase(g, i));
            }
            Gate::Swap(a, b) => self.amps.swap_local(a, b),
            Gate::Unitary2 { a, b, ref matrix } => self.amps.apply_orbit4(a, b, matrix),
            ref g => {
                let Some(m) = g.matrix1() else {
                    unreachable!("all remaining gate kinds are single-target")
                };
                // CNot / CUnitary carry a control; everything else is plain.
                self.amps.apply_pairs(g.target(), &m, g.control());
            }
        }
    }

    /// Runs a circuit through the fused schedule ([`fused_schedule`] at
    /// [`DEFAULT_MIN_FUSE`]): runs of consecutive diagonal gates execute
    /// as single sweeps — the same schedule the analytic model prices.
    /// Bit-for-bit identical to [`Self::run_unfused`].
    pub fn run(&mut self, circuit: &Circuit) {
        self.run_fused(circuit, DEFAULT_MIN_FUSE);
    }

    /// Runs a circuit gate by gate (no fusion) — one sweep per gate. The
    /// baseline the measured-fusion ablation and the equivalence property
    /// tests compare against.
    pub fn run_unfused(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "width mismatch");
        for g in circuit.gates() {
            self.apply(g);
        }
    }

    /// Runs a circuit with maximal diagonal runs (≥ `min_fuse` gates)
    /// applied as single fused sweeps — QuEST's efficient controlled-phase
    /// path, executed rather than modeled. Semantically identical to
    /// [`Self::run_unfused`].
    pub fn run_fused(&mut self, circuit: &Circuit, min_fuse: usize) {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "width mismatch");
        for step in fused_schedule(circuit, min_fuse) {
            match step {
                ScheduleStep::Single(i) => self.apply(&circuit.gates()[i]),
                ScheduleStep::Fused(run) => {
                    let compiled =
                        CompiledDiagonal::compile(&circuit.gates()[run.start..run.end]);
                    self.amps.apply_fused_diagonal(0, &compiled);
                }
            }
        }
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn prob_one(&self, qubit: u32) -> f64 {
        assert!(qubit < self.n_qubits);
        let mut p = 0.0;
        let mask = 1u64 << qubit;
        for i in 0..self.amps.len() as u64 {
            if i & mask != 0 {
                p += self.amps.get(crate::ix(i)).norm_sqr();
            }
        }
        p
    }
}

impl SingleState<SoaStorage> {
    /// Convenience: simulate from |0…0⟩ with the default (QuEST) layout.
    pub fn simulate(circuit: &Circuit) -> Self {
        let mut s = SingleState::zero_state(circuit.n_qubits());
        s.run(circuit);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceState;
    use crate::storage::AosStorage;
    use qse_circuit::qft::qft;
    use qse_circuit::random::{random_circuit, GatePool};
    use qse_math::approx::{assert_close, assert_slices_close};

    fn assert_matches_reference<S: AmpStorage>(n: u32, gates: usize, pool: GatePool, seed: u64) {
        let c = random_circuit(n, gates, pool, seed);
        let mut got: SingleState<S> = SingleState::zero_state(n);
        got.run(&c);
        let want = ReferenceState::simulate(&c);
        assert_slices_close(&got.to_vec(), want.amplitudes(), 1e-9);
    }

    #[test]
    fn soa_matches_reference_on_random_circuits() {
        for seed in 0..6 {
            assert_matches_reference::<SoaStorage>(6, 100, GatePool::Full, seed);
        }
    }

    #[test]
    fn aos_matches_reference_on_random_circuits() {
        for seed in 0..6 {
            assert_matches_reference::<AosStorage>(6, 100, GatePool::Full, seed);
        }
    }

    #[test]
    fn qft_like_circuits_match_reference() {
        for seed in 0..4 {
            assert_matches_reference::<SoaStorage>(7, 120, GatePool::QftLike, seed);
        }
    }

    #[test]
    fn qft_matches_reference() {
        let c = qft(8);
        let mut got: SingleState = SingleState::basis_state(8, 137);
        got.run(&c);
        let mut want = ReferenceState::basis_state(8, 137);
        want.run(&c);
        assert_slices_close(&got.to_vec(), want.amplitudes(), 1e-9);
    }

    #[test]
    fn fused_run_matches_plain_run() {
        for seed in 0..4 {
            let c = random_circuit(6, 150, GatePool::Full, seed + 100);
            let mut plain: SingleState = SingleState::zero_state(6);
            plain.run_unfused(&c);
            for min_fuse in [1, 2, 4] {
                let mut fused: SingleState = SingleState::zero_state(6);
                fused.run_fused(&c, min_fuse);
                assert_slices_close(&fused.to_vec(), &plain.to_vec(), 1e-9);
            }
        }
    }

    #[test]
    fn default_run_is_bitwise_identical_to_unfused() {
        // `run` now executes the fused schedule; the contract is bit-for-
        // bit equality with gate-at-a-time execution, not mere closeness.
        for seed in 0..4 {
            let c = random_circuit(7, 200, GatePool::QftLike, seed + 300);
            let mut fused: SingleState = SingleState::basis_state(7, 45);
            fused.run(&c);
            let mut plain: SingleState = SingleState::basis_state(7, 45);
            plain.run_unfused(&c);
            for (i, (f, p)) in fused.to_vec().iter().zip(plain.to_vec()).enumerate() {
                assert_eq!(f.re.to_bits(), p.re.to_bits(), "re at {i} seed {seed}");
                assert_eq!(f.im.to_bits(), p.im.to_bits(), "im at {i} seed {seed}");
            }
        }
    }

    #[test]
    fn norm_preserved() {
        let c = random_circuit(8, 200, GatePool::Full, 77);
        let mut s: SingleState = SingleState::zero_state(8);
        s.run(&c);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    fn prob_one_on_plus_state() {
        let mut s: SingleState = SingleState::zero_state(3);
        s.apply(&Gate::H(1));
        assert_close(s.prob_one(1), 0.5, 1e-12);
        assert_close(s.prob_one(0), 0.0, 1e-12);
    }

    #[test]
    fn inverse_restores_basis_state() {
        let c = random_circuit(7, 80, GatePool::Full, 5);
        let mut s: SingleState = SingleState::basis_state(7, 99);
        s.run(&c);
        s.run(&c.inverse());
        assert_close(s.amplitude(99).re, 1.0, 1e-9);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_rejected() {
        let c = Circuit::new(3);
        let mut s: SingleState = SingleState::zero_state(4);
        s.run(&c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_gate_rejected() {
        let mut s: SingleState = SingleState::zero_state(2);
        s.apply(&Gate::H(2));
    }
}
