//! Array-of-structures layout: interleaved complex amplitudes.
//!
//! The paper's §4 future work: "reimplement QuEST's core data-structures
//! using a complex data type rather than separate real and imaginary
//! arrays, in order to improve data locality". Each amplitude pair update
//! touches two 16-byte values instead of four 8-byte values in two far-
//! apart streams.

use super::{AmpStorage, PAR_THRESHOLD};
use crate::diagonal::CompiledDiagonal;
use qse_math::bits;
use qse_math::{Complex64, Matrix2};
use qse_util::parallel::{parallel_for_each, parallel_map_sum};

/// Interleaved `Complex64` amplitude array.
#[derive(Debug, Clone, PartialEq)]
pub struct AosStorage {
    amps: Vec<Complex64>,
}

const HALF_CHUNK: usize = 4096;

#[inline(always)]
fn apply_block(chunk: &mut [Complex64], stride: usize, base: usize, m: &Matrix2, ctrl_mask: u64) {
    let (m00, m01, m10, m11) = (m.m[0], m.m[1], m.m[2], m.m[3]);
    let (lo, hi) = chunk.split_at_mut(stride);
    for k in 0..stride {
        if ctrl_mask != 0 && (base + k) as u64 & ctrl_mask == 0 {
            continue;
        }
        let a0 = lo[k];
        let a1 = hi[k];
        lo[k] = m00 * a0 + m01 * a1;
        hi[k] = m10 * a0 + m11 * a1;
    }
}

impl AmpStorage for AosStorage {
    fn zeros(len: usize) -> Self {
        assert!(bits::is_pow2(len as u64), "length must be a power of two");
        AosStorage {
            amps: vec![Complex64::ZERO; len],
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.amps.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> Complex64 {
        self.amps[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: Complex64) {
        self.amps[i] = v;
    }

    fn fill_zero(&mut self) {
        self.amps.fill(Complex64::ZERO);
    }

    fn norm_sqr_sum(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<&[Complex64]> = self.amps.chunks(HALF_CHUNK).collect();
            parallel_map_sum(chunks, |c| c.iter().map(|a| a.norm_sqr()).sum())
        } else {
            self.amps.iter().map(|a| a.norm_sqr()).sum()
        }
    }

    fn apply_pairs(&mut self, q: u32, m: &Matrix2, control: Option<u32>) {
        let len = self.len();
        let stride = 1usize << q;
        let block = stride << 1;
        assert!(block <= len, "qubit {q} out of range for {len} amplitudes");
        if let Some(c) = control {
            debug_assert_ne!(c, q, "control equals target");
        }
        let ctrl_mask = control.map_or(0u64, |c| 1u64 << c);
        if len >= PAR_THRESHOLD && block < len {
            let m = *m;
            // Batch several blocks per work item (see SoA kernel).
            let blocks_per_task = (HALF_CHUNK / block).max(1);
            let task = block * blocks_per_task;
            let chunks: Vec<(usize, &mut [Complex64])> =
                self.amps.chunks_mut(task).enumerate().collect();
            parallel_for_each(chunks, |(ti, tc)| {
                let base = ti * task;
                for (bi, chunk) in tc.chunks_mut(block).enumerate() {
                    apply_block(chunk, stride, base + bi * block, &m, ctrl_mask);
                }
            });
        } else if len >= PAR_THRESHOLD {
            let (m00, m01, m10, m11) = (m.m[0], m.m[1], m.m[2], m.m[3]);
            let (lo, hi) = self.amps.split_at_mut(stride);
            let chunks: Vec<(usize, &mut [Complex64], &mut [Complex64])> = lo
                .chunks_mut(HALF_CHUNK)
                .zip(hi.chunks_mut(HALF_CHUNK))
                .enumerate()
                .map(|(ci, (lc, hc))| (ci, lc, hc))
                .collect();
            parallel_for_each(chunks, |(ci, lc, hc)| {
                let base = ci * HALF_CHUNK;
                for k in 0..lc.len() {
                    if ctrl_mask != 0 && (base + k) as u64 & ctrl_mask == 0 {
                        continue;
                    }
                    let a0 = lc[k];
                    let a1 = hc[k];
                    lc[k] = m00 * a0 + m01 * a1;
                    hc[k] = m10 * a0 + m11 * a1;
                }
            });
        } else {
            for bi in 0..len / block {
                let lo = bi * block;
                apply_block(&mut self.amps[lo..lo + block], stride, lo, m, ctrl_mask);
            }
        }
    }

    fn apply_fused_diagonal(&mut self, offset: u64, run: &CompiledDiagonal) {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [Complex64])> =
                self.amps.chunks_mut(HALF_CHUNK).enumerate().collect();
            parallel_for_each(chunks, |(ci, chunk)| {
                let base = ci * HALF_CHUNK;
                for (k, a) in chunk.iter_mut().enumerate() {
                    *a = run.apply(offset | (base + k) as u64, *a);
                }
            });
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = run.apply(offset | i as u64, *a);
            }
        }
    }

    fn apply_phase_fn(&mut self, offset: u64, phase: &(dyn Fn(u64) -> Complex64 + Sync)) {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [Complex64])> =
                self.amps.chunks_mut(HALF_CHUNK).enumerate().collect();
            parallel_for_each(chunks, |(ci, chunk)| {
                let base = ci * HALF_CHUNK;
                for (k, a) in chunk.iter_mut().enumerate() {
                    *a *= phase(offset | (base + k) as u64);
                }
            });
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a *= phase(offset | i as u64);
            }
        }
    }

    fn swap_local(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "swap qubits must differ");
        let len = self.len() as u64;
        for k in 0..len / 4 {
            let base = bits::insert_two_zero_bits(k, a, b);
            let i = (base | (1 << a)) as usize;
            let j = (base | (1 << b)) as usize;
            self.amps.swap(i, j);
        }
    }

    fn combine_rows(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        theirs: &[f64],
        control: Option<u32>,
    ) {
        assert_eq!(theirs.len(), self.len() * 2, "pair buffer size mismatch");
        self.apply_distributed_1q_range(c_mine, c_theirs, theirs, 0, control);
    }

    fn apply_distributed_1q_range(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        chunk: &[f64],
        start: usize,
        control: Option<u32>,
    ) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        let ctrl_mask = control.map_or(0u64, |c| 1u64 << c);
        let amps = &mut self.amps[start..start + n];
        if n >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [Complex64], &[f64])> = amps
                .chunks_mut(HALF_CHUNK)
                .zip(chunk.chunks(HALF_CHUNK * 2))
                .enumerate()
                .map(|(ci, (ac, tc))| (ci, ac, tc))
                .collect();
            parallel_for_each(chunks, |(ci, ac, tc)| {
                let base = start + ci * HALF_CHUNK;
                for (k, a) in ac.iter_mut().enumerate() {
                    if ctrl_mask != 0 && (base + k) as u64 & ctrl_mask == 0 {
                        continue;
                    }
                    let other = Complex64::new(tc[2 * k], tc[2 * k + 1]);
                    *a = c_mine * *a + c_theirs * other;
                }
            });
        } else {
            for (k, a) in amps.iter_mut().enumerate() {
                if ctrl_mask != 0 && (start + k) as u64 & ctrl_mask == 0 {
                    continue;
                }
                let other = Complex64::new(chunk[2 * k], chunk[2 * k + 1]);
                *a = c_mine * *a + c_theirs * other;
            }
        }
    }

    fn write_f64_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len() * 2);
        for a in &self.amps {
            out.push(a.re);
            out.push(a.im);
        }
    }

    fn copy_from_f64(&mut self, data: &[f64]) {
        assert_eq!(data.len(), self.len() * 2, "buffer size mismatch");
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = Complex64::new(data[2 * i], data[2 * i + 1]);
        }
    }

    fn extract_half_bit_into(&self, q: u32, v: u64, out: &mut Vec<f64>) {
        let half = self.len() / 2;
        out.clear();
        out.reserve(half * 2);
        for k in 0..half as u64 {
            let i = (bits::insert_zero_bit(k, q) | (v << q)) as usize;
            out.push(self.amps[i].re);
            out.push(self.amps[i].im);
        }
    }

    fn write_half_bit(&mut self, q: u32, v: u64, data: &[f64]) {
        let half = self.len() / 2;
        assert_eq!(data.len(), half * 2, "half buffer size mismatch");
        for k in 0..half as u64 {
            let i = (bits::insert_zero_bit(k, q) | (v << q)) as usize;
            self.amps[i] = Complex64::new(data[2 * k as usize], data[2 * k as usize + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_complex_close;

    #[test]
    fn conformance_suite() {
        crate::storage::conformance::run_all::<AosStorage>();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_rejected() {
        AosStorage::zeros(12);
    }

    #[test]
    fn layouts_agree_on_random_sweeps() {
        // Same gate sequence on both layouts yields identical amplitudes.
        use crate::storage::SoaStorage;
        let n = 512;
        let mut soa = SoaStorage::zeros(n);
        let mut aos = AosStorage::zeros(n);
        soa.set(0, Complex64::ONE);
        aos.set(0, Complex64::ONE);
        let h = {
            let v = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
            Matrix2::new(v, v, v, -v)
        };
        for q in 0..9u32 {
            soa.apply_pairs(q, &h, None);
            aos.apply_pairs(q, &h, None);
        }
        soa.swap_local(0, 8);
        aos.swap_local(0, 8);
        soa.apply_phase_fn(0, &|i| Complex64::cis(i as f64 * 0.01));
        aos.apply_phase_fn(0, &|i| Complex64::cis(i as f64 * 0.01));
        for i in 0..n {
            assert_complex_close(soa.get(i), aos.get(i), 1e-12);
        }
    }
}
