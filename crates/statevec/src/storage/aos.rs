//! Array-of-structures layout: interleaved complex amplitudes.
//!
//! The paper's §4 future work: "reimplement QuEST's core data-structures
//! using a complex data type rather than separate real and imaginary
//! arrays, in order to improve data locality". Each amplitude pair update
//! touches two 16-byte values instead of four 8-byte values in two far-
//! apart streams.
//!
//! The sweep bodies mirror [`super::SoaStorage`]'s: bounds-check-free
//! inner loops over equal-length lower/upper sub-slices, hoisted control
//! tests ([`kernel::Ctrl`]), AVX2+FMA / baseline dual compilation picked
//! at runtime by [`kernel::use_fma`], and affinity-stable parallel
//! dispatch through [`parallel_for_each_affine`].

use super::kernel::{self, Ctrl};
use super::{AmpStorage, HALF_CHUNK, PAR_THRESHOLD};
use crate::diagonal::CompiledDiagonal;
use qse_math::bits;
use qse_math::{Complex64, Matrix2};
use qse_util::parallel::{parallel_for_each_affine, parallel_map_sum};

/// Interleaved `Complex64` amplitude array.
#[derive(Debug, Clone, PartialEq)]
pub struct AosStorage {
    amps: Vec<Complex64>,
}

/// Innermost pair loop: updates `(lo[k], hi[k])` for every `k`. Both
/// slices have the same length; re-slicing proves it to the compiler.
#[inline(always)]
fn run_pairs<const FMA: bool>(lo: &mut [Complex64], hi: &mut [Complex64], m: &Matrix2) {
    let n = lo.len();
    let hi = &mut hi[..n];
    for k in 0..n {
        let (a, b) = (lo[k], hi[k]);
        let (r0, i0, r1, i1) = kernel::pair_terms::<FMA>(a.re, a.im, b.re, b.im, m);
        lo[k] = Complex64::new(r0, i0);
        hi[k] = Complex64::new(r1, i1);
    }
}

/// Pair sweep for strides below the vector width, with the stride a
/// compile-time constant so the compiler vectorizes across blocks.
#[inline(always)]
fn small_stride_body<const FMA: bool, const STRIDE: usize>(amps: &mut [Complex64], m: &Matrix2) {
    for blk in amps.chunks_exact_mut(2 * STRIDE) {
        let (lo, hi) = blk.split_at_mut(STRIDE);
        for k in 0..STRIDE {
            let (a, b) = (lo[k], hi[k]);
            let (r0, i0, r1, i1) = kernel::pair_terms::<FMA>(a.re, a.im, b.re, b.im, m);
            lo[k] = Complex64::new(r0, i0);
            hi[k] = Complex64::new(r1, i1);
        }
    }
}

/// Sweeps a contiguous region of whole `2·stride` blocks whose first
/// amplitude has local index `base`.
#[inline(always)]
fn region_body<const FMA: bool>(
    amps: &mut [Complex64],
    stride: usize,
    base: usize,
    m: &Matrix2,
    ctrl: Ctrl,
) {
    if matches!(ctrl, Ctrl::All) {
        match stride {
            1 => return small_stride_body::<FMA, 1>(amps, m),
            2 => return small_stride_body::<FMA, 2>(amps, m),
            4 => return small_stride_body::<FMA, 4>(amps, m),
            _ => {}
        }
    }
    let block = stride << 1;
    for (bi, blk) in amps.chunks_exact_mut(block).enumerate() {
        let lo = base + bi * block;
        if let Ctrl::Block(mask) = ctrl {
            if lo as u64 & mask == 0 {
                continue;
            }
        }
        let (blo, bhi) = blk.split_at_mut(stride);
        if let Ctrl::Run(run) = ctrl {
            kernel::for_each_ctrl_run(0, stride, run, |a, b| {
                run_pairs::<FMA>(&mut blo[a..b], &mut bhi[a..b], m);
            });
        } else {
            run_pairs::<FMA>(blo, bhi, m);
        }
    }
}

/// [`region_body`] compiled with AVX2+FMA codegen.
///
/// SAFETY: callers must have verified `avx2` and `fma` CPU support.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn region_fma(amps: &mut [Complex64], stride: usize, base: usize, m: &Matrix2, ctrl: Ctrl) {
    region_body::<true>(amps, stride, base, m, ctrl)
}

/// Runtime-dispatched region sweep.
fn sweep_region(amps: &mut [Complex64], stride: usize, base: usize, m: &Matrix2, ctrl: Ctrl) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if kernel::use_fma() {
        // SAFETY: `use_fma` verified avx2+fma support on this CPU.
        unsafe { region_fma(amps, stride, base, m, ctrl) };
        return;
    }
    region_body::<false>(amps, stride, base, m, ctrl)
}

/// Sweeps one zipped sub-chunk of the single top-qubit block (see the
/// SoA twin for the half-index/control-bit argument).
#[inline(always)]
fn halves_body<const FMA: bool>(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    base: usize,
    m: &Matrix2,
    run_ctrl: Option<usize>,
) {
    match run_ctrl {
        None => run_pairs::<FMA>(lo, hi, m),
        Some(run) => kernel::for_each_ctrl_run(base, lo.len(), run, |a, b| {
            let (a, b) = (a - base, b - base);
            run_pairs::<FMA>(&mut lo[a..b], &mut hi[a..b], m);
        }),
    }
}

/// [`halves_body`] compiled with AVX2+FMA codegen.
///
/// SAFETY: callers must have verified `avx2` and `fma` CPU support.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn halves_fma(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    base: usize,
    m: &Matrix2,
    run_ctrl: Option<usize>,
) {
    halves_body::<true>(lo, hi, base, m, run_ctrl)
}

/// Runtime-dispatched top-qubit sweep.
fn sweep_halves(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    base: usize,
    m: &Matrix2,
    run_ctrl: Option<usize>,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if kernel::use_fma() {
        // SAFETY: `use_fma` verified avx2+fma support on this CPU.
        unsafe { halves_fma(lo, hi, base, m, run_ctrl) };
        return;
    }
    halves_body::<false>(lo, hi, base, m, run_ctrl)
}

/// Distributed combine over amplitudes `[start, start + amps.len())`.
#[inline(always)]
fn combine_body<const FMA: bool>(
    amps: &mut [Complex64],
    pairs: &[f64],
    start: usize,
    c_mine: Complex64,
    c_theirs: Complex64,
    ctrl_run: Option<usize>,
) {
    let n = amps.len();
    let pairs = &pairs[..2 * n];
    match ctrl_run {
        None => {
            for k in 0..n {
                let other = Complex64::new(pairs[2 * k], pairs[2 * k + 1]);
                amps[k] = kernel::combine_term::<FMA>(c_mine, amps[k], c_theirs, other);
            }
        }
        Some(run) => kernel::for_each_ctrl_run(start, n, run, |a, b| {
            for i in a..b {
                let k = i - start;
                let other = Complex64::new(pairs[2 * k], pairs[2 * k + 1]);
                amps[k] = kernel::combine_term::<FMA>(c_mine, amps[k], c_theirs, other);
            }
        }),
    }
}

/// [`combine_body`] compiled with AVX2+FMA codegen.
///
/// SAFETY: callers must have verified `avx2` and `fma` CPU support.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn combine_fma(
    amps: &mut [Complex64],
    pairs: &[f64],
    start: usize,
    c_mine: Complex64,
    c_theirs: Complex64,
    ctrl_run: Option<usize>,
) {
    combine_body::<true>(amps, pairs, start, c_mine, c_theirs, ctrl_run)
}

/// Runtime-dispatched combine sweep.
fn sweep_combine(
    amps: &mut [Complex64],
    pairs: &[f64],
    start: usize,
    c_mine: Complex64,
    c_theirs: Complex64,
    ctrl_run: Option<usize>,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if kernel::use_fma() {
        // SAFETY: `use_fma` verified avx2+fma support on this CPU.
        unsafe { combine_fma(amps, pairs, start, c_mine, c_theirs, ctrl_run) };
        return;
    }
    combine_body::<false>(amps, pairs, start, c_mine, c_theirs, ctrl_run)
}

/// Contiguous orbit swaps for qubits `a < b` (see the SoA twin).
#[inline(always)]
fn swap_runs(lo: &mut [Complex64], hi: &mut [Complex64], run: usize) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len() % (run << 1), 0);
    let mut o = run;
    while o < lo.len() {
        lo[o..o + run].swap_with_slice(&mut hi[o - run..o]);
        o += run << 1;
    }
}

impl AmpStorage for AosStorage {
    fn zeros(len: usize) -> Self {
        assert!(bits::is_pow2(len as u64), "length must be a power of two");
        let mut s = AosStorage {
            amps: vec![Complex64::ZERO; len],
        };
        // First-touch: fault pages in on their affine owner slots.
        s.fill_zero();
        s
    }

    #[inline]
    fn len(&self) -> usize {
        self.amps.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> Complex64 {
        self.amps[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: Complex64) {
        self.amps[i] = v;
    }

    fn fill_zero(&mut self) {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<&mut [Complex64]> = self.amps.chunks_mut(HALF_CHUNK).collect();
            parallel_for_each_affine(chunks, |c| c.fill(Complex64::ZERO));
        } else {
            self.amps.fill(Complex64::ZERO);
        }
    }

    fn norm_sqr_sum(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<&[Complex64]> = self.amps.chunks(HALF_CHUNK).collect();
            parallel_map_sum(chunks, |c| c.iter().map(|a| a.norm_sqr()).sum())
        } else {
            self.amps.iter().map(|a| a.norm_sqr()).sum()
        }
    }

    fn apply_pairs(&mut self, q: u32, m: &Matrix2, control: Option<u32>) {
        let len = self.len();
        let stride = 1usize << q;
        let block = stride << 1;
        assert!(block <= len, "qubit {q} out of range for {len} amplitudes");
        if let Some(c) = control {
            debug_assert_ne!(c, q, "control equals target");
        }
        let ctrl = Ctrl::new(q, control);
        if len >= PAR_THRESHOLD && block < len {
            let m = *m;
            // Batch several blocks per work item (see SoA kernel).
            let blocks_per_task = (HALF_CHUNK / block).max(1);
            let task = block * blocks_per_task;
            let chunks: Vec<(usize, &mut [Complex64])> =
                self.amps.chunks_mut(task).enumerate().collect();
            parallel_for_each_affine(chunks, |(ti, tc)| {
                sweep_region(tc, stride, ti * task, &m, ctrl);
            });
        } else if len >= PAR_THRESHOLD {
            // Single block: q is the top local qubit, so any control sits
            // below it.
            let m = *m;
            let run_ctrl = control.map(|c| 1usize << c);
            let (lo, hi) = self.amps.split_at_mut(stride);
            let chunks: Vec<(usize, &mut [Complex64], &mut [Complex64])> = lo
                .chunks_mut(HALF_CHUNK)
                .zip(hi.chunks_mut(HALF_CHUNK))
                .enumerate()
                .map(|(ci, (lc, hc))| (ci, lc, hc))
                .collect();
            parallel_for_each_affine(chunks, |(ci, lc, hc)| {
                sweep_halves(lc, hc, ci * HALF_CHUNK, &m, run_ctrl);
            });
        } else {
            sweep_region(&mut self.amps, stride, 0, m, ctrl);
        }
    }

    fn apply_fused_diagonal(&mut self, offset: u64, run: &CompiledDiagonal) {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [Complex64])> =
                self.amps.chunks_mut(HALF_CHUNK).enumerate().collect();
            parallel_for_each_affine(chunks, |(ci, chunk)| {
                let base = ci * HALF_CHUNK;
                for (k, a) in chunk.iter_mut().enumerate() {
                    *a = run.apply(offset | (base + k) as u64, *a);
                }
            });
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = run.apply(offset | i as u64, *a);
            }
        }
    }

    fn apply_phase_fn(&mut self, offset: u64, phase: &(dyn Fn(u64) -> Complex64 + Sync)) {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [Complex64])> =
                self.amps.chunks_mut(HALF_CHUNK).enumerate().collect();
            parallel_for_each_affine(chunks, |(ci, chunk)| {
                let base = ci * HALF_CHUNK;
                for (k, a) in chunk.iter_mut().enumerate() {
                    *a *= phase(offset | (base + k) as u64);
                }
            });
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a *= phase(offset | i as u64);
            }
        }
    }

    fn swap_local(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "swap qubits must differ");
        let len = self.len();
        let (a, b) = (a.min(b), a.max(b));
        let run = 1usize << a;
        let seg = 1usize << b;
        let group = seg << 1;
        assert!(group <= len, "qubit {b} out of range for {len} amplitudes");
        if len >= PAR_THRESHOLD && group < len {
            let per = (HALF_CHUNK / group).max(1);
            let task = group * per;
            let chunks: Vec<&mut [Complex64]> = self.amps.chunks_mut(task).collect();
            parallel_for_each_affine(chunks, |tc| {
                for g in tc.chunks_exact_mut(group) {
                    let (lo, hi) = g.split_at_mut(seg);
                    swap_runs(lo, hi, run);
                }
            });
        } else if len >= PAR_THRESHOLD {
            // b is the top local qubit: zip-chunk the halves, keeping
            // chunks aligned to the 2^(a+1) run period.
            let chunk = HALF_CHUNK.max(run << 1);
            let (lo, hi) = self.amps.split_at_mut(seg);
            let items: Vec<(&mut [Complex64], &mut [Complex64])> =
                lo.chunks_mut(chunk).zip(hi.chunks_mut(chunk)).collect();
            parallel_for_each_affine(items, |(lc, hc)| swap_runs(lc, hc, run));
        } else {
            for g in self.amps.chunks_exact_mut(group) {
                let (lo, hi) = g.split_at_mut(seg);
                swap_runs(lo, hi, run);
            }
        }
    }

    fn combine_rows(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        theirs: &[f64],
        control: Option<u32>,
    ) {
        assert_eq!(theirs.len(), self.len() * 2, "pair buffer size mismatch");
        self.apply_distributed_1q_range(c_mine, c_theirs, theirs, 0, control);
    }

    fn apply_distributed_1q_range(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        chunk: &[f64],
        start: usize,
        control: Option<u32>,
    ) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        let ctrl_run = control.map(|c| 1usize << c);
        let amps = &mut self.amps[start..start + n];
        if n >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [Complex64], &[f64])> = amps
                .chunks_mut(HALF_CHUNK)
                .zip(chunk.chunks(HALF_CHUNK * 2))
                .enumerate()
                .map(|(ci, (ac, tc))| (ci, ac, tc))
                .collect();
            parallel_for_each_affine(chunks, |(ci, ac, tc)| {
                sweep_combine(ac, tc, start + ci * HALF_CHUNK, c_mine, c_theirs, ctrl_run);
            });
        } else {
            sweep_combine(amps, chunk, start, c_mine, c_theirs, ctrl_run);
        }
    }

    fn write_f64_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len() * 2);
        for a in &self.amps {
            out.push(a.re);
            out.push(a.im);
        }
    }

    fn copy_from_f64(&mut self, data: &[f64]) {
        assert_eq!(data.len(), self.len() * 2, "buffer size mismatch");
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = Complex64::new(data[2 * i], data[2 * i + 1]);
        }
    }

    fn extract_half_bit_into(&self, q: u32, v: u64, out: &mut Vec<f64>) {
        let half = self.len() / 2;
        out.clear();
        out.reserve(half * 2);
        for k in 0..half as u64 {
            let i = crate::ix(bits::insert_zero_bit(k, q) | (v << q));
            out.push(self.amps[i].re);
            out.push(self.amps[i].im);
        }
    }

    fn write_half_bit(&mut self, q: u32, v: u64, data: &[f64]) {
        let half = self.len() / 2;
        assert_eq!(data.len(), half * 2, "half buffer size mismatch");
        for k in 0..half as u64 {
            let i = crate::ix(bits::insert_zero_bit(k, q) | (v << q));
            self.amps[i] = Complex64::new(data[2 * crate::ix(k)], data[2 * crate::ix(k) + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_complex_close;

    #[test]
    fn conformance_suite() {
        crate::storage::conformance::run_all::<AosStorage>();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_rejected() {
        AosStorage::zeros(12);
    }

    #[test]
    fn layouts_agree_on_random_sweeps() {
        // Same gate sequence on both layouts yields identical amplitudes.
        use crate::storage::SoaStorage;
        let n = 512;
        let mut soa = SoaStorage::zeros(n);
        let mut aos = AosStorage::zeros(n);
        soa.set(0, Complex64::ONE);
        aos.set(0, Complex64::ONE);
        let h = {
            let v = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
            Matrix2::new(v, v, v, -v)
        };
        for q in 0..9u32 {
            soa.apply_pairs(q, &h, None);
            aos.apply_pairs(q, &h, None);
        }
        soa.swap_local(0, 8);
        aos.swap_local(0, 8);
        soa.apply_phase_fn(0, &|i| Complex64::cis(i as f64 * 0.01));
        aos.apply_phase_fn(0, &|i| Complex64::cis(i as f64 * 0.01));
        for i in 0..n {
            assert_complex_close(soa.get(i), aos.get(i), 1e-12);
        }
    }
}
