//! Shared per-element arithmetic and control-hoisting for the sweep
//! kernels, used by both storage layouts.
//!
//! The hot loops come in two codegen flavours selected once per process:
//!
//! * **FMA** (`pair_terms::<true>`): explicit [`f64::mul_add`] chains,
//!   compiled inside `#[target_feature(enable = "avx2", enable = "fma")]`
//!   wrappers in the layout modules. rustc never contracts `a*b + c`
//!   into an FMA on its own, so the fused form must be spelled out — and
//!   it must only run where the `fma` feature is enabled, because the
//!   soft-float `mul_add` fallback is an order of magnitude slower than
//!   separate multiply/add.
//! * **plain** (`pair_terms::<false>`): the historical `Complex64`
//!   operator formula, auto-vectorized at the build's baseline features.
//!
//! Every sweep path (sequential, blocked-parallel, chunked, tail) of a
//! process funnels through the same flavour, so results stay bit-for-bit
//! identical under any `QSE_THREADS` and any chunk decomposition; the
//! flavour itself is latched once, so a process never mixes formulas.

use qse_math::{Complex64, Matrix2};

/// True when the sweeps should run the AVX2+FMA kernel bodies: the CPU
/// supports both features and `QSE_SCALAR_KERNELS` is not set (the
/// escape hatch pins the plain formula for A/B timing or cross-host
/// bitwise reproduction). Latched on first use.
pub fn use_fma() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        static FMA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *FMA.get_or_init(|| {
            std::env::var_os("QSE_SCALAR_KERNELS").is_none()
                && std::is_x86_feature_detected!("avx2")
                && std::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

/// `a·b + c·d + e·f + g·h` with the products fused pairwise — the
/// four-term kernel of a complex 2×2 row. Only meaningful inside an
/// `fma`-enabled function; see the module docs.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mac4(a: f64, b: f64, c: f64, d: f64, e: f64, f: f64, g: f64, h: f64) -> f64 {
    a.mul_add(b, c * d) + e.mul_add(f, g * h)
}

/// One amplitude pair through the 2×2 matrix: returns
/// `(re0', im0', re1', im1')` for inputs `a = re0 + i·im0` (lower) and
/// `b = re1 + i·im1` (upper).
#[inline(always)]
pub fn pair_terms<const FMA: bool>(
    ar: f64,
    ai: f64,
    br: f64,
    bi: f64,
    m: &Matrix2,
) -> (f64, f64, f64, f64) {
    let (m00, m01, m10, m11) = (m.m[0], m.m[1], m.m[2], m.m[3]);
    if FMA {
        (
            mac4(m00.re, ar, -m00.im, ai, m01.re, br, -m01.im, bi),
            mac4(m00.re, ai, m00.im, ar, m01.re, bi, m01.im, br),
            mac4(m10.re, ar, -m10.im, ai, m11.re, br, -m11.im, bi),
            mac4(m10.re, ai, m10.im, ar, m11.re, bi, m11.im, br),
        )
    } else {
        let a0 = Complex64::new(ar, ai);
        let a1 = Complex64::new(br, bi);
        let b0 = m00 * a0 + m01 * a1;
        let b1 = m10 * a0 + m11 * a1;
        (b0.re, b0.im, b1.re, b1.im)
    }
}

/// The distributed-combine element: `c_mine·mine + c_theirs·other`.
#[inline(always)]
pub fn combine_term<const FMA: bool>(
    c_mine: Complex64,
    mine: Complex64,
    c_theirs: Complex64,
    other: Complex64,
) -> Complex64 {
    if FMA {
        Complex64::new(
            mac4(
                c_mine.re, mine.re, -c_mine.im, mine.im, c_theirs.re, other.re, -c_theirs.im,
                other.im,
            ),
            mac4(
                c_mine.re, mine.im, c_mine.im, mine.re, c_theirs.re, other.im, c_theirs.im,
                other.re,
            ),
        )
    } else {
        c_mine * mine + c_theirs * other
    }
}

/// Hoisted control-qubit description for a pair sweep over target `q`,
/// derived once per gate instead of testing `(base + k) & ctrl_mask` on
/// every element.
#[derive(Clone, Copy, Debug)]
pub enum Ctrl {
    /// No control: every pair updates.
    All,
    /// Control above the target: a whole `2^(q+1)` block is selected or
    /// skipped by one test of its base index against this mask.
    Block(u64),
    /// Control below the target: within each half-block the selected
    /// elements form contiguous runs of this length (`2^c`) with period
    /// twice that — enumerated by [`for_each_ctrl_run`].
    Run(usize),
}

impl Ctrl {
    /// Classifies `control` relative to target `q`.
    pub fn new(q: u32, control: Option<u32>) -> Ctrl {
        match control {
            None => Ctrl::All,
            Some(c) if c > q => Ctrl::Block(1u64 << c),
            Some(c) => Ctrl::Run(1usize << c),
        }
    }
}

/// Calls `f(lo, hi)` for every maximal subrange of `[start, start + n)`
/// whose indices all have the control bit set, where `run = 1 << c` is
/// the run length. Runs start at odd multiples of `run` (indices with
/// bit `c` set form `[run, 2·run)` mod `2·run`) and are clipped to the
/// range, so any chunk decomposition enumerates exactly the indices the
/// per-element `& ctrl_mask` test would select.
#[inline(always)]
pub fn for_each_ctrl_run(start: usize, n: usize, run: usize, mut f: impl FnMut(usize, usize)) {
    debug_assert!(run.is_power_of_two());
    let period = run << 1;
    let end = start + n;
    // First run at or before `start`.
    let mut lo = (start & !(period - 1)) + run;
    while lo < end {
        let a = lo.max(start);
        let b = (lo + run).min(end);
        if a < b {
            f(a, b);
        }
        lo += period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the per-element mask test the hoisted runs replace.
    fn selected_by_mask(start: usize, n: usize, c: u32) -> Vec<usize> {
        (start..start + n)
            .filter(|&i| (i >> c) & 1 == 1)
            .collect()
    }

    #[test]
    fn ctrl_runs_match_per_element_mask() {
        for c in 0..6u32 {
            for start in [0usize, 1, 5, 8, 20, 63] {
                for n in [0usize, 1, 3, 16, 64, 100] {
                    let mut got = Vec::new();
                    for_each_ctrl_run(start, n, 1 << c, |a, b| got.extend(a..b));
                    assert_eq!(
                        got,
                        selected_by_mask(start, n, c),
                        "c={c} start={start} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn ctrl_runs_are_maximal_and_ordered() {
        let mut prev_end = 0usize;
        for_each_ctrl_run(0, 256, 4, |a, b| {
            assert!(a >= prev_end, "runs out of order");
            assert_eq!(b - a, 4, "interior runs have full length");
            prev_end = b;
        });
    }

    #[test]
    fn ctrl_classification() {
        assert!(matches!(Ctrl::new(3, None), Ctrl::All));
        assert!(matches!(Ctrl::new(3, Some(5)), Ctrl::Block(m) if m == 1 << 5));
        assert!(matches!(Ctrl::new(3, Some(1)), Ctrl::Run(r) if r == 2));
    }

    #[test]
    fn plain_pair_terms_match_complex_operators() {
        let m = Matrix2::new(
            Complex64::new(0.3, -0.7),
            Complex64::new(0.5, 0.2),
            Complex64::new(-0.1, 0.9),
            Complex64::new(0.8, 0.4),
        );
        let (a, b) = (Complex64::new(1.5, -2.5), Complex64::new(-0.25, 3.0));
        let want0 = m.m[0] * a + m.m[1] * b;
        let want1 = m.m[2] * a + m.m[3] * b;
        let (r0, i0, r1, i1) = pair_terms::<false>(a.re, a.im, b.re, b.im, &m);
        assert_eq!(r0.to_bits(), want0.re.to_bits());
        assert_eq!(i0.to_bits(), want0.im.to_bits());
        assert_eq!(r1.to_bits(), want1.re.to_bits());
        assert_eq!(i1.to_bits(), want1.im.to_bits());
    }

    #[test]
    fn fma_pair_terms_close_to_plain() {
        let m = Matrix2::new(
            Complex64::new(0.6, 0.1),
            Complex64::new(-0.3, 0.8),
            Complex64::new(0.2, -0.4),
            Complex64::new(0.9, 0.05),
        );
        let (p0, q0, p1, q1) = pair_terms::<false>(0.7, -1.2, 2.4, 0.33, &m);
        let (r0, i0, r1, i1) = pair_terms::<true>(0.7, -1.2, 2.4, 0.33, &m);
        for (x, y) in [(p0, r0), (q0, i0), (p1, r1), (q1, i1)] {
            assert!((x - y).abs() < 1e-14, "{x} vs {y}");
        }
    }

    #[test]
    fn combine_term_plain_matches_operators() {
        let (cm, ct) = (Complex64::new(0.6, -0.2), Complex64::new(0.1, 0.8));
        let (mine, other) = (Complex64::new(1.0, 2.0), Complex64::new(-3.0, 0.5));
        let got = combine_term::<false>(cm, mine, ct, other);
        let want = cm * mine + ct * other;
        assert_eq!(got.re.to_bits(), want.re.to_bits());
        assert_eq!(got.im.to_bits(), want.im.to_bits());
    }
}
