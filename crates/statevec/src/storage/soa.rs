//! Structure-of-arrays layout: separate real and imaginary arrays.
//!
//! This is QuEST's native layout (`qreal *stateVecReal, *stateVecImag`).
//! Sweeps read two independent streams; the layout benchmark compares it
//! against the interleaved [`super::AosStorage`].
//!
//! The sweep bodies are written for auto-vectorization: every inner loop
//! runs over four equal-length re/im sub-slices re-sliced to a shared
//! length (so the compiler drops bounds checks), the control test is
//! hoisted out of the element loop (see [`kernel::Ctrl`]), and the whole
//! body is compiled twice — once inside an AVX2+FMA `#[target_feature]`
//! wrapper, once at baseline features — with the flavour picked at
//! runtime by [`kernel::use_fma`]. Parallel sweeps dispatch through
//! [`parallel_for_each_affine`], so a given worker slot always sweeps
//! the same contiguous amplitude range that it first-touched in
//! [`AmpStorage::zeros`].

use super::kernel::{self, Ctrl};
use super::{AmpStorage, HALF_CHUNK, PAR_THRESHOLD};
use crate::diagonal::CompiledDiagonal;
use qse_math::bits;
use qse_math::{Complex64, Matrix2};
use qse_util::parallel::{parallel_for_each_affine, parallel_map_sum};

/// Separate `re[]` / `im[]` amplitude arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaStorage {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// Innermost pair loop: updates `(lo[k], hi[k])` for every `k`. All four
/// slices have the same length; the re-slicing below proves it to the
/// compiler so the loop vectorizes without bounds checks.
#[inline(always)]
fn run_pairs<const FMA: bool>(
    rlo: &mut [f64],
    ilo: &mut [f64],
    rhi: &mut [f64],
    ihi: &mut [f64],
    m: &Matrix2,
) {
    let n = rlo.len();
    let (ilo, rhi, ihi) = (&mut ilo[..n], &mut rhi[..n], &mut ihi[..n]);
    for k in 0..n {
        let (r0, i0, r1, i1) = kernel::pair_terms::<FMA>(rlo[k], ilo[k], rhi[k], ihi[k], m);
        rlo[k] = r0;
        ilo[k] = i0;
        rhi[k] = r1;
        ihi[k] = i1;
    }
}

/// Pair sweep for strides below the vector width: the per-block trip
/// count is tiny, so the stride must be a compile-time constant for the
/// compiler to vectorize across block boundaries.
#[inline(always)]
fn small_stride_body<const FMA: bool, const STRIDE: usize>(
    rc: &mut [f64],
    ic: &mut [f64],
    m: &Matrix2,
) {
    for (rb, ib) in rc
        .chunks_exact_mut(2 * STRIDE)
        .zip(ic.chunks_exact_mut(2 * STRIDE))
    {
        let (rlo, rhi) = rb.split_at_mut(STRIDE);
        let (ilo, ihi) = ib.split_at_mut(STRIDE);
        for k in 0..STRIDE {
            let (r0, i0, r1, i1) = kernel::pair_terms::<FMA>(rlo[k], ilo[k], rhi[k], ihi[k], m);
            rlo[k] = r0;
            ilo[k] = i0;
            rhi[k] = r1;
            ihi[k] = i1;
        }
    }
}

/// Sweeps a contiguous region of whole `2·stride` blocks whose first
/// amplitude has local index `base`.
#[inline(always)]
fn region_body<const FMA: bool>(
    rc: &mut [f64],
    ic: &mut [f64],
    stride: usize,
    base: usize,
    m: &Matrix2,
    ctrl: Ctrl,
) {
    if matches!(ctrl, Ctrl::All) {
        match stride {
            1 => return small_stride_body::<FMA, 1>(rc, ic, m),
            2 => return small_stride_body::<FMA, 2>(rc, ic, m),
            4 => return small_stride_body::<FMA, 4>(rc, ic, m),
            _ => {}
        }
    }
    let block = stride << 1;
    for (bi, (rb, ib)) in rc
        .chunks_exact_mut(block)
        .zip(ic.chunks_exact_mut(block))
        .enumerate()
    {
        let lo = base + bi * block;
        if let Ctrl::Block(mask) = ctrl {
            if lo as u64 & mask == 0 {
                continue;
            }
        }
        let (rlo, rhi) = rb.split_at_mut(stride);
        let (ilo, ihi) = ib.split_at_mut(stride);
        if let Ctrl::Run(run) = ctrl {
            kernel::for_each_ctrl_run(0, stride, run, |a, b| {
                run_pairs::<FMA>(
                    &mut rlo[a..b],
                    &mut ilo[a..b],
                    &mut rhi[a..b],
                    &mut ihi[a..b],
                    m,
                );
            });
        } else {
            run_pairs::<FMA>(rlo, ilo, rhi, ihi, m);
        }
    }
}

/// [`region_body`] compiled with AVX2+FMA codegen.
///
/// SAFETY: callers must have verified `avx2` and `fma` CPU support.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn region_fma(
    rc: &mut [f64],
    ic: &mut [f64],
    stride: usize,
    base: usize,
    m: &Matrix2,
    ctrl: Ctrl,
) {
    region_body::<true>(rc, ic, stride, base, m, ctrl)
}

/// Runtime-dispatched region sweep: one flavour check per work item,
/// amortized over thousands of amplitudes.
fn sweep_region(rc: &mut [f64], ic: &mut [f64], stride: usize, base: usize, m: &Matrix2, ctrl: Ctrl) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if kernel::use_fma() {
        // SAFETY: `use_fma` verified avx2+fma support on this CPU.
        unsafe { region_fma(rc, ic, stride, base, m, ctrl) };
        return;
    }
    region_body::<false>(rc, ic, stride, base, m, ctrl)
}

/// Sweeps one zipped sub-chunk of the single top-qubit block: `rl`/`il`
/// hold lower-half amplitudes `[base, base + len)`, `rh`/`ih` the
/// matching upper-half amplitudes. A control here is always below the
/// target (the target is the top local qubit), so it arrives as a run
/// length; half-indices and full indices agree on every bit below `q`.
#[inline(always)]
fn halves_body<const FMA: bool>(
    rl: &mut [f64],
    il: &mut [f64],
    rh: &mut [f64],
    ih: &mut [f64],
    base: usize,
    m: &Matrix2,
    run_ctrl: Option<usize>,
) {
    match run_ctrl {
        None => run_pairs::<FMA>(rl, il, rh, ih, m),
        Some(run) => kernel::for_each_ctrl_run(base, rl.len(), run, |a, b| {
            let (a, b) = (a - base, b - base);
            run_pairs::<FMA>(
                &mut rl[a..b],
                &mut il[a..b],
                &mut rh[a..b],
                &mut ih[a..b],
                m,
            );
        }),
    }
}

/// [`halves_body`] compiled with AVX2+FMA codegen.
///
/// SAFETY: callers must have verified `avx2` and `fma` CPU support.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn halves_fma(
    rl: &mut [f64],
    il: &mut [f64],
    rh: &mut [f64],
    ih: &mut [f64],
    base: usize,
    m: &Matrix2,
    run_ctrl: Option<usize>,
) {
    halves_body::<true>(rl, il, rh, ih, base, m, run_ctrl)
}

/// Runtime-dispatched top-qubit sweep.
fn sweep_halves(
    rl: &mut [f64],
    il: &mut [f64],
    rh: &mut [f64],
    ih: &mut [f64],
    base: usize,
    m: &Matrix2,
    run_ctrl: Option<usize>,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if kernel::use_fma() {
        // SAFETY: `use_fma` verified avx2+fma support on this CPU.
        unsafe { halves_fma(rl, il, rh, ih, base, m, run_ctrl) };
        return;
    }
    halves_body::<false>(rl, il, rh, ih, base, m, run_ctrl)
}

/// Distributed combine over amplitudes `[start, start + rs.len())`, with
/// `pairs` holding the peer's interleaved values for the same range.
#[inline(always)]
fn combine_body<const FMA: bool>(
    rs: &mut [f64],
    is: &mut [f64],
    pairs: &[f64],
    start: usize,
    c_mine: Complex64,
    c_theirs: Complex64,
    ctrl_run: Option<usize>,
) {
    let n = rs.len();
    let (is, pairs) = (&mut is[..n], &pairs[..2 * n]);
    match ctrl_run {
        None => {
            for k in 0..n {
                let v = kernel::combine_term::<FMA>(
                    c_mine,
                    Complex64::new(rs[k], is[k]),
                    c_theirs,
                    Complex64::new(pairs[2 * k], pairs[2 * k + 1]),
                );
                rs[k] = v.re;
                is[k] = v.im;
            }
        }
        Some(run) => kernel::for_each_ctrl_run(start, n, run, |a, b| {
            for i in a..b {
                let k = i - start;
                let v = kernel::combine_term::<FMA>(
                    c_mine,
                    Complex64::new(rs[k], is[k]),
                    c_theirs,
                    Complex64::new(pairs[2 * k], pairs[2 * k + 1]),
                );
                rs[k] = v.re;
                is[k] = v.im;
            }
        }),
    }
}

/// [`combine_body`] compiled with AVX2+FMA codegen.
///
/// SAFETY: callers must have verified `avx2` and `fma` CPU support.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn combine_fma(
    rs: &mut [f64],
    is: &mut [f64],
    pairs: &[f64],
    start: usize,
    c_mine: Complex64,
    c_theirs: Complex64,
    ctrl_run: Option<usize>,
) {
    combine_body::<true>(rs, is, pairs, start, c_mine, c_theirs, ctrl_run)
}

/// Runtime-dispatched combine sweep.
#[allow(clippy::too_many_arguments)]
fn sweep_combine(
    rs: &mut [f64],
    is: &mut [f64],
    pairs: &[f64],
    start: usize,
    c_mine: Complex64,
    c_theirs: Complex64,
    ctrl_run: Option<usize>,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if kernel::use_fma() {
        // SAFETY: `use_fma` verified avx2+fma support on this CPU.
        unsafe { combine_fma(rs, is, pairs, start, c_mine, c_theirs, ctrl_run) };
        return;
    }
    combine_body::<false>(rs, is, pairs, start, c_mine, c_theirs, ctrl_run)
}

/// Swaps `lo[o..o+run]` with `hi[o-run..o]` for every in-slice run start
/// `o` with the run bit set — the contiguous form of the orbit swaps
/// for qubits `a < b`, where `lo` is a bit-`b` = 0 range, `hi` the
/// matching bit-`b` = 1 range, and `run = 2^a`. Each orbit is touched
/// exactly once, matching the sequential orbit enumeration.
#[inline(always)]
fn swap_runs(lo: &mut [f64], hi: &mut [f64], run: usize) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len() % (run << 1), 0);
    let mut o = run;
    while o < lo.len() {
        lo[o..o + run].swap_with_slice(&mut hi[o - run..o]);
        o += run << 1;
    }
}

impl AmpStorage for SoaStorage {
    fn zeros(len: usize) -> Self {
        assert!(bits::is_pow2(len as u64), "length must be a power of two");
        let mut s = SoaStorage {
            re: vec![0.0; len],
            im: vec![0.0; len],
        };
        // First-touch: fault every page in on the worker slot that the
        // affine partition will route back to it on every later sweep.
        s.fill_zero();
        s
    }

    #[inline]
    fn len(&self) -> usize {
        self.re.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> Complex64 {
        Complex64::new(self.re[i], self.im[i])
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: Complex64) {
        self.re[i] = v.re;
        self.im[i] = v.im;
    }

    fn fill_zero(&mut self) {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(&mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(HALF_CHUNK)
                .zip(self.im.chunks_mut(HALF_CHUNK))
                .collect();
            parallel_for_each_affine(chunks, |(rc, ic)| {
                rc.fill(0.0);
                ic.fill(0.0);
            });
        } else {
            self.re.fill(0.0);
            self.im.fill(0.0);
        }
    }

    fn norm_sqr_sum(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(&[f64], &[f64])> = self
                .re
                .chunks(HALF_CHUNK)
                .zip(self.im.chunks(HALF_CHUNK))
                .collect();
            parallel_map_sum(chunks, |(rc, ic)| {
                rc.iter().zip(ic).map(|(r, i)| r * r + i * i).sum()
            })
        } else {
            self.re
                .iter()
                .zip(self.im.iter())
                .map(|(r, i)| r * r + i * i)
                .sum()
        }
    }

    fn apply_pairs(&mut self, q: u32, m: &Matrix2, control: Option<u32>) {
        let len = self.len();
        let stride = 1usize << q;
        let block = stride << 1;
        assert!(block <= len, "qubit {q} out of range for {len} amplitudes");
        if let Some(c) = control {
            debug_assert_ne!(c, q, "control equals target");
        }
        let ctrl = Ctrl::new(q, control);
        if len >= PAR_THRESHOLD && block < len {
            let m = *m;
            // Batch several blocks per work item: one item per 2·stride
            // block would swamp the pool with tiny work items at low
            // qubit indices.
            let blocks_per_task = (HALF_CHUNK / block).max(1);
            let task = block * blocks_per_task;
            let chunks: Vec<(usize, &mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(task)
                .zip(self.im.chunks_mut(task))
                .enumerate()
                .map(|(ti, (rc, ic))| (ti, rc, ic))
                .collect();
            parallel_for_each_affine(chunks, |(ti, rc, ic)| {
                sweep_region(rc, ic, stride, ti * task, &m, ctrl);
            });
        } else if len >= PAR_THRESHOLD {
            // Single block: q is the top local qubit, so any control sits
            // below it. Parallelise over the zipped lower/upper halves.
            let m = *m;
            let run_ctrl = control.map(|c| 1usize << c);
            let (rlo, rhi) = self.re.split_at_mut(stride);
            let (ilo, ihi) = self.im.split_at_mut(stride);
            type HalfItem<'a> = (usize, &'a mut [f64], &'a mut [f64], &'a mut [f64], &'a mut [f64]);
            let chunks: Vec<HalfItem<'_>> = rlo
                .chunks_mut(HALF_CHUNK)
                .zip(rhi.chunks_mut(HALF_CHUNK))
                .zip(
                    ilo.chunks_mut(HALF_CHUNK)
                        .zip(ihi.chunks_mut(HALF_CHUNK)),
                )
                .enumerate()
                .map(|(ci, ((rl, rh), (il, ih)))| (ci, rl, il, rh, ih))
                .collect();
            parallel_for_each_affine(chunks, |(ci, rl, il, rh, ih)| {
                sweep_halves(rl, il, rh, ih, ci * HALF_CHUNK, &m, run_ctrl);
            });
        } else {
            sweep_region(&mut self.re, &mut self.im, stride, 0, m, ctrl);
        }
    }

    fn apply_fused_diagonal(&mut self, offset: u64, run: &CompiledDiagonal) {
        let len = self.len();
        if len >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(HALF_CHUNK)
                .zip(self.im.chunks_mut(HALF_CHUNK))
                .enumerate()
                .map(|(ci, (rc, ic))| (ci, rc, ic))
                .collect();
            parallel_for_each_affine(chunks, |(ci, rc, ic)| {
                let base = ci * HALF_CHUNK;
                for k in 0..rc.len() {
                    let v = run.apply(offset | (base + k) as u64, Complex64::new(rc[k], ic[k]));
                    rc[k] = v.re;
                    ic[k] = v.im;
                }
            });
        } else {
            for i in 0..len {
                let v = run.apply(offset | i as u64, Complex64::new(self.re[i], self.im[i]));
                self.re[i] = v.re;
                self.im[i] = v.im;
            }
        }
    }

    fn apply_phase_fn(&mut self, offset: u64, phase: &(dyn Fn(u64) -> Complex64 + Sync)) {
        let len = self.len();
        if len >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(HALF_CHUNK)
                .zip(self.im.chunks_mut(HALF_CHUNK))
                .enumerate()
                .map(|(ci, (rc, ic))| (ci, rc, ic))
                .collect();
            parallel_for_each_affine(chunks, |(ci, rc, ic)| {
                let base = ci * HALF_CHUNK;
                for k in 0..rc.len() {
                    let p = phase(offset | (base + k) as u64);
                    let v = Complex64::new(rc[k], ic[k]) * p;
                    rc[k] = v.re;
                    ic[k] = v.im;
                }
            });
        } else {
            for i in 0..len {
                let p = phase(offset | i as u64);
                let v = Complex64::new(self.re[i], self.im[i]) * p;
                self.re[i] = v.re;
                self.im[i] = v.im;
            }
        }
    }

    fn swap_local(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "swap qubits must differ");
        let len = self.len();
        let (a, b) = (a.min(b), a.max(b));
        let run = 1usize << a;
        let seg = 1usize << b;
        let group = seg << 1;
        assert!(group <= len, "qubit {b} out of range for {len} amplitudes");
        // Each aligned 2^(b+1) group holds complete orbits: the bit-b = 0
        // element with bit a set at group offset o swaps with the bit-b = 1
        // element at offset o − 2^a of the upper segment.
        if len >= PAR_THRESHOLD && group < len {
            let per = (HALF_CHUNK / group).max(1);
            let task = group * per;
            let chunks: Vec<(&mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(task)
                .zip(self.im.chunks_mut(task))
                .collect();
            parallel_for_each_affine(chunks, |(rc, ic)| {
                for (rg, ig) in rc.chunks_exact_mut(group).zip(ic.chunks_exact_mut(group)) {
                    let (rl, rh) = rg.split_at_mut(seg);
                    let (il, ih) = ig.split_at_mut(seg);
                    swap_runs(rl, rh, run);
                    swap_runs(il, ih, run);
                }
            });
        } else if len >= PAR_THRESHOLD {
            // b is the top local qubit: zip-chunk the halves, keeping
            // chunks aligned to the 2^(a+1) run period.
            let chunk = HALF_CHUNK.max(run << 1);
            let (rl, rh) = self.re.split_at_mut(seg);
            let (il, ih) = self.im.split_at_mut(seg);
            type SwapItem<'a> = (&'a mut [f64], &'a mut [f64], &'a mut [f64], &'a mut [f64]);
            let items: Vec<SwapItem<'_>> = rl
                .chunks_mut(chunk)
                .zip(rh.chunks_mut(chunk))
                .zip(il.chunks_mut(chunk).zip(ih.chunks_mut(chunk)))
                .map(|((rl, rh), (il, ih))| (rl, rh, il, ih))
                .collect();
            parallel_for_each_affine(items, |(rl, rh, il, ih)| {
                swap_runs(rl, rh, run);
                swap_runs(il, ih, run);
            });
        } else {
            for (rg, ig) in self
                .re
                .chunks_exact_mut(group)
                .zip(self.im.chunks_exact_mut(group))
            {
                let (rl, rh) = rg.split_at_mut(seg);
                let (il, ih) = ig.split_at_mut(seg);
                swap_runs(rl, rh, run);
                swap_runs(il, ih, run);
            }
        }
    }

    fn combine_rows(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        theirs: &[f64],
        control: Option<u32>,
    ) {
        assert_eq!(theirs.len(), self.len() * 2, "pair buffer size mismatch");
        self.apply_distributed_1q_range(c_mine, c_theirs, theirs, 0, control);
    }

    fn apply_distributed_1q_range(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        chunk: &[f64],
        start: usize,
        control: Option<u32>,
    ) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        let ctrl_run = control.map(|c| 1usize << c);
        let rs = &mut self.re[start..start + n];
        let is = &mut self.im[start..start + n];
        if n >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [f64], &mut [f64], &[f64])> = rs
                .chunks_mut(HALF_CHUNK)
                .zip(is.chunks_mut(HALF_CHUNK))
                .zip(chunk.chunks(HALF_CHUNK * 2))
                .enumerate()
                .map(|(ci, ((rc, ic), tc))| (ci, rc, ic, tc))
                .collect();
            parallel_for_each_affine(chunks, |(ci, rc, ic, tc)| {
                sweep_combine(rc, ic, tc, start + ci * HALF_CHUNK, c_mine, c_theirs, ctrl_run);
            });
        } else {
            sweep_combine(rs, is, chunk, start, c_mine, c_theirs, ctrl_run);
        }
    }

    fn write_f64_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len() * 2);
        for i in 0..self.len() {
            out.push(self.re[i]);
            out.push(self.im[i]);
        }
    }

    fn copy_from_f64(&mut self, data: &[f64]) {
        assert_eq!(data.len(), self.len() * 2, "buffer size mismatch");
        for i in 0..self.len() {
            self.re[i] = data[2 * i];
            self.im[i] = data[2 * i + 1];
        }
    }

    fn extract_half_bit_into(&self, q: u32, v: u64, out: &mut Vec<f64>) {
        let half = self.len() / 2;
        out.clear();
        out.reserve(half * 2);
        for k in 0..half as u64 {
            let i = crate::ix(bits::insert_zero_bit(k, q) | (v << q));
            out.push(self.re[i]);
            out.push(self.im[i]);
        }
    }

    fn write_half_bit(&mut self, q: u32, v: u64, data: &[f64]) {
        let half = self.len() / 2;
        assert_eq!(data.len(), half * 2, "half buffer size mismatch");
        for k in 0..half as u64 {
            let i = crate::ix(bits::insert_zero_bit(k, q) | (v << q));
            self.re[i] = data[2 * crate::ix(k)];
            self.im[i] = data[2 * crate::ix(k) + 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_suite() {
        crate::storage::conformance::run_all::<SoaStorage>();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_rejected() {
        SoaStorage::zeros(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_out_of_range_rejected() {
        SoaStorage::zeros(8).apply_pairs(3, &Matrix2::identity(), None);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn combine_rows_size_checked() {
        SoaStorage::zeros(8).combine_rows(
            Complex64::ONE,
            Complex64::ZERO,
            &[0.0; 4],
            None,
        );
    }
}
