//! Structure-of-arrays layout: separate real and imaginary arrays.
//!
//! This is QuEST's native layout (`qreal *stateVecReal, *stateVecImag`).
//! Sweeps read two independent streams; the layout benchmark compares it
//! against the interleaved [`super::AosStorage`].

use super::{AmpStorage, PAR_THRESHOLD};
use crate::diagonal::CompiledDiagonal;
use qse_math::bits;
use qse_math::{Complex64, Matrix2};
use qse_util::parallel::{parallel_for_each, parallel_map_sum};

/// Separate `re[]` / `im[]` amplitude arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaStorage {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// Chunk size for parallel sweeps over a single top-qubit block.
const HALF_CHUNK: usize = 4096;

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pair_update(
    re0: &mut f64,
    im0: &mut f64,
    re1: &mut f64,
    im1: &mut f64,
    m00: Complex64,
    m01: Complex64,
    m10: Complex64,
    m11: Complex64,
) {
    let a0 = Complex64::new(*re0, *im0);
    let a1 = Complex64::new(*re1, *im1);
    let b0 = m00 * a0 + m01 * a1;
    let b1 = m10 * a0 + m11 * a1;
    *re0 = b0.re;
    *im0 = b0.im;
    *re1 = b1.re;
    *im1 = b1.im;
}

/// Applies the matrix to all pairs inside one `2·stride` block whose first
/// element has local index `base`.
#[inline(always)]
fn apply_block(
    rc: &mut [f64],
    ic: &mut [f64],
    stride: usize,
    base: usize,
    m: &Matrix2,
    ctrl_mask: u64,
) {
    let (m00, m01, m10, m11) = (m.m[0], m.m[1], m.m[2], m.m[3]);
    let (rlo, rhi) = rc.split_at_mut(stride);
    let (ilo, ihi) = ic.split_at_mut(stride);
    for k in 0..stride {
        if ctrl_mask != 0 && (base + k) as u64 & ctrl_mask == 0 {
            continue;
        }
        pair_update(
            &mut rlo[k], &mut ilo[k], &mut rhi[k], &mut ihi[k], m00, m01, m10, m11,
        );
    }
}

impl AmpStorage for SoaStorage {
    fn zeros(len: usize) -> Self {
        assert!(bits::is_pow2(len as u64), "length must be a power of two");
        SoaStorage {
            re: vec![0.0; len],
            im: vec![0.0; len],
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.re.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> Complex64 {
        Complex64::new(self.re[i], self.im[i])
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: Complex64) {
        self.re[i] = v.re;
        self.im[i] = v.im;
    }

    fn fill_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
    }

    fn norm_sqr_sum(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            let chunks: Vec<(&[f64], &[f64])> = self
                .re
                .chunks(HALF_CHUNK)
                .zip(self.im.chunks(HALF_CHUNK))
                .collect();
            parallel_map_sum(chunks, |(rc, ic)| {
                rc.iter().zip(ic).map(|(r, i)| r * r + i * i).sum()
            })
        } else {
            self.re
                .iter()
                .zip(self.im.iter())
                .map(|(r, i)| r * r + i * i)
                .sum()
        }
    }

    fn apply_pairs(&mut self, q: u32, m: &Matrix2, control: Option<u32>) {
        let len = self.len();
        let stride = 1usize << q;
        let block = stride << 1;
        assert!(block <= len, "qubit {q} out of range for {len} amplitudes");
        if let Some(c) = control {
            debug_assert_ne!(c, q, "control equals target");
        }
        let ctrl_mask = control.map_or(0u64, |c| 1u64 << c);
        if len >= PAR_THRESHOLD && block < len {
            let m = *m;
            // Batch several blocks per work item: one item per 2·stride
            // block would swamp the pool with tiny work items at low
            // qubit indices.
            let blocks_per_task = (HALF_CHUNK / block).max(1);
            let task = block * blocks_per_task;
            let chunks: Vec<(usize, &mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(task)
                .zip(self.im.chunks_mut(task))
                .enumerate()
                .map(|(ti, (rc, ic))| (ti, rc, ic))
                .collect();
            parallel_for_each(chunks, |(ti, rc, ic)| {
                let base = ti * task;
                for (bi, (rb, ib)) in rc
                    .chunks_mut(block)
                    .zip(ic.chunks_mut(block))
                    .enumerate()
                {
                    apply_block(rb, ib, stride, base + bi * block, &m, ctrl_mask);
                }
            });
        } else if len >= PAR_THRESHOLD {
            // Single block: q is the top local qubit. Parallelise over the
            // zipped lower/upper halves instead.
            let (m00, m01, m10, m11) = (m.m[0], m.m[1], m.m[2], m.m[3]);
            let (rlo, rhi) = self.re.split_at_mut(stride);
            let (ilo, ihi) = self.im.split_at_mut(stride);
            type HalfItem<'a> = (usize, &'a mut [f64], &'a mut [f64], &'a mut [f64], &'a mut [f64]);
            let chunks: Vec<HalfItem<'_>> = rlo
                .chunks_mut(HALF_CHUNK)
                .zip(rhi.chunks_mut(HALF_CHUNK))
                .zip(
                    ilo.chunks_mut(HALF_CHUNK)
                        .zip(ihi.chunks_mut(HALF_CHUNK)),
                )
                .enumerate()
                .map(|(ci, ((rl, rh), (il, ih)))| (ci, rl, rh, il, ih))
                .collect();
            parallel_for_each(chunks, |(ci, rl, rh, il, ih)| {
                let base = ci * HALF_CHUNK;
                for k in 0..rl.len() {
                    if ctrl_mask != 0 && (base + k) as u64 & ctrl_mask == 0 {
                        continue;
                    }
                    pair_update(
                        &mut rl[k], &mut il[k], &mut rh[k], &mut ih[k], m00, m01, m10, m11,
                    );
                }
            });
        } else {
            for bi in 0..len / block {
                let lo = bi * block;
                apply_block(
                    &mut self.re[lo..lo + block],
                    &mut self.im[lo..lo + block],
                    stride,
                    lo,
                    m,
                    ctrl_mask,
                );
            }
        }
    }

    fn apply_fused_diagonal(&mut self, offset: u64, run: &CompiledDiagonal) {
        let len = self.len();
        if len >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(HALF_CHUNK)
                .zip(self.im.chunks_mut(HALF_CHUNK))
                .enumerate()
                .map(|(ci, (rc, ic))| (ci, rc, ic))
                .collect();
            parallel_for_each(chunks, |(ci, rc, ic)| {
                let base = ci * HALF_CHUNK;
                for k in 0..rc.len() {
                    let v = run.apply(offset | (base + k) as u64, Complex64::new(rc[k], ic[k]));
                    rc[k] = v.re;
                    ic[k] = v.im;
                }
            });
        } else {
            for i in 0..len {
                let v = run.apply(offset | i as u64, Complex64::new(self.re[i], self.im[i]));
                self.re[i] = v.re;
                self.im[i] = v.im;
            }
        }
    }

    fn apply_phase_fn(&mut self, offset: u64, phase: &(dyn Fn(u64) -> Complex64 + Sync)) {
        let len = self.len();
        if len >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [f64], &mut [f64])> = self
                .re
                .chunks_mut(HALF_CHUNK)
                .zip(self.im.chunks_mut(HALF_CHUNK))
                .enumerate()
                .map(|(ci, (rc, ic))| (ci, rc, ic))
                .collect();
            parallel_for_each(chunks, |(ci, rc, ic)| {
                let base = ci * HALF_CHUNK;
                for k in 0..rc.len() {
                    let p = phase(offset | (base + k) as u64);
                    let v = Complex64::new(rc[k], ic[k]) * p;
                    rc[k] = v.re;
                    ic[k] = v.im;
                }
            });
        } else {
            for i in 0..len {
                let p = phase(offset | i as u64);
                let v = Complex64::new(self.re[i], self.im[i]) * p;
                self.re[i] = v.re;
                self.im[i] = v.im;
            }
        }
    }

    fn swap_local(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "swap qubits must differ");
        let len = self.len() as u64;
        // Enumerate indices with bit a = 1, bit b = 0 and swap with their
        // bit-swapped partner; each orbit is touched exactly once.
        for k in 0..len / 4 {
            let base = bits::insert_two_zero_bits(k, a, b);
            let i = (base | (1 << a)) as usize;
            let j = (base | (1 << b)) as usize;
            self.re.swap(i, j);
            self.im.swap(i, j);
        }
    }

    fn combine_rows(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        theirs: &[f64],
        control: Option<u32>,
    ) {
        assert_eq!(theirs.len(), self.len() * 2, "pair buffer size mismatch");
        self.apply_distributed_1q_range(c_mine, c_theirs, theirs, 0, control);
    }

    fn apply_distributed_1q_range(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        chunk: &[f64],
        start: usize,
        control: Option<u32>,
    ) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        let ctrl_mask = control.map_or(0u64, |c| 1u64 << c);
        let rs = &mut self.re[start..start + n];
        let is = &mut self.im[start..start + n];
        if n >= PAR_THRESHOLD {
            let chunks: Vec<(usize, &mut [f64], &mut [f64], &[f64])> = rs
                .chunks_mut(HALF_CHUNK)
                .zip(is.chunks_mut(HALF_CHUNK))
                .zip(chunk.chunks(HALF_CHUNK * 2))
                .enumerate()
                .map(|(ci, ((rc, ic), tc))| (ci, rc, ic, tc))
                .collect();
            parallel_for_each(chunks, |(ci, rc, ic, tc)| {
                let base = start + ci * HALF_CHUNK;
                for k in 0..rc.len() {
                    if ctrl_mask != 0 && (base + k) as u64 & ctrl_mask == 0 {
                        continue;
                    }
                    let mine = Complex64::new(rc[k], ic[k]);
                    let other = Complex64::new(tc[2 * k], tc[2 * k + 1]);
                    let v = c_mine * mine + c_theirs * other;
                    rc[k] = v.re;
                    ic[k] = v.im;
                }
            });
        } else {
            for k in 0..n {
                if ctrl_mask != 0 && (start + k) as u64 & ctrl_mask == 0 {
                    continue;
                }
                let mine = Complex64::new(rs[k], is[k]);
                let other = Complex64::new(chunk[2 * k], chunk[2 * k + 1]);
                let v = c_mine * mine + c_theirs * other;
                rs[k] = v.re;
                is[k] = v.im;
            }
        }
    }

    fn write_f64_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len() * 2);
        for i in 0..self.len() {
            out.push(self.re[i]);
            out.push(self.im[i]);
        }
    }

    fn copy_from_f64(&mut self, data: &[f64]) {
        assert_eq!(data.len(), self.len() * 2, "buffer size mismatch");
        for i in 0..self.len() {
            self.re[i] = data[2 * i];
            self.im[i] = data[2 * i + 1];
        }
    }

    fn extract_half_bit_into(&self, q: u32, v: u64, out: &mut Vec<f64>) {
        let half = self.len() / 2;
        out.clear();
        out.reserve(half * 2);
        for k in 0..half as u64 {
            let i = (bits::insert_zero_bit(k, q) | (v << q)) as usize;
            out.push(self.re[i]);
            out.push(self.im[i]);
        }
    }

    fn write_half_bit(&mut self, q: u32, v: u64, data: &[f64]) {
        let half = self.len() / 2;
        assert_eq!(data.len(), half * 2, "half buffer size mismatch");
        for k in 0..half as u64 {
            let i = (bits::insert_zero_bit(k, q) | (v << q)) as usize;
            self.re[i] = data[2 * k as usize];
            self.im[i] = data[2 * k as usize + 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_suite() {
        crate::storage::conformance::run_all::<SoaStorage>();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_rejected() {
        SoaStorage::zeros(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qubit_out_of_range_rejected() {
        SoaStorage::zeros(8).apply_pairs(3, &Matrix2::identity(), None);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn combine_rows_size_checked() {
        SoaStorage::zeros(8).combine_rows(
            Complex64::ONE,
            Complex64::ZERO,
            &[0.0; 4],
            None,
        );
    }
}
