//! Pluggable amplitude storage layouts.
//!
//! QuEST stores the statevector as two separate `qreal` arrays (real and
//! imaginary parts) — the structure-of-arrays layout, [`SoaStorage`]. The
//! paper's future work (§4) proposes "reimplement[ing] QuEST's core
//! data-structures using a complex data type rather than separate real and
//! imaginary arrays, in order to improve data locality" — the
//! array-of-structures layout, [`AosStorage`]. Both implement
//! [`AmpStorage`], the hot-kernel interface the engines are generic over,
//! so the `layout` Criterion bench can compare them on identical sweeps.
//!
//! All kernels treat the storage as the *local* slice of a (possibly
//! distributed) register: indices are local amplitude indices, and the
//! diagonal sweep takes a global-index offset so phase functions can see
//! rank bits.

mod aos;
pub(crate) mod kernel;
mod soa;

pub use aos::AosStorage;
pub use soa::SoaStorage;

use qse_math::{Complex64, Matrix2};
pub use qse_math::Matrix4;

/// Minimum length before kernels fan out to Rayon. Below this the
/// fork-join overhead dwarfs the sweep.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// Amplitudes per parallel work item (and per half-block sub-chunk of a
/// single top-qubit sweep). One definition for both layouts so the
/// chunk policies — and the affinity partition built on them — can
/// never drift apart.
pub const HALF_CHUNK: usize = 4096;

/// The amplitude-array interface every layout implements.
///
/// `len` is always a power of two. Kernels mutate in place — the paper's
/// simulations are memory-capacity-bound, so out-of-place updates (which
/// would double footprint) are reserved for the explicitly-buffered
/// distributed combines.
pub trait AmpStorage: Send + Sync + Sized + Clone {
    /// All-zero register of `len` amplitudes (an invalid quantum state
    /// until initialised; used for receive staging).
    fn zeros(len: usize) -> Self;

    /// Number of amplitudes.
    fn len(&self) -> usize;

    /// True when empty (never for a live register).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads amplitude `i`.
    fn get(&self, i: usize) -> Complex64;

    /// Writes amplitude `i`.
    fn set(&mut self, i: usize, v: Complex64);

    /// Sets every amplitude to zero.
    fn fill_zero(&mut self);

    /// Σ|amp|² over the local slice.
    fn norm_sqr_sum(&self) -> f64;

    /// Applies a 2×2 matrix to every amplitude pair of local qubit `q`
    /// (stride `2^q`), optionally only where local control qubit bit is 1.
    fn apply_pairs(&mut self, q: u32, m: &Matrix2, control: Option<u32>);

    /// Multiplies every amplitude by `phase(global_index)`, where
    /// `global_index = offset | local_index`. This is the fully-local
    /// (diagonal) sweep; `offset` carries the rank bits.
    fn apply_phase_fn(&mut self, offset: u64, phase: &(dyn Fn(u64) -> Complex64 + Sync));

    /// Applies a precompiled *run* of diagonal gates in one pass: each
    /// amplitude is read once, multiplied by every gate's phase in gate
    /// order, and written once — `k` gate sweeps collapse into one.
    ///
    /// The per-amplitude multiply sequence is exactly the one `k`
    /// successive [`Self::apply_phase_fn`] sweeps would perform, so the
    /// fused path is bit-for-bit identical to gate-at-a-time execution.
    /// Layouts override this default (sequential) loop with their
    /// parallel chunked sweeps.
    fn apply_fused_diagonal(&mut self, offset: u64, run: &crate::diagonal::CompiledDiagonal) {
        for i in 0..self.len() {
            let v = run.apply(offset | i as u64, self.get(i));
            self.set(i, v);
        }
    }

    /// Swaps local qubits `a` and `b` (pure in-memory permutation).
    fn swap_local(&mut self, a: u32, b: u32);

    /// Distributed combine: `new[i] = c_mine·mine[i] + c_theirs·theirs[i]`,
    /// with `theirs` as interleaved `[re, im]` pairs, optionally only where
    /// local control bit is 1. This is the second half of a distributed
    /// single-qubit gate (§2.1): the pair rank's buffer arrives and each
    /// amplitude becomes a linear combination.
    fn combine_rows(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        theirs: &[f64],
        control: Option<u32>,
    );

    /// [`Self::combine_rows`] restricted to the amplitude sub-range
    /// `[start, start + chunk.len()/2)`, with `chunk` holding the peer's
    /// interleaved pairs for exactly that range — the streamed-exchange
    /// kernel, applied per chunk as it arrives.
    ///
    /// The per-amplitude arithmetic is identical to the full combine, and
    /// amplitudes are elementwise independent, so splitting a combine into
    /// sub-range calls (in any order) is bit-for-bit identical to one full
    /// sweep. Layouts override the default `get`/`set` loop with their
    /// slice kernels.
    fn apply_distributed_1q_range(
        &mut self,
        c_mine: Complex64,
        c_theirs: Complex64,
        chunk: &[f64],
        start: usize,
        control: Option<u32>,
    ) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        let ctrl_mask = control.map_or(0u64, |c| 1u64 << c);
        for k in 0..n {
            let i = start + k;
            if ctrl_mask != 0 && i as u64 & ctrl_mask == 0 {
                continue;
            }
            let other = Complex64::new(chunk[2 * k], chunk[2 * k + 1]);
            let v = c_mine * self.get(i) + c_theirs * other;
            self.set(i, v);
        }
    }

    /// Distributed SWAP scatter restricted to a sub-range of the *peer's*
    /// slice: for every absolute index `i` in `[start, start + chunk.len()/2)`
    /// whose bit `lo` equals `g` (this rank's value of the global swap
    /// qubit), the peer amplitude `chunk[i - start]` lands at `i ^ (1<<lo)`.
    /// Pure copies with disjoint destinations per chunk, so chunk order
    /// never matters. Covering the whole slice in one call reproduces the
    /// full-exchange scatter.
    fn apply_distributed_swap_range(&mut self, lo: u32, g: u64, chunk: &[f64], start: usize) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        for j in 0..n {
            let i = start + j;
            if ((i >> lo) & 1) as u64 == g {
                let l = i ^ (1usize << lo);
                self.set(l, Complex64::new(chunk[2 * j], chunk[2 * j + 1]));
            }
        }
    }

    /// Overwrites amplitudes `[start, start + chunk.len()/2)` from
    /// interleaved pairs — the per-chunk form of [`Self::copy_from_f64`]
    /// used by the streamed both-global SWAP.
    fn copy_from_f64_range(&mut self, chunk: &[f64], start: usize) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        for j in 0..n {
            self.set(start + j, Complex64::new(chunk[2 * j], chunk[2 * j + 1]));
        }
    }

    /// Serialises the whole slice as interleaved `[re, im]` pairs.
    fn to_f64_vec(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.write_f64_into(&mut out);
        out
    }

    /// Serialises the whole slice into `out` as interleaved pairs,
    /// reusing `out`'s capacity — the allocation-free exchange staging
    /// path (the distributed engine keeps `out` as per-state scratch).
    fn write_f64_into(&self, out: &mut Vec<f64>);

    /// Overwrites the whole slice from interleaved `[re, im]` pairs.
    fn copy_from_f64(&mut self, data: &[f64]);

    /// Extracts amplitudes whose local-index bit `q` equals `v`, in
    /// ascending index order, as interleaved pairs — the half-exchange
    /// SWAP payload (§4).
    fn extract_half_bit(&self, q: u32, v: u64) -> Vec<f64> {
        let mut out = Vec::new();
        self.extract_half_bit_into(q, v, &mut out);
        out
    }

    /// [`Self::extract_half_bit`] into a reusable buffer (cleared first).
    fn extract_half_bit_into(&self, q: u32, v: u64, out: &mut Vec<f64>);

    /// Writes `data` (interleaved pairs) into the amplitudes whose
    /// local-index bit `q` equals `v`, in ascending index order.
    fn write_half_bit(&mut self, q: u32, v: u64, data: &[f64]);

    /// [`Self::write_half_bit`] restricted to half-slice pairs
    /// `[start_pair, start_pair + chunk.len()/2)` — the streamed form of
    /// the half-exchange SWAP write-back, applied per chunk. Pure copies
    /// to disjoint destinations, so chunk order never matters.
    fn write_half_bit_range(&mut self, q: u32, v: u64, chunk: &[f64], start_pair: usize) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start_pair + n <= self.len() / 2, "chunk beyond half slice");
        for j in 0..n {
            let k = (start_pair + j) as u64;
            let i = crate::ix(qse_math::bits::insert_zero_bit(k, q) | (v << q));
            self.set(i, Complex64::new(chunk[2 * j], chunk[2 * j + 1]));
        }
    }

    /// Materialises the local slice as complex values (tests/gather).
    fn to_complex_vec(&self) -> Vec<Complex64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Applies a 4×4 matrix to every four-amplitude orbit of local
    /// qubits `(a, b)` — basis order `|b a⟩`. Default implementation via
    /// `get`/`set`; layouts may specialise for speed.
    fn apply_orbit4(&mut self, a: u32, b: u32, m: &crate::storage::Matrix4) {
        assert_ne!(a, b, "orbit qubits must differ");
        let len = self.len() as u64;
        assert!((1u64 << a) < len && (1u64 << b) < len, "qubit out of range");
        for k in 0..len / 4 {
            let base = qse_math::bits::insert_two_zero_bits(k, a, b);
            let idx = |bb: u64, aa: u64| crate::ix(base | (aa << a) | (bb << b));
            let orbit = [
                self.get(idx(0, 0)),
                self.get(idx(0, 1)),
                self.get(idx(1, 0)),
                self.get(idx(1, 1)),
            ];
            let out = m.apply(orbit);
            self.set(idx(0, 0), out[0]);
            self.set(idx(0, 1), out[1]);
            self.set(idx(1, 0), out[2]);
            self.set(idx(1, 1), out[3]);
        }
    }

    /// Distributed two-qubit combine: qubit `a` is local, the second
    /// orbit qubit is a rank bit with this rank holding value `g`.
    /// `theirs` is the pair rank's full slice (interleaved pairs); each
    /// local pair `(bit_a = 0, 1)` combines with the peer's matching pair
    /// through the rows of `m` selected by `g` — basis order `|b a⟩`.
    fn combine_orbit4(&mut self, a: u32, g: u64, m: &crate::storage::Matrix4, theirs: &[f64]) {
        assert_eq!(theirs.len(), self.len() * 2, "pair buffer size mismatch");
        self.apply_distributed_2q_range(a, g, m, theirs, 0);
    }

    /// [`Self::combine_orbit4`] restricted to the amplitude sub-range
    /// `[start, start + chunk.len()/2)`. Both the start and the length
    /// must be multiples of the orbit span `2^(a+1)` so every `(i0, i1)`
    /// pair of an orbit lands inside one chunk — the streamed exchange
    /// derives its chunk policy with exactly this alignment. Orbits are
    /// elementwise independent across chunks, so per-chunk application is
    /// bit-for-bit identical to the full combine.
    fn apply_distributed_2q_range(
        &mut self,
        a: u32,
        g: u64,
        m: &crate::storage::Matrix4,
        chunk: &[f64],
        start: usize,
    ) {
        assert_eq!(chunk.len() % 2, 0, "chunk must hold interleaved pairs");
        let n = chunk.len() / 2;
        assert!(start + n <= self.len(), "chunk beyond local slice");
        let orbit = 1usize << (a + 1);
        assert_eq!(start % orbit, 0, "chunk start must align to the 2q orbit");
        assert_eq!(n % orbit, 0, "chunk length must align to the 2q orbit");
        let read_chunk = |i: usize| {
            let j = i - start;
            Complex64::new(chunk[2 * j], chunk[2 * j + 1])
        };
        // insert_zero_bit(k, a) is monotone, so the orbit bases inside an
        // aligned range [start, start+n) are exactly k in [start/2, (start+n)/2).
        for k in (start as u64 / 2)..((start + n) as u64 / 2) {
            let i0 = crate::ix(qse_math::bits::insert_zero_bit(k, a));
            let i1 = i0 | (1usize << a);
            // Orbit amplitudes v[(b<<1)|a]: b == g comes from this rank.
            let mut v = [Complex64::ZERO; 4];
            v[crate::ix(g << 1)] = self.get(i0);
            v[crate::ix((g << 1) | 1)] = self.get(i1);
            v[crate::ix((1 - g) << 1)] = read_chunk(i0);
            v[crate::ix(((1 - g) << 1) | 1)] = read_chunk(i1);
            let out = m.apply(v);
            self.set(i0, out[crate::ix(g << 1)]);
            self.set(i1, out[crate::ix((g << 1) | 1)]);
        }
    }
}

/// Shared zero-state initialiser: amplitude `basis` = 1 within this local
/// slice if it falls in `[offset, offset + len)`, everything else 0.
pub fn init_basis<S: AmpStorage>(storage: &mut S, offset: u64, basis: u64) {
    storage.fill_zero();
    let len = storage.len() as u64;
    if basis >= offset && basis < offset + len {
        storage.set(crate::ix(basis - offset), Complex64::ONE);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index arithmetic is the subject under test
pub(crate) mod conformance {
    //! Layout-agnostic conformance suite run against each implementation.

    use super::*;
    use qse_math::approx::{assert_close, assert_complex_close};
    use std::f64::consts::FRAC_1_SQRT_2;

    fn hadamard() -> Matrix2 {
        let h = Complex64::real(FRAC_1_SQRT_2);
        Matrix2::new(h, h, h, -h)
    }

    fn ramp<S: AmpStorage>(len: usize) -> S {
        let mut s = S::zeros(len);
        for i in 0..len {
            s.set(i, Complex64::new(i as f64, -(i as f64) / 2.0));
        }
        s
    }

    pub fn run_all<S: AmpStorage>() {
        basic_accessors::<S>();
        pairs_hadamard::<S>();
        pairs_every_qubit_roundtrip::<S>();
        pairs_controlled::<S>();
        phase_sweep_with_offset::<S>();
        fused_diagonal_bitwise_matches_gate_at_a_time::<S>();
        large_fused_diagonal_matches_default::<S>();
        swap_local_permutes::<S>();
        combine_rows_linear::<S>();
        f64_roundtrip::<S>();
        into_buffers_reuse_capacity::<S>();
        half_bit_extract_write::<S>();
        init_basis_places_one::<S>();
        large_parallel_sweep_matches_small::<S>();
        controlled_pairs_multi_chunk::<S>();
        large_swap_matches_permutation::<S>();
        distributed_1q_range_chunks_match_full::<S>();
        distributed_2q_range_chunks_match_full::<S>();
        swap_range_chunks_match_full::<S>();
        half_bit_range_chunks_match_full::<S>();
        copy_range_chunks_match_full::<S>();
    }

    /// Peer-buffer fixture: deterministic non-trivial interleaved pairs.
    fn peer_pairs(len: usize) -> Vec<f64> {
        (0..len)
            .flat_map(|i| [(i as f64) * 0.75 - 3.0, 1.0 / (i as f64 + 2.0)])
            .collect()
    }

    /// Asserts two storages are bit-for-bit identical.
    fn assert_bits_equal<S: AmpStorage>(a: &S, b: &S, ctx: &str) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let (x, y) = (a.get(i), b.get(i));
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{ctx}: re at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{ctx}: im at {i}");
        }
    }

    /// Layout-agnostic reference for a controlled pair sweep: per-element
    /// control test, `Complex64` operator arithmetic.
    fn naive_controlled<S: AmpStorage>(s: &mut S, q: u32, m: &Matrix2, c: u32) {
        let stride = 1usize << q;
        for i in 0..s.len() {
            if (i >> q) & 1 == 1 || (i >> c) & 1 == 0 {
                continue;
            }
            let j = i | stride;
            let (a0, a1) = (s.get(i), s.get(j));
            s.set(i, m.m[0] * a0 + m.m[1] * a1);
            s.set(j, m.m[2] * a0 + m.m[3] * a1);
        }
    }

    fn controlled_pairs_multi_chunk<S: AmpStorage>() {
        use qse_math::approx::assert_complex_close;
        // Controlled gates through the parallel branches at chunk bases
        // ≠ 0: state sizes straddling PAR_THRESHOLD, control above and
        // below the target, including the single-top-qubit-block path.
        let m = Matrix2::new(
            Complex64::new(0.6, 0.1),
            Complex64::new(-0.3, 0.8),
            Complex64::new(0.2, -0.4),
            Complex64::new(0.9, 0.05),
        );
        for len in [PAR_THRESHOLD / 2, PAR_THRESHOLD, PAR_THRESHOLD * 2] {
            let top = len.trailing_zeros() - 1;
            for &(q, c) in &[
                (0u32, 5u32),         // control above a bottom target
                (5, 2),               // control below target, both mid
                (top - 1, top),       // blocked path at max stride, control above
                (top, 3),             // single-block path, control far below
                (top, top - 1),       // single-block path, control just below
                (2, top),             // top control selects half the blocks
            ] {
                let mut got: S = ramp(len);
                got.apply_pairs(q, &m, Some(c));
                let mut want: S = ramp(len);
                naive_controlled(&mut want, q, &m, c);
                for i in 0..len {
                    assert_complex_close(got.get(i), want.get(i), 1e-9);
                }
            }
        }
    }

    fn large_swap_matches_permutation<S: AmpStorage>() {
        // The parallel chunked swap is a pure permutation, so it must
        // match the bit-swapped index map exactly (bitwise).
        let len = PAR_THRESHOLD * 2;
        let top = len.trailing_zeros() - 1;
        for &(a, b) in &[(0u32, 3u32), (0, top), (5, top), (top - 1, top), (2, 9)] {
            let before: S = ramp(len);
            let mut s = before.clone();
            s.swap_local(a, b);
            for i in 0..len as u64 {
                let j = qse_math::bits::swap_bits(i, a, b);
                let (x, y) = (s.get(i as usize), before.get(j as usize));
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "swap({a},{b}) re at {i}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "swap({a},{b}) im at {i}");
            }
        }
    }

    fn distributed_1q_range_chunks_match_full<S: AmpStorage>() {
        let c_mine = Complex64::new(0.6, -0.2);
        let c_theirs = Complex64::new(0.1, 0.8);
        let theirs = peer_pairs(32);
        for control in [None, Some(2u32)] {
            let mut full: S = ramp(32);
            full.combine_rows(c_mine, c_theirs, &theirs, control);
            // Uneven sub-ranges applied out of order must match exactly.
            let mut chunked: S = ramp(32);
            for &(start, n) in &[(20usize, 12usize), (0, 6), (6, 14)] {
                chunked.apply_distributed_1q_range(
                    c_mine,
                    c_theirs,
                    &theirs[2 * start..2 * (start + n)],
                    start,
                    control,
                );
            }
            assert_bits_equal(&full, &chunked, "1q range");
        }
    }

    fn distributed_2q_range_chunks_match_full<S: AmpStorage>() {
        let m = Matrix4::new([
            Complex64::new(0.5, 0.1),
            Complex64::new(0.2, 0.0),
            Complex64::new(0.0, -0.3),
            Complex64::new(0.4, 0.4),
            Complex64::new(0.1, 0.0),
            Complex64::new(0.0, 0.9),
            Complex64::new(0.3, 0.0),
            Complex64::new(0.0, 0.0),
            Complex64::new(0.0, 0.2),
            Complex64::new(0.7, 0.0),
            Complex64::new(0.1, 0.1),
            Complex64::new(0.0, -0.5),
            Complex64::new(0.6, 0.0),
            Complex64::new(0.0, 0.0),
            Complex64::new(0.2, -0.2),
            Complex64::new(0.8, 0.0),
        ]);
        let theirs = peer_pairs(32);
        for a in [0u32, 1, 2] {
            for g in [0u64, 1] {
                let mut full: S = ramp(32);
                full.combine_orbit4(a, g, &m, &theirs);
                let mut chunked: S = ramp(32);
                // Orbit-aligned sub-ranges (2^(a+1) | start, len), out of order.
                let orbit = 1usize << (a + 1);
                let step = 2 * orbit;
                let starts: Vec<usize> = (0..32 / step).map(|b| b * step).rev().collect();
                for start in starts {
                    chunked.apply_distributed_2q_range(
                        a,
                        g,
                        &m,
                        &theirs[2 * start..2 * (start + step)],
                        start,
                    );
                }
                assert_bits_equal(&full, &chunked, "2q range");
            }
        }
    }

    fn swap_range_chunks_match_full<S: AmpStorage>() {
        let theirs = peer_pairs(32);
        for lo in [0u32, 2, 4] {
            for g in [0u64, 1] {
                let mut full: S = ramp(32);
                full.apply_distributed_swap_range(lo, g, &theirs, 0);
                let mut chunked: S = ramp(32);
                for &(start, n) in &[(24usize, 8usize), (0, 10), (10, 14)] {
                    chunked.apply_distributed_swap_range(
                        lo,
                        g,
                        &theirs[2 * start..2 * (start + n)],
                        start,
                    );
                }
                assert_bits_equal(&full, &chunked, "swap range");
            }
        }
    }

    fn half_bit_range_chunks_match_full<S: AmpStorage>() {
        let half = peer_pairs(16); // 16 pairs for a 32-amp slice
        for q in [0u32, 3] {
            for v in [0u64, 1] {
                let mut full: S = ramp(32);
                full.write_half_bit(q, v, &half);
                let mut chunked: S = ramp(32);
                for &(start, n) in &[(10usize, 6usize), (0, 4), (4, 6)] {
                    chunked.write_half_bit_range(q, v, &half[2 * start..2 * (start + n)], start);
                }
                assert_bits_equal(&full, &chunked, "half-bit range");
            }
        }
    }

    fn copy_range_chunks_match_full<S: AmpStorage>() {
        let data = peer_pairs(32);
        let mut full: S = ramp(32);
        full.copy_from_f64(&data);
        let mut chunked: S = ramp(32);
        for &(start, n) in &[(17usize, 15usize), (0, 9), (9, 8)] {
            chunked.copy_from_f64_range(&data[2 * start..2 * (start + n)], start);
        }
        assert_bits_equal(&full, &chunked, "copy range");
    }

    fn basic_accessors<S: AmpStorage>() {
        let mut s = S::zeros(8);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.get(3), Complex64::ZERO);
        s.set(3, Complex64::new(1.0, 2.0));
        assert_eq!(s.get(3), Complex64::new(1.0, 2.0));
        assert_close(s.norm_sqr_sum(), 5.0, 1e-12);
        s.fill_zero();
        assert_close(s.norm_sqr_sum(), 0.0, 1e-12);
    }

    fn pairs_hadamard<S: AmpStorage>() {
        // |0> --H on qubit 0--> (|0>+|1>)/√2
        let mut s = S::zeros(4);
        s.set(0, Complex64::ONE);
        s.apply_pairs(0, &hadamard(), None);
        assert_complex_close(s.get(0), Complex64::real(FRAC_1_SQRT_2), 1e-12);
        assert_complex_close(s.get(1), Complex64::real(FRAC_1_SQRT_2), 1e-12);
        assert_complex_close(s.get(2), Complex64::ZERO, 1e-12);
    }

    fn pairs_every_qubit_roundtrip<S: AmpStorage>() {
        // H twice on each qubit restores the state.
        let s0: S = ramp(32);
        for q in 0..5 {
            let mut s = s0.clone();
            s.apply_pairs(q, &hadamard(), None);
            s.apply_pairs(q, &hadamard(), None);
            for i in 0..32 {
                assert_complex_close(s.get(i), s0.get(i), 1e-9);
            }
        }
    }

    fn pairs_controlled<S: AmpStorage>() {
        // X on qubit 0 controlled by qubit 1: only indices with bit1 set flip.
        let x = Matrix2::new(
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ONE,
            Complex64::ZERO,
        );
        let mut s: S = ramp(8);
        let before = s.to_complex_vec();
        s.apply_pairs(0, &x, Some(1));
        assert_complex_close(s.get(0), before[0], 1e-12); // bit1=0 untouched
        assert_complex_close(s.get(1), before[1], 1e-12);
        assert_complex_close(s.get(2), before[3], 1e-12); // |10> <- |11>
        assert_complex_close(s.get(3), before[2], 1e-12);
        assert_complex_close(s.get(6), before[7], 1e-12);
    }

    fn phase_sweep_with_offset<S: AmpStorage>() {
        // phase(index) = -1 iff global bit 3 set; offset 8 sets bit 3 for
        // every local index.
        let mut s: S = ramp(8);
        let before = s.to_complex_vec();
        s.apply_phase_fn(8, &|idx| {
            if (idx >> 3) & 1 == 1 {
                Complex64::real(-1.0)
            } else {
                Complex64::ONE
            }
        });
        for i in 0..8 {
            assert_complex_close(s.get(i), -before[i], 1e-12);
        }
    }

    fn fused_diagonal_bitwise_matches_gate_at_a_time<S: AmpStorage>() {
        use crate::diagonal::{diagonal_phase, CompiledDiagonal};
        use qse_circuit::Gate;
        let gates = vec![
            Gate::S(0),
            Gate::T(1),
            Gate::CPhase {
                a: 0,
                b: 2,
                theta: 0.3,
            },
            Gate::Rz {
                target: 2,
                theta: -0.9,
            },
            Gate::Z(1),
        ];
        let offset = 16u64; // a rank bit above the local width
        let mut unfused: S = ramp(8);
        for g in &gates {
            unfused.apply_phase_fn(offset, &|i| diagonal_phase(g, i));
        }
        let mut fused: S = ramp(8);
        fused.apply_fused_diagonal(offset, &CompiledDiagonal::compile(&gates));
        for i in 0..8 {
            let (u, f) = (unfused.get(i), fused.get(i));
            assert_eq!(u.re.to_bits(), f.re.to_bits(), "re at {i}");
            assert_eq!(u.im.to_bits(), f.im.to_bits(), "im at {i}");
        }
    }

    fn large_fused_diagonal_matches_default<S: AmpStorage>() {
        // Above PAR_THRESHOLD the fused sweep takes the pool path; verify
        // it agrees bitwise with per-gate sweeps on the same data.
        use crate::diagonal::{diagonal_phase, CompiledDiagonal};
        use qse_circuit::Gate;
        let len = PAR_THRESHOLD * 2;
        let gates = vec![
            Gate::T(3),
            Gate::CZ(5, 12),
            Gate::Phase {
                target: 9,
                theta: 1.7,
            },
        ];
        let mut unfused = S::zeros(len);
        let mut fused = S::zeros(len);
        for i in 0..len {
            let v = Complex64::new((i % 17) as f64 * 0.25, -((i % 5) as f64));
            unfused.set(i, v);
            fused.set(i, v);
        }
        for g in &gates {
            unfused.apply_phase_fn(0, &|i| diagonal_phase(g, i));
        }
        fused.apply_fused_diagonal(0, &CompiledDiagonal::compile(&gates));
        for i in 0..len {
            let (u, f) = (unfused.get(i), fused.get(i));
            assert_eq!(u.re.to_bits(), f.re.to_bits(), "re at {i}");
            assert_eq!(u.im.to_bits(), f.im.to_bits(), "im at {i}");
        }
    }

    fn swap_local_permutes<S: AmpStorage>() {
        let mut s: S = ramp(8);
        let before = s.to_complex_vec();
        s.swap_local(0, 2);
        for i in 0..8u64 {
            let j = qse_math::bits::swap_bits(i, 0, 2);
            assert_complex_close(s.get(i as usize), before[j as usize], 1e-12);
        }
        // involution
        s.swap_local(0, 2);
        for i in 0..8 {
            assert_complex_close(s.get(i), before[i], 1e-12);
        }
    }

    fn combine_rows_linear<S: AmpStorage>() {
        let mut s: S = ramp(4);
        let before = s.to_complex_vec();
        let theirs: Vec<f64> = (0..4).flat_map(|i| [10.0 + i as f64, 0.5]).collect();
        let a = Complex64::new(0.25, 0.0);
        let b = Complex64::new(0.0, 1.0);
        s.combine_rows(a, b, &theirs, None);
        for i in 0..4 {
            let t = Complex64::new(10.0 + i as f64, 0.5);
            assert_complex_close(s.get(i), a * before[i] + b * t, 1e-12);
        }
        // controlled variant: only bit-0 = 1 slots change
        let mut s: S = ramp(4);
        s.combine_rows(a, b, &theirs, Some(0));
        assert_complex_close(s.get(0), before[0], 1e-12);
        assert_complex_close(s.get(2), before[2], 1e-12);
        let t1 = Complex64::new(11.0, 0.5);
        assert_complex_close(s.get(1), a * before[1] + b * t1, 1e-12);
    }

    fn f64_roundtrip<S: AmpStorage>() {
        let s: S = ramp(16);
        let data = s.to_f64_vec();
        assert_eq!(data.len(), 32);
        let mut t = S::zeros(16);
        t.copy_from_f64(&data);
        for i in 0..16 {
            assert_complex_close(t.get(i), s.get(i), 1e-15);
        }
    }

    fn into_buffers_reuse_capacity<S: AmpStorage>() {
        let s: S = ramp(16);
        // Pre-dirtied buffers with excess capacity: _into must clear and
        // refill without reallocating.
        let mut buf = vec![99.0; 64];
        let cap = buf.capacity();
        s.write_f64_into(&mut buf);
        assert_eq!(buf, s.to_f64_vec());
        assert_eq!(buf.capacity(), cap);
        let mut half = vec![-1.0; 64];
        let half_cap = half.capacity();
        s.extract_half_bit_into(2, 1, &mut half);
        assert_eq!(half, s.extract_half_bit(2, 1));
        assert_eq!(half.capacity(), half_cap);
    }

    fn half_bit_extract_write<S: AmpStorage>() {
        let s: S = ramp(16);
        for q in 0..4u32 {
            for v in 0..2u64 {
                let half = s.extract_half_bit(q, v);
                assert_eq!(half.len(), 16); // 8 amps × 2 f64
                // Writing the extracted half back is a no-op.
                let mut t = s.clone();
                t.write_half_bit(q, v, &half);
                for i in 0..16 {
                    assert_complex_close(t.get(i), s.get(i), 1e-15);
                }
                // The extracted values are the amps with bit q == v, ascending.
                let expected: Vec<Complex64> = (0..16u64)
                    .filter(|i| (i >> q) & 1 == v)
                    .map(|i| s.get(i as usize))
                    .collect();
                for (k, e) in expected.iter().enumerate() {
                    assert_complex_close(
                        Complex64::new(half[2 * k], half[2 * k + 1]),
                        *e,
                        1e-15,
                    );
                }
            }
        }
    }

    fn init_basis_places_one<S: AmpStorage>() {
        let mut s = S::zeros(8);
        super::init_basis(&mut s, 8, 11); // local index 3
        assert_complex_close(s.get(3), Complex64::ONE, 1e-15);
        assert_close(s.norm_sqr_sum(), 1.0, 1e-15);
        super::init_basis(&mut s, 8, 3); // outside this slice
        assert_close(s.norm_sqr_sum(), 0.0, 1e-15);
    }

    fn large_parallel_sweep_matches_small<S: AmpStorage>() {
        // Above PAR_THRESHOLD the kernels take the Rayon path; verify it
        // agrees with the sequential one via the H-twice identity and a
        // norm check.
        let len = PAR_THRESHOLD * 2;
        let mut s = S::zeros(len);
        s.set(0, Complex64::ONE);
        for q in [0u32, 5, (len.trailing_zeros() - 1)] {
            s.apply_pairs(q, &hadamard(), None);
        }
        assert_close(s.norm_sqr_sum(), 1.0, 1e-9);
        for q in [(len.trailing_zeros() - 1), 5, 0u32] {
            s.apply_pairs(q, &hadamard(), None);
        }
        assert_close(s.norm_sqr_sum(), 1.0, 1e-9);
        assert_complex_close(s.get(0), Complex64::ONE, 1e-9);
    }
}
