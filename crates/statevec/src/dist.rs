//! The distributed statevector engine — QuEST's execution model (§2.1).
//!
//! "QuEST requires the statevector to be split evenly across 2^n
//! processes. This ensures pairwise communication for any given gate. It
//! also means that the entire local statevector needs to be exchanged."
//!
//! Each rank of a [`qse_comm::Universe`] owns `2^{n−r}` amplitudes. Gates
//! dispatch on the paper's locality classes:
//!
//! * fully local (diagonal) → one phase sweep, no communication;
//! * local memory → in-place pair kernel;
//! * distributed → chunked exchange with the single pair rank
//!   (`rank XOR 2^{q−(n−r)}`), then a linear combine.
//!
//! Distributed SWAPs additionally support the paper's future-work *half
//! exchange* (§4): only the amplitudes whose swap bits differ move, which
//! halves both traffic and buffer requirements.

use crate::diagonal::{diagonal_phase, CompiledDiagonal};
use crate::single::DEFAULT_MIN_FUSE;
use crate::storage::{init_basis, AmpStorage, SoaStorage};
use qse_circuit::classify::{classify, GateClass, Layout};
use qse_circuit::transpile::fusion::{fused_schedule, ScheduleStep};
use qse_circuit::transpile::{Plan, PlanStep};
use qse_circuit::{Circuit, Gate, Permutation};
use qse_comm::chunking::{chunk_tag, exchange, ChunkPolicy, ExchangeMode, StreamedExchange};
use qse_comm::collective;
use qse_comm::message::{bytes_to_f64s, bytes_to_f64s_into, f64s_to_bytes, f64s_to_bytes_into};
use qse_comm::Result as CommResult;
use qse_comm::{CommError, Communicator, TrafficStats};
use qse_math::bits;
use qse_math::Complex64;

/// Exchange and execution options for a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Blocking sendrecv (QuEST default), the paper's non-blocking
    /// rewrite, or the streamed chunk-pipelined exchange that overlaps
    /// each chunk's combine with the remaining communication.
    pub exchange_mode: ExchangeMode,
    /// Per-message size cap; ARCHER2's is 2 GiB, tests use small values
    /// to force multi-chunk exchanges.
    pub chunk_policy: ChunkPolicy,
    /// Use the half exchange for distributed SWAPs (§4 future work).
    pub half_exchange_swaps: bool,
    /// Fuse runs of ≥ this many diagonal gates into one sweep in
    /// [`DistributedState::run`]; `None` disables fusion. Defaults to
    /// [`DEFAULT_MIN_FUSE`]: the real engine executes the same fused
    /// schedule the analytic model prices.
    pub min_fuse: Option<usize>,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            exchange_mode: ExchangeMode::Blocking,
            chunk_policy: ChunkPolicy {
                max_message_bytes: 1 << 20,
            },
            half_exchange_swaps: false,
            min_fuse: Some(DEFAULT_MIN_FUSE),
        }
    }
}

/// Per-rank view of a distributed statevector. Lives inside one rank's
/// thread and borrows that rank's [`Communicator`].
pub struct DistributedState<'c, S: AmpStorage = SoaStorage> {
    comm: &'c mut Communicator,
    layout: Layout,
    amps: S,
    config: DistConfig,
    exchange_seq: u64,
    // Scratch buffers for the exchange hot path: every distributed gate
    // reuses these instead of allocating fresh vectors (§2.1's "entire
    // local statevector" amounts to gigabytes per process at scale, so
    // per-gate allocation and copy churn is real money). `recv_f64` is
    // lent to callers via `mem::take` and handed back after the combine.
    send_f64: Vec<f64>,
    send_bytes: Vec<u8>,
    recv_bytes: Vec<u8>,
    recv_f64: Vec<f64>,
    // Ring of chunk-sized decode buffers for the streamed exchange: the
    // peak scratch footprint is ring-depth × chunk size instead of the
    // full half-vector the other modes stage through `recv_f64`.
    recv_ring: Vec<Vec<f64>>,
}

/// User exchange tags must stay below `2^31` (see `qse_comm::chunking`).
const TAG_MOD: u64 = 1 << 30;

impl<'c, S: AmpStorage> DistributedState<'c, S> {
    /// Creates |00…0⟩ distributed over every rank of `comm`'s universe.
    pub fn zero_state(comm: &'c mut Communicator, n_qubits: u32, config: DistConfig) -> Self {
        Self::basis_state(comm, n_qubits, 0, config)
    }

    /// Creates the computational basis state |index⟩.
    pub fn basis_state(
        comm: &'c mut Communicator,
        n_qubits: u32,
        index: u64,
        config: DistConfig,
    ) -> Self {
        let layout = Layout::new(n_qubits, comm.size() as u64);
        let mut amps = S::zeros(crate::ix(layout.local_amps()));
        let offset = comm.rank() as u64 * layout.local_amps();
        init_basis(&mut amps, offset, index);
        DistributedState {
            comm,
            layout,
            amps,
            config,
            exchange_seq: 0,
            send_f64: Vec::new(),
            send_bytes: Vec::new(),
            recv_bytes: Vec::new(),
            recv_f64: Vec::new(),
            recv_ring: vec![Vec::new(); StreamedExchange::DEFAULT_RING_DEPTH],
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// The register/rank layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The global index of this rank's first amplitude.
    pub fn rank_offset(&self) -> u64 {
        self.rank() as u64 * self.layout.local_amps()
    }

    /// Immutable access to the local amplitudes.
    pub fn local(&self) -> &S {
        &self.amps
    }

    /// Communication statistics for this rank.
    pub fn stats(&self) -> TrafficStats {
        self.comm.stats()
    }

    /// Synchronises every rank (delegates to the communicator barrier).
    pub fn barrier(&self) {
        self.comm.barrier();
    }

    /// Advances the per-gate tag sequence. Called exactly once per
    /// *distributed gate* on **every** rank — including spectator ranks
    /// that skip the exchange — so that partners always agree on wire
    /// tags regardless of participation history.
    fn next_tag(&mut self) -> u64 {
        self.exchange_seq += 1;
        self.exchange_seq % TAG_MOD
    }

    /// Full pairwise exchange: ship the entire local vector to `peer`,
    /// receive theirs — "the entire local statevector needs to be
    /// exchanged – 64 GB per process on ARCHER2" (§2.1).
    ///
    /// Allocation-free after warm-up: stages through the per-state
    /// scratch buffers. The returned vector is the `recv_f64` scratch,
    /// taken with `mem::take` — callers hand it back via
    /// [`Self::release_recv`] once the combine is done.
    fn exchange_full(&mut self, peer: usize, tag: u64) -> CommResult<Vec<f64>> {
        self.amps.write_f64_into(&mut self.send_f64);
        self.staged_exchange(peer, tag)
    }

    /// Half exchange for SWAPs: ship only the amplitudes whose `local_q`
    /// bit equals `send_v`; receive the peer's complementary half. Same
    /// scratch-buffer protocol as [`Self::exchange_full`].
    fn exchange_half(
        &mut self,
        peer: usize,
        tag: u64,
        local_q: u32,
        send_v: u64,
    ) -> CommResult<Vec<f64>> {
        self.amps
            .extract_half_bit_into(local_q, send_v, &mut self.send_f64);
        self.staged_exchange(peer, tag)
    }

    /// Ships whatever `exchange_full`/`exchange_half` staged in
    /// `send_f64` and decodes the peer's reply into the `recv_f64`
    /// scratch (lent out; return it with [`Self::release_recv`]).
    fn staged_exchange(&mut self, peer: usize, tag: u64) -> CommResult<Vec<f64>> {
        f64s_to_bytes_into(&self.send_f64, &mut self.send_bytes);
        exchange(
            self.config.exchange_mode,
            self.comm,
            peer,
            tag,
            &self.send_bytes,
            &mut self.recv_bytes,
            self.send_bytes.len(),
            self.config.chunk_policy,
        )?;
        let mut out = std::mem::take(&mut self.recv_f64);
        out.resize(self.recv_bytes.len() / 8, 0.0);
        bytes_to_f64s_into(&self.recv_bytes, &mut out);
        Ok(out)
    }

    /// Returns the receive scratch lent out by an exchange so the next
    /// distributed gate reuses its capacity.
    fn release_recv(&mut self, buf: Vec<f64>) {
        self.recv_f64 = buf;
    }

    /// Streamed chunk-pipelined exchange (the tentpole of
    /// `ExchangeMode::Streamed`): ships whatever the caller staged in
    /// `send_f64` and, as each receive chunk lands, immediately runs
    /// `apply(amps, start_amp, chunk_f64)` on exactly that amplitude
    /// range while later chunks are still in flight.
    ///
    /// `align_amps` is the kernel's orbit size in amplitudes: chunk
    /// boundaries are rounded so every chunk covers whole orbits (an
    /// amplitude is 16 wire bytes). Decoding cycles through the small
    /// `recv_ring`, so peak exchange scratch is ring-depth × chunk size —
    /// never the full half vector. The in-flight gauge on the
    /// communicator tracks exactly that footprint.
    fn streamed_exchange_apply<F>(
        &mut self,
        peer: usize,
        tag: u64,
        align_amps: usize,
        mut apply: F,
    ) -> CommResult<()>
    where
        F: FnMut(&mut S, usize, &[f64]),
    {
        f64s_to_bytes_into(&self.send_f64, &mut self.send_bytes);
        let policy = self.config.chunk_policy.aligned(align_amps * 16);
        let mut ex = StreamedExchange::begin(
            self.comm,
            peer,
            tag,
            &self.send_bytes,
            self.send_bytes.len(),
            policy,
            self.recv_ring.len(),
        )?;
        let mut held = vec![0u64; self.recv_ring.len()];
        let mut turn = 0usize;
        while let Some((_, range, payload)) = ex.next(self.comm, &self.send_bytes)? {
            let slot = turn % self.recv_ring.len();
            turn += 1;
            self.comm.scratch_release(held[slot]);
            held[slot] = payload.len() as u64;
            self.comm.scratch_acquire(held[slot]);
            let buf = &mut self.recv_ring[slot];
            buf.resize(payload.len() / 8, 0.0);
            bytes_to_f64s_into(&payload, buf);
            apply(&mut self.amps, range.start / 16, buf);
        }
        for h in held {
            self.comm.scratch_release(h);
        }
        Ok(())
    }

    /// Applies one gate, communicating as its locality class requires.
    /// Fails only when the underlying exchange fails (peer disconnected,
    /// deadlock diagnosed) — pure-local gates always succeed.
    pub fn apply(&mut self, gate: &Gate) -> CommResult<()> {
        assert!(
            gate.max_qubit() < self.layout.n_qubits(),
            "gate out of range"
        );
        match classify(gate, &self.layout) {
            GateClass::FullyLocal => {
                let offset = self.rank_offset();
                self.amps
                    .apply_phase_fn(offset, &|i| diagonal_phase(gate, i));
                Ok(())
            }
            GateClass::LocalMemory => {
                match *gate {
                    Gate::Swap(a, b) => self.amps.swap_local(a, b),
                    Gate::Unitary2 { a, b, ref matrix } => self.amps.apply_orbit4(a, b, matrix),
                    ref g => {
                        let Some(m) = g.matrix1() else {
                            unreachable!("classify only routes single-target gates here")
                        };
                        match g.control() {
                            Some(c) if !self.layout.is_local(c) => {
                                // Global control: this rank applies the plain
                                // gate iff its control bit is set.
                                if self.rank_bit_value(c) == 1 {
                                    self.amps.apply_pairs(g.target(), &m, None);
                                }
                            }
                            ctrl => self.amps.apply_pairs(g.target(), &m, ctrl),
                        }
                    }
                }
                Ok(())
            }
            GateClass::Distributed => {
                let tag = self.next_tag();
                match *gate {
                    Gate::Swap(a, b) => self.distributed_swap(a, b, tag),
                    Gate::Unitary2 { a, b, ref matrix } => {
                        self.distributed_unitary2(a, b, matrix, tag)
                    }
                    ref g => {
                        let Some(m) = g.matrix1() else {
                            unreachable!("classify only routes single-target gates here")
                        };
                        self.distributed_1q(&m, g.target(), g.control(), tag)
                    }
                }
            }
        }
    }

    /// The value of this rank's address bit for global qubit `q`.
    fn rank_bit_value(&self, q: u32) -> u64 {
        (self.rank() as u64 >> self.layout.rank_bit(q)) & 1
    }

    /// Distributed single-target gate: exchange with the pair rank, then
    /// combine rows — `new = M[b][b]·mine + M[b][1−b]·theirs` where `b` is
    /// this rank's bit of the target qubit.
    fn distributed_1q(
        &mut self,
        m: &qse_math::Matrix2,
        target: u32,
        control: Option<u32>,
        tag: u64,
    ) -> CommResult<()> {
        // A *global* control gates participation: ranks with the bit clear
        // are spectators (their pair rank shares the same control bit, so
        // neither side exchanges anything).
        let control_local = match control {
            Some(c) if !self.layout.is_local(c) => {
                if self.rank_bit_value(c) == 0 {
                    return Ok(());
                }
                None
            }
            other => other,
        };
        let pair = crate::ix(self.layout.pair_rank(self.rank() as u64, target));
        let b = crate::ix(self.rank_bit_value(target));
        if self.config.exchange_mode == ExchangeMode::Streamed {
            let (c_mine, c_theirs) = (m.at(b, b), m.at(b, 1 - b));
            self.amps.write_f64_into(&mut self.send_f64);
            self.streamed_exchange_apply(pair, tag, 1, move |amps, start, chunk| {
                amps.apply_distributed_1q_range(c_mine, c_theirs, chunk, start, control_local);
            })?;
            return Ok(());
        }
        let theirs = self.exchange_full(pair, tag)?;
        self.amps
            .combine_rows(m.at(b, b), m.at(b, 1 - b), &theirs, control_local);
        self.release_recv(theirs);
        Ok(())
    }

    /// Distributed general two-qubit unitary.
    ///
    /// One-global case: exchange with the pair rank of the global qubit
    /// and run the 4×4 combine over local pairs. Both-global case: QuEST-
    /// style decomposition — SWAP the lower global qubit with a free
    /// local qubit, apply the one-global form, SWAP back (three
    /// exchanges; the transpiler exists precisely to avoid paying this).
    fn distributed_unitary2(
        &mut self,
        a: u32,
        b: u32,
        m: &qse_math::Matrix4,
        tag: u64,
    ) -> CommResult<()> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if self.layout.is_local(lo) {
            // `lo` local, `hi` global: orbit basis must be |hi lo⟩; if the
            // caller's (a, b) order disagrees, conjugate by SWAP to
            // reorder the matrix instead of the amplitudes.
            let m_ord = if a == lo {
                *m
            } else {
                let s = qse_math::Matrix4::swap();
                s.matmul(&m.matmul(&s))
            };
            let g = self.rank_bit_value(hi);
            let pair = crate::ix(self.layout.pair_rank(self.rank() as u64, hi));
            if self.config.exchange_mode == ExchangeMode::Streamed {
                // Chunks must cover whole |hi lo⟩ orbits of 2^{lo+1}
                // amplitudes so the 4×4 combine never straddles a chunk.
                let orbit = 1usize << (lo + 1);
                self.amps.write_f64_into(&mut self.send_f64);
                self.streamed_exchange_apply(pair, tag, orbit, move |amps, start, chunk| {
                    amps.apply_distributed_2q_range(lo, g, &m_ord, chunk, start);
                })?;
                return Ok(());
            }
            let theirs = self.exchange_full(pair, tag)?;
            self.amps.combine_orbit4(lo, g, &m_ord, &theirs);
            self.release_recv(theirs);
        } else {
            // Both global: bring `lo` into the local window via a free
            // local qubit (qubit 0 is never one of a/b here), using the
            // same wire tag sequencing on every rank.
            let temp = 0u32;
            self.distributed_swap(temp, lo, tag)?;
            let m_ord = if a == lo {
                *m
            } else {
                let s = qse_math::Matrix4::swap();
                s.matmul(&m.matmul(&s))
            };
            let tag2 = self.next_tag();
            self.distributed_unitary2(temp, hi, &m_ord, tag2)?;
            let tag3 = self.next_tag();
            self.distributed_swap(temp, lo, tag3)?;
        }
        Ok(())
    }

    /// Distributed SWAP. One-global case supports the half exchange;
    /// both-global is a pure block permutation between rank pairs.
    fn distributed_swap(&mut self, a: u32, b: u32, tag: u64) -> CommResult<()> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if self.layout.is_local(lo) {
            // One local qubit `lo`, one global qubit `hi`.
            let g = self.rank_bit_value(hi);
            let pair = crate::ix(self.layout.pair_rank(self.rank() as u64, hi));
            if self.config.half_exchange_swaps {
                // Send the half the peer needs (bit_lo == 1−g), receive the
                // half we need (bit_lo == g on their side), and write it
                // into our bit_lo == 1−g slots.
                if self.config.exchange_mode == ExchangeMode::Streamed {
                    // Half-exchange payload indexes *pairs*, so the chunk
                    // start maps through `write_half_bit_range`.
                    self.amps
                        .extract_half_bit_into(lo, 1 - g, &mut self.send_f64);
                    self.streamed_exchange_apply(pair, tag, 1, move |amps, start, chunk| {
                        amps.write_half_bit_range(lo, 1 - g, chunk, start);
                    })?;
                    return Ok(());
                }
                let recv = self.exchange_half(pair, tag, lo, 1 - g)?;
                self.amps.write_half_bit(lo, 1 - g, &recv);
                self.release_recv(recv);
            } else {
                // QuEST-style: exchange everything, use half of it.
                if self.config.exchange_mode == ExchangeMode::Streamed {
                    self.amps.write_f64_into(&mut self.send_f64);
                    self.streamed_exchange_apply(pair, tag, 1, move |amps, start, chunk| {
                        amps.apply_distributed_swap_range(lo, g, chunk, start);
                    })?;
                    return Ok(());
                }
                let theirs = self.exchange_full(pair, tag)?;
                let half = self.amps.len() as u64 / 2;
                for k in 0..half {
                    let l = bits::insert_zero_bit(k, lo) | ((1 - g) << lo);
                    let src = crate::ix(bits::flip_bit(l, lo));
                    self.amps.set(
                        crate::ix(l),
                        Complex64::new(theirs[2 * src], theirs[2 * src + 1]),
                    );
                }
                self.release_recv(theirs);
            }
        } else {
            // Both qubits global: ranks whose two address bits differ
            // trade entire local vectors; equal-bit ranks are untouched.
            let x = self.rank_bit_value(lo);
            let y = self.rank_bit_value(hi);
            if x == y {
                return Ok(());
            }
            let mask =
                (1u64 << self.layout.rank_bit(lo)) | (1u64 << self.layout.rank_bit(hi));
            let pair = crate::ix(self.rank() as u64 ^ mask);
            if self.config.exchange_mode == ExchangeMode::Streamed {
                self.amps.write_f64_into(&mut self.send_f64);
                self.streamed_exchange_apply(pair, tag, 1, |amps, start, chunk| {
                    amps.copy_from_f64_range(chunk, start);
                })?;
                return Ok(());
            }
            let theirs = self.exchange_full(pair, tag)?;
            self.amps.copy_from_f64(&theirs);
            self.release_recv(theirs);
        }
        Ok(())
    }

    /// Runs a circuit, honouring the fusion setting.
    pub fn run(&mut self, circuit: &Circuit) -> CommResult<()> {
        assert_eq!(
            circuit.n_qubits(),
            self.layout.n_qubits(),
            "width mismatch"
        );
        match self.config.min_fuse {
            None => {
                for g in circuit.gates() {
                    self.apply(g)?;
                }
            }
            Some(min_fuse) => {
                let offset = self.rank_offset();
                for step in fused_schedule(circuit, min_fuse) {
                    match step {
                        ScheduleStep::Single(i) => self.apply(&circuit.gates()[i])?,
                        ScheduleStep::Fused(run) => {
                            let compiled =
                                CompiledDiagonal::compile(&circuit.gates()[run.start..run.end]);
                            self.amps.apply_fused_diagonal(offset, &compiled);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies an index-bit permutation to the whole distributed state as
    /// *one* batched global exchange: afterwards the amplitude that lived
    /// at global index `i` lives at `perm.permute_index(i)`.
    ///
    /// This is the lowering target of the comm-avoiding transpiler's
    /// `Permute` steps. Where the gate engine realises a k-transposition
    /// layout change as k pairwise exchanges (each shipping the full
    /// local slice), this routine moves every amplitude exactly once:
    ///
    /// * a permutation fixing all global positions is a pure in-memory
    ///   reorder — zero bytes on the wire;
    /// * otherwise each rank packs, per destination rank, exactly the
    ///   amplitudes that end up there, eagerly sends all peer blocks
    ///   (chunked under the message-size cap), keeps its stay-put block
    ///   locally, then receives and scatters each source block. A rank's
    ///   payload is `(1 − 2⁻ᵐ)` of its slice for a permutation pulling
    ///   `m` local bits into the rank address — batching k swap-ins costs
    ///   `1 − 2⁻ᵏ` of the slice instead of k full-slice exchanges.
    ///
    /// Wire order is sender-driven and deterministic: block `u → v` lists
    /// amplitudes by ascending *source* index, which the receiver
    /// reconstructs by scanning the sender's index space with the same
    /// permutation. Eager sends keep the all-to-all deadlock-free.
    pub fn apply_global_permutation(&mut self, perm: &Permutation) -> CommResult<()> {
        assert_eq!(
            perm.len(),
            self.layout.n_qubits(),
            "permutation width mismatch"
        );
        if perm.is_identity() {
            return Ok(());
        }
        let l = self.layout.local_qubits();
        let n = self.layout.n_qubits();
        if (l..n).all(|p| perm.apply(p) == p) {
            // Purely local: `as_transpositions` factors p = T1∘…∘Tk with
            // the state map of "apply Tk first, T1 last" equal to Π(p).
            for &(a, b) in perm.as_transpositions().iter().rev() {
                self.amps.swap_local(a, b);
            }
            return Ok(());
        }

        let tag = self.next_tag();
        let ranks = crate::ix(self.layout.n_ranks());
        let local_amps = self.layout.local_amps();
        let mask = local_amps - 1;
        let me = self.rank() as u64;

        // Pack per-destination blocks in ascending source order; stay-put
        // amplitudes scatter straight into the staging vector.
        let mut staging = std::mem::take(&mut self.recv_f64);
        staging.resize(2 * crate::ix(local_amps), 0.0);
        let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); ranks];
        for sl in 0..local_amps {
            let d = perm.permute_index((me << l) | sl);
            let amp = self.amps.get(crate::ix(sl));
            let v = crate::ix(d >> l);
            if v as u64 == me {
                let dl = crate::ix(d & mask);
                staging[2 * dl] = amp.re;
                staging[2 * dl + 1] = amp.im;
            } else {
                blocks[v].push(amp.re);
                blocks[v].push(amp.im);
            }
        }

        // Eager sends to every peer first (ascending, chunked): the
        // mailbox transport buffers them, so no receive can deadlock.
        let mut sent_bytes = 0u64;
        for v in 0..ranks {
            if v as u64 == me || blocks[v].is_empty() {
                continue;
            }
            f64s_to_bytes_into(&blocks[v], &mut self.send_bytes);
            sent_bytes += self.send_bytes.len() as u64;
            for (idx, range) in self
                .config
                .chunk_policy
                .ranges(self.send_bytes.len())
                .enumerate()
            {
                self.comm.send(v, chunk_tag(tag, idx), &self.send_bytes[range])?;
            }
        }
        if sent_bytes > 0 {
            self.comm.record_exchange_bytes(sent_bytes);
        }

        // Receive each source block and scatter it. The sender listed its
        // amplitudes by ascending source index, so replaying the sender's
        // scan yields each payload's destination sequence.
        for w in 0..ranks as u64 {
            if w == me {
                continue;
            }
            let mut dests: Vec<usize> = Vec::new();
            for sl in 0..local_amps {
                let d = perm.permute_index((w << l) | sl);
                if d >> l == me {
                    dests.push(crate::ix(d & mask));
                }
            }
            if dests.is_empty() {
                continue;
            }
            let total = dests.len() * 16;
            let mut filled = 0usize;
            for (idx, range) in self.config.chunk_policy.ranges(total).enumerate() {
                let payload = self.comm.recv(crate::ix(w), chunk_tag(tag, idx))?;
                debug_assert_eq!(payload.len(), range.len(), "chunk length");
                let buf = &mut self.recv_ring[0];
                buf.resize(payload.len() / 8, 0.0);
                bytes_to_f64s_into(&payload, buf);
                for (k, pair) in buf.chunks_exact(2).enumerate() {
                    let dl = dests[filled + k];
                    staging[2 * dl] = pair[0];
                    staging[2 * dl + 1] = pair[1];
                }
                filled += payload.len() / 16;
            }
            debug_assert_eq!(filled, dests.len(), "whole block consumed");
        }

        self.amps.copy_from_f64(&staging);
        self.release_recv(staging);
        Ok(())
    }

    /// Runs a comm-avoiding [`Plan`]: gate runs execute through
    /// [`Self::run`] (so diagonal fusion still applies within each
    /// segment) and `Permute` steps lower to
    /// [`Self::apply_global_permutation`].
    pub fn run_plan(&mut self, plan: &Plan) -> CommResult<()> {
        assert_eq!(
            plan.n_qubits(),
            self.layout.n_qubits(),
            "width mismatch"
        );
        let mut pending = Circuit::new(plan.n_qubits());
        for step in &plan.steps {
            match step {
                PlanStep::Gate(g) => {
                    pending.push(g.clone());
                }
                PlanStep::Permute(p) => {
                    if !pending.is_empty() {
                        self.run(&pending)?;
                        pending = Circuit::new(plan.n_qubits());
                    }
                    self.apply_global_permutation(p)?;
                }
            }
        }
        if !pending.is_empty() {
            self.run(&pending)?;
        }
        Ok(())
    }

    /// Global Σ|amp|² via all-reduce.
    pub fn norm_sqr(&mut self) -> CommResult<f64> {
        let local = self.amps.norm_sqr_sum();
        Ok(collective::allreduce_sum_f64(self.comm, &[local])?[0])
    }

    /// Global probability that measuring `qubit` yields 1.
    pub fn prob_one(&mut self, qubit: u32) -> CommResult<f64> {
        let local = if self.layout.is_local(qubit) {
            let mask = 1u64 << qubit;
            let mut p = 0.0;
            for i in 0..self.amps.len() as u64 {
                if i & mask != 0 {
                    p += self.amps.get(crate::ix(i)).norm_sqr();
                }
            }
            p
        } else if self.rank_bit_value(qubit) == 1 {
            self.amps.norm_sqr_sum()
        } else {
            0.0
        };
        Ok(collective::allreduce_sum_f64(self.comm, &[local])?[0])
    }

    /// Expectation value ⟨ψ|P|ψ⟩ of a Pauli string on the distributed
    /// state — collective: applies the Paulis (communicating for global
    /// X/Y), all-reduces `⟨ψ, Pψ⟩`, and restores the original amplitudes.
    pub fn pauli_expectation(
        &mut self,
        string: &[(u32, crate::expectation::Pauli)],
    ) -> CommResult<f64> {
        use crate::expectation::Pauli;
        {
            let mut seen = std::collections::HashSet::new();
            for (q, _) in string {
                assert!(*q < self.layout.n_qubits(), "qubit {q} out of range");
                assert!(seen.insert(*q), "duplicate qubit {q} in Pauli string");
            }
        }
        let saved = self.amps.clone();
        for &(q, p) in string {
            let gate = match p {
                Pauli::X => Gate::X(q),
                Pauli::Y => Gate::Y(q),
                Pauli::Z => Gate::Z(q),
            };
            self.apply(&gate)?;
        }
        let mut local = [0.0f64; 2];
        for i in 0..saved.len() {
            let v = saved.get(i).conj() * self.amps.get(i);
            local[0] += v.re;
            local[1] += v.im;
        }
        let total = collective::allreduce_sum_f64(self.comm, &local)?;
        self.amps = saved;
        debug_assert!(total[1].abs() < 1e-9, "non-real expectation");
        Ok(total[0])
    }

    /// Projects `qubit` onto `bit` and renormalises — the distributed
    /// collapse. Every rank must call this collectively (it all-reduces
    /// the outcome probability).
    ///
    /// Returns [`CommError::ImpossibleOutcome`] on every rank when the
    /// requested outcome has (numerically) zero probability; the state
    /// is untouched. The all-reduce guarantees every rank computes the
    /// same `p`, so all ranks agree on the error and the collective
    /// stays in lockstep.
    pub fn collapse(&mut self, qubit: u32, bit: u8) -> CommResult<()> {
        let p1 = self.prob_one(qubit)?;
        let p = if bit == 1 { p1 } else { 1.0 - p1 };
        if p <= 1e-15 {
            return Err(CommError::ImpossibleOutcome { qubit, bit });
        }
        let scale = 1.0 / p.sqrt();
        if self.layout.is_local(qubit) {
            let mask = 1u64 << qubit;
            for i in 0..self.amps.len() as u64 {
                let v = if u8::from(i & mask != 0) == bit {
                    self.amps.get(crate::ix(i)).scale(scale)
                } else {
                    Complex64::ZERO
                };
                self.amps.set(crate::ix(i), v);
            }
        } else if self.rank_bit_value(qubit) as u8 == bit {
            // Whole local slice survives, rescaled.
            for i in 0..self.amps.len() {
                let v = self.amps.get(i).scale(scale);
                self.amps.set(i, v);
            }
        } else {
            self.amps.fill_zero();
        }
        Ok(())
    }

    /// Measures `qubit` collectively: rank 0 draws the outcome from the
    /// global distribution (using the uniform sample `u ∈ [0,1)` it
    /// broadcasts), all ranks collapse identically, and the observed bit
    /// is returned on every rank.
    pub fn measure_qubit(&mut self, qubit: u32, u: f64) -> CommResult<u8> {
        // Broadcast rank 0's u so all ranks agree even if callers passed
        // rank-local randomness.
        let u_bytes = u.to_le_bytes();
        let agreed = collective::broadcast(self.comm, 0, &u_bytes)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&agreed[..8]);
        let u = f64::from_le_bytes(b);
        let p1 = self.prob_one(qubit)?;
        let bit = u8::from(u < p1);
        self.collapse(qubit, bit)?;
        Ok(bit)
    }

    /// Gathers the full statevector on rank 0 (`None` elsewhere).
    /// Test-scale only: allocates the entire `2^n` vector.
    pub fn gather(&mut self) -> CommResult<Option<Vec<Complex64>>> {
        let local = f64s_to_bytes(&self.amps.to_f64_vec());
        let Some(parts) = collective::gather(self.comm, 0, &local)? else {
            return Ok(None);
        };
        let mut full = Vec::with_capacity(crate::ix(self.layout.local_amps()) * parts.len());
        for part in parts {
            let values = bytes_to_f64s(&part);
            for pair in values.chunks_exact(2) {
                full.push(Complex64::new(pair[0], pair[1]));
            }
        }
        Ok(Some(full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceState;
    use crate::storage::AosStorage;
    use qse_circuit::qft::{cache_blocked_qft, qft};
    use qse_circuit::random::{random_circuit, GatePool};
    use qse_circuit::transpile::cache_blocking::cache_block;
    use qse_circuit::Permutation;
    use qse_comm::Universe;
    use qse_math::approx::{assert_close, assert_slices_close};

    /// Runs `circuit` distributed over `ranks` ranks and returns the full
    /// state gathered on rank 0.
    fn simulate_dist(
        circuit: &Circuit,
        ranks: usize,
        config: DistConfig,
        basis: u64,
    ) -> Vec<Complex64> {
        let out = Universe::new(ranks).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::basis_state(comm, circuit.n_qubits(), basis, config);
            st.run(circuit).unwrap();
            st.gather().unwrap()
        });
        out.into_iter().flatten().next().expect("rank 0 gathered")
    }

    fn reference(circuit: &Circuit, basis: u64) -> Vec<Complex64> {
        let mut r = ReferenceState::basis_state(circuit.n_qubits(), basis);
        r.run(circuit);
        r.amplitudes().to_vec()
    }

    #[test]
    fn single_rank_matches_reference() {
        let c = random_circuit(6, 80, GatePool::Full, 1);
        let got = simulate_dist(&c, 1, DistConfig::default(), 0);
        assert_slices_close(&got, &reference(&c, 0), 1e-9);
    }

    #[test]
    fn multi_rank_matches_reference() {
        for ranks in [2usize, 4, 8] {
            for seed in 0..3 {
                let c = random_circuit(7, 60, GatePool::Full, seed);
                let got = simulate_dist(&c, ranks, DistConfig::default(), 5);
                assert_slices_close(&got, &reference(&c, 5), 1e-9);
            }
        }
    }

    #[test]
    fn qft_distributed_matches_reference() {
        let c = qft(8);
        for ranks in [2usize, 4, 8, 16] {
            let got = simulate_dist(&c, ranks, DistConfig::default(), 201);
            assert_slices_close(&got, &reference(&c, 201), 1e-9);
        }
    }

    #[test]
    fn cache_blocked_qft_distributed_matches_reference() {
        let n = 8;
        let c = cache_blocked_qft(n, 5);
        let want = reference(&qft(n), 99);
        let got = simulate_dist(&c, 8, DistConfig::default(), 99);
        assert_slices_close(&got, &want, 1e-9);
    }

    #[test]
    fn nonblocking_identical_to_blocking() {
        let c = random_circuit(7, 50, GatePool::Full, 9);
        let blocking = simulate_dist(&c, 4, DistConfig::default(), 0);
        let nonblocking = simulate_dist(
            &c,
            4,
            DistConfig {
                exchange_mode: ExchangeMode::NonBlocking,
                ..DistConfig::default()
            },
            0,
        );
        assert_slices_close(&blocking, &nonblocking, 0.0);
    }

    #[test]
    fn streamed_identical_to_blocking() {
        // Tiny chunks force many in-flight pieces per exchange; the
        // streamed pipeline must still be bit-for-bit deterministic.
        let c = random_circuit(7, 50, GatePool::Full, 9);
        let blocking = simulate_dist(&c, 4, DistConfig::default(), 0);
        let streamed = simulate_dist(
            &c,
            4,
            DistConfig {
                exchange_mode: ExchangeMode::Streamed,
                chunk_policy: ChunkPolicy::new(128).unwrap(),
                ..DistConfig::default()
            },
            0,
        );
        assert_slices_close(&blocking, &streamed, 0.0);
    }

    #[test]
    fn streamed_half_exchange_matches_full() {
        let mut c = Circuit::new(7);
        c.h(0).swap(0, 6).h(1).swap(5, 6).swap(2, 5).h(6).swap(1, 4);
        let full = simulate_dist(&c, 8, DistConfig::default(), 3);
        let streamed_half = simulate_dist(
            &c,
            8,
            DistConfig {
                exchange_mode: ExchangeMode::Streamed,
                half_exchange_swaps: true,
                chunk_policy: ChunkPolicy::new(64).unwrap(),
                ..DistConfig::default()
            },
            3,
        );
        assert_slices_close(&full, &streamed_half, 0.0);
    }

    #[test]
    fn small_chunks_identical_to_large() {
        let c = random_circuit(6, 40, GatePool::Full, 4);
        let large = simulate_dist(&c, 4, DistConfig::default(), 0);
        let small = simulate_dist(
            &c,
            4,
            DistConfig {
                chunk_policy: ChunkPolicy::new(64).unwrap(),
                exchange_mode: ExchangeMode::NonBlocking,
                ..DistConfig::default()
            },
            0,
        );
        assert_slices_close(&large, &small, 0.0);
    }

    #[test]
    fn half_exchange_swaps_identical_to_full() {
        let mut c = Circuit::new(7);
        // exercise both one-global and both-global distributed swaps
        c.h(0).swap(0, 6).h(1).swap(5, 6).swap(2, 5).h(6).swap(1, 4);
        let full = simulate_dist(&c, 8, DistConfig::default(), 3);
        let half = simulate_dist(
            &c,
            8,
            DistConfig {
                half_exchange_swaps: true,
                ..DistConfig::default()
            },
            3,
        );
        assert_slices_close(&full, &half, 0.0);
    }

    #[test]
    fn half_exchange_halves_swap_traffic() {
        let mut c = Circuit::new(6);
        c.swap(0, 5); // one-global swap: the half-exchangeable case
        let bytes = |half: bool| {
            let config = DistConfig {
                half_exchange_swaps: half,
                ..DistConfig::default()
            };
            let stats = Universe::new(4).run(|comm| {
                let mut st: DistributedState<SoaStorage> =
                    DistributedState::zero_state(comm, 6, config);
                st.run(&c).unwrap();
                st.barrier();
                st.stats().bytes_sent
            });
            stats.into_iter().sum::<u64>()
        };
        let full = bytes(false);
        let half = bytes(true);
        assert_eq!(half * 2, full);
        assert!(full > 0);
    }

    #[test]
    fn fusion_matches_unfused_distributed() {
        // The default config fuses; against an explicitly unfused run the
        // contract is bit-for-bit equality, not closeness.
        let c = random_circuit(7, 80, GatePool::Full, 21);
        let plain = simulate_dist(
            &c,
            4,
            DistConfig {
                min_fuse: None,
                ..DistConfig::default()
            },
            0,
        );
        let fused = simulate_dist(&c, 4, DistConfig::default(), 0);
        assert_eq!(plain.len(), fused.len());
        for (i, (p, f)) in plain.iter().zip(&fused).enumerate() {
            assert_eq!(p.re.to_bits(), f.re.to_bits(), "re at {i}");
            assert_eq!(p.im.to_bits(), f.im.to_bits(), "im at {i}");
        }
    }

    #[test]
    fn aos_storage_matches_soa_distributed() {
        let c = random_circuit(6, 50, GatePool::Full, 33);
        let soa = simulate_dist(&c, 4, DistConfig::default(), 0);
        let aos_out = Universe::new(4).run(|comm| {
            let mut st: DistributedState<AosStorage> =
                DistributedState::zero_state(comm, 6, DistConfig::default());
            st.run(&c).unwrap();
            st.gather().unwrap()
        });
        let aos = aos_out.into_iter().flatten().next().unwrap();
        assert_slices_close(&soa, &aos, 1e-12);
    }

    #[test]
    fn transpiled_circuit_equals_original_up_to_layout() {
        // Contract of the general cache-blocking pass: T = Π(layout) · C.
        let n = 7;
        let c = random_circuit(n, 60, GatePool::Full, 55);
        let layout_local = 4u32; // pretend 8 ranks (3 global qubits)
        let t = cache_block(&c, layout_local);
        let orig = reference(&c, 0);
        let got = simulate_dist(&t.circuit, 8, DistConfig::default(), 0);
        // got[π(i)] should equal orig[i], where π moves bit q to layout(q).
        let perm: &Permutation = &t.layout;
        let mut unpermuted = vec![Complex64::ZERO; orig.len()];
        for (i, &amp) in orig.iter().enumerate() {
            unpermuted[perm.permute_index(i as u64) as usize] = amp;
        }
        assert_slices_close(&got, &unpermuted, 1e-9);
    }

    #[test]
    fn norm_and_prob_are_global() {
        Universe::new(4).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::zero_state(comm, 6, DistConfig::default());
            st.apply(&Gate::H(5)).unwrap(); // distributed H on the top qubit
            assert_close(st.norm_sqr().unwrap(), 1.0, 1e-12);
            assert_close(st.prob_one(5).unwrap(), 0.5, 1e-12);
            assert_close(st.prob_one(0).unwrap(), 0.0, 1e-12);
            st.apply(&Gate::H(2)).unwrap(); // local H
            assert_close(st.prob_one(2).unwrap(), 0.5, 1e-12);
        });
    }

    #[test]
    fn distributed_gate_moves_expected_bytes() {
        // One distributed H on 4 ranks of a 6-qubit register: each rank
        // exchanges its full 16-amplitude slice (256 bytes) once.
        let stats = Universe::new(4).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::zero_state(comm, 6, DistConfig::default());
            st.apply(&Gate::H(5)).unwrap();
            st.barrier();
            st.stats()
        });
        for s in &stats {
            assert_eq!(s.bytes_sent, 16 * 16);
            assert_eq!(s.bytes_received, 16 * 16);
        }
    }

    #[test]
    fn diagonal_gates_move_no_bytes() {
        let stats = Universe::new(4).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::zero_state(comm, 6, DistConfig::default());
            st.apply(&Gate::Z(5)).unwrap();
            st.apply(&Gate::CPhase {
                a: 4,
                b: 5,
                theta: 0.3,
            })
            .unwrap();
            st.apply(&Gate::T(5)).unwrap();
            st.barrier();
            st.stats()
        });
        for s in &stats {
            assert_eq!(s.bytes_sent, 0);
        }
    }

    #[test]
    fn global_control_local_target_no_comm() {
        let c = {
            let mut c = Circuit::new(6);
            c.h(0).cnot(5, 0);
            c
        };
        let got = simulate_dist(&c, 4, DistConfig::default(), 0b100000);
        assert_slices_close(&got, &reference(&c, 0b100000), 1e-12);
        // and it must not have communicated
        let stats = Universe::new(4).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::basis_state(comm, 6, 0b100000, DistConfig::default());
            st.run(&c).unwrap();
            st.barrier();
            st.stats().bytes_sent
        });
        assert!(stats.iter().all(|&b| b == 0));
    }

    #[test]
    fn global_control_global_target_cnot() {
        let mut c = Circuit::new(6);
        c.h(4).h(5).cnot(4, 5).h(0);
        for ranks in [4usize, 8] {
            let got = simulate_dist(&c, ranks, DistConfig::default(), 7);
            assert_slices_close(&got, &reference(&c, 7), 1e-9);
        }
    }

    #[test]
    fn distributed_pauli_expectation_matches_single_process() {
        use crate::expectation::{pauli_expectation, Pauli};
        use crate::single::SingleState;
        let c = random_circuit(6, 50, GatePool::Full, 71);
        let mut single: SingleState<SoaStorage> = SingleState::zero_state(6);
        single.run(&c);
        let strings: Vec<Vec<(u32, Pauli)>> = vec![
            vec![(0, Pauli::Z)],
            vec![(5, Pauli::X)], // global qubit: communicates
            vec![(2, Pauli::Y), (5, Pauli::Z)],
            vec![(0, Pauli::X), (3, Pauli::Y), (5, Pauli::X)],
        ];
        let got = Universe::new(4).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::zero_state(comm, 6, DistConfig::default());
            st.run(&c).unwrap();
            let values: Vec<f64> = strings
                .iter()
                .map(|s| st.pauli_expectation(s).unwrap())
                .collect();
            // The state is restored afterwards: norm still 1 and a
            // second evaluation agrees.
            assert_close(st.norm_sqr().unwrap(), 1.0, 1e-9);
            assert_close(st.pauli_expectation(&strings[0]).unwrap(), values[0], 1e-12);
            values
        });
        for rank_values in got {
            for (value, string) in rank_values.iter().zip(&strings) {
                assert_close(*value, pauli_expectation(&single, string), 1e-9);
            }
        }
    }

    #[test]
    fn distributed_collapse_matches_single_process() {
        // Build a GHZ-like state, measure the top (global) qubit as 1,
        // compare against the single-process collapse.
        let mut c = Circuit::new(6);
        c.h(0);
        for q in 1..6 {
            c.cnot(0, q);
        }
        let collapsed = Universe::new(4).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::zero_state(comm, 6, DistConfig::default());
            st.run(&c).unwrap();
            st.collapse(5, 1).unwrap(); // global qubit
            assert_close(st.norm_sqr().unwrap(), 1.0, 1e-12);
            st.collapse(0, 1).unwrap(); // local qubit: already determined, p = 1
            st.gather().unwrap()
        });
        let got = collapsed.into_iter().flatten().next().unwrap();
        // GHZ collapsed onto |111111⟩.
        assert_close(got[0b111111].abs(), 1.0, 1e-9);
    }

    #[test]
    fn distributed_measure_agrees_across_ranks() {
        let mut c = Circuit::new(6);
        c.h(5);
        for u in [0.1f64, 0.9] {
            let bits = Universe::new(4).run(|comm| {
                let mut st: DistributedState<SoaStorage> =
                    DistributedState::zero_state(comm, 6, DistConfig::default());
                st.run(&c).unwrap();
                let bit = st.measure_qubit(5, u).unwrap();
                assert_close(st.norm_sqr().unwrap(), 1.0, 1e-12);
                assert_close(st.prob_one(5).unwrap(), bit as f64, 1e-12);
                bit
            });
            // every rank observed the same bit, decided by u vs 0.5
            assert!(bits.windows(2).all(|w| w[0] == w[1]));
            assert_eq!(bits[0], u8::from(u < 0.5));
        }
    }

    #[test]
    fn measure_matches_single_process_on_same_draw() {
        // Same circuit, same uniform draw: the distributed measurement
        // must observe the same bit and leave the same post-measurement
        // state as the single-address-space `measure_qubit_with`.
        use crate::measure::measure_qubit_with;
        use crate::single::SingleState;
        let c = random_circuit(6, 40, GatePool::Full, 21);
        for u in [0.05f64, 0.35, 0.65, 0.95] {
            let mut single: SingleState = SingleState::zero_state(6);
            single.run(&c);
            let out = measure_qubit_with(&mut single, 3, u).unwrap();
            let gathered = Universe::new(4).run(|comm| {
                let mut st: DistributedState<SoaStorage> =
                    DistributedState::zero_state(comm, 6, DistConfig::default());
                st.run(&c).unwrap();
                let bit = st.measure_qubit(3, u).unwrap();
                assert_eq!(bit, out.bit, "bit mismatch at u = {u}");
                st.gather().unwrap()
            });
            let got = gathered.into_iter().flatten().next().unwrap();
            assert_slices_close(&got, &single.to_vec(), 1e-9);
        }
    }

    #[test]
    fn impossible_distributed_collapse_is_a_typed_error() {
        // |0000⟩ has zero probability of observing bit 1; every rank
        // must agree on the error instead of asserting.
        let errs = Universe::new(2).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::zero_state(comm, 4, DistConfig::default());
            st.collapse(3, 1).unwrap_err()
        });
        for e in errs {
            assert_eq!(e, CommError::ImpossibleOutcome { qubit: 3, bit: 1 });
        }
    }

    #[test]
    fn global_permutation_matches_index_map() {
        // Π(p) on the distributed state: gathered[p.permute_index(i)]
        // equals the pre-permutation amplitude at i — for local-only,
        // single swap-in, batched and rank-rotating permutations, across
        // rank counts and chunk sizes.
        let n = 6u32;
        let prep = random_circuit(n, 40, GatePool::Full, 12);
        let maps: Vec<Vec<u32>> = vec![
            vec![1, 0, 3, 2, 4, 5],  // purely local
            vec![5, 1, 2, 3, 4, 0],  // one local<->global transposition
            vec![4, 5, 2, 3, 0, 1],  // batched double swap-in
            vec![0, 1, 2, 3, 5, 4],  // global<->global
            vec![5, 4, 3, 2, 1, 0],  // full reversal
            vec![1, 2, 3, 4, 5, 0],  // full-register cycle
        ];
        for ranks in [1usize, 2, 4, 8] {
            for map in &maps {
                let perm = Permutation::from_map(map.clone());
                for max_bytes in [1usize << 20, 64] {
                    let config = DistConfig {
                        chunk_policy: ChunkPolicy::new(max_bytes).unwrap(),
                        ..DistConfig::default()
                    };
                    let out = Universe::new(ranks).run(|comm| {
                        let mut st: DistributedState<SoaStorage> =
                            DistributedState::basis_state(comm, n, 0, config);
                        st.run(&prep).unwrap();
                        let before = st.gather().unwrap();
                        st.apply_global_permutation(&perm).unwrap();
                        (before, st.gather().unwrap())
                    });
                    let (before, after) = out.into_iter().next().unwrap();
                    let (Some(before), Some(after)) = (before, after) else {
                        continue; // only rank 0 gathers
                    };
                    for (i, &amp) in before.iter().enumerate() {
                        let j = perm.permute_index(i as u64) as usize;
                        assert_eq!(
                            amp.re.to_bits(),
                            after[j].re.to_bits(),
                            "R={ranks} map={map:?} index {i}"
                        );
                        assert_eq!(amp.im.to_bits(), after[j].im.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn global_permutation_traffic_matches_model() {
        // Measured bytes_exchanged equals the transpiler's static
        // `permutation_traffic` prediction, per rank and in total.
        use qse_circuit::transpile::permutation_traffic;
        let n = 6u32;
        let ranks = 8usize;
        let layout = Layout::new(n, ranks as u64);
        let maps: Vec<Vec<u32>> = vec![
            vec![1, 0, 2, 3, 4, 5],  // local: zero traffic
            vec![5, 1, 2, 3, 4, 0],  // single swap-in: half slices
            vec![4, 5, 2, 3, 0, 1],  // double swap-in: 3/4 slices
            vec![0, 1, 2, 3, 5, 4],  // global<->global: differing-bit ranks
        ];
        for map in maps {
            let perm = Permutation::from_map(map);
            let want = permutation_traffic(&perm, &layout);
            let stats = Universe::new(ranks).run(|comm| {
                let mut st: DistributedState<SoaStorage> =
                    DistributedState::zero_state(comm, n, DistConfig::default());
                st.run(&random_circuit(n, 10, GatePool::Full, 3)).unwrap();
                st.barrier();
                st.comm.reset_stats();
                st.apply_global_permutation(&perm).unwrap();
                st.barrier();
                st.stats().bytes_exchanged
            });
            assert_eq!(stats.iter().sum::<u64>(), want.total_bytes, "{perm:?}");
            assert_eq!(
                stats.iter().copied().max().unwrap(),
                want.max_rank_bytes,
                "{perm:?}"
            );
        }
    }

    #[test]
    fn run_plan_with_restored_layout_matches_reference() {
        use qse_circuit::transpile::{comm_avoid, ByteOracle, Strategy};
        let n = 7u32;
        for ranks in [4usize, 8] {
            let layout = Layout::new(n, ranks as u64);
            for seed in 0..3u64 {
                let c = random_circuit(n, 60, GatePool::Full, seed + 200);
                let want = reference(&c, 1);
                for strategy in [Strategy::Greedy, Strategy::beam()] {
                    let plan = comm_avoid(&c, &layout, strategy, &ByteOracle)
                        .with_layout_restored();
                    let out = Universe::new(ranks).run(|comm| {
                        let mut st: DistributedState<SoaStorage> =
                            DistributedState::basis_state(comm, n, 1, DistConfig::default());
                        st.run_plan(&plan).unwrap();
                        st.gather().unwrap()
                    });
                    let got = out.into_iter().flatten().next().unwrap();
                    assert_slices_close(&got, &want, 1e-9);
                }
            }
        }
    }

    #[test]
    fn transpiled_restore_plan_costs_one_exchange() {
        // The with_layout_restored bugfix: restoring a k-transposition
        // layout is one batched exchange, not k pairwise ones.
        let n = 6u32;
        let ranks = 4usize;
        let mut c = Circuit::new(n);
        c.swap(0, 5).swap(1, 4).h(2); // leaves a 2-transposition layout
        let t = cache_block(&c, Layout::new(n, ranks as u64).local_qubits());
        let plan = t.with_layout_restored();
        assert_eq!(plan.permute_count(), 1);
        let want = reference(&c, 2);
        let out = Universe::new(ranks).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::basis_state(comm, n, 2, DistConfig::default());
            st.run_plan(&plan).unwrap();
            st.barrier();
            (st.stats().bytes_exchanged, st.gather().unwrap())
        });
        let mut exchanged = 0u64;
        let mut state = None;
        for (b, s) in out {
            exchanged += b;
            state = state.or(s);
        }
        assert_slices_close(&state.unwrap(), &want, 1e-9);
        // Batched: each rank ships 3/4 of its slice once (two rank bits
        // mixed) — strictly less than two full pairwise exchanges.
        let slice = Layout::new(n, ranks as u64).local_amps() * 16;
        assert_eq!(exchanged, ranks as u64 * slice / 4 * 3);
    }

    #[test]
    fn cache_blocking_reduces_measured_traffic() {
        // The headline mechanism of the paper, measured on real exchanges:
        // built-in QFT vs cache-blocked QFT on 8 ranks.
        let n = 9;
        let traffic = |c: &Circuit| {
            let stats = Universe::new(8).run(|comm| {
                let mut st: DistributedState<SoaStorage> =
                    DistributedState::zero_state(comm, n, DistConfig::default());
                st.run(c).unwrap();
                st.barrier();
                st.stats().bytes_sent
            });
            stats.into_iter().sum::<u64>()
        };
        let built_in = traffic(&qft(n));
        let blocked = traffic(&cache_blocked_qft(n, qse_circuit::qft::default_split(n, 6)));
        assert_eq!(blocked * 2, built_in);
    }
}
