//! Observables: inner products, fidelity and Pauli-string expectations.
//!
//! The statevector method's selling point (§1) is that *all* amplitudes
//! survive the run, so any observable can be evaluated afterwards without
//! re-execution. This module provides the standard ones.

use crate::single::SingleState;
use crate::storage::AmpStorage;
use qse_circuit::Gate;
use qse_math::Complex64;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// σ_x.
    X,
    /// σ_y.
    Y,
    /// σ_z.
    Z,
}

/// ⟨a|b⟩ over full statevectors of equal width.
pub fn inner_product<S: AmpStorage>(a: &SingleState<S>, b: &SingleState<S>) -> Complex64 {
    assert_eq!(a.n_qubits(), b.n_qubits(), "width mismatch");
    let mut acc = Complex64::ZERO;
    for i in 0..a.storage().len() {
        acc += a.storage().get(i).conj() * b.storage().get(i);
    }
    acc
}

/// Fidelity `|⟨a|b⟩|²` between two pure states.
pub fn fidelity<S: AmpStorage>(a: &SingleState<S>, b: &SingleState<S>) -> f64 {
    inner_product(a, b).norm_sqr()
}

/// Expectation value ⟨ψ| P |ψ⟩ of a Pauli string (a set of single-qubit
/// Paulis on distinct qubits). Evaluated as `⟨ψ, Pψ⟩`; the result of a
/// Hermitian observable is real, so only the real part is returned (the
/// imaginary part is ≤ rounding noise and asserted small in debug
/// builds).
pub fn pauli_expectation<S: AmpStorage>(state: &SingleState<S>, string: &[(u32, Pauli)]) -> f64 {
    {
        let mut seen = std::collections::HashSet::new();
        for (q, _) in string {
            assert!(*q < state.n_qubits(), "qubit {q} out of range");
            assert!(seen.insert(*q), "duplicate qubit {q} in Pauli string");
        }
    }
    let mut transformed = state.clone();
    for &(q, p) in string {
        let gate = match p {
            Pauli::X => Gate::X(q),
            Pauli::Y => Gate::Y(q),
            Pauli::Z => Gate::Z(q),
        };
        transformed.apply(&gate);
    }
    let e = inner_product(state, &transformed);
    debug_assert!(e.im.abs() < 1e-9, "non-real expectation: {e}");
    e.re
}

/// Convenience: ⟨Z_q⟩ = P(0) − P(1).
pub fn z_expectation<S: AmpStorage>(state: &SingleState<S>, qubit: u32) -> f64 {
    pauli_expectation(state, &[(qubit, Pauli::Z)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::algorithms::ghz;
    use qse_circuit::Circuit;
    use qse_math::approx::{assert_close, assert_complex_close};

    fn plus_state(n: u32) -> SingleState {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        SingleState::simulate(&c)
    }

    #[test]
    fn inner_product_with_self_is_norm() {
        let s = plus_state(4);
        assert_complex_close(inner_product(&s, &s), Complex64::ONE, 1e-12);
        assert_close(fidelity(&s, &s), 1.0, 1e-12);
    }

    #[test]
    fn orthogonal_basis_states() {
        let a: SingleState = SingleState::basis_state(3, 1);
        let b: SingleState = SingleState::basis_state(3, 5);
        assert_complex_close(inner_product(&a, &b), Complex64::ZERO, 1e-15);
        assert_close(fidelity(&a, &b), 0.0, 1e-15);
    }

    #[test]
    fn z_on_basis_states() {
        let zero: SingleState = SingleState::basis_state(2, 0);
        assert_close(z_expectation(&zero, 0), 1.0, 1e-12);
        let one: SingleState = SingleState::basis_state(2, 1);
        assert_close(z_expectation(&one, 0), -1.0, 1e-12);
        assert_close(z_expectation(&one, 1), 1.0, 1e-12);
    }

    #[test]
    fn x_on_plus_state() {
        let s = plus_state(2);
        assert_close(pauli_expectation(&s, &[(0, Pauli::X)]), 1.0, 1e-12);
        assert_close(pauli_expectation(&s, &[(0, Pauli::Y)]), 0.0, 1e-12);
        assert_close(z_expectation(&s, 0), 0.0, 1e-12);
    }

    #[test]
    fn ghz_correlations() {
        // GHZ: ⟨Z_i⟩ = 0 but ⟨Z_i Z_j⟩ = 1, and ⟨X⊗X⊗X⟩ = 1 for 3 qubits.
        let s = SingleState::simulate(&ghz(3));
        for q in 0..3 {
            assert_close(z_expectation(&s, q), 0.0, 1e-12);
        }
        assert_close(
            pauli_expectation(&s, &[(0, Pauli::Z), (1, Pauli::Z)]),
            1.0,
            1e-12,
        );
        assert_close(
            pauli_expectation(&s, &[(0, Pauli::X), (1, Pauli::X), (2, Pauli::X)]),
            1.0,
            1e-12,
        );
    }

    #[test]
    fn fidelity_of_rotated_state() {
        // |⟨0|Ry(θ)|0⟩|² = cos²(θ/2)
        let theta = 0.8f64;
        let mut c = Circuit::new(1);
        c.push(Gate::Ry { target: 0, theta });
        let rotated = SingleState::simulate(&c);
        let zero: SingleState = SingleState::basis_state(1, 0);
        assert_close(
            fidelity(&zero, &rotated),
            (theta / 2.0).cos().powi(2),
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_pauli_rejected() {
        let s = plus_state(2);
        pauli_expectation(&s, &[(0, Pauli::X), (0, Pauli::Z)]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_rejected() {
        let a = plus_state(2);
        let b = plus_state(3);
        inner_product(&a, &b);
    }
}
