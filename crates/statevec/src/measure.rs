//! Measurement: probabilities, sampling and collapse.
//!
//! The paper's §1 motivation for statevector simulation: "once a circuit
//! is simulated, all amplitudes are available, which enables any required
//! measurements to be made without the need to rerun the simulation".
//! This module provides those measurements for the single-address-space
//! engine; the distributed engine exposes its own reduced probabilities
//! (`DistributedState::prob_one`).
//!
//! Everything here returns `Result` with a typed [`MeasureError`] —
//! a zero-norm register or an impossible collapse is a caller bug or a
//! numerical boundary, not a reason to abort a library process. Only
//! binaries (CLI, examples) convert these into panics.

use crate::single::SingleState;
use crate::storage::AmpStorage;
use qse_math::Complex64;
use qse_util::rng::Rng;

/// Probability floor below which an outcome is treated as impossible.
const MIN_OUTCOME_PROB: f64 = 1e-15;

/// Errors from the measurement path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasureError {
    /// The register has zero norm — there is no distribution to sample.
    ZeroNorm,
    /// A collapse targeted an outcome with (numerically) zero
    /// probability.
    ImpossibleOutcome {
        /// The measured qubit.
        qubit: u32,
        /// The requested classical outcome.
        bit: u8,
        /// The outcome's computed probability.
        probability: f64,
    },
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::ZeroNorm => write!(f, "cannot sample from a zero-norm state"),
            MeasureError::ImpossibleOutcome {
                qubit,
                bit,
                probability,
            } => write!(
                f,
                "cannot collapse qubit {qubit} onto bit {bit}: outcome probability {probability:.3e} is below {MIN_OUTCOME_PROB:.0e}"
            ),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Draws one basis-state index from the state's |amplitude|² distribution.
///
/// Inverse-CDF walk over all amplitudes; numerically safe because any
/// residual from rounding is assigned to the last nonzero amplitude.
/// One-shot callers pay the same O(2ⁿ) as building a distribution table;
/// for repeated draws use [`sample_counts`], which amortises the table.
pub fn sample_index<S: AmpStorage, R: Rng>(
    state: &SingleState<S>,
    rng: &mut R,
) -> Result<u64, MeasureError> {
    let total = state.norm_sqr();
    if total <= 0.0 {
        return Err(MeasureError::ZeroNorm);
    }
    let mut u: f64 = rng.random_range(0.0..total);
    let len = state.storage().len() as u64;
    let mut last_nonzero = 0u64;
    for i in 0..len {
        let p = state.amplitude(i).norm_sqr();
        if p > 0.0 {
            last_nonzero = i;
            if u < p {
                return Ok(i);
            }
            u -= p;
        }
    }
    Ok(last_nonzero)
}

/// Draws `shots` samples and returns a histogram over basis indices.
///
/// Builds the cumulative distribution once and binary-searches it per
/// draw — O(2ⁿ + shots·n) instead of the O(shots·2ⁿ) of repeated
/// [`sample_index`] walks. The per-draw selection matches the linear
/// walk: the smallest index whose inclusive prefix sum exceeds the
/// uniform draw, with any rounding residual assigned to the last
/// nonzero amplitude.
pub fn sample_counts<S: AmpStorage, R: Rng>(
    state: &SingleState<S>,
    rng: &mut R,
    shots: usize,
) -> Result<std::collections::BTreeMap<u64, usize>, MeasureError> {
    // The same total as `sample_index` (the chunk-reduced norm), so both
    // paths feed `random_range` identically for a given RNG stream.
    let total = state.norm_sqr();
    if total <= 0.0 {
        return Err(MeasureError::ZeroNorm);
    }
    let len = state.storage().len();
    let mut cdf = Vec::with_capacity(len);
    let mut acc = 0.0f64;
    let mut last_nonzero = 0u64;
    for i in 0..len as u64 {
        let p = state.amplitude(i).norm_sqr();
        if p > 0.0 {
            last_nonzero = i;
        }
        acc += p;
        cdf.push(acc);
    }
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..shots {
        let u: f64 = rng.random_range(0.0..total);
        let idx = cdf.partition_point(|&c| c <= u);
        let drawn = if idx == len {
            last_nonzero
        } else {
            idx as u64
        };
        *counts.entry(drawn).or_insert(0) += 1;
    }
    Ok(counts)
}

/// The outcome of a projective single-qubit measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureOutcome {
    /// The classical bit observed.
    pub bit: u8,
    /// Its pre-measurement probability.
    pub probability: f64,
}

/// Measures `qubit`, collapses the state, renormalises, and returns the
/// observed bit with its probability.
pub fn measure_qubit<S: AmpStorage, R: Rng>(
    state: &mut SingleState<S>,
    qubit: u32,
    rng: &mut R,
) -> Result<MeasureOutcome, MeasureError> {
    measure_qubit_with(state, qubit, rng.random_range(0.0..1.0))
}

/// Deterministic entry point: measures `qubit` using the caller-supplied
/// uniform draw `u` in `[0, 1)`.
///
/// This is the same contract as `DistributedState::measure_qubit(qubit, u)`,
/// so single-process and distributed runs given the same draw observe the
/// same bit — the cross-validation tests rely on this.
pub fn measure_qubit_with<S: AmpStorage>(
    state: &mut SingleState<S>,
    qubit: u32,
    u: f64,
) -> Result<MeasureOutcome, MeasureError> {
    let p1 = state.prob_one(qubit);
    let bit = u8::from(u < p1);
    collapse(state, qubit, bit)?;
    Ok(MeasureOutcome {
        bit,
        probability: if bit == 1 { p1 } else { 1.0 - p1 },
    })
}

/// Projects `qubit` onto `bit` and renormalises.
///
/// Returns [`MeasureError::ImpossibleOutcome`] when the requested
/// outcome has (numerically) zero probability; the state is untouched.
pub fn collapse<S: AmpStorage>(
    state: &mut SingleState<S>,
    qubit: u32,
    bit: u8,
) -> Result<(), MeasureError> {
    let p1 = state.prob_one(qubit);
    let p = if bit == 1 { p1 } else { 1.0 - p1 };
    if p <= MIN_OUTCOME_PROB {
        return Err(MeasureError::ImpossibleOutcome {
            qubit,
            bit,
            probability: p,
        });
    }
    let scale = 1.0 / p.sqrt();
    let mask = 1u64 << qubit;
    let len = state.storage().len() as u64;
    // Zero the mismatched branch, rescale the kept one.
    for i in 0..len {
        let has_bit = u8::from(i & mask != 0);
        let v = if has_bit == bit {
            state.amplitude(i).scale(scale)
        } else {
            Complex64::ZERO
        };
        state.set_amplitude(i, v);
    }
    Ok(())
}

impl<S: AmpStorage> SingleState<S> {
    /// Writes one amplitude directly (measurement collapse and tests).
    pub fn set_amplitude(&mut self, index: u64, v: Complex64) {
        self.storage_mut().set(crate::ix(index), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::Circuit;
    use qse_math::approx::assert_close;
    use qse_util::rng::StdRng;

    fn bell() -> SingleState {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        SingleState::simulate(&c)
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let s: SingleState = SingleState::basis_state(4, 11);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(sample_index(&s, &mut rng).unwrap(), 11);
        }
    }

    #[test]
    fn bell_samples_only_correlated_outcomes() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(7);
        let counts = sample_counts(&s, &mut rng, 2000).unwrap();
        assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
        let c00 = *counts.get(&0b00).unwrap_or(&0) as f64;
        // Roughly balanced (5σ ≈ 112 at n = 2000, p = 1/2).
        assert!((c00 - 1000.0).abs() < 150.0, "c00 = {c00}");
    }

    #[test]
    fn zero_state_sampling_is_an_error_not_a_panic() {
        let mut s: SingleState = SingleState::basis_state(3, 0);
        for i in 0..8 {
            s.set_amplitude(i, Complex64::ZERO);
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            sample_index(&s, &mut rng).unwrap_err(),
            MeasureError::ZeroNorm
        );
        assert_eq!(
            sample_counts(&s, &mut rng, 10).unwrap_err(),
            MeasureError::ZeroNorm
        );
        assert!(MeasureError::ZeroNorm.to_string().contains("zero-norm"));
    }

    #[test]
    fn cdf_sampler_matches_linear_walk_histogram() {
        // Regression for the O(shots·2ⁿ) sampler: the CDF + binary-search
        // path must agree with the per-shot linear walk histogram-for-
        // histogram under a fixed seed (same draws, same selections).
        let n = 16;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        // Skew the distribution so the test isn't uniform-only.
        c.phase(3, 0.7).cnot(0, 5).phase(5, -1.3).h(7);
        let s: SingleState = SingleState::simulate(&c);
        let shots = 10_000;
        let mut rng_old = StdRng::seed_from_u64(2024);
        let mut old = std::collections::BTreeMap::new();
        for _ in 0..shots {
            *old.entry(sample_index(&s, &mut rng_old).unwrap())
                .or_insert(0usize) += 1;
        }
        let mut rng_new = StdRng::seed_from_u64(2024);
        let new = sample_counts(&s, &mut rng_new, shots).unwrap();
        assert_eq!(old, new);
    }

    #[test]
    fn measure_collapses_partner_qubit() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let mut s = bell();
            let out = measure_qubit(&mut s, 0, &mut rng).unwrap();
            assert_close(out.probability, 0.5, 1e-12);
            // After measuring qubit 0, qubit 1 is perfectly correlated.
            assert_close(s.prob_one(1), out.bit as f64, 1e-12);
            assert_close(s.norm_sqr(), 1.0, 1e-12);
        }
    }

    #[test]
    fn deterministic_u_selects_the_branch() {
        // u below p1 observes |1>, u at or above p1 observes |0>.
        let mut s = bell();
        let out = measure_qubit_with(&mut s, 0, 0.25).unwrap();
        assert_eq!(out.bit, 1);
        assert_close(out.probability, 0.5, 1e-12);
        let mut s = bell();
        let out = measure_qubit_with(&mut s, 0, 0.75).unwrap();
        assert_eq!(out.bit, 0);
        assert_close(out.probability, 0.5, 1e-12);
    }

    #[test]
    fn collapse_renormalises() {
        let mut s = bell();
        collapse(&mut s, 0, 1).unwrap();
        assert_close(s.norm_sqr(), 1.0, 1e-12);
        assert_close(s.prob_one(0), 1.0, 1e-12);
    }

    #[test]
    fn collapse_on_impossible_outcome_is_a_typed_error() {
        let mut s: SingleState = SingleState::basis_state(2, 0);
        let before = s.to_vec();
        let err = collapse(&mut s, 0, 1).unwrap_err();
        match err {
            MeasureError::ImpossibleOutcome {
                qubit,
                bit,
                probability,
            } => {
                assert_eq!((qubit, bit), (0, 1));
                assert!(probability.abs() <= 1e-15);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // The failed collapse left the state untouched.
        assert_eq!(s.to_vec(), before);
        assert!(err.to_string().contains("qubit 0"));
    }

    #[test]
    fn uniform_superposition_samples_everything() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let s = SingleState::simulate(&c);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = sample_counts(&s, &mut rng, 4000).unwrap();
        assert_eq!(counts.len(), 8);
        for (_, &n) in counts.iter() {
            assert!((n as f64 - 500.0).abs() < 150.0);
        }
    }
}
