//! Measurement: probabilities, sampling and collapse.
//!
//! The paper's §1 motivation for statevector simulation: "once a circuit
//! is simulated, all amplitudes are available, which enables any required
//! measurements to be made without the need to rerun the simulation".
//! This module provides those measurements for the single-address-space
//! engine; the distributed engine exposes its own reduced probabilities
//! (`DistributedState::prob_one`).

use crate::single::SingleState;
use crate::storage::AmpStorage;
use qse_math::Complex64;
use qse_util::rng::Rng;

/// Draws one basis-state index from the state's |amplitude|² distribution.
///
/// Inverse-CDF walk over all amplitudes; numerically safe because any
/// residual from rounding is assigned to the last nonzero amplitude.
pub fn sample_index<S: AmpStorage, R: Rng>(state: &SingleState<S>, rng: &mut R) -> u64 {
    let total = state.norm_sqr();
    assert!(total > 0.0, "cannot sample from a zero state");
    let mut u: f64 = rng.random_range(0.0..total);
    let len = state.storage().len() as u64;
    let mut last_nonzero = 0u64;
    for i in 0..len {
        let p = state.amplitude(i).norm_sqr();
        if p > 0.0 {
            last_nonzero = i;
            if u < p {
                return i;
            }
            u -= p;
        }
    }
    last_nonzero
}

/// Draws `shots` samples and returns a histogram over basis indices.
pub fn sample_counts<S: AmpStorage, R: Rng>(
    state: &SingleState<S>,
    rng: &mut R,
    shots: usize,
) -> std::collections::BTreeMap<u64, usize> {
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..shots {
        *counts.entry(sample_index(state, rng)).or_insert(0) += 1;
    }
    counts
}

/// The outcome of a projective single-qubit measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureOutcome {
    /// The classical bit observed.
    pub bit: u8,
    /// Its pre-measurement probability.
    pub probability: f64,
}

/// Measures `qubit`, collapses the state, renormalises, and returns the
/// observed bit with its probability.
pub fn measure_qubit<S: AmpStorage, R: Rng>(
    state: &mut SingleState<S>,
    qubit: u32,
    rng: &mut R,
) -> MeasureOutcome {
    measure_qubit_with(state, qubit, rng.random_range(0.0..1.0))
}

/// Deterministic entry point: measures `qubit` using the caller-supplied
/// uniform draw `u` in `[0, 1)`.
///
/// This is the same contract as `DistributedState::measure_qubit(qubit, u)`,
/// so single-process and distributed runs given the same draw observe the
/// same bit — the cross-validation tests rely on this.
pub fn measure_qubit_with<S: AmpStorage>(
    state: &mut SingleState<S>,
    qubit: u32,
    u: f64,
) -> MeasureOutcome {
    let p1 = state.prob_one(qubit);
    let bit = u8::from(u < p1);
    collapse(state, qubit, bit);
    MeasureOutcome {
        bit,
        probability: if bit == 1 { p1 } else { 1.0 - p1 },
    }
}

/// Projects `qubit` onto `bit` and renormalises.
///
/// # Panics
/// Panics when the requested outcome has zero probability.
pub fn collapse<S: AmpStorage>(state: &mut SingleState<S>, qubit: u32, bit: u8) {
    let p1 = state.prob_one(qubit);
    let p = if bit == 1 { p1 } else { 1.0 - p1 };
    assert!(p > 1e-15, "collapsing onto a zero-probability outcome");
    let scale = 1.0 / p.sqrt();
    let mask = 1u64 << qubit;
    let len = state.storage().len() as u64;
    // Zero the mismatched branch, rescale the kept one.
    for i in 0..len {
        let has_bit = u8::from(i & mask != 0);
        let v = if has_bit == bit {
            state.amplitude(i).scale(scale)
        } else {
            Complex64::ZERO
        };
        state.set_amplitude(i, v);
    }
}

impl<S: AmpStorage> SingleState<S> {
    /// Writes one amplitude directly (measurement collapse and tests).
    pub fn set_amplitude(&mut self, index: u64, v: Complex64) {
        self.storage_mut().set(index as usize, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::Circuit;
    use qse_math::approx::assert_close;
    use qse_util::rng::StdRng;

    fn bell() -> SingleState {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        SingleState::simulate(&c)
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let s: SingleState = SingleState::basis_state(4, 11);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(sample_index(&s, &mut rng), 11);
        }
    }

    #[test]
    fn bell_samples_only_correlated_outcomes() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(7);
        let counts = sample_counts(&s, &mut rng, 2000);
        assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
        let c00 = *counts.get(&0b00).unwrap_or(&0) as f64;
        // Roughly balanced (5σ ≈ 112 at n = 2000, p = 1/2).
        assert!((c00 - 1000.0).abs() < 150.0, "c00 = {c00}");
    }

    #[test]
    fn measure_collapses_partner_qubit() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let mut s = bell();
            let out = measure_qubit(&mut s, 0, &mut rng);
            assert_close(out.probability, 0.5, 1e-12);
            // After measuring qubit 0, qubit 1 is perfectly correlated.
            assert_close(s.prob_one(1), out.bit as f64, 1e-12);
            assert_close(s.norm_sqr(), 1.0, 1e-12);
        }
    }

    #[test]
    fn deterministic_u_selects_the_branch() {
        // u below p1 observes |1>, u at or above p1 observes |0>.
        let mut s = bell();
        let out = measure_qubit_with(&mut s, 0, 0.25);
        assert_eq!(out.bit, 1);
        assert_close(out.probability, 0.5, 1e-12);
        let mut s = bell();
        let out = measure_qubit_with(&mut s, 0, 0.75);
        assert_eq!(out.bit, 0);
        assert_close(out.probability, 0.5, 1e-12);
    }

    #[test]
    fn collapse_renormalises() {
        let mut s = bell();
        collapse(&mut s, 0, 1);
        assert_close(s.norm_sqr(), 1.0, 1e-12);
        assert_close(s.prob_one(0), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapse_on_impossible_outcome_panics() {
        let mut s: SingleState = SingleState::basis_state(2, 0);
        collapse(&mut s, 0, 1);
    }

    #[test]
    fn uniform_superposition_samples_everything() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let s = SingleState::simulate(&c);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = sample_counts(&s, &mut rng, 4000);
        assert_eq!(counts.len(), 8);
        for (_, &n) in counts.iter() {
            assert!((n as f64 - 500.0).abs() < 150.0);
        }
    }
}
