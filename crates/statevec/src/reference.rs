//! A deliberately naïve dense simulator — the correctness oracle.
//!
//! Implemented independently of the production kernels: out-of-place
//! updates, explicit per-index loops, no storage abstraction, no rayon, no
//! bit tricks beyond direct shifts. Every production path (local kernels,
//! both layouts, the distributed engine, the transpiler) is validated
//! against this on random circuits. Usable up to ~20 qubits in tests.

use qse_circuit::{Circuit, Gate};
use qse_math::Complex64;

/// Full `2^n` amplitude vector evolved gate by gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceState {
    n_qubits: u32,
    amps: Vec<Complex64>,
}

impl ReferenceState {
    /// |00…0⟩.
    pub fn zero_state(n_qubits: u32) -> Self {
        Self::basis_state(n_qubits, 0)
    }

    /// Computational basis state |index⟩.
    pub fn basis_state(n_qubits: u32, index: u64) -> Self {
        assert!(n_qubits <= 24, "reference simulator capped at 24 qubits");
        let dim = 1usize << n_qubits;
        assert!(crate::ix(index) < dim, "basis index out of range");
        let mut amps = vec![Complex64::ZERO; dim];
        amps[crate::ix(index)] = Complex64::ONE;
        ReferenceState { n_qubits, amps }
    }

    /// Builds from explicit amplitudes (normalisation is the caller's
    /// responsibility; tests use unnormalised ramps too).
    pub fn from_amplitudes(n_qubits: u32, amps: Vec<Complex64>) -> Self {
        assert_eq!(amps.len(), 1usize << n_qubits);
        ReferenceState { n_qubits, amps }
    }

    /// Register width.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Σ|amp|².
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn prob_one(&self, qubit: u32) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i >> qubit) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Applies one gate, out of place.
    // Index arithmetic (bit twiddling on `i`) is the whole point here;
    // iterator adapters would obscure it.
    #[allow(clippy::needless_range_loop)]
    pub fn apply(&mut self, gate: &Gate) {
        let dim = self.amps.len();
        let mut next = vec![Complex64::ZERO; dim];
        match *gate {
            Gate::Swap(a, b) => {
                for (i, amp) in self.amps.iter().enumerate() {
                    let j = crate::ix(qse_math::bits::swap_bits(i as u64, a, b));
                    next[j] = *amp;
                }
            }
            ref g if g.is_diagonal() => {
                for (i, amp) in self.amps.iter().enumerate() {
                    next[i] = *amp * crate::diagonal::diagonal_phase(g, i as u64);
                }
            }
            Gate::Unitary2 { a, b, ref matrix } => {
                for i in 0..dim {
                    let row = (((i >> b) & 1) << 1) | ((i >> a) & 1);
                    let base = i & !(1 << a) & !(1 << b);
                    let mut acc = Complex64::ZERO;
                    for col in 0..4usize {
                        let src = base | ((col & 1) << a) | (((col >> 1) & 1) << b);
                        acc += matrix.at(row, col) * self.amps[src];
                    }
                    next[i] = acc;
                }
            }
            ref g => {
                let Some(m) = g.matrix1() else {
                    unreachable!("all remaining gate kinds are single-target")
                };
                let t = g.target();
                let control = g.control();
                for i in 0..dim {
                    if let Some(c) = control {
                        if (i >> c) & 1 == 0 {
                            next[i] = self.amps[i];
                            continue;
                        }
                    }
                    let bit = (i >> t) & 1;
                    let partner = i ^ (1 << t);
                    let (a_this, a_other) = (self.amps[i], self.amps[partner]);
                    // row `bit` of the matrix combines (amp with bit=0, bit=1)
                    let a0 = if bit == 0 { a_this } else { a_other };
                    let a1 = if bit == 0 { a_other } else { a_this };
                    next[i] = m.at(bit, 0) * a0 + m.at(bit, 1) * a1;
                }
            }
        }
        self.amps = next;
    }

    /// Runs a whole circuit.
    pub fn run(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "register width mismatch");
        for g in circuit.gates() {
            self.apply(g);
        }
    }

    /// Convenience: simulate `circuit` from |0…0⟩.
    pub fn simulate(circuit: &Circuit) -> Self {
        let mut s = ReferenceState::zero_state(circuit.n_qubits());
        s.run(circuit);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::qft::{cache_blocked_qft, qft};
    use qse_math::approx::{assert_close, assert_complex_close, assert_slices_close};
    use qse_math::bits;
    use std::f64::consts::PI;

    #[test]
    fn zero_state_is_normalised() {
        let s = ReferenceState::zero_state(4);
        assert_close(s.norm_sqr(), 1.0, 1e-15);
        assert_eq!(s.amplitudes()[0], Complex64::ONE);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = ReferenceState::zero_state(3);
        s.apply(&Gate::X(1));
        assert_complex_close(s.amplitudes()[0b010], Complex64::ONE, 1e-15);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = ReferenceState::simulate(&c);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert_complex_close(s.amplitudes()[0b00], Complex64::real(r), 1e-12);
        assert_complex_close(s.amplitudes()[0b11], Complex64::real(r), 1e-12);
        assert_complex_close(s.amplitudes()[0b01], Complex64::ZERO, 1e-12);
        assert_close(s.prob_one(0), 0.5, 1e-12);
        assert_close(s.prob_one(1), 0.5, 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = ReferenceState::basis_state(3, 0b001);
        s.apply(&Gate::Swap(0, 2));
        assert_complex_close(s.amplitudes()[0b100], Complex64::ONE, 1e-15);
    }

    #[test]
    fn cnot_truth_table() {
        for (input, expect) in [(0b00u64, 0b00u64), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)] {
            let mut s = ReferenceState::basis_state(2, input);
            s.apply(&Gate::CNot {
                control: 0,
                target: 1,
            });
            assert_complex_close(
                s.amplitudes()[expect as usize],
                Complex64::ONE,
                1e-15,
            );
        }
    }

    #[test]
    fn circuit_inverse_restores_state() {
        use qse_circuit::random::{random_circuit, GatePool};
        let c = random_circuit(5, 60, GatePool::Full, 31);
        let mut s = ReferenceState::basis_state(5, 13);
        s.run(&c);
        s.run(&c.inverse());
        let expect = ReferenceState::basis_state(5, 13);
        assert_slices_close(s.amplitudes(), expect.amplitudes(), 1e-9);
    }

    /// The semantics test pinning the QFT convention: with the circuit of
    /// fig 1a (qubit 0 processed first, trailing SWAPs), the operator is
    /// the DFT in *big-endian* bit order:
    /// `QFT|x⟩ = N^{-1/2} Σ_k ω^{rev(x)·rev(k)} |k⟩`, ω = e^{2πi/N}.
    #[test]
    fn qft_matches_dft_bit_reversed() {
        let n = 5u32;
        let dim = 1u64 << n;
        for &x in &[0u64, 1, 7, 19, dim - 1] {
            let mut s = ReferenceState::basis_state(n, x);
            s.run(&qft(n));
            let scale = 1.0 / (dim as f64).sqrt();
            for k in 0..dim {
                let phase =
                    2.0 * PI * (bits::reverse_bits(x, n) as f64) * (bits::reverse_bits(k, n) as f64)
                        / dim as f64;
                let expect = Complex64::cis(phase).scale(scale);
                assert_complex_close(s.amplitudes()[k as usize], expect, 1e-9);
            }
        }
    }

    #[test]
    fn qft_inverse_qft_is_identity() {
        let n = 6;
        let mut s = ReferenceState::basis_state(n, 45);
        s.run(&qft(n));
        s.run(&qse_circuit::qft::inverse_qft(n));
        let expect = ReferenceState::basis_state(n, 45);
        assert_slices_close(s.amplitudes(), expect.amplitudes(), 1e-9);
    }

    /// The paper's correctness claim for fig 1b: the cache-blocked QFT is
    /// the *same operator* as the standard QFT, for every valid split.
    #[test]
    fn cache_blocked_qft_equals_standard() {
        let n = 7;
        let standard = ReferenceState::simulate(&{
            let mut c = Circuit::new(n);
            // start from a non-trivial superposition
            for q in 0..n {
                c.h(q);
                c.phase(q, 0.3 * q as f64);
            }
            c.extend(&qft(n));
            c
        });
        for split in 0..=n {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.h(q);
                c.phase(q, 0.3 * q as f64);
            }
            c.extend(&cache_blocked_qft(n, split));
            let blocked = ReferenceState::simulate(&c);
            assert_slices_close(blocked.amplitudes(), standard.amplitudes(), 1e-9);
        }
    }

    #[test]
    fn norm_is_preserved_by_random_circuits() {
        use qse_circuit::random::{random_circuit, GatePool};
        for seed in 0..5 {
            let c = random_circuit(6, 80, GatePool::Full, seed);
            let s = ReferenceState::simulate(&c);
            assert_close(s.norm_sqr(), 1.0, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "capped at 24")]
    fn size_cap_enforced() {
        ReferenceState::zero_state(30);
    }
}
