//! Local and distributed quantum statevector engine.
//!
//! This crate is the reproduction's QuEST: a Schrödinger-style simulator
//! that keeps all `2^n` amplitudes in memory and evolves them gate by gate
//! (§1 of the paper). It exists in two forms sharing the same kernels:
//!
//! * [`single::SingleState`] — one address space, used by the reference
//!   experiments, the examples and the kernel benchmarks;
//! * [`dist::DistributedState`] — the statevector split evenly over `2^r`
//!   communicator ranks exactly as QuEST splits it over MPI processes:
//!   the low `n − r` qubits are local, the top `r` select the rank, and
//!   distributed gates exchange the whole local vector with a single pair
//!   rank (§2.1).
//!
//! Storage is pluggable ([`storage`]): QuEST keeps separate real and
//! imaginary arrays (structure-of-arrays) while the paper's future work
//! proposes an interleaved complex type for better locality (§4) — both
//! layouts are implemented and benchmarked.
//!
//! The communication layer supports the paper's three exchange regimes:
//! blocking chunked sendrecv (QuEST's default), the non-blocking rewrite
//! (§3.2), and the half-exchange SWAP (§4 future work) which moves only
//! the amplitudes a SWAP actually displaces.
//!
//! [`reference::ReferenceState`] is an independent, deliberately naïve
//! out-of-place simulator used as the correctness oracle for everything
//! else.

/// Converts a `u64` amplitude/rank index to `usize`.
///
/// Every index routed through here is bounded by an allocation this
/// process already holds (`local_amps`-sized `Vec`s, rank counts), so
/// it fits `usize` on any host that can run the simulation at all.
/// Centralising the conversion keeps raw `as usize` out of index
/// arithmetic (lint R6) while documenting the invariant once, and the
/// debug assertion makes the bound self-checking.
#[inline]
pub(crate) fn ix(i: u64) -> usize {
    debug_assert!(usize::try_from(i).is_ok(), "index {i} exceeds usize");
    i as usize // qse-lint: allow — bounded by an existing allocation; debug-checked above
}

pub mod checkpoint;
pub mod diagonal;
pub mod dist;
pub mod expectation;
pub mod measure;
pub mod reference;
pub mod single;
pub mod storage;

pub use dist::{DistConfig, DistributedState};
pub use single::{SingleState, DEFAULT_MIN_FUSE};
pub use storage::{AmpStorage, AosStorage, SoaStorage};
