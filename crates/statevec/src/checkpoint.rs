//! Statevector checkpointing.
//!
//! Large statevector jobs run for hours at full-machine scale; being able
//! to snapshot the register (QuEST offers `writeRecordedQASMToFile` and
//! binary state dumps for the same reason) turns a 4,096-node failure
//! into a restart instead of a rerun. The format is a small self-
//! describing header plus raw little-endian interleaved amplitudes, so a
//! distributed job can write one shard per rank and reassemble on any
//! rank count whose shards concatenate to the same register.

use crate::single::SingleState;
use crate::storage::AmpStorage;
use qse_math::Complex64;

/// Magic bytes identifying a checkpoint ("QSEv1\0").
pub const MAGIC: &[u8; 6] = b"QSEv1\0";

/// Errors while reading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Not a checkpoint (bad magic).
    BadMagic,
    /// Header claims a size the payload does not match.
    LengthMismatch {
        /// Amplitudes promised by the header.
        expected: u64,
        /// Amplitudes actually present.
        actual: u64,
    },
    /// Register width out of supported range.
    BadWidth(u32),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a qse checkpoint (bad magic)"),
            CheckpointError::LengthMismatch { expected, actual } => write!(
                f,
                "checkpoint truncated: header promises {expected} amplitudes, found {actual}"
            ),
            CheckpointError::BadWidth(n) => write!(f, "unsupported register width {n}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises a full single-process state: magic, width (u32 LE), then
/// interleaved `re, im` f64 LE amplitudes.
pub fn save<S: AmpStorage>(state: &SingleState<S>) -> Vec<u8> {
    let len = state.storage().len();
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + len * 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&state.n_qubits().to_le_bytes());
    for i in 0..len {
        let a = state.storage().get(i);
        out.extend_from_slice(&a.re.to_le_bytes());
        out.extend_from_slice(&a.im.to_le_bytes());
    }
    out
}

/// Restores a state saved by [`save`].
pub fn load<S: AmpStorage>(bytes: &[u8]) -> Result<SingleState<S>, CheckpointError> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut header = [0u8; 4];
    header.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
    let n_qubits = u32::from_le_bytes(header);
    if n_qubits == 0 || n_qubits > 30 {
        return Err(CheckpointError::BadWidth(n_qubits));
    }
    let expected = 1u64 << n_qubits;
    let payload = &bytes[MAGIC.len() + 4..];
    let actual = (payload.len() / 16) as u64;
    if actual != expected || !payload.len().is_multiple_of(16) {
        return Err(CheckpointError::LengthMismatch { expected, actual });
    }
    let mut state: SingleState<S> = SingleState::zero_state(n_qubits);
    let mut word = [0u8; 8];
    for (i, chunk) in payload.chunks_exact(16).enumerate() {
        word.copy_from_slice(&chunk[..8]);
        let re = f64::from_le_bytes(word);
        word.copy_from_slice(&chunk[8..]);
        let im = f64::from_le_bytes(word);
        state.set_amplitude(i as u64, Complex64::new(re, im));
    }
    Ok(state)
}

/// Writes a checkpoint to a file.
pub fn save_to_file<S: AmpStorage>(
    state: &SingleState<S>,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, save(state))
}

/// Reads a checkpoint from a file.
pub fn load_from_file<S: AmpStorage>(
    path: &std::path::Path,
) -> std::io::Result<Result<SingleState<S>, CheckpointError>> {
    Ok(load(&std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{AosStorage, SoaStorage};
    use qse_circuit::random::{random_circuit, GatePool};
    use qse_math::approx::assert_slices_close;

    fn scrambled(n: u32) -> SingleState<SoaStorage> {
        let c = random_circuit(n, 60, GatePool::Full, 5);
        let mut s = SingleState::zero_state(n);
        s.run(&c);
        s
    }

    #[test]
    fn round_trip_preserves_amplitudes() {
        let s = scrambled(8);
        let bytes = save(&s);
        let restored: SingleState<SoaStorage> = load(&bytes).unwrap();
        assert_slices_close(&restored.to_vec(), &s.to_vec(), 0.0);
        assert_eq!(restored.n_qubits(), 8);
    }

    #[test]
    fn cross_layout_round_trip() {
        // Save from SoA, load into AoS.
        let s = scrambled(7);
        let restored: SingleState<AosStorage> = load(&save(&s)).unwrap();
        assert_slices_close(&restored.to_vec(), &s.to_vec(), 0.0);
    }

    #[test]
    fn header_size_is_exact() {
        let s: SingleState<SoaStorage> = SingleState::zero_state(5);
        assert_eq!(save(&s).len(), 6 + 4 + 32 * 16);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load::<SoaStorage>(b"not a checkpoint").unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
        assert!(load::<SoaStorage>(&[]).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let s = scrambled(6);
        let mut bytes = save(&s);
        bytes.truncate(bytes.len() - 16);
        match load::<SoaStorage>(&bytes).unwrap_err() {
            CheckpointError::LengthMismatch { expected, actual } => {
                assert_eq!(expected, 64);
                assert_eq!(actual, 63);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_width_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            load::<SoaStorage>(&bytes).unwrap_err(),
            CheckpointError::BadWidth(99)
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("qse_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.qse");
        let s = scrambled(6);
        save_to_file(&s, &path).unwrap();
        let restored: SingleState<SoaStorage> = load_from_file(&path).unwrap().unwrap();
        assert_slices_close(&restored.to_vec(), &s.to_vec(), 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
