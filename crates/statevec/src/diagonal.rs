//! Phase functions for diagonal gates.
//!
//! A diagonal gate multiplies amplitude `|i⟩` by a phase that depends only
//! on `i`'s bits — the paper's *fully local* class. This module evaluates
//! that phase for one gate or for a fused run of gates (a single sweep
//! applying the product of all phases, the optimisation behind QuEST's
//! efficient controlled-phase application).

use qse_circuit::Gate;
use qse_math::bits;
use qse_math::Complex64;
use std::f64::consts::FRAC_PI_4;

/// The phase a diagonal gate applies to basis state `index`.
///
/// # Panics
/// Panics on non-diagonal gates — callers classify first.
pub fn diagonal_phase(gate: &Gate, index: u64) -> Complex64 {
    match *gate {
        Gate::Z(q) => {
            if bits::bit(index, q) == 1 {
                Complex64::real(-1.0)
            } else {
                Complex64::ONE
            }
        }
        Gate::S(q) => phase_if(index, q, Complex64::I),
        Gate::Sdg(q) => phase_if(index, q, -Complex64::I),
        Gate::T(q) => phase_if(index, q, Complex64::cis(FRAC_PI_4)),
        Gate::Tdg(q) => phase_if(index, q, Complex64::cis(-FRAC_PI_4)),
        Gate::Phase { target, theta } => phase_if(index, target, Complex64::cis(theta)),
        Gate::Rz { target, theta } => {
            if bits::bit(index, target) == 1 {
                Complex64::cis(theta / 2.0)
            } else {
                Complex64::cis(-theta / 2.0)
            }
        }
        Gate::CZ(a, b) => {
            if bits::bit(index, a) == 1 && bits::bit(index, b) == 1 {
                Complex64::real(-1.0)
            } else {
                Complex64::ONE
            }
        }
        Gate::CPhase { a, b, theta } => {
            if bits::bit(index, a) == 1 && bits::bit(index, b) == 1 {
                Complex64::cis(theta)
            } else {
                Complex64::ONE
            }
        }
        Gate::Unitary1 { target, matrix } => {
            debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
            if bits::bit(index, target) == 1 {
                matrix.at(1, 1)
            } else {
                matrix.at(0, 0)
            }
        }
        Gate::MCPhase { ref qubits, theta } => {
            if qubits.iter().all(|&q| bits::bit(index, q) == 1) {
                Complex64::cis(theta)
            } else {
                Complex64::ONE
            }
        }
        Gate::CUnitary {
            control,
            target,
            matrix,
        } => {
            debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
            if bits::bit(index, control) == 1 {
                if bits::bit(index, target) == 1 {
                    matrix.at(1, 1)
                } else {
                    matrix.at(0, 0)
                }
            } else {
                Complex64::ONE
            }
        }
        Gate::Unitary2 { a, b, matrix } => {
            debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
            let idx = ((bits::bit(index, b) << 1) | bits::bit(index, a)) as usize;
            matrix.at(idx, idx)
        }
        ref g => panic!("diagonal_phase called on non-diagonal gate {g}"),
    }
}

#[inline(always)]
fn phase_if(index: u64, q: u32, p: Complex64) -> Complex64 {
    if bits::bit(index, q) == 1 {
        p
    } else {
        Complex64::ONE
    }
}

/// The combined phase of a run of diagonal gates — what a fused sweep
/// applies per amplitude.
pub fn fused_phase(gates: &[Gate], index: u64) -> Complex64 {
    gates
        .iter()
        .fold(Complex64::ONE, |acc, g| acc * diagonal_phase(g, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_complex_close;

    #[test]
    fn z_phase() {
        assert_eq!(diagonal_phase(&Gate::Z(1), 0b01), Complex64::ONE);
        assert_eq!(diagonal_phase(&Gate::Z(1), 0b10), Complex64::real(-1.0));
    }

    #[test]
    fn s_t_relations() {
        // T·T = S on every index.
        for idx in 0..8u64 {
            let t2 = diagonal_phase(&Gate::T(1), idx) * diagonal_phase(&Gate::T(1), idx);
            assert_complex_close(t2, diagonal_phase(&Gate::S(1), idx), 1e-12);
        }
        // S·Sdg = 1.
        for idx in 0..8u64 {
            let p = diagonal_phase(&Gate::S(2), idx) * diagonal_phase(&Gate::Sdg(2), idx);
            assert_complex_close(p, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn cphase_needs_both_bits() {
        let g = Gate::CPhase {
            a: 0,
            b: 2,
            theta: 0.5,
        };
        assert_eq!(diagonal_phase(&g, 0b001), Complex64::ONE);
        assert_eq!(diagonal_phase(&g, 0b100), Complex64::ONE);
        assert_complex_close(diagonal_phase(&g, 0b101), Complex64::cis(0.5), 1e-12);
    }

    #[test]
    fn rz_splits_phase_symmetrically() {
        let g = Gate::Rz {
            target: 0,
            theta: 0.8,
        };
        let p0 = diagonal_phase(&g, 0);
        let p1 = diagonal_phase(&g, 1);
        assert_complex_close(p0 * p1, Complex64::ONE, 1e-12);
        assert_complex_close(p1, Complex64::cis(0.4), 1e-12);
    }

    #[test]
    fn fused_equals_product() {
        let gates = vec![
            Gate::S(0),
            Gate::T(1),
            Gate::CPhase {
                a: 0,
                b: 1,
                theta: 0.3,
            },
            Gate::Z(0),
        ];
        for idx in 0..4u64 {
            let expect = gates
                .iter()
                .fold(Complex64::ONE, |a, g| a * diagonal_phase(g, idx));
            assert_complex_close(fused_phase(&gates, idx), expect, 1e-12);
        }
    }

    #[test]
    fn diagonal_unitary1_uses_matrix_entries() {
        let m = qse_math::Matrix2::diagonal(Complex64::cis(0.1), Complex64::cis(0.2));
        let g = Gate::Unitary1 { target: 1, matrix: m };
        assert_complex_close(diagonal_phase(&g, 0b00), Complex64::cis(0.1), 1e-12);
        assert_complex_close(diagonal_phase(&g, 0b10), Complex64::cis(0.2), 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-diagonal gate")]
    fn rejects_non_diagonal() {
        diagonal_phase(&Gate::H(0), 0);
    }
}
