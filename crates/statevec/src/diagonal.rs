//! Phase functions for diagonal gates.
//!
//! A diagonal gate multiplies amplitude `|i⟩` by a phase that depends only
//! on `i`'s bits — the paper's *fully local* class. This module evaluates
//! that phase for one gate or for a fused run of gates (a single sweep
//! applying the product of all phases, the optimisation behind QuEST's
//! efficient controlled-phase application).

use qse_circuit::Gate;
use qse_math::bits;
use qse_math::Complex64;
use std::f64::consts::FRAC_PI_4;

/// The phase a diagonal gate applies to basis state `index`.
///
/// # Panics
/// Panics on non-diagonal gates — callers classify first.
pub fn diagonal_phase(gate: &Gate, index: u64) -> Complex64 {
    match *gate {
        Gate::Z(q) => {
            if bits::bit(index, q) == 1 {
                Complex64::real(-1.0)
            } else {
                Complex64::ONE
            }
        }
        Gate::S(q) => phase_if(index, q, Complex64::I),
        Gate::Sdg(q) => phase_if(index, q, -Complex64::I),
        Gate::T(q) => phase_if(index, q, Complex64::cis(FRAC_PI_4)),
        Gate::Tdg(q) => phase_if(index, q, Complex64::cis(-FRAC_PI_4)),
        Gate::Phase { target, theta } => phase_if(index, target, Complex64::cis(theta)),
        Gate::Rz { target, theta } => {
            if bits::bit(index, target) == 1 {
                Complex64::cis(theta / 2.0)
            } else {
                Complex64::cis(-theta / 2.0)
            }
        }
        Gate::CZ(a, b) => {
            if bits::bit(index, a) == 1 && bits::bit(index, b) == 1 {
                Complex64::real(-1.0)
            } else {
                Complex64::ONE
            }
        }
        Gate::CPhase { a, b, theta } => {
            if bits::bit(index, a) == 1 && bits::bit(index, b) == 1 {
                Complex64::cis(theta)
            } else {
                Complex64::ONE
            }
        }
        Gate::Unitary1 { target, matrix } => {
            debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
            if bits::bit(index, target) == 1 {
                matrix.at(1, 1)
            } else {
                matrix.at(0, 0)
            }
        }
        Gate::MCPhase { ref qubits, theta } => {
            if qubits.iter().all(|&q| bits::bit(index, q) == 1) {
                Complex64::cis(theta)
            } else {
                Complex64::ONE
            }
        }
        Gate::CUnitary {
            control,
            target,
            matrix,
        } => {
            debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
            if bits::bit(index, control) == 1 {
                if bits::bit(index, target) == 1 {
                    matrix.at(1, 1)
                } else {
                    matrix.at(0, 0)
                }
            } else {
                Complex64::ONE
            }
        }
        Gate::Unitary2 { a, b, matrix } => {
            debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
            let idx = crate::ix((bits::bit(index, b) << 1) | bits::bit(index, a));
            matrix.at(idx, idx)
        }
        ref g => unreachable!("diagonal_phase called on non-diagonal gate {g}"),
    }
}

#[inline(always)]
fn phase_if(index: u64, q: u32, p: Complex64) -> Complex64 {
    if bits::bit(index, q) == 1 {
        p
    } else {
        Complex64::ONE
    }
}

/// The combined phase of a run of diagonal gates — what a fused sweep
/// applies per amplitude.
pub fn fused_phase(gates: &[Gate], index: u64) -> Complex64 {
    gates
        .iter()
        .fold(Complex64::ONE, |acc, g| acc * diagonal_phase(g, index))
}

/// One diagonal gate lowered to a branch-light evaluator for the fused
/// execution sweep.
///
/// Every constant (`cis(θ)`, matrix entries, …) is computed once at
/// compile time with the same expressions [`diagonal_phase`] evaluates
/// per call, and [`CompiledDiagonal::apply`] multiplies the amplitude by
/// each gate's phase *in gate order* — including the identity phase of
/// non-matching indices — so fused execution is bit-for-bit identical to
/// applying the same gates one sweep at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PhaseOp {
    /// `p` when every bit of `mask` is set, else 1 — Z, S, S†, T, T†,
    /// Phase, CZ, CPhase, MCPhase.
    MaskAll {
        /// Required-ones mask.
        mask: u64,
        /// Phase applied on a full match.
        p: Complex64,
    },
    /// `p1`/`p0` selected by the bit at `shift` — Rz and diagonal
    /// single-qubit unitaries.
    Select {
        /// Target qubit.
        shift: u32,
        /// Phase when the bit is 0.
        p0: Complex64,
        /// Phase when the bit is 1.
        p1: Complex64,
    },
    /// [`PhaseOp::Select`] gated by a control bit (diagonal CUnitary):
    /// identity unless the control bit is set.
    CtrlSelect {
        /// Control qubit.
        ctrl: u32,
        /// Target qubit.
        shift: u32,
        /// Phase when control = 1 and target bit = 0.
        p0: Complex64,
        /// Phase when control = 1 and target bit = 1.
        p1: Complex64,
    },
    /// Two-bit diagonal lookup (diagonal Unitary2), table index
    /// `(bit_b << 1) | bit_a`.
    Table4 {
        /// Low-order orbit qubit.
        a: u32,
        /// High-order orbit qubit.
        b: u32,
        /// The four diagonal entries.
        d: [Complex64; 4],
    },
}

impl PhaseOp {
    fn compile(gate: &Gate) -> PhaseOp {
        let all = |mask: u64, p: Complex64| PhaseOp::MaskAll { mask, p };
        match *gate {
            Gate::Z(q) => all(1 << q, Complex64::real(-1.0)),
            Gate::S(q) => all(1 << q, Complex64::I),
            Gate::Sdg(q) => all(1 << q, -Complex64::I),
            Gate::T(q) => all(1 << q, Complex64::cis(FRAC_PI_4)),
            Gate::Tdg(q) => all(1 << q, Complex64::cis(-FRAC_PI_4)),
            Gate::Phase { target, theta } => all(1 << target, Complex64::cis(theta)),
            Gate::Rz { target, theta } => PhaseOp::Select {
                shift: target,
                p0: Complex64::cis(-theta / 2.0),
                p1: Complex64::cis(theta / 2.0),
            },
            Gate::CZ(a, b) => all((1 << a) | (1 << b), Complex64::real(-1.0)),
            Gate::CPhase { a, b, theta } => all((1 << a) | (1 << b), Complex64::cis(theta)),
            Gate::MCPhase { ref qubits, theta } => all(
                qubits.iter().fold(0u64, |m, &q| m | (1 << q)),
                Complex64::cis(theta),
            ),
            Gate::Unitary1 { target, matrix } => {
                debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
                PhaseOp::Select {
                    shift: target,
                    p0: matrix.at(0, 0),
                    p1: matrix.at(1, 1),
                }
            }
            Gate::CUnitary {
                control,
                target,
                matrix,
            } => {
                debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
                PhaseOp::CtrlSelect {
                    ctrl: control,
                    shift: target,
                    p0: matrix.at(0, 0),
                    p1: matrix.at(1, 1),
                }
            }
            Gate::Unitary2 { a, b, matrix } => {
                debug_assert!(matrix.is_diagonal(1e-14), "non-diagonal unitary");
                PhaseOp::Table4 {
                    a,
                    b,
                    d: [
                        matrix.at(0, 0),
                        matrix.at(1, 1),
                        matrix.at(2, 2),
                        matrix.at(3, 3),
                    ],
                }
            }
            ref g => unreachable!("PhaseOp::compile called on non-diagonal gate {g}"),
        }
    }

    /// The phase this gate applies to basis state `index` (1 when the
    /// gate does not touch it) — identical to [`diagonal_phase`] of the
    /// source gate, bit for bit.
    #[inline(always)]
    fn phase(&self, index: u64) -> Complex64 {
        match *self {
            PhaseOp::MaskAll { mask, p } => {
                if index & mask == mask {
                    p
                } else {
                    Complex64::ONE
                }
            }
            PhaseOp::Select { shift, p0, p1 } => {
                if (index >> shift) & 1 == 1 {
                    p1
                } else {
                    p0
                }
            }
            PhaseOp::CtrlSelect {
                ctrl,
                shift,
                p0,
                p1,
            } => {
                if (index >> ctrl) & 1 == 1 {
                    if (index >> shift) & 1 == 1 {
                        p1
                    } else {
                        p0
                    }
                } else {
                    Complex64::ONE
                }
            }
            PhaseOp::Table4 { a, b, d } => {
                let idx = (((index >> b) & 1) << 1) | ((index >> a) & 1);
                d[crate::ix(idx)]
            }
        }
    }
}

/// A run of diagonal gates precompiled for single-sweep execution — the
/// execution-layer counterpart of the analytic model's fused runs.
///
/// Where [`fused_phase`] re-matches on the gate enum per amplitude and
/// recomputes `cis(θ)` per call, the compiled form folds each gate to a
/// mask test plus a prebuilt constant. The storage backends drive it
/// through [`crate::storage::AmpStorage::apply_fused_diagonal`]: one read
/// and one write per amplitude for the whole run, instead of one sweep
/// per gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledDiagonal {
    ops: Vec<PhaseOp>,
}

impl CompiledDiagonal {
    /// Compiles a run of diagonal gates, preserving gate order.
    ///
    /// # Panics
    /// Panics on non-diagonal gates — callers segment with
    /// `fused_schedule` first.
    pub fn compile(gates: &[Gate]) -> Self {
        CompiledDiagonal {
            ops: gates.iter().map(PhaseOp::compile).collect(),
        }
    }

    /// Number of gates in the run.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for an empty run (applies the identity).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Multiplies `amp` by every gate's phase at `index`, in gate order —
    /// the exact float-op sequence gate-at-a-time execution performs.
    #[inline]
    pub fn apply(&self, index: u64, amp: Complex64) -> Complex64 {
        let mut a = amp;
        for op in &self.ops {
            a = a * op.phase(index);
        }
        a
    }

    /// The combined phase at `index` (product over the run). Matches
    /// [`fused_phase`] up to floating-point association.
    #[inline]
    pub fn phase(&self, index: u64) -> Complex64 {
        self.ops
            .iter()
            .fold(Complex64::ONE, |acc, op| acc * op.phase(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_math::approx::assert_complex_close;

    #[test]
    fn z_phase() {
        assert_eq!(diagonal_phase(&Gate::Z(1), 0b01), Complex64::ONE);
        assert_eq!(diagonal_phase(&Gate::Z(1), 0b10), Complex64::real(-1.0));
    }

    #[test]
    fn s_t_relations() {
        // T·T = S on every index.
        for idx in 0..8u64 {
            let t2 = diagonal_phase(&Gate::T(1), idx) * diagonal_phase(&Gate::T(1), idx);
            assert_complex_close(t2, diagonal_phase(&Gate::S(1), idx), 1e-12);
        }
        // S·Sdg = 1.
        for idx in 0..8u64 {
            let p = diagonal_phase(&Gate::S(2), idx) * diagonal_phase(&Gate::Sdg(2), idx);
            assert_complex_close(p, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn cphase_needs_both_bits() {
        let g = Gate::CPhase {
            a: 0,
            b: 2,
            theta: 0.5,
        };
        assert_eq!(diagonal_phase(&g, 0b001), Complex64::ONE);
        assert_eq!(diagonal_phase(&g, 0b100), Complex64::ONE);
        assert_complex_close(diagonal_phase(&g, 0b101), Complex64::cis(0.5), 1e-12);
    }

    #[test]
    fn rz_splits_phase_symmetrically() {
        let g = Gate::Rz {
            target: 0,
            theta: 0.8,
        };
        let p0 = diagonal_phase(&g, 0);
        let p1 = diagonal_phase(&g, 1);
        assert_complex_close(p0 * p1, Complex64::ONE, 1e-12);
        assert_complex_close(p1, Complex64::cis(0.4), 1e-12);
    }

    #[test]
    fn fused_equals_product() {
        let gates = vec![
            Gate::S(0),
            Gate::T(1),
            Gate::CPhase {
                a: 0,
                b: 1,
                theta: 0.3,
            },
            Gate::Z(0),
        ];
        for idx in 0..4u64 {
            let expect = gates
                .iter()
                .fold(Complex64::ONE, |a, g| a * diagonal_phase(g, idx));
            assert_complex_close(fused_phase(&gates, idx), expect, 1e-12);
        }
    }

    #[test]
    fn diagonal_unitary1_uses_matrix_entries() {
        let m = qse_math::Matrix2::diagonal(Complex64::cis(0.1), Complex64::cis(0.2));
        let g = Gate::Unitary1 { target: 1, matrix: m };
        assert_complex_close(diagonal_phase(&g, 0b00), Complex64::cis(0.1), 1e-12);
        assert_complex_close(diagonal_phase(&g, 0b10), Complex64::cis(0.2), 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-diagonal gate")]
    fn rejects_non_diagonal() {
        diagonal_phase(&Gate::H(0), 0);
    }

    fn one_of_each_diagonal() -> Vec<Gate> {
        vec![
            Gate::Z(0),
            Gate::S(1),
            Gate::Sdg(2),
            Gate::T(0),
            Gate::Tdg(1),
            Gate::Phase {
                target: 2,
                theta: 0.37,
            },
            Gate::Rz {
                target: 0,
                theta: -1.1,
            },
            Gate::CZ(0, 2),
            Gate::CPhase {
                a: 1,
                b: 2,
                theta: 0.73,
            },
            Gate::MCPhase {
                qubits: vec![0, 1, 2],
                theta: 2.2,
            },
            Gate::Unitary1 {
                target: 1,
                matrix: qse_math::Matrix2::diagonal(Complex64::cis(0.4), Complex64::cis(-0.9)),
            },
            Gate::CUnitary {
                control: 2,
                target: 0,
                matrix: qse_math::Matrix2::diagonal(Complex64::cis(1.3), Complex64::cis(0.2)),
            },
        ]
    }

    #[test]
    fn compiled_phase_is_bit_identical_to_diagonal_phase() {
        // The compiled evaluator must reproduce `diagonal_phase` exactly —
        // not approximately — for every gate kind and every index, since
        // the fused/unfused equivalence contract is bitwise.
        for g in one_of_each_diagonal() {
            let compiled = CompiledDiagonal::compile(std::slice::from_ref(&g));
            for idx in 0..8u64 {
                let want = diagonal_phase(&g, idx);
                let got = compiled.apply(idx, Complex64::ONE);
                assert_eq!(
                    (got.re.to_bits(), got.im.to_bits()),
                    (
                        (Complex64::ONE * want).re.to_bits(),
                        (Complex64::ONE * want).im.to_bits()
                    ),
                    "gate {g} index {idx}"
                );
            }
        }
    }

    #[test]
    fn compiled_apply_matches_sequential_multiplication() {
        // apply() must perform the same multiply sequence as k successive
        // gate-at-a-time sweeps: a·p1·p2·…·pk in gate order.
        let gates = one_of_each_diagonal();
        let compiled = CompiledDiagonal::compile(&gates);
        assert_eq!(compiled.len(), gates.len());
        for idx in 0..8u64 {
            let amp = Complex64::new(0.3 - idx as f64, 0.8);
            let want = gates
                .iter()
                .fold(amp, |a, g| a * diagonal_phase(g, idx));
            let got = compiled.apply(idx, amp);
            assert_eq!(got.re.to_bits(), want.re.to_bits(), "re at {idx}");
            assert_eq!(got.im.to_bits(), want.im.to_bits(), "im at {idx}");
        }
    }

    #[test]
    fn compiled_product_phase_matches_fused_phase() {
        let gates = one_of_each_diagonal();
        let compiled = CompiledDiagonal::compile(&gates);
        for idx in 0..8u64 {
            assert_complex_close(compiled.phase(idx), fused_phase(&gates, idx), 1e-12);
        }
    }

    #[test]
    fn empty_compiled_run_is_identity() {
        let compiled = CompiledDiagonal::compile(&[]);
        assert!(compiled.is_empty());
        let a = Complex64::new(0.5, -0.25);
        assert_eq!(compiled.apply(3, a), a);
        assert_eq!(compiled.phase(3), Complex64::ONE);
    }

    #[test]
    #[should_panic(expected = "non-diagonal gate")]
    fn compile_rejects_non_diagonal() {
        CompiledDiagonal::compile(&[Gate::S(0), Gate::H(1)]);
    }
}
