//! Property tests: fused diagonal execution is *bit-for-bit* identical
//! to gate-at-a-time execution.
//!
//! The fused sweep multiplies each amplitude by every gate's phase
//! sequentially in gate order — the exact floating-point operation
//! sequence of the per-gate sweeps it replaces — so the contract is
//! `to_bits` equality, not closeness. Checked with seeded property
//! loops over random circuits (diagonal-heavy and full gate pools), on
//! both storage layouts, for the single-address-space engine and the
//! distributed engine over 1 and 4 ranks.

use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::Circuit;
use qse_comm::Universe;
use qse_math::Complex64;
use qse_statevec::{
    AmpStorage, AosStorage, DistConfig, DistributedState, SingleState, SoaStorage,
};
use qse_util::check::check_with_size;
use qse_util::rng::Rng;

const N: u32 = 6;

/// Alternate between the diagonal-heavy pool (long fusable runs) and the
/// full pool (runs broken up by non-diagonal gates).
fn pool_for(seed: u64) -> GatePool {
    if seed % 2 == 0 {
        GatePool::QftLike
    } else {
        GatePool::Full
    }
}

fn assert_bitwise(fused: &[Complex64], plain: &[Complex64], ctx: &str) {
    assert_eq!(fused.len(), plain.len(), "{ctx}: length mismatch");
    for (i, (f, p)) in fused.iter().zip(plain).enumerate() {
        assert_eq!(f.re.to_bits(), p.re.to_bits(), "{ctx}: re differs at {i}");
        assert_eq!(f.im.to_bits(), p.im.to_bits(), "{ctx}: im differs at {i}");
    }
}

fn single_case<S: AmpStorage>(seed: u64, gates: usize) {
    let c = random_circuit(N, gates, pool_for(seed), seed);
    let basis = seed % (1 << N);
    let mut fused: SingleState<S> = SingleState::basis_state(N, basis);
    fused.run(&c);
    let mut plain: SingleState<S> = SingleState::basis_state(N, basis);
    plain.run_unfused(&c);
    assert_bitwise(
        &fused.to_vec(),
        &plain.to_vec(),
        &format!("single seed={seed} gates={gates}"),
    );
}

#[test]
fn fused_single_soa_matches_gate_at_a_time() {
    check_with_size(16, 120, |rng, size| {
        single_case::<SoaStorage>(rng.next_u64(), size)
    });
}

#[test]
fn fused_single_aos_matches_gate_at_a_time() {
    check_with_size(16, 120, |rng, size| {
        single_case::<AosStorage>(rng.next_u64(), size)
    });
}

/// Runs `circuit` over `ranks` ranks and returns rank 0's gathered state.
fn dist_gather<S: AmpStorage>(
    circuit: &Circuit,
    ranks: usize,
    config: DistConfig,
    basis: u64,
) -> Vec<Complex64> {
    let out = Universe::new(ranks).run(|comm| {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, circuit.n_qubits(), basis, config);
        st.run(circuit).unwrap();
        st.gather().unwrap()
    });
    out.into_iter().flatten().next().expect("rank 0 gathered")
}

fn dist_case<S: AmpStorage>(seed: u64, gates: usize, ranks: usize) {
    let c = random_circuit(N, gates, pool_for(seed), seed);
    let basis = seed % (1 << N);
    let fused = dist_gather::<S>(&c, ranks, DistConfig::default(), basis);
    let plain = dist_gather::<S>(
        &c,
        ranks,
        DistConfig {
            min_fuse: None,
            ..DistConfig::default()
        },
        basis,
    );
    assert_bitwise(
        &fused,
        &plain,
        &format!("dist ranks={ranks} seed={seed} gates={gates}"),
    );
}

#[test]
fn fused_distributed_soa_matches_gate_at_a_time_1_rank() {
    check_with_size(8, 80, |rng, size| {
        dist_case::<SoaStorage>(rng.next_u64(), size, 1)
    });
}

#[test]
fn fused_distributed_soa_matches_gate_at_a_time_4_ranks() {
    check_with_size(8, 80, |rng, size| {
        dist_case::<SoaStorage>(rng.next_u64(), size, 4)
    });
}

#[test]
fn fused_distributed_aos_matches_gate_at_a_time_1_rank() {
    check_with_size(8, 80, |rng, size| {
        dist_case::<AosStorage>(rng.next_u64(), size, 1)
    });
}

#[test]
fn fused_distributed_aos_matches_gate_at_a_time_4_ranks() {
    check_with_size(8, 80, |rng, size| {
        dist_case::<AosStorage>(rng.next_u64(), size, 4)
    });
}

/// The fused distributed engine agrees with the fused single-process
/// engine (up to FP tolerance — the distributed combine uses a
/// different operation order for non-diagonal gates, so bitwise
/// equality is not the contract here).
#[test]
fn fused_distributed_matches_single_process() {
    check_with_size(6, 60, |rng, size| {
        let seed = rng.next_u64();
        let c = random_circuit(N, size, pool_for(seed), seed);
        let mut single: SingleState<SoaStorage> = SingleState::zero_state(N);
        single.run(&c);
        let dist = dist_gather::<SoaStorage>(&c, 4, DistConfig::default(), 0);
        let want = single.to_vec();
        for (i, (d, w)) in dist.iter().zip(&want).enumerate() {
            assert!(
                (d.re - w.re).abs() < 1e-9 && (d.im - w.im).abs() < 1e-9,
                "seed={seed} amp {i}: {d:?} vs {w:?}"
            );
        }
    });
}
