//! Property tests for the streamed chunk-pipelined exchange: on every
//! circuit family, storage layout, rank count and chunk size, the
//! streamed mode must be **bit-for-bit** identical to the blocking and
//! non-blocking modes — chunk completion order may vary run to run, but
//! each chunk's combine touches a disjoint amplitude range with the
//! exact arithmetic of the full-buffer kernels, so the result is
//! deterministic down to the last ULP.

use qse_circuit::qft::qft;
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::Circuit;
use qse_comm::chunking::{ChunkPolicy, ExchangeMode};
use qse_comm::Universe;
use qse_math::Complex64;
use qse_statevec::storage::{AmpStorage, AosStorage, SoaStorage};
use qse_statevec::{DistConfig, DistributedState};

/// Runs `circuit` on `ranks` ranks with storage `S` and returns the
/// gathered state plus the summed per-rank traffic stats.
fn simulate<S: AmpStorage>(
    circuit: &Circuit,
    ranks: usize,
    config: DistConfig,
) -> (Vec<Complex64>, Vec<qse_comm::TrafficStats>) {
    let out = Universe::new(ranks).run(|comm| {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, circuit.n_qubits(), 1, config);
        st.run(circuit).unwrap();
        st.barrier();
        let stats = st.stats();
        (st.gather().unwrap(), stats)
    });
    let mut state = None;
    let mut stats = Vec::new();
    for (s, t) in out {
        if let Some(s) = s {
            state = Some(s);
        }
        stats.push(t);
    }
    (state.expect("rank 0 gathered"), stats)
}

/// Asserts two states are identical down to the bit pattern.
fn assert_bits_equal(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at {i}");
    }
}

/// Tiny chunks: at 8 qubits over 4 ranks a full exchange is 1 KiB on the
/// wire, so a 128-byte cap forces ≥ 8 chunks per distributed gate.
const TINY_CHUNK: usize = 128;

fn config(mode: ExchangeMode, half_swaps: bool) -> DistConfig {
    DistConfig {
        exchange_mode: mode,
        chunk_policy: ChunkPolicy::new(TINY_CHUNK).unwrap(),
        half_exchange_swaps: half_swaps,
        ..DistConfig::default()
    }
}

fn check_all_modes_agree<S: AmpStorage>(circuit: &Circuit, ranks: usize, what: &str) {
    let (blocking, _) = simulate::<S>(circuit, ranks, config(ExchangeMode::Blocking, false));
    let (nonblocking, _) = simulate::<S>(circuit, ranks, config(ExchangeMode::NonBlocking, false));
    let (streamed, _) = simulate::<S>(circuit, ranks, config(ExchangeMode::Streamed, false));
    assert_bits_equal(&streamed, &blocking, &format!("{what}: streamed vs blocking"));
    assert_bits_equal(
        &streamed,
        &nonblocking,
        &format!("{what}: streamed vs non-blocking"),
    );
}

#[test]
fn qft_streamed_bitwise_equal_soa() {
    for ranks in [2usize, 4] {
        check_all_modes_agree::<SoaStorage>(&qft(8), ranks, &format!("qft soa R={ranks}"));
    }
}

#[test]
fn qft_streamed_bitwise_equal_aos() {
    for ranks in [2usize, 4] {
        check_all_modes_agree::<AosStorage>(&qft(8), ranks, &format!("qft aos R={ranks}"));
    }
}

#[test]
fn random_circuits_streamed_bitwise_equal_soa() {
    for ranks in [2usize, 4] {
        for seed in 0..4 {
            let c = random_circuit(8, 60, GatePool::Full, seed);
            check_all_modes_agree::<SoaStorage>(&c, ranks, &format!("seed {seed} soa R={ranks}"));
        }
    }
}

#[test]
fn random_circuits_streamed_bitwise_equal_aos() {
    for ranks in [2usize, 4] {
        for seed in 4..7 {
            let c = random_circuit(8, 60, GatePool::Full, seed);
            check_all_modes_agree::<AosStorage>(&c, ranks, &format!("seed {seed} aos R={ranks}"));
        }
    }
}

#[test]
fn streamed_half_exchange_swaps_bitwise_equal() {
    // SWAP-heavy circuit exercising one-global and both-global paths.
    let mut c = Circuit::new(8);
    c.h(0).swap(0, 7).h(1).swap(6, 7).swap(2, 6).h(7).swap(1, 5).swap(5, 6);
    for ranks in [4usize, 8] {
        let (plain, _) = simulate::<SoaStorage>(&c, ranks, config(ExchangeMode::Blocking, false));
        let (streamed_half, _) =
            simulate::<SoaStorage>(&c, ranks, config(ExchangeMode::Streamed, true));
        assert_bits_equal(&plain, &streamed_half, &format!("half swaps R={ranks}"));
    }
}

#[test]
fn streamed_unitary2_bitwise_equal() {
    // Dense two-qubit unitaries across the local/global boundary hit the
    // orbit-aligned chunk path (and the both-global decomposition).
    use qse_circuit::random::random_unitary2;
    use qse_circuit::Gate;
    use qse_util::rng::StdRng;
    let mut rng = StdRng::seed_from_u64(11);
    let mut c = random_circuit(8, 20, GatePool::Full, 11);
    for &(a, b) in &[(2u32, 7u32), (0, 6), (7, 6), (6, 7), (3, 5)] {
        c.push(Gate::Unitary2 {
            a,
            b,
            matrix: random_unitary2(&mut rng),
        });
    }
    for ranks in [2usize, 4] {
        check_all_modes_agree::<SoaStorage>(&c, ranks, &format!("unitary2 R={ranks}"));
    }
}

#[test]
fn streamed_peak_scratch_is_bounded_by_ring() {
    // The acceptance criterion for the memory claim: on the streamed
    // path the exchange scratch never holds more than ring-depth (2)
    // chunks at once — far below the full-half receive buffer the other
    // modes stage through.
    let mut c = Circuit::new(8);
    for _ in 0..3 {
        c.h(7).h(6); // distributed 1q gates only
    }
    let (_, stats) = simulate::<SoaStorage>(&c, 4, config(ExchangeMode::Streamed, false));
    let local_wire_bytes = (1u64 << 8) / 4 * 16; // 1 KiB per rank
    for (rank, s) in stats.iter().enumerate() {
        // 6 distributed gates × 8 chunks each.
        assert!(
            s.exchange_chunks >= 8,
            "rank {rank}: only {} chunks",
            s.exchange_chunks
        );
        assert!(s.peak_inflight_bytes > 0, "rank {rank}: gauge never rose");
        assert!(
            s.peak_inflight_bytes <= 2 * TINY_CHUNK as u64,
            "rank {rank}: peak {} exceeds ring bound {}",
            s.peak_inflight_bytes,
            2 * TINY_CHUNK
        );
        assert!(
            s.peak_inflight_bytes < local_wire_bytes,
            "rank {rank}: peak {} not below full-half {}",
            s.peak_inflight_bytes,
            local_wire_bytes
        );
    }
    // Blocking mode never touches the streamed scratch gauge.
    let (_, blocking_stats) = simulate::<SoaStorage>(&c, 4, config(ExchangeMode::Blocking, false));
    for s in &blocking_stats {
        assert_eq!(s.peak_inflight_bytes, 0);
    }
}
