//! The fault-equivalence property suite — the acceptance bar for the
//! deterministic fault-injection layer in `qse-comm`.
//!
//! Under **any recoverable fault plan** (every fault burst fits inside
//! the retry budget) the simulation must produce a **bit-for-bit**
//! identical statevector to the fault-free run, in all three exchange
//! modes, on QFT and random circuits, in both storage layouts, at
//! R ∈ {2, 4, 8}. Corruption is detected by checksum and healed by the
//! pristine retransmission; transient failures are retried with
//! deterministic backoff; delay jitter only reorders chunk completions,
//! which compose over disjoint amplitude ranges. None of it may change a
//! single ULP.
//!
//! Unrecoverable plans must surface a typed [`CommError`] from
//! `DistributedState::run` on every rank — never a hang, never a panic.
//!
//! Every seeded check embeds its seed in the panic message, so a failure
//! is replayable with `qse run --faults seed=N` or by rerunning the
//! suite.

use qse_circuit::qft::qft;
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::Circuit;
use qse_comm::chunking::{ChunkPolicy, ExchangeMode};
use qse_comm::{CommError, FaultConfig, TrafficStats, Universe};
use qse_math::Complex64;
use qse_statevec::storage::{AmpStorage, AosStorage, SoaStorage};
use qse_statevec::{DistConfig, DistributedState};
use std::time::Duration;

/// Small chunks force every distributed gate through multi-chunk
/// exchanges, so corruption/retransmission and reordering hit the
/// chunked paths, not just whole-buffer messages.
const TINY_CHUNK: usize = 128;

fn dist_config(mode: ExchangeMode) -> DistConfig {
    DistConfig {
        exchange_mode: mode,
        chunk_policy: ChunkPolicy::new(TINY_CHUNK).unwrap(),
        ..DistConfig::default()
    }
}

/// Runs `circuit` over `ranks` ranks (optionally under a fault plan) and
/// returns the gathered state plus per-rank traffic stats. Only for
/// plans that must succeed — a rank error propagates out as `Err`.
fn simulate<S: AmpStorage>(
    circuit: &Circuit,
    ranks: usize,
    config: DistConfig,
    faults: Option<FaultConfig>,
) -> Result<(Vec<Complex64>, Vec<TrafficStats>), CommError> {
    let universe = match faults {
        Some(fc) => Universe::with_faults(ranks, fc).expect("plan must validate"),
        None => Universe::new(ranks),
    };
    let out = universe.run(|comm| -> Result<_, CommError> {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, circuit.n_qubits(), 1, config);
        st.run(circuit)?;
        st.barrier();
        let stats = st.stats();
        Ok((st.gather()?, stats))
    });
    let mut state = None;
    let mut stats = Vec::new();
    for r in out {
        let (s, t) = r?;
        if let Some(s) = s {
            state = Some(s);
        }
        stats.push(t);
    }
    Ok((state.expect("rank 0 gathered"), stats))
}

/// Runs a circuit expected to *fail*: no barrier or gather after the
/// error, just each rank's `DistributedState::run` verdict in rank
/// order. A short receive deadline bounds the run even if a rank ends up
/// waiting on a peer that already erred out.
fn run_collect_errors<S: AmpStorage>(
    circuit: &Circuit,
    ranks: usize,
    config: DistConfig,
    faults: FaultConfig,
) -> Vec<Result<(), CommError>> {
    let universe = Universe::with_timeout_and_faults(ranks, Duration::from_secs(5), faults)
        .expect("plan must validate");
    universe.run(|comm| {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, circuit.n_qubits(), 1, config);
        st.run(circuit)
    })
}

fn assert_bits_equal(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at {i}");
    }
}

/// The per-seed recoverable plan. Delay jitter costs real poll slices
/// (25 ms each when a held message is the only traffic), so it is
/// sampled on every fifth seed rather than paid on all fifty; the other
/// seeds run the full corruption + transient-failure cocktail, which is
/// wall-clock cheap.
fn recoverable_plan(seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::recoverable(seed);
    if seed % 5 == 0 {
        cfg.max_delay_slices = 1;
    } else {
        cfg.p_delay = 0.0;
        cfg.max_delay_slices = 0;
    }
    assert!(cfg.is_recoverable());
    cfg
}

/// One seed's full check: fault-free baseline, then all three exchange
/// modes under the seeded plan, each bit-for-bit against the baseline.
fn check_seed<S: AmpStorage>(seed: u64, circuit: &Circuit, ranks: usize, what: &str) {
    let plan = recoverable_plan(seed);
    let (baseline, base_stats) =
        simulate::<S>(circuit, ranks, dist_config(ExchangeMode::Blocking), None)
            .unwrap_or_else(|e| panic!("seed {seed} {what}: fault-free run failed: {e}"));
    for (rank, s) in base_stats.iter().enumerate() {
        assert_eq!(s.faults_injected, 0, "seed {seed} rank {rank}: clean run injected");
        assert_eq!(s.retries, 0, "seed {seed} rank {rank}: clean run retried");
        assert_eq!(s.corruptions_detected, 0, "seed {seed} rank {rank}: clean run corrupted");
    }
    let mut injected_total = 0u64;
    for mode in [
        ExchangeMode::Blocking,
        ExchangeMode::NonBlocking,
        ExchangeMode::Streamed,
    ] {
        let (state, stats) = simulate::<S>(circuit, ranks, dist_config(mode), Some(plan))
            .unwrap_or_else(|e| {
                panic!("seed {seed} {what} mode {mode:?}: recoverable plan errored: {e}")
            });
        assert_bits_equal(&state, &baseline, &format!("seed {seed} {what} mode {mode:?}"));
        injected_total += stats.iter().map(|s| s.faults_injected).sum::<u64>();
    }
    assert!(injected_total > 0, "seed {seed} {what}: plan never injected a fault");
}

/// Runs one bucket of the 50-seed campaign. Seeds rotate rank count,
/// storage layout, and circuit family, so every combination in the
/// acceptance matrix is exercised across the full sweep.
fn run_seed_bucket(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let ranks = [2usize, 4, 8][(seed % 3) as usize];
        let circuit = if seed % 4 < 2 {
            qft(7)
        } else {
            random_circuit(7, 40, GatePool::Full, seed)
        };
        let what = format!("R={ranks}");
        if seed % 2 == 0 {
            check_seed::<SoaStorage>(seed, &circuit, ranks, &format!("{what} soa"));
        } else {
            check_seed::<AosStorage>(seed, &circuit, ranks, &format!("{what} aos"));
        }
    }
}

// The 50-seed campaign, split into buckets so the harness runs them in
// parallel. Together: 50 recoverable plans × 3 modes, each bit-for-bit
// against the fault-free baseline.
#[test]
fn fault_equivalence_seeds_00_to_09() {
    run_seed_bucket(0..10);
}

#[test]
fn fault_equivalence_seeds_10_to_19() {
    run_seed_bucket(10..20);
}

#[test]
fn fault_equivalence_seeds_20_to_29() {
    run_seed_bucket(20..30);
}

#[test]
fn fault_equivalence_seeds_30_to_39() {
    run_seed_bucket(30..40);
}

#[test]
fn fault_equivalence_seeds_40_to_49() {
    run_seed_bucket(40..50);
}

#[test]
fn streamed_chunks_reordered_by_jitter_compose_bitwise() {
    // Delay-only jitter scrambles wait_any completion order; the
    // per-chunk range kernels must still compose to the exact clean
    // state. Heavier jitter than the campaign plans, streamed mode only.
    let circuit = qft(7);
    let mut plan = FaultConfig::disabled(77);
    plan.p_delay = 0.7;
    plan.max_delay_slices = 2;
    for ranks in [2usize, 4] {
        let (baseline, _) =
            simulate::<SoaStorage>(&circuit, ranks, dist_config(ExchangeMode::Blocking), None)
                .expect("clean run");
        let (jittered, stats) = simulate::<SoaStorage>(
            &circuit,
            ranks,
            dist_config(ExchangeMode::Streamed),
            Some(plan),
        )
        .expect("delay-only plan is recoverable");
        assert_bits_equal(&jittered, &baseline, &format!("jittered streamed R={ranks}"));
        assert!(stats.iter().map(|s| s.faults_injected).sum::<u64>() > 0);
    }
}

#[test]
fn heavy_retries_recover_without_deadlock_reports() {
    // Near-constant transient failures (but within budget) exercise the
    // retry/backoff loop on almost every operation. The run must succeed
    // with the exact clean state — in particular the deadlock detector
    // must stay silent while ranks sit in backoff.
    let circuit = qft(6);
    let mut plan = FaultConfig::disabled(13);
    plan.p_send_fail = 0.9;
    plan.p_recv_fail = 0.5;
    plan.max_fail_burst = 2;
    plan.retry_budget = 3;
    assert!(plan.is_recoverable());
    let (baseline, _) =
        simulate::<SoaStorage>(&circuit, 4, dist_config(ExchangeMode::NonBlocking), None)
            .expect("clean run");
    let (state, stats) = simulate::<SoaStorage>(
        &circuit,
        4,
        dist_config(ExchangeMode::NonBlocking),
        Some(plan),
    )
    .unwrap_or_else(|e| panic!("recoverable retry storm errored (seed 13): {e}"));
    assert_bits_equal(&state, &baseline, "retry storm");
    assert!(stats.iter().map(|s| s.retries).sum::<u64>() > 0, "no retry ever ran");
}

#[test]
fn unrecoverable_corruption_errors_on_every_rank() {
    let circuit = qft(6);
    for &mode in &[ExchangeMode::Blocking, ExchangeMode::Streamed] {
        let out = run_collect_errors::<SoaStorage>(
            &circuit,
            4,
            dist_config(mode),
            FaultConfig::permanent_corruption(3),
        );
        assert_eq!(out.len(), 4);
        for (rank, r) in out.into_iter().enumerate() {
            let err = r.err()
                .unwrap_or_else(|| panic!("rank {rank} mode {mode:?} should have failed"));
            assert!(
                matches!(err, CommError::Corrupt { .. } | CommError::RecvTimeout { .. }),
                "rank {rank} mode {mode:?}: unexpected error {err:?}"
            );
        }
    }
}

#[test]
fn exhausted_retries_error_on_every_rank() {
    let circuit = qft(6);
    let out = run_collect_errors::<SoaStorage>(
        &circuit,
        4,
        dist_config(ExchangeMode::NonBlocking),
        FaultConfig::exhausted_retries(5),
    );
    assert_eq!(out.len(), 4);
    for (rank, r) in out.into_iter().enumerate() {
        let err = r.err().unwrap_or_else(|| panic!("rank {rank} should have failed"));
        assert!(
            matches!(err, CommError::Transient { .. } | CommError::RecvTimeout { .. }),
            "rank {rank}: unexpected error {err:?}"
        );
    }
}

#[test]
fn soak_16_qubit_qft_over_seeded_plans() {
    // Tier-1 slice of the soak campaign (the bench binary runs more
    // seeds): each seeded recoverable plan over the 16-qubit QFT at R=4
    // must complete bitwise-correct; a failure names the seed so it can
    // be replayed with `--faults seed=N`.
    let circuit = qft(16);
    // Default (1 MiB) chunks: a 16-qubit exchange is one message, which
    // keeps fifty-odd distributed gates affordable under delay jitter.
    let config = DistConfig {
        exchange_mode: ExchangeMode::Streamed,
        ..DistConfig::default()
    };
    let (baseline, _) = simulate::<SoaStorage>(&circuit, 4, config, None).expect("clean run");
    for seed in [101u64, 202, 303] {
        let plan = FaultConfig::recoverable(seed);
        let (state, stats) = simulate::<SoaStorage>(&circuit, 4, config, Some(plan))
            .unwrap_or_else(|e| panic!("soak seed {seed}: recoverable plan errored: {e}"));
        assert_bits_equal(&state, &baseline, &format!("soak seed {seed}"));
        assert!(
            stats.iter().map(|s| s.faults_injected).sum::<u64>() > 0,
            "soak seed {seed}: plan never fired"
        );
    }
}

#[test]
fn fault_free_runs_take_the_zero_overhead_path() {
    // Acceptance criterion: with faults disabled, no checksums are
    // stamped and every fault counter stays zero across all modes.
    let circuit = random_circuit(7, 30, GatePool::Full, 9);
    for mode in [
        ExchangeMode::Blocking,
        ExchangeMode::NonBlocking,
        ExchangeMode::Streamed,
    ] {
        let (_, stats) =
            simulate::<SoaStorage>(&circuit, 4, dist_config(mode), None).expect("clean run");
        for (rank, s) in stats.iter().enumerate() {
            assert_eq!(s.faults_injected, 0, "rank {rank} mode {mode:?}");
            assert_eq!(s.retries, 0, "rank {rank} mode {mode:?}");
            assert_eq!(s.corruptions_detected, 0, "rank {rank} mode {mode:?}");
        }
    }
}
