//! Cross-validation of the static plan verifier (`qse-check::verify`)
//! against the running engine: the symbolic trace's per-rank byte totals
//! must equal the measured `TrafficStats.bytes_exchanged` **bit-for-bit**
//! on every run — across storage layouts, rank counts, exchange modes,
//! half-exchange SWAPs and transpile strategies — and every plan the
//! equivalence suites execute must verify statically before it runs.

use qse_check::verify::{derive_traces, verify_plan, VerifyOptions};
use qse_circuit::classify::Layout;
use qse_circuit::qft::qft;
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::transpile::{comm_avoid, ByteOracle, Plan, Strategy};
use qse_circuit::{Circuit, Permutation};
use qse_comm::chunking::{ChunkPolicy, ExchangeMode};
use qse_comm::Universe;
use qse_statevec::storage::{AmpStorage, AosStorage, SoaStorage};
use qse_statevec::{DistConfig, DistributedState};

const MODES: [ExchangeMode; 3] = [
    ExchangeMode::Blocking,
    ExchangeMode::NonBlocking,
    ExchangeMode::Streamed,
];

fn dist_config(mode: ExchangeMode, chunk: usize, half: bool) -> DistConfig {
    DistConfig {
        exchange_mode: mode,
        chunk_policy: ChunkPolicy::new(chunk).unwrap(),
        half_exchange_swaps: half,
        ..DistConfig::default()
    }
}

fn verify_opts(config: DistConfig) -> VerifyOptions {
    VerifyOptions {
        exchange_mode: config.exchange_mode,
        chunk_policy: config.chunk_policy,
        half_exchange_swaps: config.half_exchange_swaps,
        min_fuse: config.min_fuse,
        ..VerifyOptions::default()
    }
}

/// Runs `plan` on `ranks` ranks and returns each rank's measured
/// `bytes_exchanged`, in rank order.
fn measured_exchanged<S: AmpStorage>(plan: &Plan, ranks: usize, config: DistConfig) -> Vec<u64> {
    Universe::new(ranks).run(|comm| {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, plan.n_qubits(), 1, config);
        st.run_plan(plan).unwrap();
        st.barrier();
        st.stats().bytes_exchanged
    })
}

fn plan_for(circuit: &Circuit, ranks: u64, strategy: Option<Strategy>) -> Plan {
    match strategy {
        None => Plan::from_circuit(circuit, Permutation::identity(circuit.n_qubits())),
        Some(s) => {
            let layout = Layout::new(circuit.n_qubits(), ranks);
            comm_avoid(circuit, &layout, s, &ByteOracle).with_layout_restored()
        }
    }
}

/// The property: symbolic per-rank byte totals equal the runtime's
/// measured `bytes_exchanged` exactly.
fn check_bytes_match<S: AmpStorage>(
    circuit: &Circuit,
    ranks: u64,
    strategy: Option<Strategy>,
    config: DistConfig,
    what: &str,
) {
    let plan = plan_for(circuit, ranks, strategy);
    let opts = verify_opts(config);
    verify_plan(&plan, Some(circuit), ranks, &opts)
        .unwrap_or_else(|e| panic!("{what}: plan failed static verification: {e}"));
    let ts = derive_traces(&plan, ranks, &opts).unwrap();
    let predicted: Vec<u64> = ts.ranks.iter().map(|r| r.predicted_exchanged).collect();
    let measured = measured_exchanged::<S>(&plan, ranks as usize, config);
    assert_eq!(
        predicted, measured,
        "{what}: symbolic trace bytes diverge from measured TrafficStats"
    );
}

#[test]
fn symbolic_bytes_match_measured_qft_soa() {
    let c = qft(8);
    for ranks in [2u64, 4, 8] {
        for mode in MODES {
            for strategy in [None, Some(Strategy::Greedy), Some(Strategy::beam())] {
                check_bytes_match::<SoaStorage>(
                    &c,
                    ranks,
                    strategy,
                    dist_config(mode, 1 << 20, false),
                    &format!("qft8 soa R={ranks} {mode:?} {strategy:?}"),
                );
            }
        }
    }
}

#[test]
fn symbolic_bytes_match_measured_random_aos() {
    for (seed, ranks) in [(0u64, 2u64), (1, 4), (2, 8)] {
        let c = random_circuit(7, 40, GatePool::Full, seed);
        for mode in MODES {
            for strategy in [None, Some(Strategy::Greedy), Some(Strategy::beam())] {
                check_bytes_match::<AosStorage>(
                    &c,
                    ranks,
                    strategy,
                    dist_config(mode, 1 << 20, false),
                    &format!("rand7s{seed} aos R={ranks} {mode:?} {strategy:?}"),
                );
            }
        }
    }
}

#[test]
fn symbolic_bytes_match_measured_small_chunks_and_half_exchange() {
    // Small chunks force multi-chunk lowering; half-exchange SWAPs halve
    // the one-global swap payload — both must stay exact.
    let c = qft(7);
    for ranks in [2u64, 4] {
        for mode in MODES {
            for half in [false, true] {
                check_bytes_match::<SoaStorage>(
                    &c,
                    ranks,
                    None,
                    dist_config(mode, 256, half),
                    &format!("qft7 chunked R={ranks} {mode:?} half={half}"),
                );
            }
        }
    }
}

#[test]
fn symbolic_bytes_match_measured_unfused() {
    // Fusion off: the verifier walks the per-gate schedule instead.
    let c = random_circuit(7, 30, GatePool::QftLike, 11);
    for mode in MODES {
        let config = DistConfig {
            min_fuse: None,
            ..dist_config(mode, 1 << 20, false)
        };
        check_bytes_match::<SoaStorage>(&c, 4, Some(Strategy::Greedy), config, "unfused R=4");
    }
}

/// Every plan the equivalence suites execute (`transpile_equivalence`,
/// `fused_equivalence`, `streamed_equivalence` circuit families) must
/// pass static verification for every rank count and mode those suites
/// sweep — the tier-1 pre-flight form of the proof.
#[test]
fn every_equivalence_suite_plan_verifies_statically() {
    let mut circuits: Vec<(String, Circuit)> = vec![("qft9".into(), qft(9))];
    for seed in 0..5 {
        circuits.push((
            format!("rand8s{seed}"),
            random_circuit(8, 60, GatePool::Full, seed),
        ));
    }
    for seed in 10..12 {
        circuits.push((
            format!("qftlike{seed}"),
            random_circuit(8, 60, GatePool::QftLike, seed),
        ));
    }
    let mut verified = 0usize;
    for (name, c) in &circuits {
        for ranks in [1u64, 2, 4, 8] {
            for strategy in [None, Some(Strategy::Greedy), Some(Strategy::beam())] {
                let plan = plan_for(c, ranks, strategy);
                for mode in MODES {
                    let opts = verify_opts(dist_config(mode, 1 << 20, false));
                    verify_plan(&plan, Some(c), ranks, &opts).unwrap_or_else(|e| {
                        panic!("{name} R={ranks} {mode:?} {strategy:?}: {e}")
                    });
                    verified += 1;
                }
            }
        }
    }
    assert!(verified >= 200, "suite sweep covered {verified} plans");
}
