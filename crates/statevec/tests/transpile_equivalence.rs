//! Property tests for the comm-avoiding transpiler: on every circuit
//! family, storage layout, rank count and exchange mode, executing the
//! transpiled plan (placement search + batched global permutations) must
//! reproduce the untranspiled distributed run **bit-for-bit** — the
//! permutation steps move amplitudes without arithmetic, and a relocated
//! single-target gate's two-term combine `m·a + m'·b` is commutative, so
//! the local and distributed kernels agree to the last ULP — and must
//! never exchange more amplitude payload than the untranspiled run.
//!
//! The one exception is `Gate::Unitary2`: its four-term combine
//! associates differently in the local orbit kernel than in the
//! exchange-then-combine distributed path, so circuits drawing from
//! `GatePool::Full` are held to 1e-9 closeness instead of bit equality.

use qse_circuit::classify::Layout;
use qse_circuit::qft::qft;
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::transpile::{comm_avoid, ByteOracle, Plan, Strategy};
use qse_circuit::Circuit;
use qse_comm::chunking::{ChunkPolicy, ExchangeMode};
use qse_comm::Universe;
use qse_math::Complex64;
use qse_statevec::storage::{AmpStorage, AosStorage, SoaStorage};
use qse_statevec::{DistConfig, DistributedState};

const MODES: [ExchangeMode; 3] = [
    ExchangeMode::Blocking,
    ExchangeMode::NonBlocking,
    ExchangeMode::Streamed,
];

fn config(mode: ExchangeMode) -> DistConfig {
    DistConfig {
        exchange_mode: mode,
        chunk_policy: ChunkPolicy::new(1 << 20).unwrap(),
        ..DistConfig::default()
    }
}

/// Runs the untranspiled circuit and returns the gathered state plus the
/// total amplitude payload exchanged across ranks.
fn run_plain<S: AmpStorage>(
    circuit: &Circuit,
    ranks: usize,
    config: DistConfig,
) -> (Vec<Complex64>, u64) {
    let out = Universe::new(ranks).run(|comm| {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, circuit.n_qubits(), 1, config);
        st.run(circuit).unwrap();
        st.barrier();
        let exchanged = st.stats().bytes_exchanged;
        (st.gather().unwrap(), exchanged)
    });
    collect(out)
}

/// Runs a transpiled plan and returns the gathered state plus the total
/// amplitude payload exchanged across ranks.
fn run_plan<S: AmpStorage>(plan: &Plan, ranks: usize, config: DistConfig) -> (Vec<Complex64>, u64) {
    let out = Universe::new(ranks).run(|comm| {
        let mut st: DistributedState<S> =
            DistributedState::basis_state(comm, plan.n_qubits(), 1, config);
        st.run_plan(plan).unwrap();
        st.barrier();
        let exchanged = st.stats().bytes_exchanged;
        (st.gather().unwrap(), exchanged)
    });
    collect(out)
}

fn collect(out: Vec<(Option<Vec<Complex64>>, u64)>) -> (Vec<Complex64>, u64) {
    let mut state = None;
    let mut exchanged = 0;
    for (s, e) in out {
        if let Some(s) = s {
            state = Some(s);
        }
        exchanged += e;
    }
    (state.expect("rank 0 gathered"), exchanged)
}

/// Asserts two states are identical down to the bit pattern.
fn assert_bits_equal(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re differs at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im differs at {i}");
    }
}

/// How close the transpiled state must sit to the untranspiled one.
#[derive(Clone, Copy)]
enum Bar {
    /// Bit-for-bit: gate set limited to two-term (commutative) combines.
    Bitwise,
    /// 1e-9 closeness: circuits with `Unitary2` four-term combines.
    Close,
}

/// The property: for each strategy and exchange mode, the restored-layout
/// plan reproduces the untranspiled run (to `bar`) and exchanges no more
/// payload.
fn check_equivalence<S: AmpStorage>(circuit: &Circuit, ranks: usize, bar: Bar, what: &str) {
    let layout = Layout::new(circuit.n_qubits(), ranks as u64);
    for (name, strategy) in [("greedy", Strategy::Greedy), ("beam", Strategy::beam())] {
        let plan = comm_avoid(circuit, &layout, strategy, &ByteOracle).with_layout_restored();
        for mode in MODES {
            let tag = format!("{what} {name} {mode:?}");
            let (want, plain_bytes) = run_plain::<S>(circuit, ranks, config(mode));
            let (got, plan_bytes) = run_plan::<S>(&plan, ranks, config(mode));
            match bar {
                Bar::Bitwise => assert_bits_equal(&got, &want, &tag),
                Bar::Close => {
                    qse_math::approx::assert_slices_close(&got, &want, 1e-9);
                }
            }
            assert!(
                plan_bytes <= plain_bytes,
                "{tag}: transpiled exchanged more ({plan_bytes} > {plain_bytes})"
            );
        }
    }
}

#[test]
fn qft_transpiled_bitwise_equal_soa() {
    for ranks in [1usize, 2, 4, 8] {
        check_equivalence::<SoaStorage>(&qft(9), ranks, Bar::Bitwise, &format!("qft soa R={ranks}"));
    }
}

#[test]
fn qft_transpiled_bitwise_equal_aos() {
    for ranks in [1usize, 2, 4, 8] {
        check_equivalence::<AosStorage>(&qft(9), ranks, Bar::Bitwise, &format!("qft aos R={ranks}"));
    }
}

#[test]
fn random_circuits_transpiled_close_soa() {
    for ranks in [1usize, 2, 4, 8] {
        for seed in 0..3 {
            let c = random_circuit(8, 60, GatePool::Full, seed);
            check_equivalence::<SoaStorage>(&c, ranks, Bar::Close, &format!("seed {seed} soa R={ranks}"));
        }
    }
}

#[test]
fn random_circuits_transpiled_close_aos() {
    for ranks in [1usize, 2, 4, 8] {
        for seed in 3..5 {
            let c = random_circuit(8, 60, GatePool::Full, seed);
            check_equivalence::<AosStorage>(&c, ranks, Bar::Close, &format!("seed {seed} aos R={ranks}"));
        }
    }
}

#[test]
fn qft_like_random_circuits_transpiled_bitwise_equal() {
    // The QftLike pool is diagonal-heavy — the transpiler's best case,
    // where most offenders are phase gates it can leave in place.
    for ranks in [4usize, 8] {
        for seed in 10..12 {
            let c = random_circuit(8, 60, GatePool::QftLike, seed);
            check_equivalence::<SoaStorage>(&c, ranks, Bar::Bitwise, &format!("qftlike {seed} R={ranks}"));
        }
    }
}

/// The acceptance regression: on QFT n=20 at R=4, the comm-avoiding pass
/// must cut measured exchange payload by at least 25 % — for both search
/// strategies — while reproducing the state exactly.
#[test]
fn qft_n20_r4_exchanged_bytes_drop_at_least_25_percent() {
    let n = 20u32;
    let ranks = 4usize;
    let circuit = qft(n);
    let layout = Layout::new(n, ranks as u64);
    let (want, plain_bytes) = run_plain::<SoaStorage>(&circuit, ranks, config(ExchangeMode::Blocking));
    assert!(plain_bytes > 0, "baseline exchanged nothing");
    for (name, strategy) in [("greedy", Strategy::Greedy), ("beam", Strategy::beam())] {
        let plan = comm_avoid(&circuit, &layout, strategy, &ByteOracle).with_layout_restored();
        let (got, plan_bytes) = run_plan::<SoaStorage>(&plan, ranks, config(ExchangeMode::Blocking));
        assert_bits_equal(&got, &want, name);
        assert!(
            plan_bytes * 4 <= plain_bytes * 3,
            "{name}: {plan_bytes} bytes is not a ≥25 % drop from {plain_bytes}"
        );
    }
}
