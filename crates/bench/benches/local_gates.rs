//! Local gate kernel cost vs target qubit index.
//!
//! The laptop-scale analogue of Table 1's local rows: per-gate cost of a
//! Hadamard sweep as the target qubit rises through the register. On real
//! hardware the cost is flat until the stride leaves the cache/NUMA
//! domain — the same effect the paper measures at qubits 30–31.

use qse_circuit::Gate;
use qse_statevec::SingleState;
use qse_util::bench::BenchGroup;
use std::hint::black_box;

const N_QUBITS: u32 = 20; // 1M amplitudes, 16 MB — well past cache.

fn bench_hadamard_by_qubit() {
    let mut group = BenchGroup::new("local_hadamard_by_qubit");
    let bytes = 32u64 << N_QUBITS; // read + write per sweep
    group.throughput_bytes(bytes);
    for q in [0u32, 4, 8, 12, 16, 18, 19] {
        let mut state: SingleState = SingleState::zero_state(N_QUBITS);
        group.bench(q.to_string(), || {
            state.apply(black_box(&Gate::H(q)));
        });
    }
    group.finish();
}

fn bench_gate_kinds() {
    let mut group = BenchGroup::new("local_gate_kinds");
    let gates = [
        ("hadamard", Gate::H(5)),
        ("pauli_x", Gate::X(5)),
        ("diagonal_z", Gate::Z(5)),
        (
            "cphase",
            Gate::CPhase {
                a: 3,
                b: 5,
                theta: 0.25,
            },
        ),
        ("cnot", Gate::CNot { control: 3, target: 5 }),
        ("swap", Gate::Swap(2, 9)),
    ];
    for (name, gate) in gates {
        let mut state: SingleState = SingleState::zero_state(N_QUBITS);
        group.bench(name, || {
            state.apply(black_box(&gate));
        });
    }
    group.finish();
}

fn main() {
    bench_hadamard_by_qubit();
    bench_gate_kinds();
}
