//! Criterion: SoA (QuEST's separate real/imaginary arrays) vs AoS
//! (interleaved complex) storage — the paper's §4 future-work question
//! about data locality, answered empirically.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qse_circuit::qft::qft;
use qse_circuit::Gate;
use qse_statevec::storage::{AosStorage, SoaStorage};
use qse_statevec::SingleState;
use std::hint::black_box;

const N_QUBITS: u32 = 20;

fn bench_sweep_by_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_hadamard_sweep");
    group.throughput(Throughput::Bytes(32u64 << N_QUBITS));
    group.bench_function("soa", |b| {
        let mut s: SingleState<SoaStorage> = SingleState::zero_state(N_QUBITS);
        b.iter(|| s.apply(black_box(&Gate::H(10))));
    });
    group.bench_function("aos", |b| {
        let mut s: SingleState<AosStorage> = SingleState::zero_state(N_QUBITS);
        b.iter(|| s.apply(black_box(&Gate::H(10))));
    });
    group.finish();
}

fn bench_qft_by_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_qft_16q");
    group.sample_size(10);
    let circuit = qft(16);
    group.bench_function("soa", |b| {
        b.iter(|| {
            let mut s: SingleState<SoaStorage> = SingleState::zero_state(16);
            s.run(black_box(&circuit));
            black_box(s.norm_sqr())
        });
    });
    group.bench_function("aos", |b| {
        b.iter(|| {
            let mut s: SingleState<AosStorage> = SingleState::zero_state(16);
            s.run(black_box(&circuit));
            black_box(s.norm_sqr())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_by_layout, bench_qft_by_layout);
criterion_main!(benches);
