//! SoA (QuEST's separate real/imaginary arrays) vs AoS (interleaved
//! complex) storage — the paper's §4 future-work question about data
//! locality, answered empirically.

use qse_circuit::qft::qft;
use qse_circuit::Gate;
use qse_statevec::storage::{AosStorage, SoaStorage};
use qse_statevec::SingleState;
use qse_util::bench::BenchGroup;
use std::hint::black_box;

const N_QUBITS: u32 = 20;

fn bench_sweep_by_layout() {
    let mut group = BenchGroup::new("layout_hadamard_sweep");
    group.throughput_bytes(32u64 << N_QUBITS);
    let mut soa: SingleState<SoaStorage> = SingleState::zero_state(N_QUBITS);
    group.bench("soa", || {
        soa.apply(black_box(&Gate::H(10)));
    });
    let mut aos: SingleState<AosStorage> = SingleState::zero_state(N_QUBITS);
    group.bench("aos", || {
        aos.apply(black_box(&Gate::H(10)));
    });
    group.finish();
}

fn bench_qft_by_layout() {
    let mut group = BenchGroup::new("layout_qft_16q");
    group.sample_size(10);
    let circuit = qft(16);
    group.bench("soa", || {
        let mut s: SingleState<SoaStorage> = SingleState::zero_state(16);
        s.run(black_box(&circuit));
        black_box(s.norm_sqr());
    });
    group.bench("aos", || {
        let mut s: SingleState<AosStorage> = SingleState::zero_state(16);
        s.run(black_box(&circuit));
        black_box(s.norm_sqr());
    });
    group.finish();
}

fn main() {
    bench_sweep_by_layout();
    bench_qft_by_layout();
}
