//! Cost of the transformations themselves — the QFT SWAP shift, the
//! general cache-blocking pass, and diagonal-run segmentation.
//! Transpilation must stay negligible next to simulation for the paper's
//! optimisation to be free.

use qse_circuit::qft::{cache_blocked_qft, qft};
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::transpile::cache_blocking::cache_block;
use qse_circuit::transpile::fusion::diagonal_runs;
use qse_util::bench::BenchGroup;
use std::hint::black_box;

fn bench_qft_construction() {
    let mut group = BenchGroup::new("qft_builders");
    for n in [16u32, 32, 44] {
        group.bench(format!("standard/{n}"), || {
            black_box(qft(n));
        });
        group.bench(format!("cache_blocked/{n}"), || {
            black_box(cache_blocked_qft(n, n - 8));
        });
    }
    group.finish();
}

fn bench_general_pass() {
    let mut group = BenchGroup::new("cache_blocking_pass");
    for gates in [100usize, 1000, 10_000] {
        let circuit = random_circuit(32, gates, GatePool::Full, 7);
        group.bench(gates.to_string(), || {
            black_box(cache_block(&circuit, 24));
        });
    }
    group.finish();
}

fn bench_fusion_segmentation() {
    let mut group = BenchGroup::new("transpile_fusion");
    let circuit = qft(44);
    group.bench("diagonal_runs_qft44", || {
        black_box(diagonal_runs(&circuit, 2));
    });
    group.finish();
}

fn main() {
    bench_qft_construction();
    bench_general_pass();
    bench_fusion_segmentation();
}
