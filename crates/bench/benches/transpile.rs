//! Criterion: cost of the transformations themselves — the QFT SWAP
//! shift, the general cache-blocking pass, and diagonal-run segmentation.
//! Transpilation must stay negligible next to simulation for the paper's
//! optimisation to be free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qse_circuit::qft::{cache_blocked_qft, qft};
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::transpile::cache_blocking::cache_block;
use qse_circuit::transpile::fusion::diagonal_runs;
use std::hint::black_box;

fn bench_qft_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("qft_builders");
    for n in [16u32, 32, 44] {
        group.bench_with_input(BenchmarkId::new("standard", n), &n, |b, &n| {
            b.iter(|| black_box(qft(n)))
        });
        group.bench_with_input(BenchmarkId::new("cache_blocked", n), &n, |b, &n| {
            b.iter(|| black_box(cache_blocked_qft(n, n - 8)))
        });
    }
    group.finish();
}

fn bench_general_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_blocking_pass");
    for gates in [100usize, 1000, 10_000] {
        let circuit = random_circuit(32, gates, GatePool::Full, 7);
        group.bench_with_input(BenchmarkId::from_parameter(gates), &circuit, |b, c| {
            b.iter(|| black_box(cache_block(c, 24)))
        });
    }
    group.finish();
}

fn bench_fusion_segmentation(c: &mut Criterion) {
    let circuit = qft(44);
    c.bench_function("diagonal_runs_qft44", |b| {
        b.iter(|| black_box(diagonal_runs(&circuit, 2)))
    });
}

criterion_group!(
    benches,
    bench_qft_construction,
    bench_general_pass,
    bench_fusion_segmentation
);
criterion_main!(benches);
