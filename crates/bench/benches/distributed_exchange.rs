//! Blocking vs non-blocking vs streamed chunked exchange, and full vs
//! half-exchange SWAPs, on the thread cluster.
//!
//! The laptop-scale analogue of Table 1's distributed row and fig 4: the
//! same communication structures the paper optimises, measured for real
//! over thread-rank message passing.

use qse_circuit::benchmarks::{hadamard_benchmark, swap_benchmark};
use qse_core::{SimConfig, ThreadClusterExecutor};
use qse_util::bench::BenchGroup;
use std::hint::black_box;

const N_QUBITS: u32 = 18; // 256k amplitudes over 4 ranks
const RANKS: u64 = 4;
const GATES: usize = 4;

fn bench_exchange_modes() {
    let mut group = BenchGroup::new("distributed_hadamard");
    let local_bytes = 16u64 << (N_QUBITS - 2); // per-rank slice
    group
        .throughput_bytes(local_bytes * GATES as u64)
        .sample_size(10);
    let circuit = hadamard_benchmark(N_QUBITS, N_QUBITS - 1, GATES);
    for (name, non_blocking, streamed) in [
        ("blocking", false, false),
        ("non_blocking", true, false),
        ("streamed", false, true),
    ] {
        let mut cfg = SimConfig::default_for(RANKS);
        cfg.non_blocking = non_blocking;
        cfg.streamed = streamed;
        cfg.max_message_bytes = 64 * 1024; // force multi-chunk
        group.bench(name, || {
            black_box(ThreadClusterExecutor::run(&circuit, &cfg, 0, false));
        });
    }
    group.finish();
}

fn bench_swap_exchange() {
    let mut group = BenchGroup::new("distributed_swap");
    group.sample_size(10);
    let circuit = swap_benchmark(N_QUBITS, 2, N_QUBITS - 1, GATES);
    for (name, half) in [("full_exchange", false), ("half_exchange", true)] {
        let mut cfg = SimConfig::fast_for(RANKS);
        cfg.half_exchange_swaps = half;
        group.bench(name, || {
            black_box(ThreadClusterExecutor::run(&circuit, &cfg, 0, false));
        });
    }
    group.finish();
}

fn main() {
    bench_exchange_modes();
    bench_swap_exchange();
}
