//! Criterion: built-in vs cache-blocked QFT end to end on the thread
//! cluster — the laptop-scale Table 2.
//!
//! The cache-blocked variant halves the number of distributed gates, so
//! its advantage grows with the cost of an exchange. Fusion of the
//! controlled-phase blocks is benchmarked as the third variant.

use criterion::{criterion_group, criterion_main, Criterion};
use qse_circuit::qft::{cache_blocked_qft, default_split, qft};
use qse_core::{SimConfig, ThreadClusterExecutor};
use std::hint::black_box;

const N_QUBITS: u32 = 16;
const RANKS: u64 = 4;

fn bench_qft_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("qft_end_to_end_16q_4ranks");
    group.sample_size(10);
    let local = N_QUBITS - 2;
    let built_in = qft(N_QUBITS);
    let blocked = cache_blocked_qft(N_QUBITS, default_split(N_QUBITS, local));

    group.bench_function("built_in_blocking", |b| {
        let cfg = SimConfig::default_for(RANKS);
        b.iter(|| black_box(ThreadClusterExecutor::run(&built_in, &cfg, 0, false)));
    });
    group.bench_function("built_in_nonblocking", |b| {
        let cfg = SimConfig::fast_for(RANKS);
        b.iter(|| black_box(ThreadClusterExecutor::run(&built_in, &cfg, 0, false)));
    });
    group.bench_function("cache_blocked_fast", |b| {
        let cfg = SimConfig::fast_for(RANKS);
        b.iter(|| black_box(ThreadClusterExecutor::run(&blocked, &cfg, 0, false)));
    });
    group.bench_function("cache_blocked_fast_fused", |b| {
        let mut cfg = SimConfig::fast_for(RANKS);
        cfg.fuse_diagonals = Some(4);
        b.iter(|| black_box(ThreadClusterExecutor::run(&blocked, &cfg, 0, false)));
    });
    group.finish();
}

criterion_group!(benches, bench_qft_variants);
criterion_main!(benches);
