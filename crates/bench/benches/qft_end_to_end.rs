//! Built-in vs cache-blocked QFT end to end on the thread cluster — the
//! laptop-scale Table 2.
//!
//! The cache-blocked variant halves the number of distributed gates, so
//! its advantage grows with the cost of an exchange. Fusion of the
//! controlled-phase blocks is benchmarked as the third variant.

use qse_circuit::qft::{cache_blocked_qft, default_split, qft};
use qse_core::{SimConfig, ThreadClusterExecutor};
use qse_util::bench::BenchGroup;
use std::hint::black_box;

const N_QUBITS: u32 = 16;
const RANKS: u64 = 4;

fn bench_qft_variants() {
    let mut group = BenchGroup::new("qft_end_to_end_16q_4ranks");
    group.sample_size(10);
    let local = N_QUBITS - 2;
    let built_in = qft(N_QUBITS);
    let blocked = cache_blocked_qft(N_QUBITS, default_split(N_QUBITS, local));

    let cfg = SimConfig::default_for(RANKS);
    group.bench("built_in_blocking", || {
        black_box(ThreadClusterExecutor::run(&built_in, &cfg, 0, false));
    });
    let cfg = SimConfig::fast_for(RANKS);
    group.bench("built_in_nonblocking", || {
        black_box(ThreadClusterExecutor::run(&built_in, &cfg, 0, false));
    });
    group.bench("cache_blocked_fast", || {
        black_box(ThreadClusterExecutor::run(&blocked, &cfg, 0, false));
    });
    let mut cfg = SimConfig::fast_for(RANKS);
    cfg.fuse_diagonals = Some(4);
    group.bench("cache_blocked_fast_fused", || {
        black_box(ThreadClusterExecutor::run(&blocked, &cfg, 0, false));
    });
    group.finish();
}

fn main() {
    bench_qft_variants();
}
