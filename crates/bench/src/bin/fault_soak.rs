//! Fault-injection soak: N seeded fault plans over the 16-qubit QFT at
//! R = 4.
//!
//! Three out of every four plans are recoverable by construction and
//! must complete **bit-for-bit identical** to the fault-free run; every
//! fourth plan is unrecoverable (permanent corruption or exhausted
//! retries) and must surface a **typed** `CommError` — never a hang,
//! never a panic. Exchange modes rotate per plan so all three transports
//! soak equally.
//!
//! Every plan's seed is printed *before* it runs, so whatever goes wrong
//! — mismatch, unexpected error, even a crash — the seed needed for a
//! deterministic replay (`qse run --qubits 16 --ranks 4 --faults
//! seed=N`) is already on the terminal. Any failure exits nonzero.
//!
//! Usage: `fault_soak [n_plans] [base_seed]` (defaults: 10 plans,
//! seeds from 1000).

use qse_circuit::qft::qft;
use qse_core::{SimConfig, ThreadClusterExecutor};
use qse_math::Complex64;

const QUBITS: u32 = 16;
const RANKS: u64 = 4;

const MODES: [(&str, bool, bool); 3] = [
    ("blocking", false, false),
    ("non-blocking", true, false),
    ("streamed", false, true),
];

fn config(mode: usize) -> SimConfig {
    let (_, non_blocking, streamed) = MODES[mode];
    let mut cfg = SimConfig::default_for(RANKS);
    cfg.non_blocking = non_blocking;
    cfg.streamed = streamed;
    cfg
}

/// First amplitude index where the two states differ in bit pattern.
fn first_bit_mismatch(a: &[Complex64], b: &[Complex64]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(usize::MAX);
    }
    a.iter().zip(b).position(|(x, y)| {
        x.re.to_bits() != y.re.to_bits() || x.im.to_bits() != y.im.to_bits()
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_plans: u64 = args
        .next()
        .map(|a| a.parse().expect("n_plans must be an integer"))
        .unwrap_or(10);
    let base_seed: u64 = args
        .next()
        .map(|a| a.parse().expect("base_seed must be an integer"))
        .unwrap_or(1000);

    let circuit = qft(QUBITS);
    println!(
        "fault soak: {n_plans} plans (seeds {base_seed}..{}) over qft({QUBITS}) at R={RANKS}",
        base_seed + n_plans
    );

    // One fault-free baseline per exchange mode (they are bit-identical
    // to each other, but comparing like against like keeps the check
    // self-contained).
    let baselines: Vec<Vec<Complex64>> = (0..MODES.len())
        .map(|m| {
            ThreadClusterExecutor::try_run(&circuit, &config(m), 0, true)
                .expect("fault-free baseline run failed")
                .state
                .expect("baseline gather")
        })
        .collect();

    let mut failures: Vec<(u64, String)> = Vec::new();
    for i in 0..n_plans {
        let seed = base_seed + i;
        let mode = (i % 3) as usize;
        let recoverable = i % 4 != 3;
        let plan = if recoverable {
            qse_comm::FaultConfig::recoverable(seed)
        } else if seed % 2 == 0 {
            qse_comm::FaultConfig::permanent_corruption(seed)
        } else {
            qse_comm::FaultConfig::exhausted_retries(seed)
        };
        println!(
            "plan seed={seed} mode={} {} ...",
            MODES[mode].0,
            if recoverable { "recoverable" } else { "unrecoverable" },
        );
        let mut cfg = config(mode);
        cfg.faults = Some(plan);
        match ThreadClusterExecutor::try_run(&circuit, &cfg, 0, true) {
            Ok(run) if recoverable => {
                let state = run.state.expect("gather");
                match first_bit_mismatch(&state, &baselines[mode]) {
                    None => println!(
                        "  ok: bit-identical ({} faults injected, {} retries, {} corruptions healed)",
                        run.profiled.faults_injected,
                        run.profiled.retries,
                        run.profiled.corruptions_detected,
                    ),
                    Some(at) => failures.push((
                        seed,
                        format!("state diverged from fault-free run at amplitude {at}"),
                    )),
                }
            }
            Ok(_) => failures.push((
                seed,
                "unrecoverable plan completed instead of surfacing an error".into(),
            )),
            Err(e) if recoverable => {
                failures.push((seed, format!("recoverable plan errored: {e}")))
            }
            Err(e) => println!("  ok: typed error as required ({e})"),
        }
    }

    if failures.is_empty() {
        println!("fault soak passed: {n_plans}/{n_plans} plans behaved");
        return;
    }
    for (seed, why) in &failures {
        eprintln!("FAILED seed={seed}: {why}");
        eprintln!("  replay: qse run --qubits {QUBITS} --ranks {RANKS} --faults seed={seed}");
    }
    std::process::exit(1);
}
