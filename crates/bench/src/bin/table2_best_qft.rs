//! Table 2 — runtime and energy of the large QFT runs: built-in vs the
//! "Fast" configuration (cache-blocked circuit + non-blocking exchange).
//!
//! Paper values: 43 qubits / 2,048 nodes: 417 s / 294 MJ built-in vs
//! 270 s / 206 MJ fast; 44 qubits / 4,096 nodes: 476 s / 664 MJ vs
//! 285 s / 431 MJ — "35 % and 40 % improvements in runtime, along with
//! 30 % and 35 % reductions in energy" (§3.3).

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::qft::{cache_blocked_qft, default_split, qft};
use qse_core::experiment::TextTable;
use qse_core::scaling::nodes_for;
use qse_core::SimConfig;
use qse_machine::archer2;
use qse_machine::energy::{format_energy, joules_to_kwh};
use qse_machine::NodeKind;

fn main() {
    let machine = archer2();
    let mut table = TextTable::new(vec![
        "Qubits", "Nodes", "Variant", "Runtime", "Energy", "CU",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    for n in [43u32, 44] {
        let nodes = nodes_for(&machine, NodeKind::Standard, n).expect("fits");
        let layout_local = n - (nodes.trailing_zeros());
        let built_in = model_point(
            &machine,
            format!("built-in-{n}"),
            &qft(n),
            &SimConfig::default_for(nodes),
        );
        let fast = model_point(
            &machine,
            format!("fast-{n}"),
            &cache_blocked_qft(n, default_split(n, layout_local)),
            &SimConfig::fast_for(nodes),
        );
        for (variant, p) in [("built-in", &built_in), ("fast", &fast)] {
            table.row(vec![
                n.to_string(),
                nodes.to_string(),
                variant.to_string(),
                format!("{:.0} s", p.runtime_s),
                format_energy(p.energy_j),
                format!("{:.0}", p.cu),
            ]);
        }
        let dt = 1.0 - fast.runtime_s / built_in.runtime_s;
        let de = 1.0 - fast.energy_j / built_in.energy_j;
        println!(
            "{n} qubits: fast is {:.0} % faster, {:.0} % less energy ({} saved ≈ {:.0} kWh)",
            dt * 100.0,
            de * 100.0,
            format_energy(built_in.energy_j - fast.energy_j),
            joules_to_kwh(built_in.energy_j - fast.energy_j),
        );
        points.push(built_in);
        points.push(fast);
    }

    println!("\nTable 2 — large QFT runs, built-in vs fast (modelled ARCHER2)");
    println!("{}", table.render());
    println!("Paper: 417/270 s and 294/206 MJ at 43 q; 476/285 s and 664/431 MJ at 44 q.");
    save_points("table2_best_qft", &points);
}
