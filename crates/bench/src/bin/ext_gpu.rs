//! Extension B (paper §4, future work) — the multi-GPU port, as a model
//! study.
//!
//! "Finally, we will explore the impact on performance and energy usage
//! of porting QuEST to multiple GPUs." The GPU machine preset
//! (`qse_machine::variants::gpu_machine`) models A100-class nodes on the
//! same switch fabric; this binary compares the 34–38-qubit QFT across
//! CPU and GPU machines, with and without cache blocking.

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::qft::{cache_blocked_qft, default_split, qft};
use qse_core::experiment::TextTable;
use qse_core::SimConfig;
use qse_machine::archer2;
use qse_machine::energy::format_energy;
use qse_machine::memory::{min_nodes, BufferRegime};
use qse_machine::variants::gpu_machine;
use qse_machine::NodeKind;

fn main() {
    let cpu = archer2();
    let gpu = gpu_machine();
    let mut table = TextTable::new(vec![
        "Qubits", "Machine", "Nodes", "Variant", "Runtime", "Energy", "MPI %",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    for n in [34u32, 36, 38] {
        for (name, machine) in [("cpu", &cpu), ("gpu", &gpu)] {
            let Some(nodes) = min_nodes(n, machine.node(NodeKind::Standard), BufferRegime::Full)
            else {
                continue;
            };
            let local = n - nodes.trailing_zeros();
            for (variant, circuit, cfg) in [
                ("built-in", qft(n), SimConfig::default_for(nodes)),
                (
                    "fast",
                    cache_blocked_qft(n, default_split(n, local)),
                    SimConfig::fast_for(nodes),
                ),
            ] {
                let p = model_point(machine, format!("{name}-{variant}-{n}"), &circuit, &cfg);
                table.row(vec![
                    n.to_string(),
                    name.to_string(),
                    nodes.to_string(),
                    variant.to_string(),
                    format!("{:.1} s", p.runtime_s),
                    format_energy(p.energy_j),
                    format!("{:.0} %", p.comm_fraction * 100.0),
                ]);
                points.push(p);
            }
        }
    }

    println!("Extension B — GPU-node machine model (paper §4 future work)");
    println!("{}", table.render());
    println!("Check: GPU nodes are several times faster but communication-dominated");
    println!("(MPI share rises sharply), so cache blocking buys proportionally more —");
    println!("the regime shift Faj et al. (paper ref [4]) report for multi-GPU runs.");
    save_points("ext_gpu", &points);
}
