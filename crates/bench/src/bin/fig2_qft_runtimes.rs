//! Figure 2 — runtimes of QFT circuit simulations by register size.
//!
//! "We ran a QFT circuit at register sizes from 33 to 44 qubits, using
//! the minimum possible number of nodes to fit the statevector" (§3),
//! across four setups: standard/high-memory nodes × medium/high CPU
//! frequency. Expected shape (paper §3.1): runtimes scale linearly with
//! register size (distributed gates rise linearly even though total
//! gates rise quadratically); high-memory nodes are slower but less than
//! twice as slow; high frequency is 5–10 % faster.

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::qft::qft;
use qse_core::experiment::{fmt_seconds, TextTable};
use qse_core::scaling::nodes_for;
use qse_core::SimConfig;
use qse_machine::{archer2, CpuFrequency, NodeKind};

fn main() {
    let machine = archer2();
    let setups = [
        ("standard-medium", NodeKind::Standard, CpuFrequency::Medium),
        ("standard-high", NodeKind::Standard, CpuFrequency::High),
        ("highmem-medium", NodeKind::HighMem, CpuFrequency::Medium),
        ("highmem-high", NodeKind::HighMem, CpuFrequency::High),
    ];

    let mut table = TextTable::new(vec![
        "Qubits", "Nodes(std)", "std-med", "std-high", "Nodes(hm)", "hm-med", "hm-high",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    for n in 33..=44u32 {
        let circuit = qft(n);
        let mut cells = vec![n.to_string()];
        for kind in [NodeKind::Standard, NodeKind::HighMem] {
            match nodes_for(&machine, kind, n) {
                Some(nodes) => {
                    cells.push(nodes.to_string());
                    for (label, k, freq) in setups.iter().filter(|(_, k, _)| *k == kind) {
                        let mut cfg = SimConfig::default_for(nodes);
                        cfg.node_kind = *k;
                        cfg.frequency = *freq;
                        let p = model_point(&machine, *label, &circuit, &cfg);
                        cells.push(fmt_seconds(p.runtime_s));
                        points.push(p);
                    }
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        table.row(cells);
    }

    println!("Figure 2 — QFT runtime by register size (modelled ARCHER2)");
    println!("{}", table.render());
    println!("Check: multi-node runtimes grow linearly with register size (node count");
    println!("doubles per qubit, so per-node work is flat and distributed gates +2);");
    println!("high-memory < 2x slower than standard at equal qubits; the 33-qubit");
    println!("standard and 34-qubit high-memory points are single-node runs.");
    save_points("fig2_qft_runtimes", &points);
}
