//! Measured ablation — the comm-avoiding transpiler.
//!
//! Runs QFT and seeded random circuits through the thread cluster at
//! R ∈ {4, 8} with the transpiler off, greedy and beam, recording for
//! each configuration the measured amplitude payload exchanged
//! (`TrafficStats.bytes_exchanged` summed over ranks) and the
//! end-to-end wall-clock. The pass must never increase traffic, and on
//! QFT at n = 20 / R = 4 it must cut it by at least 25 % — the run
//! aborts loudly if either invariant fails, so a stale
//! `results/bench_comm_avoid.json` can't hide a regression.

use qse_circuit::qft::qft;
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::Circuit;
use qse_core::{SimConfig, ThreadClusterExecutor, TranspileMode};
use qse_util::bench::BenchGroup;
use qse_util::json::{Json, ToJson};
use std::hint::black_box;

const RANKS: [u64; 2] = [4, 8];
const MODES: [(&str, TranspileMode); 3] = [
    ("off", TranspileMode::Off),
    ("greedy", TranspileMode::Greedy),
    ("beam", TranspileMode::Beam),
];

fn config(ranks: u64, transpile: TranspileMode) -> SimConfig {
    let mut cfg = SimConfig::default_for(ranks);
    cfg.transpile = transpile;
    cfg
}

fn circuits(n: u32) -> Vec<(String, Circuit)> {
    vec![
        (format!("qft{n}"), qft(n)),
        (
            format!("random{n}"),
            random_circuit(n, 10 * n as usize, GatePool::Full, 7),
        ),
    ]
}

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("qubit count"))
        .unwrap_or(20);

    let mut group = BenchGroup::new("comm_avoid");
    group.sample_size(5);

    // (circuit, ranks, mode, bytes_exchanged, drop %, gate count) per
    // bench call, in call order — zipped with the measurements after
    // `finish()`.
    let mut meta: Vec<(String, u64, &str, u64, f64, u64)> = Vec::new();
    for (name, circuit) in circuits(n) {
        for ranks in RANKS {
            let mut baseline = None;
            for (mode_name, mode) in MODES {
                let cfg = config(ranks, mode);
                group.bench(format!("{name}_r{ranks}_{mode_name}"), || {
                    black_box(ThreadClusterExecutor::run(&circuit, &cfg, 0, false));
                });
                let profiled = ThreadClusterExecutor::run(&circuit, &cfg, 0, false).profiled;
                let bytes = profiled.bytes_exchanged;
                let off_bytes = *baseline.get_or_insert(bytes);
                assert!(
                    bytes <= off_bytes,
                    "{name} r{ranks} {mode_name}: transpile increased traffic \
                     ({bytes} > {off_bytes})"
                );
                let drop_pct = if off_bytes == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - bytes as f64 / off_bytes as f64)
                };
                if name.starts_with("qft") && n == 20 && ranks == 4 && mode != TranspileMode::Off {
                    assert!(
                        drop_pct >= 25.0,
                        "{mode_name} dropped only {drop_pct:.1} % on qft20 r4"
                    );
                }
                meta.push((
                    name.clone(),
                    ranks,
                    mode_name,
                    bytes,
                    drop_pct,
                    profiled.gate_count as u64,
                ));
            }
        }
    }

    let results = group.finish();
    let mut rows: Vec<Json> = Vec::new();
    for ((name, ranks, mode_name, bytes, drop_pct, gates), m) in meta.into_iter().zip(&results) {
        println!(
            "{name} r{ranks} {mode_name}: {bytes} exchanged bytes \
             ({drop_pct:.1} % below off), {:.1} ms best of {}",
            m.min_s * 1e3,
            m.samples,
        );
        rows.push(Json::object([
            ("circuit", name.to_json()),
            ("n_qubits", (n as u64).to_json()),
            ("ranks", ranks.to_json()),
            ("transpile", mode_name.to_json()),
            ("bytes_exchanged", bytes.to_json()),
            ("drop_vs_off_pct", drop_pct.to_json()),
            ("min_s", m.min_s.to_json()),
            ("gate_count", gates.to_json()),
        ]));
    }

    let dir = std::env::var_os("QSE_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "results".into());
    let doc = Json::object([
        ("group", "comm_avoid".to_json()),
        ("results", results.to_json()),
        ("traffic", Json::Arr(rows)),
    ]);
    let path = dir.join("bench_comm_avoid.json");
    if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, doc.pretty()).is_ok() {
        println!("[saved {}]", path.display());
    }
}
