//! Extension A (paper §4, future work) — the half-exchange SWAP.
//!
//! "If SWAP gates are the only distributed operations, communication
//! could potentially be halved, as swapping only modifies half of the
//! statevector. With this improvement, ARCHER2 could possibly simulate
//! up to 45 qubits."
//!
//! This binary demonstrates both halves of the claim on the model:
//! (1) the communication halving on the cache-blocked 44-qubit QFT, and
//! (2) the capacity win — 45 qubits fitting on 4,096 standard nodes once
//! the exchange buffer shrinks to half the local slice.

use qse_bench::{save_points, ModelPoint};
use qse_circuit::qft::{cache_blocked_qft, default_split};
use qse_core::experiment::TextTable;
use qse_core::scaling::{nodes_for, nodes_for_half_buffers};
use qse_core::SimConfig;
use qse_machine::archer2;
use qse_machine::energy::format_energy;
use qse_machine::NodeKind;

fn main() {
    let machine = archer2();
    let mut table = TextTable::new(vec![
        "Qubits", "Nodes", "Variant", "Runtime", "Energy", "Comm bytes/rank",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    // (1) Communication halving at 44 qubits.
    let n = 44u32;
    let nodes = nodes_for(&machine, NodeKind::Standard, n).expect("44 fits");
    let local = n - nodes.trailing_zeros();
    let circuit = cache_blocked_qft(n, default_split(n, local));
    for (variant, half) in [("fast (full exchange)", false), ("fast + half exchange", true)] {
        let mut cfg = SimConfig::fast_for(nodes);
        cfg.half_exchange_swaps = half;
        let est = qse_core::ModelExecutor::new(&machine).run(&circuit, &cfg);
        table.row(vec![
            n.to_string(),
            nodes.to_string(),
            variant.to_string(),
            format!("{:.0} s", est.runtime_s),
            format_energy(est.total_energy_j()),
            format!("{:.1} GB", est.breakdown.comm_bytes as f64 / 1e9),
        ]);
        points.push(ModelPoint::from_estimate(variant, &est));
    }

    // (2) Capacity: 45 qubits only fit with half buffers.
    println!("Extension A — half-exchange SWAPs (paper §4 future work)\n");
    println!(
        "45-qubit fit, full buffers: {:?}",
        nodes_for(&machine, NodeKind::Standard, 45)
    );
    println!(
        "45-qubit fit, half buffers: {:?}",
        nodes_for_half_buffers(&machine, NodeKind::Standard, 45)
    );

    let n45 = 45u32;
    if let Some(nodes45) = nodes_for_half_buffers(&machine, NodeKind::Standard, n45) {
        let local45 = n45 - nodes45.trailing_zeros();
        let c45 = cache_blocked_qft(n45, default_split(n45, local45));
        let mut cfg = SimConfig::fast_for(nodes45);
        cfg.half_exchange_swaps = true;
        let est = qse_core::ModelExecutor::new(&machine).run(&c45, &cfg);
        table.row(vec![
            n45.to_string(),
            nodes45.to_string(),
            "fast + half exchange".into(),
            format!("{:.0} s", est.runtime_s),
            format_energy(est.total_energy_j()),
            format!("{:.1} GB", est.breakdown.comm_bytes as f64 / 1e9),
        ]);
        points.push(ModelPoint::from_estimate("45q-half-exchange", &est));
    }

    println!("\n{}", table.render());
    println!("Check: comm bytes halve at 44 q; 45 q becomes feasible on 4,096 nodes.");
    save_points("ext_45_qubits", &points);
}
