//! Measured ablation — the streamed chunk-pipelined exchange.
//!
//! Runs the same QFT through the thread cluster in all three exchange
//! modes and measures end-to-end wall-clock on this host:
//!
//! * blocking — QuEST's chunked `sendrecv` lockstep (§2.1);
//! * non-blocking — the paper's rewrite: post everything, `wait_all`,
//!   then combine the fully assembled half (§3.2);
//! * streamed — this repository's pipeline: combine each chunk the
//!   moment it completes, while later chunks are still in flight.
//!
//! Streamed removes the serial combine tail and the full-half
//! staging/decoding passes, so it should beat non-blocking wall-clock
//! while holding only ring-depth × chunk-size of exchange scratch —
//! both quantities are recorded in the output JSON
//! (`results/bench_exchange_overlap.json`) alongside the medians and
//! speedups.

use qse_circuit::qft::qft;
use qse_core::{SimConfig, ThreadClusterExecutor};
use qse_util::bench::BenchGroup;
use qse_util::json::{Json, ToJson};
use std::hint::black_box;

const RANKS: u64 = 4;
/// Small enough to give the pipeline ≥ 8 chunks per exchange at the
/// default widths, large enough that each chunk's combine (32 Kamps)
/// still crosses the kernels' parallel threshold.
const CHUNK_BYTES: usize = 512 * 1024;

fn config(non_blocking: bool, streamed: bool) -> SimConfig {
    let mut cfg = SimConfig::default_for(RANKS);
    cfg.non_blocking = non_blocking;
    cfg.streamed = streamed;
    cfg.max_message_bytes = CHUNK_BYTES;
    cfg
}

fn main() {
    let widths: Vec<u32> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("qubit count"))
        .collect();
    let widths = if widths.is_empty() {
        vec![20, 22]
    } else {
        widths
    };

    let mut group = BenchGroup::new("exchange_overlap");
    group.sample_size(7);
    let modes = [
        ("blocking", config(false, false)),
        ("non_blocking", config(true, false)),
        ("streamed", config(false, true)),
    ];

    for &n in &widths {
        let circuit = qft(n);
        for (name, cfg) in &modes {
            group.bench(format!("qft{n}_{name}"), || {
                black_box(ThreadClusterExecutor::run(&circuit, cfg, 0, false));
            });
        }
    }

    let results = group.finish();
    let mut rows: Vec<Json> = Vec::new();
    for (i, &n) in widths.iter().enumerate() {
        let blocking = &results[3 * i];
        let non_blocking = &results[3 * i + 1];
        let streamed = &results[3 * i + 2];
        // Speedups compare best-of-N, not medians: background load on a
        // shared host only ever *adds* time, and each config's samples
        // run consecutively, so load drift biases whole configs. The
        // minimum is the least-contended observation of each mode.
        let vs_blocking = blocking.min_s / streamed.min_s;
        let vs_non_blocking = non_blocking.min_s / streamed.min_s;
        // One profiled run for the chunk/scratch accounting the speedup
        // is paying for.
        let profiled =
            ThreadClusterExecutor::run(&qft(n), &config(false, true), 0, false).profiled;
        println!(
            "qft{n}: blocking {:.1} ms, non_blocking {:.1} ms, streamed {:.1} ms (best of {}) \
             -> {vs_non_blocking:.2}x vs non-blocking ({vs_blocking:.2}x vs blocking); \
             {} chunks, peak scratch {} B",
            blocking.min_s * 1e3,
            non_blocking.min_s * 1e3,
            streamed.min_s * 1e3,
            streamed.samples,
            profiled.exchange_chunks,
            profiled.peak_inflight_bytes,
        );
        rows.push(Json::object([
            ("n_qubits", (n as u64).to_json()),
            ("ranks", RANKS.to_json()),
            ("chunk_bytes", (CHUNK_BYTES as u64).to_json()),
            ("blocking_min_s", blocking.min_s.to_json()),
            ("non_blocking_min_s", non_blocking.min_s.to_json()),
            ("streamed_min_s", streamed.min_s.to_json()),
            ("streamed_speedup_vs_blocking", vs_blocking.to_json()),
            ("streamed_speedup_vs_non_blocking", vs_non_blocking.to_json()),
            ("exchange_chunks", profiled.exchange_chunks.to_json()),
            ("peak_inflight_bytes", profiled.peak_inflight_bytes.to_json()),
        ]));
    }
    let dir = std::env::var_os("QSE_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "results".into());
    let doc = Json::object([
        ("group", "exchange_overlap".to_json()),
        ("results", results.to_json()),
        ("speedups", Json::Arr(rows)),
    ]);
    let path = dir.join("bench_exchange_overlap.json");
    if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, doc.pretty()).is_ok() {
        println!("[saved {}]", path.display());
    }
}
