//! Figure 3 — fractional runtime and energy of each setup against the
//! ARCHER2 default (standard nodes, medium frequency).
//!
//! Expected shape (§3.1): standard-high is consistently 5–10 % faster but
//! ≈ 25 % more energy; high-memory setups drastically increase runtime;
//! high frequency on high-memory needs 20–40 % more energy.

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::qft::qft;
use qse_core::experiment::{fmt_delta, TextTable};
use qse_core::scaling::nodes_for;
use qse_core::SimConfig;
use qse_machine::{archer2, CpuFrequency, NodeKind};

fn main() {
    let machine = archer2();
    let mut runtime_table = TextTable::new(vec![
        "Qubits", "std-high", "hm-med", "hm-high",
    ]);
    let mut energy_table = TextTable::new(vec![
        "Qubits", "std-high", "hm-med", "hm-high",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    for n in 33..=44u32 {
        let circuit = qft(n);
        let std_nodes = nodes_for(&machine, NodeKind::Standard, n).expect("fits standard");
        let baseline = model_point(
            &machine,
            "standard-medium",
            &circuit,
            &SimConfig::default_for(std_nodes),
        );
        points.push(baseline.clone());

        let mut rt_cells = vec![n.to_string()];
        let mut en_cells = vec![n.to_string()];
        for (label, kind, freq) in [
            ("standard-high", NodeKind::Standard, CpuFrequency::High),
            ("highmem-medium", NodeKind::HighMem, CpuFrequency::Medium),
            ("highmem-high", NodeKind::HighMem, CpuFrequency::High),
        ] {
            match nodes_for(&machine, kind, n) {
                Some(nodes) => {
                    let mut cfg = SimConfig::default_for(nodes);
                    cfg.node_kind = kind;
                    cfg.frequency = freq;
                    let p = model_point(&machine, label, &circuit, &cfg);
                    rt_cells.push(fmt_delta(p.runtime_s / baseline.runtime_s));
                    en_cells.push(fmt_delta(p.energy_j / baseline.energy_j));
                    points.push(p);
                }
                None => {
                    rt_cells.push("-".into());
                    en_cells.push("-".into());
                }
            }
        }
        runtime_table.row(rt_cells);
        energy_table.row(en_cells);
    }

    println!("Figure 3 — runtime relative to the standard-medium default");
    println!("{}", runtime_table.render());
    println!("Figure 3 — energy relative to the standard-medium default");
    println!("{}", energy_table.render());
    println!("Check: standard-high ≈ -4..-8 % runtime at ≈ +20..30 % energy;");
    println!("high-memory runtimes rise steeply (<2x), with mixed energy.");
    save_points("fig3_fractional", &points);
}
