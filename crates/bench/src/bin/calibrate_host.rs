//! Host calibration harness.
//!
//! The ARCHER2 constants in `qse-machine` came from the paper's published
//! measurements. This binary performs the *same measurements* on the
//! current host using the real engines — sweep bandwidth per layout,
//! NUMA/cache penalty versus target qubit, and pairwise exchange
//! throughput per mode — and prints them as a ready-to-edit machine
//! description, so the model can be re-anchored to any machine the
//! repository runs on.

use qse_circuit::benchmarks::{hadamard_benchmark, swap_benchmark};
use qse_circuit::Gate;
use qse_core::experiment::TextTable;
use qse_core::{SimConfig, ThreadClusterExecutor};
use qse_statevec::storage::{AmpStorage, AosStorage, SoaStorage};
use qse_statevec::SingleState;
use std::time::Instant;

const SWEEP_QUBITS: u32 = 22; // 4M amplitudes, 64 MB — past LLC
const REPS: usize = 5;

fn sweep_bandwidth<S: AmpStorage>(q: u32) -> f64 {
    let mut s: SingleState<S> = SingleState::zero_state(SWEEP_QUBITS);
    // warm-up
    s.apply(&Gate::H(q));
    let t0 = Instant::now();
    for _ in 0..REPS {
        s.apply(&Gate::H(q));
    }
    let dt = t0.elapsed().as_secs_f64() / REPS as f64;
    let bytes = 32.0 * (1u64 << SWEEP_QUBITS) as f64;
    bytes / dt
}

fn main() {
    println!("qse host calibration (sweeps: {SWEEP_QUBITS} qubits, {REPS} reps)\n");

    // 1. Sweep bandwidth by storage layout (the paper's §4 locality
    //    question, measured).
    let soa = sweep_bandwidth::<SoaStorage>(4);
    let aos = sweep_bandwidth::<AosStorage>(4);
    println!("sweep bandwidth, low-stride Hadamard:");
    println!("  SoA (QuEST layout):   {:7.2} GB/s", soa / 1e9);
    println!(
        "  AoS (complex layout): {:7.2} GB/s ({:+.0} %)\n",
        aos / 1e9,
        (aos / soa - 1.0) * 100.0
    );

    // 2. Penalty versus target qubit (the Table 1 shape on this host).
    let mut table = TextTable::new(vec!["Target qubit", "GB/s", "vs q0"]);
    let base = sweep_bandwidth::<SoaStorage>(0);
    for q in [0u32, 4, 8, 12, 16, 20, SWEEP_QUBITS - 1] {
        let bw = sweep_bandwidth::<SoaStorage>(q);
        table.row(vec![
            q.to_string(),
            format!("{:.2}", bw / 1e9),
            format!("{:.2}x", base / bw),
        ]);
    }
    println!("per-qubit sweep cost (the Table 1 stride shape):");
    println!("{}", table.render());

    // 3. Exchange throughput per mode (the Table 1 distributed row).
    let n = 18u32;
    let ranks = 4u64;
    let gates = 6usize;
    let mut table = TextTable::new(vec!["Mode", "Wall s", "GB/s per rank"]);
    for (label, nb) in [("blocking", false), ("non-blocking", true)] {
        let circuit = hadamard_benchmark(n, n - 1, gates);
        let mut cfg = SimConfig::default_for(ranks);
        cfg.non_blocking = nb;
        cfg.max_message_bytes = 1 << 16;
        // warm-up then measure
        ThreadClusterExecutor::run(&circuit, &cfg, 0, false);
        let run = ThreadClusterExecutor::run(&circuit, &cfg, 0, false);
        let per_rank_bytes = (run.profiled.bytes_sent / ranks) as f64;
        table.row(vec![
            label.to_string(),
            format!("{:.3}", run.profiled.wall_s),
            format!("{:.2}", per_rank_bytes / run.profiled.wall_s / 1e9),
        ]);
    }
    println!("pairwise exchange ({n} qubits, {ranks} ranks, {gates} distributed H):");
    println!("{}", table.render());

    // 4. Half vs full SWAP exchange.
    let mut table = TextTable::new(vec!["SWAP exchange", "Wall s", "bytes/rank"]);
    for (label, half) in [("full", false), ("half", true)] {
        let circuit = swap_benchmark(n, 2, n - 1, gates);
        let mut cfg = SimConfig::fast_for(ranks);
        cfg.half_exchange_swaps = half;
        ThreadClusterExecutor::run(&circuit, &cfg, 0, false);
        let run = ThreadClusterExecutor::run(&circuit, &cfg, 0, false);
        table.row(vec![
            label.to_string(),
            format!("{:.3}", run.profiled.wall_s),
            run.profiled.bytes_per_rank().to_string(),
        ]);
    }
    println!("distributed SWAP ({n} qubits, {ranks} ranks, {gates} gates):");
    println!("{}", table.render());

    println!("Paste a machine description with these constants into");
    println!("`qse_machine` (see archer2.rs for the field meanings) to re-anchor");
    println!("the model to this host.");
}
