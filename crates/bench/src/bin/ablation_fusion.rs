//! Ablation — diagonal-gate fusion (QuEST's efficient controlled-phase
//! application, and this repository's generalisation of it).
//!
//! QuEST applies each controlled phase as a partial sweep touching only
//! the affected quarter of the statevector. Fusing a *run* of diagonal
//! gates into one full sweep wins once the run is long enough (a full
//! sweep costs four quarter-sweeps). The QFT's phase blocks shrink from
//! n−1 gates to 1 across the circuit, so the fusion threshold matters:
//! this ablation sweeps it.

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::qft::qft;
use qse_core::experiment::TextTable;
use qse_core::SimConfig;
use qse_machine::archer2;
use qse_machine::energy::format_energy;

fn main() {
    let machine = archer2();
    let n = 38u32;
    let nodes = 64u64;
    let circuit = qft(n);

    let mut table = TextTable::new(vec!["Fusion threshold", "Runtime", "Energy"]);
    let mut points: Vec<ModelPoint> = Vec::new();

    let mut cfg = SimConfig::default_for(nodes);
    let base = model_point(&machine, "no-fusion", &circuit, &cfg);
    table.row(vec![
        "off (QuEST built-in)".to_string(),
        format!("{:.0} s", base.runtime_s),
        format_energy(base.energy_j),
    ]);
    points.push(base);

    for threshold in [2usize, 4, 8, 16, 32] {
        cfg.fuse_diagonals = Some(threshold);
        let p = model_point(
            &machine,
            format!("fuse>={threshold}"),
            &circuit,
            &cfg,
        );
        table.row(vec![
            format!(">= {threshold} gates"),
            format!("{:.0} s", p.runtime_s),
            format_energy(p.energy_j),
        ]);
        points.push(p);
    }

    println!("Ablation — diagonal fusion threshold, 38-qubit QFT on 64 nodes");
    println!("{}", table.render());
    println!("Check: small thresholds over-fuse short runs (a full sweep costs");
    println!("4 quarter-sweeps); the optimum sits around >= 4.");
    save_points("ablation_fusion", &points);
}
