//! Kernel throughput: amplitudes/second for the vectorized sweep
//! kernels, against an embedded pre-vectorization scalar baseline.
//!
//! ```sh
//! cargo run --release --bin kernel_throughput            # full: n = 20, 22
//! cargo run --release --bin kernel_throughput -- --smoke # CI: n = 12, 3 samples
//! cargo run --release --bin kernel_throughput -- --qubits 18,20
//! ```
//!
//! Sweeps each kernel shape the hot path dispatches — dense 1q at low /
//! mid / top strides, controlled (control below and above the target),
//! diagonal, and swap — on both storage layouts, and writes
//! `results/bench_kernels.json` (`QSE_RESULTS_DIR` overrides the
//! directory). Every 1q entry records `speedup_vs_scalar`: the same
//! sweep timed through the scalar per-element kernel the storage layer
//! shipped before vectorization, re-implemented here verbatim because
//! the storage internals are private.
//!
//! Two regimes are covered deliberately. The in-cache size (n = 12)
//! shows the kernel-level speedup directly — the sweep is compute-bound
//! there. At the paper-style sizes (n = 20, 22) the statevector no
//! longer fits any cache and a sweep is memory-bandwidth-bound, so the
//! file also records the host's measured `memcpy` ceiling and each
//! entry's achieved GiB/s: a vectorized kernel "wins" at these sizes by
//! saturating the ceiling, not by arithmetic throughput (the source
//! paper's central observation).
//!
//! The binary re-parses the file it wrote and exits nonzero unless the
//! JSON is well-formed and every kernel sustained > 0 amps/second, so
//! CI can run it as a self-checking smoke test.

use qse_circuit::Gate;
use qse_math::{Complex64, Matrix2};
use qse_statevec::{AmpStorage, AosStorage, SingleState, SoaStorage};
use qse_util::json::{Json, ToJson};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock per timed sample (mirrors `qse_util::bench`).
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

struct Entry {
    layout: &'static str,
    n_qubits: u32,
    kernel: String,
    median_s: f64,
    min_s: f64,
    amps_per_s: f64,
    gib_per_s: f64,
    speedup_vs_scalar: Option<f64>,
}

impl Entry {
    fn to_json(&self) -> Json {
        Json::object([
            ("layout", self.layout.to_json()),
            ("n_qubits", self.n_qubits.to_json()),
            ("kernel", self.kernel.to_json()),
            ("median_s", self.median_s.to_json()),
            ("min_s", self.min_s.to_json()),
            ("amps_per_s", self.amps_per_s.to_json()),
            ("gib_per_s", self.gib_per_s.to_json()),
            ("speedup_vs_scalar", self.speedup_vs_scalar.to_json()),
        ])
    }
}

/// Measured sequential read+write memory bandwidth (large `memcpy`),
/// the ceiling any out-of-cache sweep is bound by.
fn memcpy_ceiling_gib_s() -> f64 {
    // Byte slices: `<[u8]>::copy_from_slice` reaches the libc memcpy
    // fast path (non-temporal stores at this size); the f64 equivalent
    // lowers to an inlined loop a factor slower — measured, not assumed.
    let len = 1usize << 27; // 128 MB, far past LLC
    let src = vec![1u8; len];
    let mut dst = vec![0u8; len];
    // Untimed warmup: faults in both buffers' pages so the timed copies
    // measure DRAM streaming, not the page-fault path.
    for _ in 0..2 {
        dst.copy_from_slice(&src);
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        // No black_box on the operands: an opaque slice reference here
        // demotes the copy from the libc fast path to an inline loop,
        // ~4x slower (measured). Observing `dst` after the timer keeps
        // the copies live without perturbing them.
        dst.copy_from_slice(&src);
        best = best.min(t.elapsed().as_secs_f64());
        black_box(&mut dst);
    }
    (2 * len) as f64 / best / (1u64 << 30) as f64
}

/// Calibrated median-of-`samples` seconds per call of `f`.
fn time_median(samples: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    (per_iter[per_iter.len() / 2], per_iter[0])
}

/// The pre-vectorization sequential pair sweep: per-element control-mask
/// test, bounds-checked indexing, `Complex64` operator arithmetic. This
/// is the baseline `speedup_vs_scalar` is measured against.
fn scalar_apply_pairs(amps: &mut [Complex64], q: u32, m: &Matrix2, control: Option<u32>) {
    let stride = 1usize << q;
    let block = stride << 1;
    let ctrl_mask = control.map_or(0u64, |c| 1u64 << c);
    let mut base = 0;
    while base < amps.len() {
        for k in 0..stride {
            let i = base + k;
            if ctrl_mask != 0 && (i as u64) & ctrl_mask == 0 {
                continue;
            }
            let a = amps[i];
            let b = amps[i + stride];
            amps[i] = m.m[0] * a + m.m[1] * b;
            amps[i + stride] = m.m[2] * a + m.m[3] * b;
        }
        base += block;
    }
}

/// Memory traffic per *state* amplitude for each kernel shape. A dense
/// 1q sweep reads and writes all amplitudes (16 B each way); a
/// controlled sweep touches only the control-satisfying half; the
/// diagonal phase touches the quarter with both index bits set; a swap
/// rewrites the half whose two bits differ.
fn bytes_per_amp(kernel: &str) -> f64 {
    if kernel.starts_with("h_") {
        32.0
    } else if kernel.starts_with("ch_") || kernel.starts_with("swap_") {
        16.0
    } else {
        8.0 // cphase_diag
    }
}

fn hadamard() -> Matrix2 {
    let h = Complex64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
    Matrix2::new(h, h, h, -h)
}

/// Times the scalar baseline for one (gate-shape, n) and returns
/// amps per second.
fn scalar_baseline(n: u32, q: u32, control: Option<u32>, samples: usize) -> f64 {
    let m = hadamard();
    let mut amps = vec![Complex64::ZERO; 1usize << n];
    amps[0] = Complex64::new(1.0, 0.0);
    let (median, _) = time_median(samples, || {
        scalar_apply_pairs(black_box(&mut amps), q, &m, control);
    });
    (1u64 << n) as f64 / median
}

fn bench_layout<S: AmpStorage>(
    layout: &'static str,
    n: u32,
    samples: usize,
    scalar: &[(String, f64)],
    out: &mut Vec<Entry>,
) {
    let amps = (1u64 << n) as f64;
    let mid = n / 2;
    let top = n - 1;
    let kernels: Vec<(String, Gate)> = vec![
        ("h_q0".to_string(), Gate::H(0)),
        (format!("h_q{mid}"), Gate::H(mid)),
        (format!("h_q{top}"), Gate::H(top)),
        (
            format!("ch_c2_t{mid}"),
            Gate::CNot {
                control: 2,
                target: mid,
            },
        ),
        (
            format!("ch_c{top}_t{mid}"),
            Gate::CNot {
                control: top,
                target: mid,
            },
        ),
        (
            "cphase_diag".to_string(),
            Gate::CPhase {
                a: 3,
                b: mid,
                theta: 0.25,
            },
        ),
        (format!("swap_q2_q{top}"), Gate::Swap(2, top)),
    ];
    for (name, gate) in kernels {
        let mut state: SingleState<S> = SingleState::zero_state(n);
        let (median, min) = time_median(samples, || {
            state.apply(black_box(&gate));
        });
        let speedup = scalar
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, scalar_amps_per_s)| (amps / median) / scalar_amps_per_s);
        let gib_per_s = amps * bytes_per_amp(&name) / median / (1u64 << 30) as f64;
        let entry = Entry {
            layout,
            n_qubits: n,
            kernel: name,
            median_s: median,
            min_s: min,
            amps_per_s: amps / median,
            gib_per_s,
            speedup_vs_scalar: speedup,
        };
        let spd = entry
            .speedup_vs_scalar
            .map(|s| format!("  {s:5.2}x vs scalar"))
            .unwrap_or_default();
        println!(
            "{layout:>3}/n={n}/{kernel:<14} {amps_per_s:>10.3e} amps/s  {gib:6.1} GiB/s{spd}",
            kernel = entry.kernel,
            amps_per_s = entry.amps_per_s,
            gib = entry.gib_per_s,
        );
        out.push(entry);
    }
}

/// Minimal well-formedness parse of the JSON the binary just wrote —
/// the workspace has no JSON reader, and CI needs proof the file is
/// consumable. Returns every number found under an `amps_per_s` key.
fn parse_amps_per_s(text: &str) -> Result<Vec<f64>, String> {
    let mut vals = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut depth: i64 = 0;
    let mut max_depth = 0;
    let mut pending_key: Option<String> = None;
    while let Some((i, c)) = chars.next() {
        match c {
            '{' | '[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err(format!("unbalanced bracket at byte {i}"));
                }
            }
            '"' => {
                let mut s = String::new();
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => {
                            closed = true;
                            break;
                        }
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err("unterminated string".into());
                }
                // A string followed by ':' is a key.
                if matches!(chars.peek(), Some((_, ':'))) {
                    pending_key = Some(s);
                } else {
                    pending_key = None;
                }
            }
            ':' => {}
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                let mut end = i + c.len_utf8();
                while let Some(&(j, c)) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
                        end = j + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let num: f64 = text[start..end]
                    .parse()
                    .map_err(|e| format!("bad number {:?}: {e}", &text[start..end]))?;
                if pending_key.as_deref() == Some("amps_per_s") {
                    vals.push(num);
                }
                pending_key = None;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("unbalanced document".into());
    }
    if max_depth == 0 {
        return Err("no JSON structure found".into());
    }
    Ok(vals)
}

fn geomean(vals: &[f64]) -> f64 {
    (vals.iter().map(|s| s.ln()).sum::<f64>() / vals.len() as f64).exp()
}

fn main() {
    // n = 12 is the in-cache, compute-bound point; 20 and 22 are the
    // out-of-cache, bandwidth-bound points the paper cares about.
    let mut sizes: Vec<u32> = vec![12, 20, 22];
    let mut samples = 11usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                sizes = vec![12];
                samples = 3;
            }
            "--qubits" => {
                let list = args.next().expect("--qubits needs a comma-separated list");
                sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("qubit count"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Measure the ceiling before the sweeps: on a fresh heap the large
    // buffers land on huge pages, matching how the statevectors are
    // placed, so the ceiling and the sweeps see the same TLB behavior.
    let ceiling = memcpy_ceiling_gib_s();
    println!("memcpy ceiling: {ceiling:.1} GiB/s");

    let fma = cfg!(any(target_arch = "x86", target_arch = "x86_64"))
        && std::env::var_os("QSE_SCALAR_KERNELS").is_none()
        && std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma");
    println!(
        "kernel_throughput: n = {sizes:?}, {} threads, fma kernels: {fma}",
        qse_util::parallel::num_threads()
    );

    let mut entries = Vec::new();
    for &n in &sizes {
        let mid = n / 2;
        let top = n - 1;
        // Scalar baselines for the shapes the speedup target names:
        // dense 1q sweeps at each stride class, plus a low-control gate.
        let scalar: Vec<(String, f64)> = vec![
            ("h_q0".to_string(), scalar_baseline(n, 0, None, samples)),
            (
                format!("h_q{mid}"),
                scalar_baseline(n, mid, None, samples),
            ),
            (
                format!("h_q{top}"),
                scalar_baseline(n, top, None, samples),
            ),
            (
                format!("ch_c2_t{mid}"),
                scalar_baseline(n, mid, Some(2), samples),
            ),
        ];
        bench_layout::<SoaStorage>("soa", n, samples, &scalar, &mut entries);
        bench_layout::<AosStorage>("aos", n, samples, &scalar, &mut entries);
    }

    // Per-size geometric mean of the dense-1q speedups — the headline
    // series. In-cache sizes show the kernel-level win; out-of-cache
    // sizes converge on ceiling/scalar-rate instead.
    let mut per_size = Vec::new();
    for &n in &sizes {
        let s: Vec<f64> = entries
            .iter()
            .filter(|e| e.n_qubits == n && e.kernel.starts_with("h_"))
            .filter_map(|e| e.speedup_vs_scalar)
            .collect();
        let g = geomean(&s);
        println!("n={n}: geomean 1q speedup vs scalar {g:.2}x");
        per_size.push(Json::object([
            ("n_qubits", n.to_json()),
            ("geomean_speedup_1q", g.to_json()),
        ]));
    }
    let all: Vec<f64> = entries.iter().filter_map(|e| e.speedup_vs_scalar).collect();
    let overall = geomean(&all);
    println!(
        "geomean speedup vs scalar over {} entries: {overall:.2}x",
        all.len()
    );

    let dir = std::env::var_os("QSE_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "results".into());
    let path = dir.join("bench_kernels.json");
    let doc = Json::object([
        ("group", "kernels".to_json()),
        ("qubits", sizes.to_json()),
        ("threads", qse_util::parallel::num_threads().to_json()),
        ("fma_kernels", fma.to_json()),
        ("memcpy_ceiling_gib_s", ceiling.to_json()),
        ("speedup_1q_by_size", Json::Arr(per_size)),
        ("geomean_speedup_vs_scalar", overall.to_json()),
        (
            "results",
            Json::Arr(entries.iter().map(Entry::to_json).collect()),
        ),
    ]);
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(&path, doc.pretty()).expect("write bench_kernels.json");
    println!("[saved {}]", path.display());

    // Self-check: re-read what we wrote; every kernel must have moved
    // amplitudes. A zero or missing rate means the harness is broken.
    let written = std::fs::read_to_string(&path).expect("re-read bench_kernels.json");
    match parse_amps_per_s(&written) {
        Ok(vals) => {
            if vals.len() != entries.len() {
                eprintln!(
                    "FAIL: expected {} amps_per_s entries, parsed {}",
                    entries.len(),
                    vals.len()
                );
                std::process::exit(1);
            }
            if let Some(bad) = vals.iter().find(|v| !(**v > 0.0)) {
                eprintln!("FAIL: non-positive amps_per_s {bad} in {}", path.display());
                std::process::exit(1);
            }
            println!(
                "ok: {} kernels, all amps_per_s > 0 (min {:.3e})",
                vals.len(),
                vals.iter().cloned().fold(f64::INFINITY, f64::min)
            );
        }
        Err(e) => {
            eprintln!("FAIL: {} is not well-formed JSON: {e}", path.display());
            std::process::exit(1);
        }
    }
}
