//! Measured ablation — diagonal-gate fusion on the real engine.
//!
//! The model-level ablation (`ablation_fusion`) *prices* fusion with the
//! analytic ARCHER2 model; this binary *measures* it on this host.
//! The same QFT circuit runs twice through `SingleState`:
//!
//! * unfused — [`SingleState::run_unfused`], one sweep per gate
//!   (QuEST's gate-at-a-time execution);
//! * fused — [`SingleState::run`], the default fused schedule, where
//!   every run of ≥ 2 consecutive diagonal gates becomes one sweep.
//!
//! A QFT on n qubits carries n(n−1)/2 controlled phases in runs that
//! shrink from n−1 gates to 1, so fusion removes most of its sweeps;
//! the measured speedup is the memory-bandwidth win the model's fusion
//! ablation claims. Writes `results/bench_fusion_measured.json` with
//! per-width medians and the fused-over-unfused speedup.

use qse_circuit::qft::qft;
use qse_math::Complex64;
use qse_statevec::{AmpStorage, SingleState, SoaStorage};
use qse_util::bench::BenchGroup;
use qse_util::json::{Json, ToJson};

/// Resets `st` to |0…0⟩ in place (no reallocation between iterations).
fn reset(st: &mut SingleState<SoaStorage>) {
    st.storage_mut().fill_zero();
    st.storage_mut().set(0, Complex64::ONE);
}

fn main() {
    let widths: Vec<u32> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("qubit count"))
        .collect();
    let widths = if widths.is_empty() {
        vec![20, 22]
    } else {
        widths
    };

    let mut group = BenchGroup::new("fusion_measured");
    group.sample_size(7);
    let mut rows: Vec<Json> = Vec::new();

    for &n in &widths {
        let circuit = qft(n);
        let mut st: SingleState<SoaStorage> = SingleState::zero_state(n);
        group.bench(format!("qft{n}_unfused"), || {
            reset(&mut st);
            st.run_unfused(std::hint::black_box(&circuit));
            std::hint::black_box(st.amplitude(1));
        });
        group.bench(format!("qft{n}_fused"), || {
            reset(&mut st);
            st.run(std::hint::black_box(&circuit));
            std::hint::black_box(st.amplitude(1));
        });
    }

    let results = group.finish();
    // Enrich the standard bench JSON with per-width speedups — the
    // quantity the fusion ablation is actually about.
    for (i, &n) in widths.iter().enumerate() {
        let unfused = &results[2 * i];
        let fused = &results[2 * i + 1];
        let speedup = unfused.median_s / fused.median_s;
        println!(
            "qft{n}: unfused {:.3} ms, fused {:.3} ms -> speedup {speedup:.2}x",
            unfused.median_s * 1e3,
            fused.median_s * 1e3,
        );
        rows.push(Json::object([
            ("n_qubits", (n as u64).to_json()),
            ("unfused_median_s", unfused.median_s.to_json()),
            ("fused_median_s", fused.median_s.to_json()),
            ("speedup", speedup.to_json()),
        ]));
    }
    let dir = std::env::var_os("QSE_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "results".into());
    let doc = Json::object([
        ("group", "fusion_measured".to_json()),
        ("results", results.to_json()),
        ("speedups", Json::Arr(rows)),
    ]);
    let path = dir.join("bench_fusion_measured.json");
    if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, doc.pretty()).is_ok() {
        println!("[saved {}]", path.display());
    }
}
