//! Table 1 — time and energy per gate in the Hadamard benchmark on
//! qubits 29–32, blocking vs non-blocking MPI.
//!
//! Setting (§3.2): 38-qubit register, 64 standard nodes, 50 Hadamard
//! gates per target qubit. Paper values: ≈ 0.5 s / 15 kJ per gate up to
//! qubit 29; rising through the NUMA tiers at 30–31; jumping twenty-fold
//! to 9.63 s / 191 kJ (blocking) and 8.82 s / 179 kJ (non-blocking) at
//! qubit 32 — the first global qubit.

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::benchmarks::hadamard_benchmark;
use qse_core::experiment::TextTable;
use qse_core::SimConfig;
use qse_machine::archer2;
use qse_machine::energy::format_energy;

const N_QUBITS: u32 = 38;
const N_NODES: u64 = 64;
const GATES: usize = 50;

fn main() {
    let machine = archer2();
    let mut table = TextTable::new(vec![
        "Qubit", "Blk time", "Blk energy", "NB time", "NB energy",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    // The paper sweeps 0–37 and prints 29–32; we print the same window
    // but record the full sweep in the JSON.
    for q in 0..N_QUBITS {
        let circuit = hadamard_benchmark(N_QUBITS, q, GATES);
        let blocking = model_point(
            &machine,
            format!("blocking-q{q}"),
            &circuit,
            &SimConfig::default_for(N_NODES),
        );
        let nonblocking = model_point(
            &machine,
            format!("nonblocking-q{q}"),
            &circuit,
            &SimConfig::fast_for(N_NODES),
        );
        if (29..=32).contains(&q) {
            table.row(vec![
                q.to_string(),
                format!("{:.2} s", blocking.runtime_s / GATES as f64),
                format_energy(blocking.energy_j / GATES as f64),
                format!("{:.2} s", nonblocking.runtime_s / GATES as f64),
                format_energy(nonblocking.energy_j / GATES as f64),
            ]);
        }
        points.push(blocking);
        points.push(nonblocking);
    }

    println!("Table 1 — per-gate time/energy, Hadamard benchmark, qubits 29-32");
    println!("(38 qubits, 64 standard nodes, 50 gates per run; per-gate values)");
    println!("{}", table.render());
    println!("Paper: 0.5 s/15 kJ flat to qubit 29; NUMA bumps at 30-31;");
    println!("9.63 s/191 kJ blocking vs 8.82 s/179 kJ non-blocking at qubit 32.");
    save_points("table1_hadamard", &points);
}
