//! Figure 5 — runtime profiles of the Hadamard worst case and the two
//! QFT variants.
//!
//! "In the Hadamard benchmark MPI completely dominates the runtime. The
//! QFT gates are mostly local, so communication only takes up to 43 % of
//! runtime, and the rest is split roughly 2:1 between memory access and
//! computation. By applying our optimisation, we managed to reduce
//! communication to 25 %." (§3.2)
//!
//! The binary prints the modelled profile at paper scale and, as a
//! cross-check, a *measured* profile from the thread-cluster engine at
//! laptop scale (distributed-gate share of wall-clock).

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::benchmarks::hadamard_benchmark;
use qse_circuit::qft::{cache_blocked_qft, qft};
use qse_core::experiment::TextTable;
use qse_core::{SimConfig, ThreadClusterExecutor};
use qse_machine::archer2;

const N_QUBITS: u32 = 38;
const N_NODES: u64 = 64;

fn main() {
    let machine = archer2();
    let runs = [
        ("hadamard-worst", hadamard_benchmark(N_QUBITS, N_QUBITS - 1, 50)),
        ("qft-built-in", qft(N_QUBITS)),
        ("qft-cache-blocked", cache_blocked_qft(N_QUBITS, 30)),
    ];

    let mut table = TextTable::new(vec!["Run", "MPI %", "Memory %", "Compute %", "Runtime"]);
    let mut points: Vec<ModelPoint> = Vec::new();
    for (label, circuit) in &runs {
        let cfg = if *label == "qft-cache-blocked" {
            SimConfig::fast_for(N_NODES)
        } else {
            SimConfig::default_for(N_NODES)
        };
        let p = model_point(&machine, *label, circuit, &cfg);
        table.row(vec![
            label.to_string(),
            format!("{:.0} %", p.comm_fraction * 100.0),
            format!("{:.0} %", p.memory_fraction * 100.0),
            format!("{:.0} %", p.compute_fraction * 100.0),
            format!("{:.0} s", p.runtime_s),
        ]);
        points.push(p);
    }

    println!("Figure 5 — modelled profiles at paper scale (38 q, 64 nodes)");
    println!("{}", table.render());
    println!("Paper: Hadamard ~all MPI; built-in QFT ≈ 43 % MPI, rest 2:1");
    println!("memory:compute; cache-blocked QFT ≈ 25 % MPI.\n");

    // Measured cross-check on the thread cluster (16 qubits, 8 ranks):
    // the distributed-gate share of wall-clock is the measured "MPI" bar.
    let mut measured = TextTable::new(vec!["Run", "Distributed-gate share", "Wall"]);
    for (label, builder) in [
        ("hadamard-worst", hadamard_benchmark(16, 15, 20)),
        ("qft-built-in", qft(16)),
        ("qft-cache-blocked", cache_blocked_qft(16, 11)),
    ] {
        let run = ThreadClusterExecutor::run(&builder, &SimConfig::default_for(8), 0, false);
        measured.row(vec![
            label.to_string(),
            format!("{:.0} %", run.profiled.profile.distributed_fraction() * 100.0),
            format!("{:.3} s", run.profiled.wall_s),
        ]);
    }
    println!("Measured cross-check — thread cluster (16 q, 8 ranks)");
    println!("{}", measured.render());
    println!("Expected ordering matches the figure: hadamard ≫ built-in > blocked.");
    save_points("fig5_profiles", &points);
}
