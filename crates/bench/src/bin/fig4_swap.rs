//! Figure 4 — energy consumption of the SWAP benchmark.
//!
//! Setting (§3.2): 50 SWAP gates between each of 5 local targets
//! {0, 4, 8, 12, 16} and 3 distributed targets {35, 36, 37}, on 64
//! standard nodes with a 38-qubit register. Paper values per gate:
//! 9.0–9.75 s and 180–195 kJ blocking; 8.25–9.0 s and 160–180 kJ
//! non-blocking.

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::benchmarks::{paper_swap_targets, swap_benchmark, swap_benchmark_grid};
use qse_core::experiment::TextTable;
use qse_core::SimConfig;
use qse_machine::archer2;
use qse_machine::energy::format_energy;

const N_QUBITS: u32 = 38;
const N_NODES: u64 = 64;
const GATES: usize = 50;

fn main() {
    let machine = archer2();
    let (locals, globals) = paper_swap_targets();
    let mut table = TextTable::new(vec![
        "Targets", "Blk time", "Blk energy", "NB time", "NB energy",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    for (l, g) in swap_benchmark_grid(&locals, &globals) {
        let circuit = swap_benchmark(N_QUBITS, l, g, GATES);
        let blocking = model_point(
            &machine,
            format!("blocking-{l}-{g}"),
            &circuit,
            &SimConfig::default_for(N_NODES),
        );
        let nonblocking = model_point(
            &machine,
            format!("nonblocking-{l}-{g}"),
            &circuit,
            &SimConfig::fast_for(N_NODES),
        );
        table.row(vec![
            format!("({l},{g})"),
            format!("{:.2} s", blocking.runtime_s / GATES as f64),
            format_energy(blocking.energy_j / GATES as f64),
            format!("{:.2} s", nonblocking.runtime_s / GATES as f64),
            format_energy(nonblocking.energy_j / GATES as f64),
        ]);
        points.push(blocking);
        points.push(nonblocking);
    }

    println!("Figure 4 — SWAP benchmark per-gate time/energy (modelled)");
    println!("(38 qubits, 64 standard nodes, 50 SWAPs per pair)");
    println!("{}", table.render());
    println!("Paper bands: blocking 9.0-9.75 s / 180-195 kJ; non-blocking");
    println!("8.25-9.0 s / 160-180 kJ per gate.");
    save_points("fig4_swap", &points);
}
