//! Ablation — the full CPU-frequency sweep, including the 1.50 GHz level
//! the paper measured but omitted from its figures ("the lowest frequency
//! available on ARCHER2 (1.5 GHz) was not of benefit in either case due
//! to a large increase in runtime", §3.1).

use qse_bench::{model_point, save_points, ModelPoint};
use qse_circuit::qft::qft;
use qse_core::experiment::{fmt_delta, TextTable};
use qse_core::scaling::nodes_for;
use qse_core::SimConfig;
use qse_machine::{archer2, CpuFrequency, NodeKind};

fn main() {
    let machine = archer2();
    let mut table = TextTable::new(vec![
        "Qubits", "Freq", "Runtime Δ", "Energy Δ",
    ]);
    let mut points: Vec<ModelPoint> = Vec::new();

    for n in [36u32, 38, 40, 42, 44] {
        let nodes = nodes_for(&machine, NodeKind::Standard, n).expect("fits");
        let circuit = qft(n);
        let baseline = model_point(
            &machine,
            format!("medium-{n}"),
            &circuit,
            &SimConfig::default_for(nodes),
        );
        for freq in CpuFrequency::all() {
            let mut cfg = SimConfig::default_for(nodes);
            cfg.frequency = freq;
            let p = model_point(&machine, format!("{}-{n}", freq.label()), &circuit, &cfg);
            table.row(vec![
                n.to_string(),
                freq.label().to_string(),
                fmt_delta(p.runtime_s / baseline.runtime_s),
                fmt_delta(p.energy_j / baseline.energy_j),
            ]);
            points.push(p);
        }
    }

    println!("Ablation — CPU frequency sweep (QFT, minimum standard nodes)");
    println!("{}", table.render());
    println!("Check (§3.1/§4): 2.25 GHz ≈ -4..-8 % runtime at +20..30 % energy;");
    println!("1.50 GHz ≈ +10 % runtime at roughly flat energy — no benefit.");
    save_points("ablation_frequency", &points);
}
