//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index), printing a publication-shaped
//! text table and writing a JSON twin under `results/`.

use qse_circuit::Circuit;
use qse_core::experiment::{results_dir, write_json};
use qse_core::{ModelExecutor, SimConfig};
use qse_machine::archer2::Machine;
use qse_machine::perf::RunEstimate;
use qse_util::json::{Json, ToJson};

/// One modelled data point, as serialised for EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct ModelPoint {
    /// Series label (e.g. "standard-medium", "built-in", "blocking").
    pub series: String,
    /// Register width.
    pub n_qubits: u32,
    /// Nodes used.
    pub n_nodes: u64,
    /// Modelled wall-clock, seconds.
    pub runtime_s: f64,
    /// Modelled total energy (nodes + switches), joules.
    pub energy_j: f64,
    /// CU charge.
    pub cu: f64,
    /// Fraction of runtime in communication.
    pub comm_fraction: f64,
    /// Fraction in memory sweeps.
    pub memory_fraction: f64,
    /// Fraction in compute.
    pub compute_fraction: f64,
}

impl ModelPoint {
    /// Builds a point from an estimate.
    pub fn from_estimate(series: impl Into<String>, est: &RunEstimate) -> Self {
        ModelPoint {
            series: series.into(),
            n_qubits: est.n_qubits,
            n_nodes: est.n_nodes,
            runtime_s: est.runtime_s,
            energy_j: est.total_energy_j(),
            cu: est.cu,
            comm_fraction: est.comm_fraction(),
            memory_fraction: est.memory_fraction(),
            compute_fraction: est.compute_fraction(),
        }
    }
}

impl ToJson for ModelPoint {
    fn to_json(&self) -> Json {
        Json::object([
            ("series", self.series.to_json()),
            ("n_qubits", self.n_qubits.to_json()),
            ("n_nodes", self.n_nodes.to_json()),
            ("runtime_s", self.runtime_s.to_json()),
            ("energy_j", self.energy_j.to_json()),
            ("cu", self.cu.to_json()),
            ("comm_fraction", self.comm_fraction.to_json()),
            ("memory_fraction", self.memory_fraction.to_json()),
            ("compute_fraction", self.compute_fraction.to_json()),
        ])
    }
}

/// Runs the model and wraps the result as a point.
pub fn model_point(
    machine: &Machine,
    series: impl Into<String>,
    circuit: &Circuit,
    config: &SimConfig,
) -> ModelPoint {
    let est = ModelExecutor::new(machine).run(circuit, config);
    ModelPoint::from_estimate(series, &est)
}

/// Writes the figure's JSON record under `results/<name>.json`.
pub fn save_points(name: &str, points: &[ModelPoint]) {
    let path = results_dir().join(format!("{name}.json"));
    write_json(&path, &points).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\n[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::qft::qft;
    use qse_machine::archer2;

    #[test]
    fn model_point_captures_estimate_fields() {
        let m = archer2();
        let p = model_point(&m, "test", &qft(34), &SimConfig::default_for(4));
        assert_eq!(p.series, "test");
        assert_eq!(p.n_qubits, 34);
        assert_eq!(p.n_nodes, 4);
        assert!(p.runtime_s > 0.0);
        assert!(p.energy_j > 0.0);
        let frac_sum = p.comm_fraction + p.memory_fraction + p.compute_fraction;
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }
}
