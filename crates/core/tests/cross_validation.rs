//! Model-vs-measurement cross-validation.
//!
//! The analytic model's absolute constants describe ARCHER2, not this
//! host — but its *orderings* (which variant wins) must agree with what
//! the thread-cluster engine actually measures here, otherwise the model
//! is rationalising rather than predicting. Wall-clock assertions use
//! generous margins and deterministic byte counts wherever possible to
//! stay robust on noisy CI machines.

use qse_circuit::benchmarks::hadamard_benchmark;
use qse_circuit::classify::{comm_summary, Layout};
use qse_circuit::qft::{cache_blocked_qft, default_split, qft};
use qse_core::{ModelExecutor, SimConfig, ThreadClusterExecutor};
use qse_machine::archer2;

/// The model predicts cache blocking halves QFT traffic; the engine's
/// counters must measure exactly the same bytes the model charges.
#[test]
fn model_traffic_equals_measured_traffic() {
    let n = 10u32;
    let ranks = 8u64;
    let machine = archer2();
    let layout = Layout::new(n, ranks);
    for circuit in [qft(n), cache_blocked_qft(n, default_split(n, layout.local_qubits()))] {
        let est = ModelExecutor::new(&machine).run(&circuit, &SimConfig::default_for(ranks));
        let run = ThreadClusterExecutor::run(&circuit, &SimConfig::default_for(ranks), 0, false);
        // The model accumulates bytes per rank; the engine counts all
        // ranks. Distributed gates involve every rank here.
        assert_eq!(est.breakdown.comm_bytes * ranks, run.profiled.bytes_sent);
        // And both agree with the static classifier.
        let summary = comm_summary(&circuit, &layout);
        assert_eq!(est.breakdown.comm_bytes, summary.bytes_full_exchange);
    }
}

/// Ordering agreement on the worst-case-vs-local contrast: the model says
/// a distributed Hadamard costs far more than a local one; measured
/// wall-clock on the thread cluster must at least preserve the ordering.
#[test]
fn model_and_measurement_agree_on_locality_ordering() {
    let n = 16u32;
    let ranks = 4u64;
    let machine = archer2();
    let gates = 12usize;
    let local_c = hadamard_benchmark(n, 0, gates);
    let dist_c = hadamard_benchmark(n, n - 1, gates);

    let model_local = ModelExecutor::new(&machine).run(&local_c, &SimConfig::default_for(ranks));
    let model_dist = ModelExecutor::new(&machine).run(&dist_c, &SimConfig::default_for(ranks));
    assert!(model_dist.runtime_s > 5.0 * model_local.runtime_s);

    // Measure with a couple of retries to ride out scheduler noise.
    let mut agreed = false;
    for _ in 0..3 {
        let run_local = ThreadClusterExecutor::run(&local_c, &SimConfig::default_for(ranks), 0, false);
        let run_dist = ThreadClusterExecutor::run(&dist_c, &SimConfig::default_for(ranks), 0, false);
        if run_dist.profiled.wall_s > run_local.profiled.wall_s {
            agreed = true;
            break;
        }
    }
    assert!(agreed, "measured ordering never matched the model");
}

/// The model's profile fractions match the engine's measured per-class
/// attribution in ordering: worst-case > built-in QFT > cache-blocked.
#[test]
fn profile_orderings_agree() {
    let n = 14u32;
    let ranks = 4u64;
    let machine = archer2();
    let layout = Layout::new(n, ranks);
    let circuits = [
        hadamard_benchmark(n, n - 1, 10),
        qft(n),
        cache_blocked_qft(n, default_split(n, layout.local_qubits())),
    ];
    let model_fracs: Vec<f64> = circuits
        .iter()
        .map(|c| {
            ModelExecutor::new(&machine)
                .run(c, &SimConfig::default_for(ranks))
                .comm_fraction()
        })
        .collect();
    let measured_fracs: Vec<f64> = circuits
        .iter()
        .map(|c| {
            ThreadClusterExecutor::run(c, &SimConfig::default_for(ranks), 0, false)
                .profiled
                .profile
                .distributed_fraction()
        })
        .collect();
    assert!(model_fracs[0] > model_fracs[1] && model_fracs[1] > model_fracs[2]);
    assert!(
        measured_fracs[0] > measured_fracs[2],
        "measured: {measured_fracs:?}"
    );
}
