//! Unified run configuration bridging the executable engine and the model.

use qse_circuit::transpile::Strategy;
use qse_comm::chunking::{ChunkPolicy, ExchangeMode};
use qse_comm::FaultConfig;
use qse_machine::{CommMode, CpuFrequency, ModelConfig, NodeKind};
use qse_statevec::DistConfig;

/// Which comm-avoiding transpilation pass to run before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranspileMode {
    /// Execute the circuit as written (the default — existing behaviour).
    #[default]
    Off,
    /// Greedy-LRU placement, batched-permutation lowering.
    Greedy,
    /// Lookahead-window beam search scored by the machine cost model.
    Beam,
}

impl TranspileMode {
    /// The transpiler strategy this mode selects, if any.
    pub fn strategy(self) -> Option<Strategy> {
        match self {
            TranspileMode::Off => None,
            TranspileMode::Greedy => Some(Strategy::Greedy),
            TranspileMode::Beam => Some(Strategy::beam()),
        }
    }
}

/// One simulation setup, expressible to both the thread-cluster engine
/// and the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Ranks (threads) or nodes — always a power of two.
    pub n_ranks: u64,
    /// Blocking (QuEST default) or non-blocking exchange (§3.2).
    pub non_blocking: bool,
    /// Streamed chunk-pipelined exchange: overlap each chunk's combine
    /// with the remaining communication. Takes precedence over
    /// `non_blocking`.
    pub streamed: bool,
    /// Half-exchange distributed SWAPs (§4 future work).
    pub half_exchange_swaps: bool,
    /// Fuse diagonal runs of at least this many gates.
    pub fuse_diagonals: Option<usize>,
    /// Maximum message size in bytes for chunked exchanges.
    pub max_message_bytes: usize,
    /// Node flavour (model runs only).
    pub node_kind: NodeKind,
    /// CPU frequency (model runs only).
    pub frequency: CpuFrequency,
    /// Seeded deterministic fault plan for thread-cluster runs, if any
    /// (`None` keeps the zero-overhead fault-free transport).
    pub faults: Option<FaultConfig>,
    /// Comm-avoiding transpilation applied before execution (thread-
    /// cluster runs; `Off` preserves the untranspiled gate stream).
    pub transpile: TranspileMode,
}

impl SimConfig {
    /// The ARCHER2 default setup on `n_ranks` ranks.
    pub fn default_for(n_ranks: u64) -> Self {
        SimConfig {
            n_ranks,
            non_blocking: false,
            streamed: false,
            half_exchange_swaps: false,
            fuse_diagonals: None,
            max_message_bytes: 1 << 20,
            node_kind: NodeKind::Standard,
            frequency: CpuFrequency::Medium,
            faults: None,
            transpile: TranspileMode::Off,
        }
    }

    /// The paper's "Fast" setup (Table 2): non-blocking exchange; pair it
    /// with a cache-blocked circuit.
    pub fn fast_for(n_ranks: u64) -> Self {
        SimConfig {
            non_blocking: true,
            ..Self::default_for(n_ranks)
        }
    }

    /// View as the executable engine's options.
    pub fn to_dist_config(&self) -> DistConfig {
        DistConfig {
            exchange_mode: if self.streamed {
                ExchangeMode::Streamed
            } else if self.non_blocking {
                ExchangeMode::NonBlocking
            } else {
                ExchangeMode::Blocking
            },
            chunk_policy: ChunkPolicy::new(self.max_message_bytes)
                .expect("max_message_bytes must be positive"),
            half_exchange_swaps: self.half_exchange_swaps,
            min_fuse: self.fuse_diagonals,
        }
    }

    /// View as the analytic model's options.
    pub fn to_model_config(&self) -> ModelConfig {
        ModelConfig {
            node_kind: self.node_kind,
            frequency: self.frequency,
            comm_mode: if self.streamed {
                CommMode::Streamed
            } else if self.non_blocking {
                CommMode::NonBlocking
            } else {
                CommMode::Blocking
            },
            half_exchange_swaps: self.half_exchange_swaps,
            fuse_diagonals: self.fuse_diagonals,
            n_nodes: self.n_ranks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_maps_to_blocking_everywhere() {
        let c = SimConfig::default_for(8);
        assert_eq!(c.to_dist_config().exchange_mode, ExchangeMode::Blocking);
        assert_eq!(c.to_model_config().comm_mode, CommMode::Blocking);
        assert_eq!(c.to_model_config().n_nodes, 8);
        assert!(!c.to_dist_config().half_exchange_swaps);
    }

    #[test]
    fn fast_maps_to_nonblocking_everywhere() {
        let c = SimConfig::fast_for(8);
        assert_eq!(c.to_dist_config().exchange_mode, ExchangeMode::NonBlocking);
        assert_eq!(c.to_model_config().comm_mode, CommMode::NonBlocking);
    }

    #[test]
    fn streamed_maps_and_takes_precedence() {
        let mut c = SimConfig::default_for(8);
        c.streamed = true;
        assert_eq!(c.to_dist_config().exchange_mode, ExchangeMode::Streamed);
        assert_eq!(c.to_model_config().comm_mode, CommMode::Streamed);
        c.non_blocking = true; // streamed wins when both are set
        assert_eq!(c.to_dist_config().exchange_mode, ExchangeMode::Streamed);
        assert_eq!(c.to_model_config().comm_mode, CommMode::Streamed);
    }

    #[test]
    fn options_thread_through() {
        let mut c = SimConfig::default_for(4);
        c.half_exchange_swaps = true;
        c.fuse_diagonals = Some(3);
        c.max_message_bytes = 256;
        assert!(c.to_dist_config().half_exchange_swaps);
        assert!(c.to_model_config().half_exchange_swaps);
        assert_eq!(c.to_dist_config().min_fuse, Some(3));
        assert_eq!(c.to_model_config().fuse_diagonals, Some(3));
        assert_eq!(c.to_dist_config().chunk_policy.max_message_bytes, 256);
    }

    #[test]
    fn transpile_defaults_off_and_maps_to_strategies() {
        let c = SimConfig::default_for(4);
        assert_eq!(c.transpile, TranspileMode::Off);
        assert_eq!(TranspileMode::Off.strategy(), None);
        assert_eq!(TranspileMode::Greedy.strategy(), Some(Strategy::Greedy));
        assert_eq!(TranspileMode::Beam.strategy(), Some(Strategy::beam()));
    }
}
