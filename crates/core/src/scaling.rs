//! Capacity planning helpers tying circuits to node counts.

use qse_machine::archer2::Machine;
use qse_machine::memory::{min_nodes, BufferRegime};
use qse_machine::node::NodeKind;

/// The minimum node count for `n_qubits` on a node kind, as the paper's
/// experiments always use ("using the minimum possible number of nodes to
/// fit the statevector", §3).
pub fn nodes_for(machine: &Machine, kind: NodeKind, n_qubits: u32) -> Option<u64> {
    min_nodes(n_qubits, machine.node(kind), BufferRegime::Full)
}

/// Same, under the half-exchange buffer regime (§4: the route to 45
/// qubits on ARCHER2).
pub fn nodes_for_half_buffers(
    machine: &Machine,
    kind: NodeKind,
    n_qubits: u32,
) -> Option<u64> {
    min_nodes(n_qubits, machine.node(kind), BufferRegime::Half)
}

/// The register range a node kind can host at all (smallest meaningful
/// paper size to the largest that fits).
pub fn feasible_range(machine: &Machine, kind: NodeKind, from: u32) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    let mut n = from;
    while let Some(nodes) = nodes_for(machine, kind, n) {
        out.push((n, nodes));
        n += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_machine::archer2;

    #[test]
    fn fig2_node_counts_standard() {
        // The x-axis of fig 2: 33 q → 1 node … 44 q → 4,096 nodes.
        let m = archer2();
        let range = feasible_range(&m, NodeKind::Standard, 33);
        let expected: Vec<(u32, u64)> = vec![
            (33, 1),
            (34, 4),
            (35, 8),
            (36, 16),
            (37, 32),
            (38, 64),
            (39, 128),
            (40, 256),
            (41, 512),
            (42, 1024),
            (43, 2048),
            (44, 4096),
        ];
        assert_eq!(range, expected);
    }

    #[test]
    fn fig2_node_counts_highmem() {
        // High-memory: 34 q on one node up to 41 q on 256 (§3.1).
        let m = archer2();
        let range = feasible_range(&m, NodeKind::HighMem, 34);
        assert_eq!(range.first(), Some(&(34, 1)));
        assert_eq!(range.last(), Some(&(41, 256)));
        assert_eq!(range.len(), 8);
    }

    #[test]
    fn half_buffers_unlock_45_qubits() {
        let m = archer2();
        assert_eq!(nodes_for(&m, NodeKind::Standard, 45), None);
        assert_eq!(nodes_for_half_buffers(&m, NodeKind::Standard, 45), Some(4096));
    }
}
