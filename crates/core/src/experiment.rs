//! Experiment output: publication-shaped text tables and JSON records.
//!
//! Every figure/table binary in `qse-bench` renders its rows through this
//! module, so the console output lines up with the paper's tables and a
//! machine-readable JSON twin lands next to it for EXPERIMENTS.md.

use qse_util::json::ToJson;
use std::fmt::Write as _;
use std::path::Path;

/// A simple left-padded text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a header underline and aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats seconds the way the paper's tables do.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{s:.2} s")
    }
}

/// Formats a ratio as a percentage delta against a baseline of 1.0
/// (`+7 %` / `−12 %`), as read off fig 3.
pub fn fmt_delta(ratio: f64) -> String {
    let pct = (ratio - 1.0) * 100.0;
    format!("{pct:+.0} %")
}

/// Writes a serialisable record as pretty JSON, creating parents.
pub fn write_json<T: ToJson>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, value.to_json().pretty())
}

/// The default output directory for experiment JSON (`results/` at the
/// workspace root, overridable with `QSE_RESULTS_DIR`).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("QSE_RESULTS_DIR")
        .map(Into::into)
        .unwrap_or_else(|| "results".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Qubits", "Runtime"]);
        t.row(vec!["38", "0.5 s"]);
        t.row(vec!["44", "476 s"]);
        let s = t.render();
        assert!(s.contains("Qubits"));
        assert!(s.contains("476 s"));
        // header underline present
        assert!(s.lines().nth(1).unwrap().starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn ragged_rows_rejected() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_seconds(476.0), "476 s");
        assert_eq!(fmt_seconds(9.63), "9.6 s");
        assert_eq!(fmt_seconds(0.53), "0.53 s");
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta(1.25), "+25 %");
        assert_eq!(fmt_delta(0.93), "-7 %");
        assert_eq!(fmt_delta(1.0), "+0 %");
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("qse_experiment_test");
        let path = dir.join("record.json");
        struct R {
            x: u32,
        }
        impl ToJson for R {
            fn to_json(&self) -> qse_util::Json {
                qse_util::Json::object([("x", self.x.to_json())])
            }
        }
        write_json(&path, &R { x: 7 }).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 7"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
