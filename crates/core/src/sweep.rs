//! Parameter sweeps over the model — the engine behind the fig 2/3 grids.

use crate::config::SimConfig;
use crate::executor::ModelExecutor;
use crate::scaling::nodes_for;
use qse_circuit::Circuit;
use qse_machine::archer2::Machine;
use qse_machine::perf::RunEstimate;
use qse_machine::{CpuFrequency, NodeKind};

/// One cell of a sweep: the setup and its estimate.
pub struct SweepPoint {
    /// Register width.
    pub n_qubits: u32,
    /// Node flavour.
    pub node_kind: NodeKind,
    /// CPU frequency.
    pub frequency: CpuFrequency,
    /// Node count chosen (minimum fit).
    pub n_nodes: u64,
    /// The model's output.
    pub estimate: RunEstimate,
}

/// Sweeps `circuit_for(n)` over register sizes × node kinds × frequencies,
/// using the minimum node count that fits each register (as all the
/// paper's experiments do). Infeasible combinations are skipped.
pub fn sweep_qubits(
    machine: &Machine,
    qubit_range: impl IntoIterator<Item = u32>,
    kinds: &[NodeKind],
    freqs: &[CpuFrequency],
    mut circuit_for: impl FnMut(u32) -> Circuit,
) -> Vec<SweepPoint> {
    let exec = ModelExecutor::new(machine);
    let mut out = Vec::new();
    for n in qubit_range {
        let circuit = circuit_for(n);
        for &kind in kinds {
            let Some(nodes) = nodes_for(machine, kind, n) else {
                continue;
            };
            for &frequency in freqs {
                let mut cfg = SimConfig::default_for(nodes);
                cfg.node_kind = kind;
                cfg.frequency = frequency;
                out.push(SweepPoint {
                    n_qubits: n,
                    node_kind: kind,
                    frequency,
                    n_nodes: nodes,
                    estimate: exec.run(&circuit, &cfg),
                });
            }
        }
    }
    out
}

/// Finds the sweep point minimising a metric (e.g. total energy).
pub fn best_by<F: Fn(&SweepPoint) -> f64>(points: &[SweepPoint], metric: F) -> Option<&SweepPoint> {
    points
        .iter()
        .min_by(|a, b| metric(a).total_cmp(&metric(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::qft::qft;
    use qse_machine::archer2;

    #[test]
    fn sweep_covers_feasible_grid() {
        let m = archer2();
        let points = sweep_qubits(
            &m,
            33..=35,
            &[NodeKind::Standard, NodeKind::HighMem],
            &[CpuFrequency::Medium, CpuFrequency::High],
            qft,
        );
        // 3 sizes × 2 kinds × 2 freqs, all feasible at 33–35 qubits.
        assert_eq!(points.len(), 12);
        assert!(points.iter().all(|p| p.estimate.runtime_s > 0.0));
    }

    #[test]
    fn infeasible_combinations_are_skipped() {
        let m = archer2();
        // 42 qubits exceed the high-memory partition.
        let points = sweep_qubits(
            &m,
            [42u32],
            &[NodeKind::Standard, NodeKind::HighMem],
            &[CpuFrequency::Medium],
            qft,
        );
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].node_kind, NodeKind::Standard);
    }

    #[test]
    fn best_by_finds_minimum_energy() {
        let m = archer2();
        let points = sweep_qubits(
            &m,
            [36u32],
            &[NodeKind::Standard],
            &CpuFrequency::all(),
            qft,
        );
        let best = best_by(&points, |p| p.estimate.total_energy_j()).unwrap();
        for p in &points {
            assert!(best.estimate.total_energy_j() <= p.estimate.total_energy_j());
        }
    }

    #[test]
    fn best_by_on_empty_is_none() {
        assert!(best_by(&[], |p| p.estimate.runtime_s).is_none());
    }
}
