//! Measured per-class runtime profiles (fig 5 on the thread cluster).
//!
//! The paper profiles its runs into MPI / memory / compute shares. On the
//! thread cluster we can measure wall-clock per gate and attribute it to
//! the gate's locality class: distributed-gate time is communication-
//! dominated, local-memory and fully-local time are sweep-dominated. The
//! class split is the measured analogue of fig 5's bars.

use qse_circuit::classify::GateClass;
use qse_util::json::{Json, ToJson};
use std::time::Duration;

/// Accumulated wall-clock per locality class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassProfile {
    /// Seconds spent in fully-local (diagonal) sweeps.
    pub fully_local_s: f64,
    /// Seconds spent in local-memory pair sweeps.
    pub local_memory_s: f64,
    /// Seconds spent in distributed gates (exchange + combine).
    pub distributed_s: f64,
}

impl ClassProfile {
    /// Adds a gate's measured duration to its class bucket.
    pub fn record(&mut self, class: GateClass, elapsed: Duration) {
        let s = elapsed.as_secs_f64();
        match class {
            GateClass::FullyLocal => self.fully_local_s += s,
            GateClass::LocalMemory => self.local_memory_s += s,
            GateClass::Distributed => self.distributed_s += s,
        }
    }

    /// Total measured seconds.
    pub fn total_s(&self) -> f64 {
        self.fully_local_s + self.local_memory_s + self.distributed_s
    }

    /// Fraction of time in distributed gates (the "MPI" bar).
    pub fn distributed_fraction(&self) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            self.distributed_s / self.total_s()
        }
    }
}

impl ToJson for ClassProfile {
    fn to_json(&self) -> Json {
        Json::object([
            ("fully_local_s", self.fully_local_s.to_json()),
            ("local_memory_s", self.local_memory_s.to_json()),
            ("distributed_s", self.distributed_s.to_json()),
        ])
    }
}

/// A measured thread-cluster run.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Register width.
    pub n_qubits: u32,
    /// Rank count.
    pub n_ranks: u64,
    /// End-to-end wall-clock (rank 0's view), seconds.
    pub wall_s: f64,
    /// Per-class breakdown.
    pub profile: ClassProfile,
    /// Total bytes sent across all ranks.
    pub bytes_sent: u64,
    /// Amplitude payload bytes sent through statevector exchanges across
    /// all ranks — the subset of `bytes_sent` the comm-avoiding
    /// transpiler minimises (collectives and control traffic excluded).
    pub bytes_exchanged: u64,
    /// Total messages sent across all ranks.
    pub messages_sent: u64,
    /// Exchange chunks completed across all ranks (streamed exchanges
    /// record one per received chunk).
    pub exchange_chunks: u64,
    /// Largest exchange-scratch footprint observed on any rank, bytes —
    /// the streamed path bounds this by ring-depth × chunk size.
    pub peak_inflight_bytes: u64,
    /// Circuit gate count.
    pub gate_count: usize,
    /// Fault events injected across all ranks (0 without a fault plan).
    pub faults_injected: u64,
    /// Transient-failure retries performed across all ranks.
    pub retries: u64,
    /// Corrupted payloads detected and discarded across all ranks.
    pub corruptions_detected: u64,
}

impl ProfiledRun {
    /// Bytes per rank per distributed gate — should equal the local slice
    /// size (or half, with half-exchange SWAPs).
    pub fn bytes_per_rank(&self) -> u64 {
        self.bytes_sent / self.n_ranks
    }
}

impl ToJson for ProfiledRun {
    fn to_json(&self) -> Json {
        Json::object([
            ("n_qubits", self.n_qubits.to_json()),
            ("n_ranks", self.n_ranks.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("profile", self.profile.to_json()),
            ("bytes_sent", self.bytes_sent.to_json()),
            ("bytes_exchanged", self.bytes_exchanged.to_json()),
            ("messages_sent", self.messages_sent.to_json()),
            ("exchange_chunks", self.exchange_chunks.to_json()),
            ("peak_inflight_bytes", self.peak_inflight_bytes.to_json()),
            ("gate_count", self.gate_count.to_json()),
            ("faults_injected", self.faults_injected.to_json()),
            ("retries", self.retries.to_json()),
            ("corruptions_detected", self.corruptions_detected.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_buckets_by_class() {
        let mut p = ClassProfile::default();
        p.record(GateClass::FullyLocal, Duration::from_millis(100));
        p.record(GateClass::LocalMemory, Duration::from_millis(200));
        p.record(GateClass::Distributed, Duration::from_millis(700));
        assert!((p.total_s() - 1.0).abs() < 1e-9);
        assert!((p.distributed_fraction() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_has_zero_fraction() {
        assert_eq!(ClassProfile::default().distributed_fraction(), 0.0);
    }
}
