//! The three execution backends behind one call shape.

use crate::config::SimConfig;
use crate::profile::{ClassProfile, ProfiledRun};
use qse_circuit::classify::{classify, GateClass, Layout};
use qse_circuit::transpile::{comm_avoid, Plan, PlanStep};
use qse_circuit::Circuit;
use qse_comm::{CommError, Universe};
use qse_machine::archer2::Machine;
use qse_machine::perf::RunEstimate;
use qse_machine::{archer2, ModelOracle};
use qse_math::Complex64;
use qse_statevec::storage::SoaStorage;
use qse_statevec::{DistributedState, SingleState};
use std::time::Instant;

/// Builds the comm-avoiding execution plan `config.transpile` selects for
/// `circuit`, with the final layout restored — `None` when transpilation
/// is off. Candidate placements are scored by the calibrated ARCHER2
/// model acting as the pass's exchange-cost oracle, so the CLI can price
/// the same plan the executor runs.
pub fn comm_avoid_plan(circuit: &Circuit, config: &SimConfig) -> Option<Plan> {
    let strategy = config.transpile.strategy()?;
    let layout = Layout::new(circuit.n_qubits(), config.n_ranks);
    let machine = archer2();
    let oracle = ModelOracle::new(&machine, config.to_model_config());
    Some(comm_avoid(circuit, &layout, strategy, &oracle).with_layout_restored())
}

/// Runs circuits in one address space with the production kernels.
pub struct LocalExecutor;

impl LocalExecutor {
    /// Simulates from |0…0⟩ and returns the final state.
    pub fn run(circuit: &Circuit) -> SingleState<SoaStorage> {
        SingleState::simulate(circuit)
    }

    /// Simulates from |basis⟩ with diagonal fusion.
    pub fn run_fused(circuit: &Circuit, basis: u64, min_fuse: usize) -> SingleState<SoaStorage> {
        let mut s = SingleState::basis_state(circuit.n_qubits(), basis);
        s.run_fused(circuit, min_fuse);
        s
    }
}

/// Runs circuits genuinely distributed over thread ranks, measuring
/// wall-clock time and traffic — the laptop-scale stand-in for the
/// paper's multi-node runs.
pub struct ThreadClusterExecutor;

/// What a thread-cluster run returns.
pub struct ClusterRun {
    /// Measured timings and traffic.
    pub profiled: ProfiledRun,
    /// Full statevector gathered on rank 0 (small registers only; `None`
    /// when `gather` was disabled).
    pub state: Option<Vec<Complex64>>,
}

impl ThreadClusterExecutor {
    /// Runs `circuit` from |basis⟩ over `config.n_ranks` thread ranks.
    ///
    /// Each gate is timed on rank 0 (all ranks advance in lockstep for
    /// distributed gates, so rank 0's clock is representative) and
    /// attributed to its locality class.
    ///
    /// # Panics
    /// Panics on a communication error; use [`Self::try_run`] when running
    /// under a fault plan that may be unrecoverable.
    pub fn run(circuit: &Circuit, config: &SimConfig, basis: u64, gather: bool) -> ClusterRun {
        Self::try_run(circuit, config, basis, gather).expect("cluster run failed")
    }

    /// [`Self::run`], but every rank's communication errors propagate as a
    /// typed [`CommError`] instead of panicking — the entry point for runs
    /// under a [`SimConfig::faults`] plan, where an unrecoverable plan
    /// must surface an error rather than hang or crash. When several
    /// ranks fail, the lowest rank's error is returned.
    pub fn try_run(
        circuit: &Circuit,
        config: &SimConfig,
        basis: u64,
        gather: bool,
    ) -> Result<ClusterRun, CommError> {
        let n_ranks = config.n_ranks as usize;
        let dist_config = config.to_dist_config();
        let layout = Layout::new(circuit.n_qubits(), config.n_ranks);
        let classes: Vec<_> = circuit
            .gates()
            .iter()
            .map(|g| classify(g, &layout))
            .collect();

        let plan = comm_avoid_plan(circuit, config);
        let step_count = plan.as_ref().map_or(circuit.len(), |p| p.steps.len());

        // Debug-mode pre-flight gate: prove the plan's exchange schedule
        // safe (protocol matching, deadlock freedom, buffer bounds,
        // layout soundness) before any rank posts a byte. Release builds
        // skip the pass; the plan corpus and property suites carry the
        // proof there.
        #[cfg(debug_assertions)]
        Self::verify_plan_pre_flight(circuit, config, plan.as_ref())?;

        let universe = match config.faults {
            Some(fc) => Universe::with_faults(n_ranks, fc)?,
            None => Universe::new(n_ranks),
        };
        let per_rank = universe.run(|comm| -> Result<_, CommError> {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::basis_state(comm, circuit.n_qubits(), basis, dist_config);
            st.barrier();
            let t0 = Instant::now();
            let mut profile = ClassProfile::default();
            match &plan {
                None => {
                    for (gate, &class) in circuit.gates().iter().zip(&classes) {
                        let g0 = Instant::now();
                        st.apply(gate)?;
                        profile.record(class, g0.elapsed());
                    }
                }
                Some(plan) => {
                    // Transpiled path: gates are all local by construction;
                    // batched permutes carry the communication and land in
                    // the distributed bucket.
                    for step in &plan.steps {
                        let g0 = Instant::now();
                        let class = match step {
                            PlanStep::Gate(g) => {
                                st.apply(g)?;
                                classify(g, &layout)
                            }
                            PlanStep::Permute(p) => {
                                st.apply_global_permutation(p)?;
                                GateClass::Distributed
                            }
                        };
                        profile.record(class, g0.elapsed());
                    }
                }
            }
            st.barrier();
            let wall = t0.elapsed().as_secs_f64();
            let stats = st.stats();
            let state = if gather { st.gather()? } else { None };
            Ok((wall, profile, stats, state))
        });
        let mut results = Vec::with_capacity(per_rank.len());
        for r in per_rank {
            results.push(r?);
        }

        let total_bytes: u64 = results.iter().map(|(_, _, s, _)| s.bytes_sent).sum();
        let total_exchanged: u64 = results.iter().map(|(_, _, s, _)| s.bytes_exchanged).sum();
        let total_msgs: u64 = results.iter().map(|(_, _, s, _)| s.messages_sent).sum();
        let total_chunks: u64 = results.iter().map(|(_, _, s, _)| s.exchange_chunks).sum();
        let peak_inflight: u64 = results
            .iter()
            .map(|(_, _, s, _)| s.peak_inflight_bytes)
            .max()
            .unwrap_or(0);
        let faults_injected: u64 = results.iter().map(|(_, _, s, _)| s.faults_injected).sum();
        let retries: u64 = results.iter().map(|(_, _, s, _)| s.retries).sum();
        let corruptions: u64 = results
            .iter()
            .map(|(_, _, s, _)| s.corruptions_detected)
            .sum();
        let (wall, profile, _, _) = &results[0];
        let state = results
            .iter()
            .find_map(|(_, _, _, st)| st.clone());
        Ok(ClusterRun {
            profiled: ProfiledRun {
                n_qubits: circuit.n_qubits(),
                n_ranks: config.n_ranks,
                wall_s: *wall,
                profile: *profile,
                bytes_sent: total_bytes,
                bytes_exchanged: total_exchanged,
                messages_sent: total_msgs,
                exchange_chunks: total_chunks,
                peak_inflight_bytes: peak_inflight,
                gate_count: step_count,
                faults_injected,
                retries,
                corruptions_detected: corruptions,
            },
            state,
        })
    }

    /// Debug-build pre-flight: statically verify the exchange schedule the
    /// run would execute (transpiled plan when one exists, otherwise the
    /// raw circuit) and reject unverifiable plans with a typed error
    /// carrying the verifier's per-rank diagnosis.
    #[cfg(debug_assertions)]
    fn verify_plan_pre_flight(
        circuit: &Circuit,
        config: &SimConfig,
        plan: Option<&Plan>,
    ) -> Result<(), CommError> {
        let dc = config.to_dist_config();
        let opts = qse_check::verify::VerifyOptions {
            exchange_mode: dc.exchange_mode,
            chunk_policy: dc.chunk_policy,
            half_exchange_swaps: dc.half_exchange_swaps,
            min_fuse: dc.min_fuse,
            ..qse_check::verify::VerifyOptions::default()
        };
        match plan {
            Some(p) => qse_check::verify::verify_plan(p, Some(circuit), config.n_ranks, &opts),
            None => qse_check::verify::verify_circuit(circuit, config.n_ranks, &opts),
        }
        .map(|_| ())
        .map_err(|e| CommError::PlanRejected {
            detail: e.to_string(),
        })
    }
}

/// Runs circuits through the calibrated ARCHER2 model at full scale.
pub struct ModelExecutor<'m> {
    machine: &'m Machine,
}

impl<'m> ModelExecutor<'m> {
    /// Wraps a machine description.
    pub fn new(machine: &'m Machine) -> Self {
        ModelExecutor { machine }
    }

    /// Estimates runtime/energy for `circuit` under `config`.
    pub fn run(&self, circuit: &Circuit, config: &SimConfig) -> RunEstimate {
        qse_machine::estimate(circuit, self.machine, &config.to_model_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::qft::qft;
    use qse_circuit::random::{random_circuit, GatePool};
    use qse_machine::archer2;
    use qse_math::approx::assert_slices_close;
    use qse_statevec::reference::ReferenceState;

    #[test]
    fn local_executor_matches_reference() {
        let c = random_circuit(6, 50, GatePool::Full, 8);
        let got = LocalExecutor::run(&c);
        let want = ReferenceState::simulate(&c);
        assert_slices_close(&got.to_vec(), want.amplitudes(), 1e-9);
    }

    #[test]
    fn cluster_executor_matches_reference_and_profiles() {
        let c = qft(8);
        let run = ThreadClusterExecutor::run(&c, &SimConfig::default_for(4), 11, true);
        let mut want = ReferenceState::basis_state(8, 11);
        want.run(&c);
        assert_slices_close(&run.state.unwrap(), want.amplitudes(), 1e-9);
        // profile accounting covers every gate
        assert_eq!(run.profiled.gate_count, c.len());
        assert!(run.profiled.wall_s > 0.0);
        assert!(run.profiled.profile.total_s() > 0.0);
        assert!(run.profiled.bytes_sent > 0);
    }

    #[test]
    fn cluster_executor_without_gather() {
        let c = qft(6);
        let run = ThreadClusterExecutor::run(&c, &SimConfig::default_for(2), 0, false);
        assert!(run.state.is_none());
    }

    /// Exact bitwise statevector equality — the fault-equivalence bar is
    /// bit-for-bit, stricter than approximate closeness.
    fn assert_bits_equal(a: &[qse_math::Complex64], b: &[qse_math::Complex64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "amplitude {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn cluster_run_under_recoverable_faults_is_bit_identical() {
        let c = qft(7);
        let clean = ThreadClusterExecutor::run(&c, &SimConfig::default_for(4), 3, true);
        assert_eq!(clean.profiled.faults_injected, 0);
        assert_eq!(clean.profiled.retries, 0);
        assert_eq!(clean.profiled.corruptions_detected, 0);
        let mut cfg = SimConfig::default_for(4);
        cfg.faults = Some(qse_comm::FaultConfig::recoverable(99));
        let faulted = ThreadClusterExecutor::try_run(&c, &cfg, 3, true).unwrap();
        assert_bits_equal(
            &faulted.state.unwrap(),
            &clean.state.unwrap(),
        );
        assert!(faulted.profiled.faults_injected > 0, "plan never fired");
    }

    #[test]
    fn cluster_run_surfaces_unrecoverable_faults_as_typed_errors() {
        let c = qft(6);
        let mut cfg = SimConfig::default_for(2);
        cfg.faults = Some(qse_comm::FaultConfig::exhausted_retries(1));
        let err = ThreadClusterExecutor::try_run(&c, &cfg, 0, false)
            .err()
            .expect("exhausted retries must fail the run");
        assert!(
            matches!(err, qse_comm::CommError::Transient { .. }),
            "expected Transient, got {err:?}"
        );
        cfg.faults = Some(qse_comm::FaultConfig::permanent_corruption(1));
        let err = ThreadClusterExecutor::try_run(&c, &cfg, 0, false)
            .err()
            .expect("permanent corruption must fail the run");
        assert!(
            matches!(err, qse_comm::CommError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
    }

    #[test]
    fn model_executor_produces_estimates() {
        let machine = archer2();
        let exec = ModelExecutor::new(&machine);
        let est = exec.run(&qft(38), &SimConfig::default_for(64));
        assert!(est.runtime_s > 0.0);
        assert!(est.total_energy_j() > 0.0);
        assert_eq!(est.n_nodes, 64);
    }

    #[test]
    fn transpiled_cluster_run_matches_reference() {
        let c = qft(8);
        let mut want = ReferenceState::basis_state(8, 5);
        want.run(&c);
        for mode in [crate::config::TranspileMode::Greedy, crate::config::TranspileMode::Beam] {
            let mut cfg = SimConfig::default_for(4);
            cfg.transpile = mode;
            let run = ThreadClusterExecutor::run(&c, &cfg, 5, true);
            assert_slices_close(&run.state.unwrap(), want.amplitudes(), 1e-9);
            // gate_count reflects plan steps, not source gates
            let plan = comm_avoid_plan(&c, &cfg).unwrap();
            assert_eq!(run.profiled.gate_count, plan.steps.len());
        }
    }

    #[test]
    fn transpiled_cluster_run_exchanges_fewer_bytes() {
        let c = qft(12);
        let off = ThreadClusterExecutor::run(&c, &SimConfig::default_for(4), 0, false);
        assert!(off.profiled.bytes_exchanged > 0);
        for mode in [crate::config::TranspileMode::Greedy, crate::config::TranspileMode::Beam] {
            let mut cfg = SimConfig::default_for(4);
            cfg.transpile = mode;
            let on = ThreadClusterExecutor::run(&c, &cfg, 0, false);
            assert!(
                on.profiled.bytes_exchanged < off.profiled.bytes_exchanged,
                "{mode:?}: {} !< {}",
                on.profiled.bytes_exchanged,
                off.profiled.bytes_exchanged
            );
        }
    }

    #[test]
    fn pre_flight_rejects_a_broken_plan() {
        // A plan whose final permute is never undone must be refused by
        // the debug-mode gate before any rank posts a byte.
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 3);
        let plan = qse_check::verify::broken_fixture_unrestored_layout();
        let err = ThreadClusterExecutor::verify_plan_pre_flight(
            &c,
            &SimConfig::default_for(4),
            Some(&plan),
        )
        .expect_err("broken plan must be rejected");
        match &err {
            CommError::PlanRejected { detail } => {
                assert!(detail.contains("layout"), "diagnosis was: {detail}")
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
    }

    #[test]
    fn fused_local_matches_plain() {
        let c = random_circuit(6, 120, GatePool::Full, 3);
        let plain = LocalExecutor::run(&c);
        let fused = LocalExecutor::run_fused(&c, 0, 2);
        assert_slices_close(&fused.to_vec(), &plain.to_vec(), 1e-9);
    }
}
