//! The three execution backends behind one call shape.

use crate::config::SimConfig;
use crate::profile::{ClassProfile, ProfiledRun};
use qse_circuit::classify::{classify, Layout};
use qse_circuit::Circuit;
use qse_comm::Universe;
use qse_machine::archer2::Machine;
use qse_machine::perf::RunEstimate;
use qse_math::Complex64;
use qse_statevec::storage::SoaStorage;
use qse_statevec::{DistributedState, SingleState};
use std::time::Instant;

/// Runs circuits in one address space with the production kernels.
pub struct LocalExecutor;

impl LocalExecutor {
    /// Simulates from |0…0⟩ and returns the final state.
    pub fn run(circuit: &Circuit) -> SingleState<SoaStorage> {
        SingleState::simulate(circuit)
    }

    /// Simulates from |basis⟩ with diagonal fusion.
    pub fn run_fused(circuit: &Circuit, basis: u64, min_fuse: usize) -> SingleState<SoaStorage> {
        let mut s = SingleState::basis_state(circuit.n_qubits(), basis);
        s.run_fused(circuit, min_fuse);
        s
    }
}

/// Runs circuits genuinely distributed over thread ranks, measuring
/// wall-clock time and traffic — the laptop-scale stand-in for the
/// paper's multi-node runs.
pub struct ThreadClusterExecutor;

/// What a thread-cluster run returns.
pub struct ClusterRun {
    /// Measured timings and traffic.
    pub profiled: ProfiledRun,
    /// Full statevector gathered on rank 0 (small registers only; `None`
    /// when `gather` was disabled).
    pub state: Option<Vec<Complex64>>,
}

impl ThreadClusterExecutor {
    /// Runs `circuit` from |basis⟩ over `config.n_ranks` thread ranks.
    ///
    /// Each gate is timed on rank 0 (all ranks advance in lockstep for
    /// distributed gates, so rank 0's clock is representative) and
    /// attributed to its locality class.
    pub fn run(circuit: &Circuit, config: &SimConfig, basis: u64, gather: bool) -> ClusterRun {
        let n_ranks = config.n_ranks as usize;
        let dist_config = config.to_dist_config();
        let layout = Layout::new(circuit.n_qubits(), config.n_ranks);
        let classes: Vec<_> = circuit
            .gates()
            .iter()
            .map(|g| classify(g, &layout))
            .collect();

        let results = Universe::new(n_ranks).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::basis_state(comm, circuit.n_qubits(), basis, dist_config);
            st.barrier();
            let t0 = Instant::now();
            let mut profile = ClassProfile::default();
            for (gate, &class) in circuit.gates().iter().zip(&classes) {
                let g0 = Instant::now();
                st.apply(gate).expect("cluster run failed");
                profile.record(class, g0.elapsed());
            }
            st.barrier();
            let wall = t0.elapsed().as_secs_f64();
            let stats = st.stats();
            let state = if gather {
                st.gather().expect("gather failed")
            } else {
                None
            };
            (wall, profile, stats, state)
        });

        let total_bytes: u64 = results.iter().map(|(_, _, s, _)| s.bytes_sent).sum();
        let total_msgs: u64 = results.iter().map(|(_, _, s, _)| s.messages_sent).sum();
        let total_chunks: u64 = results.iter().map(|(_, _, s, _)| s.exchange_chunks).sum();
        let peak_inflight: u64 = results
            .iter()
            .map(|(_, _, s, _)| s.peak_inflight_bytes)
            .max()
            .unwrap_or(0);
        let (wall, profile, _, _) = &results[0];
        let state = results
            .iter()
            .find_map(|(_, _, _, st)| st.clone());
        ClusterRun {
            profiled: ProfiledRun {
                n_qubits: circuit.n_qubits(),
                n_ranks: config.n_ranks,
                wall_s: *wall,
                profile: *profile,
                bytes_sent: total_bytes,
                messages_sent: total_msgs,
                exchange_chunks: total_chunks,
                peak_inflight_bytes: peak_inflight,
                gate_count: circuit.len(),
            },
            state,
        }
    }
}

/// Runs circuits through the calibrated ARCHER2 model at full scale.
pub struct ModelExecutor<'m> {
    machine: &'m Machine,
}

impl<'m> ModelExecutor<'m> {
    /// Wraps a machine description.
    pub fn new(machine: &'m Machine) -> Self {
        ModelExecutor { machine }
    }

    /// Estimates runtime/energy for `circuit` under `config`.
    pub fn run(&self, circuit: &Circuit, config: &SimConfig) -> RunEstimate {
        qse_machine::estimate(circuit, self.machine, &config.to_model_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::qft::qft;
    use qse_circuit::random::{random_circuit, GatePool};
    use qse_machine::archer2;
    use qse_math::approx::assert_slices_close;
    use qse_statevec::reference::ReferenceState;

    #[test]
    fn local_executor_matches_reference() {
        let c = random_circuit(6, 50, GatePool::Full, 8);
        let got = LocalExecutor::run(&c);
        let want = ReferenceState::simulate(&c);
        assert_slices_close(&got.to_vec(), want.amplitudes(), 1e-9);
    }

    #[test]
    fn cluster_executor_matches_reference_and_profiles() {
        let c = qft(8);
        let run = ThreadClusterExecutor::run(&c, &SimConfig::default_for(4), 11, true);
        let mut want = ReferenceState::basis_state(8, 11);
        want.run(&c);
        assert_slices_close(&run.state.unwrap(), want.amplitudes(), 1e-9);
        // profile accounting covers every gate
        assert_eq!(run.profiled.gate_count, c.len());
        assert!(run.profiled.wall_s > 0.0);
        assert!(run.profiled.profile.total_s() > 0.0);
        assert!(run.profiled.bytes_sent > 0);
    }

    #[test]
    fn cluster_executor_without_gather() {
        let c = qft(6);
        let run = ThreadClusterExecutor::run(&c, &SimConfig::default_for(2), 0, false);
        assert!(run.state.is_none());
    }

    #[test]
    fn model_executor_produces_estimates() {
        let machine = archer2();
        let exec = ModelExecutor::new(&machine);
        let est = exec.run(&qft(38), &SimConfig::default_for(64));
        assert!(est.runtime_s > 0.0);
        assert!(est.total_energy_j() > 0.0);
        assert_eq!(est.n_nodes, 64);
    }

    #[test]
    fn fused_local_matches_plain() {
        let c = random_circuit(6, 120, GatePool::Full, 3);
        let plain = LocalExecutor::run(&c);
        let fused = LocalExecutor::run_fused(&c, 0, 2);
        assert_slices_close(&fused.to_vec(), &plain.to_vec(), 1e-9);
    }
}
