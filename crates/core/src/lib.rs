//! Simulator facade: executors, profiling and the experiment harness.
//!
//! This crate glues the reproduction together. A circuit can be run three
//! ways behind one interface:
//!
//! * [`executor::LocalExecutor`] — single address space, production
//!   kernels ([`qse_statevec::SingleState`]);
//! * [`executor::ThreadClusterExecutor`] — genuinely distributed over
//!   thread ranks with real message passing, measuring wall-clock time
//!   and traffic ([`qse_statevec::DistributedState`]);
//! * [`executor::ModelExecutor`] — the calibrated ARCHER2 model
//!   ([`qse_machine`]), used at the paper's 33–44-qubit scale.
//!
//! [`experiment`] renders the paper's tables (plain text in the same
//! shape as the publication) and writes machine-readable JSON next to
//! them, which is what `EXPERIMENTS.md` records.

pub mod config;
pub mod executor;
pub mod experiment;
pub mod profile;
pub mod scaling;
pub mod sweep;

pub use config::{SimConfig, TranspileMode};
pub use executor::{comm_avoid_plan, LocalExecutor, ModelExecutor, ThreadClusterExecutor};
pub use profile::{ClassProfile, ProfiledRun};
